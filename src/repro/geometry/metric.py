"""Abstract metric-space interface.

A :class:`Metric` exposes ``n`` nodes indexed ``0 .. n-1`` and pairwise
distances.  Implementations must guarantee symmetry, non-negativity and
zero self-distance; the triangle inequality is assumed (and can be
verified with :func:`is_metric_matrix`).

The hot path of the library works on the full ``(n, n)`` distance
matrix, which subclasses may compute lazily and cache.  For instances
far beyond the dense regime (the sparse gain backend of
:mod:`repro.core.gains`), :meth:`Metric.pair_distances` and
:meth:`Metric.distance_block` expose *tiled* access: the defaults
gather from the cached full matrix (bit-identical, no behaviour
change), while coordinate-backed metrics such as
:class:`repro.geometry.euclidean.EuclideanMetric` override them to
compute entries directly — so a block of rows never forces the O(n^2)
matrix into memory.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.util.validation import check_index


class Metric(abc.ABC):
    """A finite metric space over nodes ``0 .. n-1``."""

    @property
    @abc.abstractmethod
    def n(self) -> int:
        """Number of nodes."""

    @abc.abstractmethod
    def _compute_matrix(self) -> np.ndarray:
        """Return the full ``(n, n)`` distance matrix."""

    def __init__(self) -> None:
        self._matrix_cache: Optional[np.ndarray] = None

    def distance(self, u: int, v: int) -> float:
        """Distance between nodes *u* and *v*."""
        u = check_index(u, self.n, "u")
        v = check_index(v, self.n, "v")
        return float(self.distance_matrix()[u, v])

    def distance_matrix(self) -> np.ndarray:
        """The full pairwise distance matrix (cached, read-only)."""
        if self._matrix_cache is None:
            matrix = np.asarray(self._compute_matrix(), dtype=float)
            if matrix.shape != (self.n, self.n):
                raise ValueError(
                    f"distance matrix shape {matrix.shape} != ({self.n}, {self.n})"
                )
            matrix.setflags(write=False)
            self._matrix_cache = matrix
        return self._matrix_cache

    def loss_matrix(self, alpha: float) -> np.ndarray:
        """The pairwise loss matrix ``l(u, v) = d(u, v)**alpha`` (§1.1)."""
        if alpha < 1:
            raise ValueError(f"path-loss exponent alpha must be >= 1, got {alpha}")
        return self.distance_matrix() ** alpha

    def pair_distances(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Distances ``d(us[k], vs[k])`` for aligned index arrays.

        The default gathers from the cached full matrix.  Metrics with
        a coordinate representation override this to compute the values
        directly (bit-identical entries) so that callers — e.g.
        :class:`repro.core.instance.Instance` resolving its link
        lengths — never force the O(n^2) matrix for a handful of pairs.
        """
        us = np.asarray(us, dtype=int)
        vs = np.asarray(vs, dtype=int)
        return self.distance_matrix()[us, vs]

    def distance_block(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """The ``(len(rows), len(cols))`` distance block
        ``d(rows[i], cols[j])``.

        Same contract as :meth:`pair_distances`: the default is a
        gather from the cached matrix, coordinate-backed metrics
        compute the block directly with bit-identical entries.  This is
        the primitive the tiled sparse gain build
        (:class:`repro.core.gains.SparseBackend`) iterates over.
        """
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        return self.distance_matrix()[np.ix_(rows, cols)]

    def loss_block(
        self, rows: np.ndarray, cols: np.ndarray, alpha: float
    ) -> np.ndarray:
        """Loss block ``d(rows[i], cols[j])**alpha`` (tiled
        :meth:`loss_matrix`; same elementwise power, so entries match
        the full loss matrix bit-for-bit)."""
        if alpha < 1:
            raise ValueError(f"path-loss exponent alpha must be >= 1, got {alpha}")
        return self.distance_block(rows, cols) ** alpha

    def loss(self, u: int, v: int, alpha: float) -> float:
        """Loss ``l(u, v) = d(u, v)**alpha`` between two nodes."""
        return self.distance(u, v) ** alpha

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n})"


def is_metric_matrix(matrix: np.ndarray, tol: float = 1e-9) -> bool:
    """Check that *matrix* is a valid metric (symmetry, zero diagonal,
    non-negativity, triangle inequality) up to *tol*.

    Runs in O(n^3); intended for tests and input validation, not hot
    paths.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    n = matrix.shape[0]
    if not np.allclose(np.diag(matrix), 0.0, atol=tol):
        return False
    if not np.allclose(matrix, matrix.T, atol=tol):
        return False
    if np.any(matrix < -tol):
        return False
    # Triangle inequality: d(i, k) <= d(i, j) + d(j, k) for all j.
    for j in range(n):
        through_j = matrix[:, j][:, None] + matrix[j, :][None, :]
        if np.any(matrix > through_j + tol):
            return False
    return True
