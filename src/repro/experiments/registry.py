"""Registry of experiment specs, in canonical CLI order.

Each experiment module declares a thin
:class:`repro.runner.spec.ExperimentSpec`; this module collects them so
the orchestrator and the CLI share one source of truth for ids,
parameters and sharding.  The order matches the historical CLI listing
(``e1`` .. ``e10``, ``e3b``, then the extension experiments).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict

from repro.experiments import (
    e01_directed_lower_bound,
    e02_nested_intuition,
    e03_sqrt_universal,
    e04_coloring_algorithm,
    e05_gain_scaling,
    e06_star_analysis,
    e07_tree_embedding,
    e08_directed_vs_bidirectional,
    e09_energy_tradeoff,
    e10_iin_measure,
    e11_distributed,
    e12_connectivity,
    e13_exact_certification,
)
from repro.runner.spec import ExperimentSpec

_SPECS = (
    e01_directed_lower_bound.SPEC,
    e02_nested_intuition.SPEC,
    e03_sqrt_universal.SPEC,
    e04_coloring_algorithm.SPEC,
    e05_gain_scaling.SPEC,
    e06_star_analysis.SPEC,
    e07_tree_embedding.SPEC,
    e08_directed_vs_bidirectional.SPEC,
    e09_energy_tradeoff.SPEC,
    e10_iin_measure.SPEC,
    e03_sqrt_universal.SPEC_THEOREM2,
    e11_distributed.SPEC,
    e12_connectivity.SPEC,
    e13_exact_certification.SPEC,
)


def get_registry() -> "Dict[str, ExperimentSpec]":
    """Fresh ordered mapping ``experiment id -> spec``."""
    registry: "OrderedDict[str, ExperimentSpec]" = OrderedDict()
    for spec in _SPECS:
        if spec.id in registry:
            raise ValueError(f"duplicate experiment id {spec.id!r}")
        registry[spec.id] = spec
    return registry
