"""Batched experiment orchestration and machine-readable bench artifacts.

* :mod:`repro.runner.spec` — declarative :class:`ExperimentSpec` each
  experiment module exports (sizes, trials, sharding, quality metric).
* :mod:`repro.runner.orchestrator` — process-pool fan-out over shards
  with deterministic per-shard seeding and shard-order merging
  (``--jobs 1`` and ``--jobs N`` are bit-identical).
* :mod:`repro.runner.artifacts` — the ``BENCH_<experiment>.json``
  schema CI uploads and diffs.
* :mod:`repro.runner.executors` — the :class:`ShardExecutor` protocol
  for long-lived shard *actors* (serial reference + self-healing
  process implementation) backing :mod:`repro.distributed`.
"""

from repro.runner.artifacts import (
    BenchReport,
    ShardResult,
    artifact_path,
    atomic_write_text,
    bench_from_dict,
    bench_to_dict,
    checkpoint_dir,
    checkpoint_path,
    clear_checkpoints,
    read_artifact,
    read_checkpoint,
    validate_artifacts_dir,
    write_artifact,
    write_checkpoint,
)
from repro.runner.executors import (
    SHARD_EXECUTORS,
    ProcessShardExecutor,
    SerialShardExecutor,
    ShardExecutor,
    ShardExecutorError,
    build_shard_executor,
)
from repro.runner.orchestrator import (
    available_experiments,
    resolve_specs,
    run_experiments,
    run_shard,
)
from repro.runner.spec import (
    ExperimentSpec,
    Shard,
    derive_shard_seed,
    merge_tables,
)

__all__ = [
    "ExperimentSpec",
    "Shard",
    "derive_shard_seed",
    "merge_tables",
    "BenchReport",
    "ShardResult",
    "artifact_path",
    "atomic_write_text",
    "bench_to_dict",
    "bench_from_dict",
    "checkpoint_dir",
    "checkpoint_path",
    "clear_checkpoints",
    "write_artifact",
    "read_artifact",
    "read_checkpoint",
    "validate_artifacts_dir",
    "write_checkpoint",
    "SHARD_EXECUTORS",
    "ShardExecutor",
    "ShardExecutorError",
    "SerialShardExecutor",
    "ProcessShardExecutor",
    "build_shard_executor",
    "available_experiments",
    "resolve_specs",
    "run_experiments",
    "run_shard",
]
