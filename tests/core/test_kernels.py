"""Tests for the vectorized scheduler kernels (repro.core.kernels).

Three layers of guarantees:

* **Golden equality** — every rewired scheduler (first-fit, peeling,
  sqrt-coloring, local search, greedy subset extraction) emits
  bit-identical ``colors`` arrays on the kernel path and the PR-1
  accumulator/subset-rebuild reference path
  (:func:`repro.core.kernels.kernels_disabled`), across directed and
  bidirectional instances including shared-node (infinite-gain) and
  trivial (zero-interference) edge cases.
* **Property tests** — random add/remove/move sequences keep the
  :class:`ScheduleKernel` state bitwise equal to one
  :class:`ClassAccumulator` per class, and snapshot/restore is an exact
  rollback.
* **Batch conformance** — :meth:`ContextBatch.first_fit_schedules`
  equals per-pair :func:`first_fit_schedule` on stacked and ragged
  batches.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.capacity import greedy_max_feasible_subset
from repro.core.batch import ContextBatch
from repro.core.context import clear_context_cache, engine_disabled, get_context
from repro.core.errors import InvalidScheduleError
from repro.core.instance import Direction, Instance
from repro.core.kernels import (
    ScheduleKernel,
    kernels_disabled,
    kernels_enabled,
    peel_max_feasible_subset,
    stacked_local_search,
)
from repro.core.schedule import Schedule, build_schedule
from repro.geometry.line import LineMetric
from repro.instances.line_instances import equispaced_line_instance
from repro.instances.random_instances import (
    random_tree_metric_instance,
    random_uniform_instance,
)
from repro.power.oblivious import SquareRootPower
from repro.scheduling.firstfit import first_fit_schedule
from repro.scheduling.local_search import improve_schedule
from repro.scheduling.peeling import peeling_schedule
from repro.scheduling.sqrt_coloring import sqrt_coloring
from repro.scheduling.trivial import trivial_schedule


def _shared_node_instance(direction: Direction) -> Instance:
    """Chain with shared nodes: consecutive requests have infinite
    mutual gain (the inf bookkeeping edge case)."""
    metric = LineMetric([0.0, 1.0, 2.5, 4.5, 7.0])
    pairs = [(0, 1), (1, 2), (2, 3), (3, 4)]
    return Instance(
        metric,
        [p[0] for p in pairs],
        [p[1] for p in pairs],
        direction=direction,
    )


def _grid():
    grid = {}
    for direction in (Direction.DIRECTED, Direction.BIDIRECTIONAL):
        tag = direction.value[:3]
        for n in (1, 2, 8, 32):
            grid[f"euclid-{tag}-n{n}"] = random_uniform_instance(
                n, rng=100 + n, direction=direction
            )
            grid[f"line-{tag}-n{n}"] = equispaced_line_instance(
                n, direction=direction
            )
        grid[f"tree-{tag}-n16"] = random_tree_metric_instance(
            16, rng=216, direction=direction
        )
        grid[f"shared-node-{tag}"] = _shared_node_instance(direction)
    return grid


GRID = _grid()


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_context_cache()
    yield
    clear_context_cache()


# ----------------------------------------------------------------------
# Golden equality: kernel path vs accumulator reference path
# ----------------------------------------------------------------------


class TestKernelGoldenEquality:
    @pytest.mark.parametrize("name", sorted(GRID))
    def test_first_fit_bit_identical(self, name):
        instance = GRID[name]
        powers = SquareRootPower()(instance)
        kernel = first_fit_schedule(instance, powers)
        with kernels_disabled():
            reference = first_fit_schedule(instance, powers)
        with engine_disabled():
            legacy = first_fit_schedule(instance, powers)
        np.testing.assert_array_equal(kernel.colors, reference.colors)
        np.testing.assert_array_equal(kernel.colors, legacy.colors)

    @pytest.mark.parametrize("name", sorted(GRID))
    def test_greedy_subset_bit_identical(self, name):
        instance = GRID[name]
        powers = SquareRootPower()(instance)
        kernel = greedy_max_feasible_subset(instance, powers)
        with kernels_disabled():
            reference = greedy_max_feasible_subset(instance, powers)
        np.testing.assert_array_equal(kernel, reference)

    @pytest.mark.parametrize("name", sorted(GRID))
    def test_peeling_bit_identical(self, name):
        instance = GRID[name]
        powers = SquareRootPower()(instance)
        kernel = peeling_schedule(instance, powers)
        with kernels_disabled():
            reference = peeling_schedule(instance, powers)
        np.testing.assert_array_equal(kernel.colors, reference.colors)

    @pytest.mark.parametrize("name", sorted(GRID))
    def test_sqrt_coloring_bit_identical(self, name):
        instance = GRID[name]
        kernel, _ = sqrt_coloring(instance, rng=42)
        with kernels_disabled():
            reference, _ = sqrt_coloring(instance, rng=42)
        np.testing.assert_array_equal(kernel.colors, reference.colors)

    @pytest.mark.parametrize("name", sorted(GRID))
    def test_local_search_matches_reference(self, name):
        instance = GRID[name]
        powers = SquareRootPower()(instance)
        for base in (
            first_fit_schedule(instance, powers),
            trivial_schedule(instance),
        ):
            kernel = improve_schedule(instance, base)
            with kernels_disabled():
                reference = improve_schedule(instance, base)
            np.testing.assert_array_equal(kernel.colors, reference.colors)

    def test_greedy_explicit_candidates_and_beta(self):
        instance = GRID["euclid-bid-n32"]
        powers = SquareRootPower()(instance)
        candidates = [3, 7, 0, 21, 14, 9, 30]
        kernel = greedy_max_feasible_subset(
            instance, powers, candidates=candidates, beta=instance.beta / 2
        )
        with kernels_disabled():
            reference = greedy_max_feasible_subset(
                instance, powers, candidates=candidates, beta=instance.beta / 2
            )
        np.testing.assert_array_equal(kernel, reference)

    def test_peel_duplicate_candidates_defers_to_reference(self):
        instance = GRID["euclid-bid-n8"]
        powers = SquareRootPower()(instance)
        context = get_context(instance, powers)
        candidates = [0, 1, 1, 4]
        kernel = peel_max_feasible_subset(context, candidates=candidates)
        reference = context.greedy_max_feasible_subset(candidates=candidates)
        np.testing.assert_array_equal(kernel, reference)

    def test_peel_empty_candidates(self):
        instance = GRID["euclid-bid-n8"]
        powers = SquareRootPower()(instance)
        context = get_context(instance, powers)
        result = peel_max_feasible_subset(context, candidates=[])
        assert result.size == 0

    def test_toggle_restores_state(self):
        assert kernels_enabled()
        with kernels_disabled():
            assert not kernels_enabled()
            with kernels_disabled():
                assert not kernels_enabled()
            assert not kernels_enabled()
        assert kernels_enabled()


# ----------------------------------------------------------------------
# Property tests: kernel state vs per-class accumulators
# ----------------------------------------------------------------------


class TestKernelStateProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        directed=st.booleans(),
        shared=st.booleans(),
    )
    def test_random_ops_match_accumulators(self, seed, directed, shared):
        """A random add/remove sequence leaves the kernel rows bitwise
        equal to per-class ClassAccumulators fed the same sequence."""
        rng = np.random.default_rng(seed)
        direction = Direction.DIRECTED if directed else Direction.BIDIRECTIONAL
        if shared:
            instance = _shared_node_instance(direction)
        else:
            instance = random_uniform_instance(10, rng=seed, direction=direction)
        powers = SquareRootPower()(instance)
        clear_context_cache()
        context = get_context(instance, powers)
        kernel = ScheduleKernel(context)
        accumulators = {}
        for _ in range(40):
            placed = np.flatnonzero(kernel.colors >= 0)
            if placed.size and rng.uniform() < 0.35:
                request = int(rng.choice(placed))
                color = int(kernel.colors[request])
                kernel.remove(request)
                accumulators[color].remove(request)
            else:
                unplaced = np.flatnonzero(kernel.colors < 0)
                if unplaced.size == 0:
                    continue
                request = int(rng.choice(unplaced))
                if kernel.num_classes == 0 or rng.uniform() < 0.3:
                    color = kernel.open_class()
                    accumulators[color] = context.accumulator()
                else:
                    color = int(rng.integers(kernel.num_classes))
                kernel.add(request, color)
                accumulators[color].add(request)
            everyone = np.arange(instance.n)
            for color, acc in accumulators.items():
                np.testing.assert_array_equal(
                    kernel._fin_u[color], acc._fin_u,
                    err_msg=f"fin_u diverged for class {color}",
                )
                np.testing.assert_array_equal(
                    kernel._ninf_u[color], acc._ninf_u
                )
                np.testing.assert_array_equal(
                    kernel._npos_u[color], acc._npos_u
                )
            # Resolved worst-endpoint interference agrees per request.
            for request in everyone:
                per_class = kernel.class_interference(int(request))
                for color, acc in accumulators.items():
                    assert per_class[color] == acc.interference([request])[0]

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_snapshot_restore_is_bitwise(self, seed):
        rng = np.random.default_rng(seed)
        instance = random_uniform_instance(9, rng=seed)
        powers = SquareRootPower()(instance)
        clear_context_cache()
        context = get_context(instance, powers)
        schedule = first_fit_schedule(instance, powers)
        kernel = ScheduleKernel.from_colors(context, schedule.colors)
        snap = kernel.snapshot()
        reference = {
            "colors": kernel.colors.copy(),
            "fin_u": kernel._fin_u.copy(),
            "ninf_u": kernel._ninf_u.copy(),
            "npos_u": kernel._npos_u.copy(),
            "own_fin_u": kernel._own_fin_u.copy(),
            "sizes": list(kernel._sizes),
        }
        # Random mutations: moves, removals, additions, new classes.
        for _ in range(12):
            placed = np.flatnonzero(kernel.colors >= 0)
            if placed.size == 0:
                break
            request = int(rng.choice(placed))
            if rng.uniform() < 0.5 and kernel.num_classes > 1:
                target = int(rng.integers(kernel.num_classes))
                if target != kernel.colors[request]:
                    kernel.move(request, target)
            else:
                kernel.remove(request)
        kernel.restore(snap)
        np.testing.assert_array_equal(kernel.colors, reference["colors"])
        np.testing.assert_array_equal(kernel._fin_u, reference["fin_u"])
        np.testing.assert_array_equal(kernel._ninf_u, reference["ninf_u"])
        np.testing.assert_array_equal(kernel._npos_u, reference["npos_u"])
        np.testing.assert_array_equal(
            kernel._own_fin_u, reference["own_fin_u"]
        )
        assert list(kernel._sizes) == reference["sizes"]

    def test_restore_survives_capacity_growth(self):
        """Regression: restore() must write into the kernel's *current*
        arrays — open_class() past capacity rebinds them, and a
        snapshot taken before the growth must still roll back exactly
        (including zeroing every row the rollback un-opens)."""
        instance = random_uniform_instance(8, rng=11)
        powers = SquareRootPower()(instance)
        context = get_context(instance, powers)
        kernel = ScheduleKernel(context, capacity=1)
        kernel.add(0, kernel.open_class())
        snap = kernel.snapshot()
        expected_fin = kernel._fin_u[:1].copy()
        # Force at least one growth past the snapshot.
        for request in range(1, 6):
            kernel.add(request, kernel.open_class())
        assert kernel._fin_u.shape[0] > 1
        kernel.restore(snap)
        assert kernel.num_classes == 1
        np.testing.assert_array_equal(kernel._fin_u[:1], expected_fin)
        # Every un-opened row must be exact zero again, so the next
        # open_class() hands out a clean class.
        assert np.all(kernel._fin_u[1:] == 0.0)
        assert np.all(kernel._npos_u[1:] == 0)
        # Scheduling decisions after the rollback match a fresh kernel
        # fed the same coloring.
        fresh = ScheduleKernel.from_colors(context, kernel.colors)
        limits = context.budgets() * (1.0 + 1e-9)
        for request in range(1, 8):
            assert kernel.first_fit_admit(request, limits) == (
                fresh.first_fit_admit(request, limits)
            )
        # The next open_class() hands out a genuinely clean class.
        color = kernel.open_class()
        assert kernel.class_interference(7)[color] == 0.0

    def test_add_remove_errors(self):
        instance = random_uniform_instance(6, rng=3)
        powers = SquareRootPower()(instance)
        context = get_context(instance, powers)
        kernel = ScheduleKernel(context)
        color = kernel.open_class()
        kernel.add(0, color)
        with pytest.raises(ValueError):
            kernel.add(0, color)
        with pytest.raises(ValueError):
            kernel.add(1, color + 5)
        with pytest.raises(ValueError):
            kernel.remove(2)
        kernel.remove(0)
        assert kernel.class_sizes[color] == 0
        with pytest.raises(ValueError):
            kernel.remove(0)

    def test_emptied_class_is_exactly_zero(self):
        instance = _shared_node_instance(Direction.BIDIRECTIONAL)
        powers = np.ones(instance.n)
        context = get_context(instance, powers)
        kernel = ScheduleKernel(context)
        color = kernel.open_class()
        kernel.add(0, color)
        kernel.add(2, color)
        kernel.remove(0)
        kernel.remove(2)
        assert np.all(kernel._fin_u[color] == 0.0)
        assert np.all(kernel._ninf_u[color] == 0)
        assert np.all(kernel._npos_u[color] == 0)

    def test_from_colors_matches_incremental_adds_membership(self):
        instance = random_uniform_instance(12, rng=5)
        powers = SquareRootPower()(instance)
        context = get_context(instance, powers)
        schedule = first_fit_schedule(instance, powers)
        kernel = ScheduleKernel.from_colors(context, schedule.colors)
        np.testing.assert_array_equal(kernel.colors, schedule.colors)
        for color in range(kernel.num_classes):
            assert kernel.class_sizes[color] == int(
                np.sum(schedule.colors == color)
            )
        # Own-class state is an exact copy of the class rows.
        idx = np.arange(instance.n)
        np.testing.assert_array_equal(
            kernel._own_fin_u, kernel._fin_u[schedule.colors, idx]
        )


# ----------------------------------------------------------------------
# Batched first-fit
# ----------------------------------------------------------------------


class TestBatchedFirstFit:
    @pytest.mark.parametrize(
        "direction", [Direction.DIRECTED, Direction.BIDIRECTIONAL]
    )
    def test_stacked_matches_per_pair(self, direction, dense_backend):
        pairs = []
        for b in range(5):
            instance = random_uniform_instance(24, rng=700 + b, direction=direction)
            pairs.append((instance, SquareRootPower()(instance)))
        batch = ContextBatch(pairs)
        assert batch.stacked
        schedules = batch.first_fit_schedules()
        for (instance, powers), schedule in zip(pairs, schedules):
            reference = first_fit_schedule(instance, powers)
            np.testing.assert_array_equal(schedule.colors, reference.colors)
            schedule.validate(instance)

    def test_stacked_with_shared_nodes(self):
        pairs = [
            (_shared_node_instance(Direction.BIDIRECTIONAL), np.ones(4)),
            (_shared_node_instance(Direction.BIDIRECTIONAL), np.full(4, 2.0)),
        ]
        batch = ContextBatch(pairs)
        schedules = batch.first_fit_schedules()
        for (instance, powers), schedule in zip(pairs, schedules):
            reference = first_fit_schedule(instance, powers)
            np.testing.assert_array_equal(schedule.colors, reference.colors)

    def test_ragged_fallback_matches_per_pair(self):
        pairs = []
        for b, n in enumerate((6, 12, 9)):
            instance = random_uniform_instance(n, rng=800 + b)
            pairs.append((instance, SquareRootPower()(instance)))
        batch = ContextBatch(pairs)
        assert not batch.stacked
        schedules = batch.first_fit_schedules()
        for (instance, powers), schedule in zip(pairs, schedules):
            reference = first_fit_schedule(instance, powers)
            np.testing.assert_array_equal(schedule.colors, reference.colors)

    def test_custom_orders_and_validation(self):
        pairs = []
        for b in range(3):
            instance = random_uniform_instance(10, rng=900 + b)
            pairs.append((instance, SquareRootPower()(instance)))
        batch = ContextBatch(pairs)
        orders = [np.arange(10)] * 3
        schedules = batch.first_fit_schedules(orders=orders)
        for (instance, powers), schedule in zip(pairs, schedules):
            reference = first_fit_schedule(instance, powers, order=np.arange(10))
            np.testing.assert_array_equal(schedule.colors, reference.colors)
        with pytest.raises(ValueError):
            batch.first_fit_schedules(orders=[np.arange(10)] * 2)

    def test_unscalable_noise_raises(self):
        metric = LineMetric([0.0, 10.0])
        instance = Instance.bidirectional(metric, [(0, 1)], noise=1e6)
        batch = ContextBatch([(instance, np.ones(1))])
        with pytest.raises(InvalidScheduleError, match="pair 0"):
            batch.first_fit_schedules()


# ----------------------------------------------------------------------
# Batched local search
# ----------------------------------------------------------------------


class TestStackedLocalSearch:
    """Lockstep local search must match per-instance
    :func:`improve_schedule` schedules exactly (acceptance criterion)."""

    def _stack_inputs(self, pairs):
        contexts = [get_context(*pair) for pair in pairs]
        gains_ut = np.stack([ctx.gains_ut for ctx in contexts])
        if all(ctx.gains_ut is ctx.gains_vt for ctx in contexts):
            gains_vt = gains_ut
        else:
            gains_vt = np.stack([ctx.gains_vt for ctx in contexts])
        signals = np.stack([ctx.signals for ctx in contexts])
        betas = np.asarray([ctx.beta for ctx in contexts])
        noises = np.asarray([ctx.noise for ctx in contexts])
        return gains_ut, gains_vt, signals, betas, noises

    @pytest.mark.parametrize(
        "direction", [Direction.DIRECTED, Direction.BIDIRECTIONAL]
    )
    def test_matches_improve_schedule(self, direction, dense_backend):
        pairs = []
        for b in range(6):
            instance = random_uniform_instance(
                40, rng=1000 + b, direction=direction
            )
            pairs.append((instance, SquareRootPower()(instance)))
        seeds = [first_fit_schedule(*pair) for pair in pairs]
        gains_ut, gains_vt, signals, betas, noises = self._stack_inputs(pairs)
        colors = stacked_local_search(
            gains_ut,
            gains_vt,
            np.stack([s.compacted().colors for s in seeds]),
            signals,
            betas,
            noises,
        )
        for index, ((instance, powers), seed) in enumerate(zip(pairs, seeds)):
            reference = improve_schedule(instance, seed)
            np.testing.assert_array_equal(
                colors[index], reference.colors, err_msg=f"pair {index}"
            )

    @pytest.mark.parametrize("max_rounds", [None, 1])
    def test_shared_node_instances(self, max_rounds, dense_backend):
        """Infinite-gain pairs exercise the masked (non-finite) state
        variant; decisions must still match the per-pair search."""
        pairs = [
            (_shared_node_instance(Direction.BIDIRECTIONAL), np.ones(4)),
            (_shared_node_instance(Direction.DIRECTED), np.full(4, 2.0)),
        ]
        for pair in pairs:
            seeds = [first_fit_schedule(*pair)]
            gains_ut, gains_vt, signals, betas, noises = self._stack_inputs(
                [pair]
            )
            colors = stacked_local_search(
                gains_ut,
                gains_vt,
                np.stack([s.compacted().colors for s in seeds]),
                signals,
                betas,
                noises,
                max_rounds=max_rounds,
            )
            reference = improve_schedule(
                pair[0], seeds[0], max_rounds=max_rounds
            )
            np.testing.assert_array_equal(colors[0], reference.colors)

    def test_input_colors_not_mutated(self, dense_backend):
        instance = random_uniform_instance(20, rng=1100)
        powers = SquareRootPower()(instance)
        seed = first_fit_schedule(instance, powers).compacted()
        gains_ut, gains_vt, signals, betas, noises = self._stack_inputs(
            [(instance, powers)]
        )
        colors_in = np.stack([seed.colors])
        before = colors_in.copy()
        stacked_local_search(
            gains_ut, gains_vt, colors_in, signals, betas, noises
        )
        np.testing.assert_array_equal(colors_in, before)

    def test_validation_errors(self, dense_backend):
        instance = random_uniform_instance(6, rng=1200)
        powers = SquareRootPower()(instance)
        gains_ut, gains_vt, signals, betas, noises = self._stack_inputs(
            [(instance, powers)]
        )
        good = np.zeros((1, 6), dtype=int)
        with pytest.raises(ValueError, match="no -1"):
            stacked_local_search(
                gains_ut,
                gains_vt,
                np.full((1, 6), -1),
                signals,
                betas,
                noises,
            )
        with pytest.raises(ValueError, match=r"\(B, n\)"):
            stacked_local_search(
                gains_ut, gains_vt, np.zeros(6, dtype=int), signals,
                betas, noises,
            )
        with pytest.raises(ValueError, match="gains"):
            stacked_local_search(
                gains_ut[:, :4, :4], gains_vt[:, :4, :4], good, signals,
                betas, noises,
            )
        with pytest.raises(ValueError, match="signals"):
            stacked_local_search(
                gains_ut, gains_vt, good, signals[:, :4], betas, noises
            )
        with pytest.raises(ValueError, match="betas/noises"):
            stacked_local_search(
                gains_ut, gains_vt, good, signals, np.ones(3), noises
            )

    def test_max_rounds_zero_is_identity(self, dense_backend):
        instance = random_uniform_instance(15, rng=1300)
        powers = SquareRootPower()(instance)
        seed = first_fit_schedule(instance, powers).compacted()
        gains_ut, gains_vt, signals, betas, noises = self._stack_inputs(
            [(instance, powers)]
        )
        colors = stacked_local_search(
            gains_ut,
            gains_vt,
            np.stack([seed.colors]),
            signals,
            betas,
            noises,
            max_rounds=0,
        )
        np.testing.assert_array_equal(colors[0], seed.colors)


# ----------------------------------------------------------------------
# Shared schedule constructor + context helpers
# ----------------------------------------------------------------------


class TestBuildSchedule:
    def test_coerces_and_validates(self):
        schedule = build_schedule([0.0, 1.0], np.asarray([1, 2]))
        assert schedule.colors.dtype == np.asarray([0]).dtype
        assert schedule.powers.dtype == float
        with pytest.raises(InvalidScheduleError):
            build_schedule([0, -1], np.ones(2))
        with pytest.raises(InvalidScheduleError):
            build_schedule([0, 1], np.zeros(2))

    def test_copy_semantics(self):
        powers = np.ones(3)
        copied = build_schedule([0, 1, 2], powers)
        assert copied.powers is not powers
        powers[0] = 5.0
        assert copied.powers[0] == 1.0
        aliased = build_schedule([0, 1, 2], np.ones(3), copy_powers=False)
        assert isinstance(aliased, Schedule)

    def test_kernel_path_schedules_are_writable(self):
        """Regression: the kernel paths hand build_schedule a read-only
        colors view; the emitted schedule must be mutable like the
        reference paths' output."""
        instance = random_uniform_instance(8, rng=4)
        powers = SquareRootPower()(instance)
        for schedule in (
            first_fit_schedule(instance, powers),
            improve_schedule(instance, first_fit_schedule(instance, powers)),
            ContextBatch([(instance, powers)]).first_fit_schedules()[0],
        ):
            assert schedule.colors.flags.writeable
            schedule.colors[0] = schedule.colors[0]  # must not raise


class TestContextKernelHelpers:
    def test_has_infinite_gains(self):
        instance = random_uniform_instance(6, rng=1)
        context = get_context(instance, SquareRootPower()(instance))
        assert not context.has_infinite_gains
        shared = _shared_node_instance(Direction.BIDIRECTIONAL)
        shared_context = get_context(shared, np.ones(shared.n))
        assert shared_context.has_infinite_gains

    def test_transposed_gains_match(self, dense_backend):
        for direction in (Direction.DIRECTED, Direction.BIDIRECTIONAL):
            instance = random_uniform_instance(8, rng=2, direction=direction)
            context = get_context(instance, SquareRootPower()(instance))
            np.testing.assert_array_equal(context.gains_ut, context.gains_u.T)
            np.testing.assert_array_equal(context.gains_vt, context.gains_v.T)
            assert context.gains_ut.flags["C_CONTIGUOUS"]
            if direction is Direction.DIRECTED:
                assert context.gains_vt is context.gains_ut
            with pytest.raises(ValueError):
                context.gains_ut[0, 0] = 1.0
