"""E3 — regenerate the Theorem 2 universality tables."""

from repro.experiments import run_sqrt_universal, run_theorem2_literal


def test_e03_sqrt_universal(benchmark, save_table):
    table = benchmark.pedantic(
        run_sqrt_universal,
        kwargs=dict(n_values=(10, 20, 40), trials=2, rng=1234),
        rounds=1,
        iterations=1,
    )
    save_table("e03_sqrt_universal", table)
    # Polylog regime: sqrt colors track the free-power optimum closely.
    for row in table.rows:
        assert row["ratio"] <= 2.0 + row["log2n"]


def test_e03b_theorem2_literal(benchmark, save_table):
    table = benchmark.pedantic(
        run_theorem2_literal,
        kwargs=dict(n_values=(10, 20, 40), trials=2, rng=4321),
        rounds=1,
        iterations=1,
    )
    save_table("e03b_theorem2_literal", table)
    for row in table.rows:
        assert row["colors_sqrt_firstfit"] <= row["polylog_envelope"]
