"""Conformance tests for the batched interference layer.

The contract of :mod:`repro.core.batch` is *exact* agreement with the
per-pair :class:`repro.core.context.InterferenceContext` queries, on
both the stacked (shared-shape) and the ragged fallback paths.
"""

import numpy as np
import pytest

from repro.core.batch import (
    ContextBatch,
    ContextPool,
    batch_margins,
    batch_validate_schedules,
    reset_batch_fallback_registry,
)
from repro.core.context import get_context
from repro.core.errors import InvalidScheduleError
from repro.core.instance import Instance
from repro.core.schedule import Schedule
from repro.geometry.line import LineMetric
from repro.instances.random_instances import random_uniform_instance
from repro.power.oblivious import SquareRootPower, UniformPower
from repro.scheduling.firstfit import first_fit_schedule


def _pairs(n_values, direction="bidirectional", seed=0):
    pairs = []
    for i, n in enumerate(n_values):
        instance = random_uniform_instance(
            n, direction=direction, rng=seed + i
        )
        powers = SquareRootPower()(instance)
        pairs.append((instance, powers))
    return pairs


class TestStacked:
    @pytest.mark.parametrize("direction", ["bidirectional", "directed"])
    def test_margins_match_per_context_exactly(self, direction, dense_backend):
        pairs = _pairs([12, 12, 12], direction=direction)
        batch = ContextBatch(pairs)
        assert batch.stacked
        margins = batch.margins()
        assert margins.shape == (3, 12)
        for row, (instance, powers) in zip(margins, pairs):
            expected = get_context(instance, powers).margins()
            np.testing.assert_array_equal(row, expected)

    def test_colored_margins_match(self):
        pairs = _pairs([10, 10])
        schedules = [
            first_fit_schedule(instance, powers) for instance, powers in pairs
        ]
        batch = ContextBatch(pairs)
        margins = batch.margins(colors=[s.colors for s in schedules])
        for row, (instance, powers), sched in zip(margins, pairs, schedules):
            expected = get_context(instance, powers).margins(colors=sched.colors)
            np.testing.assert_array_equal(row, expected)

    def test_interference_matches(self):
        pairs = _pairs([9, 9, 9, 9])
        batch = ContextBatch(pairs)
        interf = batch.interference()
        for row, (instance, powers) in zip(interf, pairs):
            expected = get_context(instance, powers).interference()
            np.testing.assert_array_equal(row, expected)

    def test_beta_noise_overrides(self):
        pairs = _pairs([8, 8])
        batch = ContextBatch(pairs)
        margins = batch.margins(beta=0.5, noise=0.1)
        for row, (instance, powers) in zip(margins, pairs):
            expected = get_context(instance, powers).margins(beta=0.5, noise=0.1)
            np.testing.assert_array_equal(row, expected)

    def test_mixed_powers_same_instance(self, dense_backend):
        instance = random_uniform_instance(10, rng=5)
        pairs = [
            (instance, UniformPower()(instance)),
            (instance, SquareRootPower()(instance)),
        ]
        batch = ContextBatch(pairs)
        assert batch.stacked
        margins = batch.margins()
        for row, (_, powers) in zip(margins, pairs):
            expected = get_context(instance, powers).margins()
            np.testing.assert_array_equal(row, expected)


class TestRagged:
    def test_falls_back_and_matches(self):
        pairs = _pairs([6, 9, 12])
        batch = ContextBatch(pairs)
        assert not batch.stacked
        margins = batch.margins()
        assert isinstance(margins, list)
        for row, (instance, powers) in zip(margins, pairs):
            expected = get_context(instance, powers).margins()
            np.testing.assert_array_equal(row, expected)

    def test_feasible_vector(self):
        pairs = _pairs([6, 9])
        schedules = [
            first_fit_schedule(instance, powers) for instance, powers in pairs
        ]
        batch = ContextBatch(pairs)
        feasible = batch.feasible(colors=[s.colors for s in schedules])
        assert feasible.shape == (2,)
        assert feasible.all()

    def test_mixed_direction_is_ragged(self):
        pairs = _pairs([8], direction="bidirectional") + _pairs(
            [8], direction="directed", seed=9
        )
        assert not ContextBatch(pairs).stacked


class TestValidation:
    def test_valid_schedules_pass(self):
        pairs = _pairs([10, 10, 10])
        instances = [instance for instance, _ in pairs]
        schedules = [
            first_fit_schedule(instance, powers) for instance, powers in pairs
        ]
        batch_validate_schedules(instances, schedules)

    def test_single_shared_instance(self):
        instance = random_uniform_instance(10, rng=3)
        schedules = [
            first_fit_schedule(instance, UniformPower()(instance)),
            first_fit_schedule(instance, SquareRootPower()(instance)),
        ]
        batch_validate_schedules(instance, schedules)

    def test_infeasible_schedule_raises_with_pair_index(self):
        pairs = _pairs([10, 10])
        instances = [instance for instance, _ in pairs]
        good = first_fit_schedule(*pairs[0])
        # Drown request 0: negligible power against nine loud one-color
        # interferers cannot meet its SINR constraint.
        bad_powers = np.full(10, 1e6)
        bad_powers[0] = 1e-9
        bad = Schedule(colors=np.zeros(10, dtype=int), powers=bad_powers)
        assert not bad.is_feasible(instances[1])
        with pytest.raises(InvalidScheduleError, match="pair 1"):
            batch_validate_schedules(instances, [good, bad])

    def test_matches_schedule_validate_decision(self):
        pairs = _pairs([8, 8, 8], seed=21)
        instances = [instance for instance, _ in pairs]
        schedules = [
            first_fit_schedule(instance, powers) for instance, powers in pairs
        ]
        batch = ContextBatch.for_schedules(instances, schedules)
        feasible = batch.feasible(colors=[s.colors for s in schedules])
        expected = [s.is_feasible(i) for s, i in zip(schedules, instances)]
        assert feasible.tolist() == expected

    def test_count_mismatch(self):
        instance = random_uniform_instance(6, rng=1)
        schedule = first_fit_schedule(instance, UniformPower()(instance))
        with pytest.raises(ValueError):
            ContextBatch.for_schedules([instance, instance], [schedule])


class TestPool:
    def test_reuses_contexts(self):
        pool = ContextPool()
        instance = random_uniform_instance(8, rng=2)
        powers = SquareRootPower()(instance)
        first = pool.get(instance, powers)
        second = pool.get(instance, powers)
        assert first is second
        assert len(pool) == 1

    def test_warm_builds_gains(self):
        pool = ContextPool()
        pairs = _pairs([7, 7])
        pool.warm(pairs)
        assert len(pool) == 2
        for instance, powers in pairs:
            context = pool.get(instance, powers)
            assert context._backend is not None

    def test_lru_bound(self):
        pool = ContextPool(max_contexts=2)
        pairs = _pairs([5, 5, 5], seed=30)
        for instance, powers in pairs:
            pool.get(instance, powers)
        assert len(pool) == 2

    def test_batch_shares_pool(self):
        pool = ContextPool()
        pairs = _pairs([6, 6], seed=40)
        batch_a = ContextBatch(pairs, pool=pool)
        batch_b = ContextBatch(pairs, pool=pool)
        for ctx_a, ctx_b in zip(batch_a.contexts, batch_b.contexts):
            assert ctx_a is ctx_b


class TestRaggedScheduling:
    """Satellite coverage: mixed-shape batches must route through the
    pooled per-pair fallback and schedule exactly like per-pair
    ``first_fit_schedule`` — including shared-node (infinite-gain)
    pairs."""

    def _shared_node_pair(self):
        metric = LineMetric([0.0, 1.0, 2.5, 4.5, 7.0])
        request_pairs = [(0, 1), (1, 2), (2, 3), (3, 4)]
        instance = Instance.bidirectional(metric, request_pairs)
        return instance, np.ones(instance.n)

    def test_mixed_shapes_route_through_pool(self):
        pool = ContextPool()
        pairs = _pairs([6, 11, 9], seed=70)
        batch = ContextBatch(pairs, pool=pool)
        assert not batch.stacked
        # Every context of the batch is pinned in (and served from)
        # the pool.
        assert len(pool) == len(pairs)
        for ctx, (instance, powers) in zip(batch.contexts, pairs):
            assert pool.get(instance, powers) is ctx

    def test_ragged_first_fit_matches_per_pair(self):
        pairs = _pairs([6, 11, 9], seed=71)
        batch = ContextBatch(pairs)
        assert not batch.stacked
        schedules = batch.first_fit_schedules()
        for (instance, powers), schedule in zip(pairs, schedules):
            reference = first_fit_schedule(instance, powers)
            np.testing.assert_array_equal(schedule.colors, reference.colors)
            np.testing.assert_array_equal(schedule.powers, reference.powers)
            schedule.validate(instance)

    def test_ragged_first_fit_with_shared_node_pair(self):
        shared_instance, shared_powers = self._shared_node_pair()
        pairs = _pairs([6, 9], seed=72) + [(shared_instance, shared_powers)]
        batch = ContextBatch(pairs)
        assert not batch.stacked  # 6 vs 9 vs 4 requests
        schedules = batch.first_fit_schedules()
        for (instance, powers), schedule in zip(pairs, schedules):
            reference = first_fit_schedule(instance, powers)
            np.testing.assert_array_equal(schedule.colors, reference.colors)
        # The shared-node chain must never share colors between
        # adjacent (infinite-gain) requests.
        shared_colors = schedules[-1].colors
        for i, j in ((0, 1), (1, 2), (2, 3)):
            assert shared_colors[i] != shared_colors[j]

    def test_ragged_validation_matches_per_pair(self):
        shared_instance, shared_powers = self._shared_node_pair()
        pairs = _pairs([6, 9], seed=73) + [(shared_instance, shared_powers)]
        batch = ContextBatch(pairs)
        schedules = batch.first_fit_schedules()
        batch.validate_schedules(schedules)  # must not raise
        # Corrupt the shared-node schedule: merging two adjacent
        # requests into one color must be rejected, naming the pair.
        bad = Schedule(
            colors=schedules[-1].colors.copy(), powers=shared_powers
        )
        bad.colors[1] = bad.colors[0]
        with pytest.raises(InvalidScheduleError, match="pair 2"):
            batch.validate_schedules(schedules[:-1] + [bad])


class TestConvenience:
    def test_batch_margins_helper(self, dense_backend):
        pairs = _pairs([7, 7], seed=50)
        margins = batch_margins(pairs)
        assert margins.shape == (2, 7)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            ContextBatch([])


class TestMixedColors:
    def test_stacked_batch_accepts_none_entries(self, dense_backend):
        pairs = _pairs([8, 8], seed=60)
        schedule = first_fit_schedule(*pairs[1])
        batch = ContextBatch(pairs)
        assert batch.stacked
        margins = batch.margins(colors=[None, schedule.colors])
        assert isinstance(margins, list)
        np.testing.assert_array_equal(
            margins[0], get_context(*pairs[0]).margins()
        )
        np.testing.assert_array_equal(
            margins[1], get_context(*pairs[1]).margins(colors=schedule.colors)
        )
        feasible = batch.feasible(colors=[None, schedule.colors])
        assert feasible.shape == (2,)


class TestFallbackInfo:
    """The pooled-path switch is structured (BatchFallbackInfo), not
    silent (satellite of the unified-API PR)."""

    def test_stacked_batch_has_no_fallback(self, dense_backend):
        batch = ContextBatch(_pairs([10, 10]))
        assert batch.stacked
        assert batch.fallback is None

    def test_ragged_sizes_are_diagnosed(self, dense_backend):
        batch = ContextBatch(_pairs([10, 6]))
        assert not batch.stacked
        assert batch.fallback is not None
        assert batch.fallback.reasons == ("ragged_n",)
        assert batch.fallback.pairs == 2
        assert "pooled" in batch.fallback.detail

    def test_mixed_direction_is_diagnosed(self, dense_backend):
        pairs = _pairs([8], direction="bidirectional") + _pairs(
            [8], direction="directed", seed=5
        )
        batch = ContextBatch(pairs)
        assert batch.fallback.reasons == ("mixed_direction",)

    def test_lossy_backend_is_diagnosed_and_logged(self, caplog):
        import logging

        reset_batch_fallback_registry()
        with caplog.at_level(logging.WARNING, logger="repro.core.batch"):
            batch = ContextBatch(
                _pairs([8, 8]), backend="sparse", sparse_epsilon=1e-3
            )
        assert batch.fallback is not None
        assert batch.fallback.reasons == ("lossy_backend",)
        assert any(
            "lossy_backend" in record.message for record in caplog.records
        )

    def test_lossless_sparse_batch_stacks(self):
        batch = ContextBatch(
            _pairs([8, 8]), backend="sparse", sparse_epsilon=0.0
        )
        assert batch.stacked
        assert batch.fallback is None

    def test_array_backend_batch_stacks(self):
        batch = ContextBatch(_pairs([8, 8]), backend="array")
        assert batch.stacked
        assert batch.fallback is None

    def test_lossy_warning_fires_once_per_call_site(self, caplog):
        """Satellite regression: the lossy-backend fallback WARNING is
        keyed by call site — repeats from the same line drop to DEBUG."""
        import logging

        reset_batch_fallback_registry()
        pairs = _pairs([8, 8])
        with caplog.at_level(logging.DEBUG, logger="repro.core.batch"):
            for _ in range(3):
                ContextBatch(pairs, backend="sparse", sparse_epsilon=1e-3)
        records = [r for r in caplog.records if "lossy_backend" in r.message]
        assert [r.levelno for r in records] == [
            logging.WARNING,
            logging.DEBUG,
            logging.DEBUG,
        ]
        # A different call site warns again.
        caplog.clear()
        with caplog.at_level(logging.DEBUG, logger="repro.core.batch"):
            ContextBatch(pairs, backend="sparse", sparse_epsilon=1e-3)
        records = [r for r in caplog.records if "lossy_backend" in r.message]
        assert [r.levelno for r in records] == [logging.WARNING]
        reset_batch_fallback_registry()

    def test_multiple_reasons_compose(self, dense_backend):
        pairs = _pairs([8]) + _pairs([6], direction="directed", seed=9)
        batch = ContextBatch(pairs)
        assert set(batch.fallback.reasons) == {"ragged_n", "mixed_direction"}

    def test_ragged_shape_logs_at_debug_only(self, caplog, dense_backend):
        import logging

        with caplog.at_level(logging.DEBUG, logger="repro.core.batch"):
            ContextBatch(_pairs([10, 6]))
        records = [
            r for r in caplog.records if "ContextBatch" in r.message
        ]
        assert records and all(
            r.levelno == logging.DEBUG for r in records
        )

    def test_backend_preference_threads_to_contexts(self):
        batch = ContextBatch(_pairs([8]), backend="sparse", sparse_epsilon=0.0)
        assert batch.contexts[0].backend_name == "sparse"


class TestBlockStacking:
    """The (B, n, n) stack is assembled through backend block
    primitives, so non-dense lossless backends stack bit-identically to
    the dense route (tentpole: close the dense-only batching gap)."""

    @pytest.mark.parametrize("direction", ["bidirectional", "directed"])
    @pytest.mark.parametrize(
        "backend,epsilon", [("sparse", 0.0), ("array", None)]
    )
    def test_stacked_queries_match_dense(self, direction, backend, epsilon):
        pairs = _pairs([640, 640], direction=direction, seed=80)
        dense = ContextBatch(pairs)
        other = ContextBatch(pairs, backend=backend, sparse_epsilon=epsilon)
        assert dense.stacked and other.stacked
        np.testing.assert_array_equal(other.margins(), dense.margins())
        schedules = dense.first_fit_schedules()
        rerun = other.first_fit_schedules()
        for a, b in zip(schedules, rerun):
            np.testing.assert_array_equal(a.colors, b.colors)

    @pytest.mark.parametrize(
        "backend,epsilon", [("sparse", 0.0), ("array", None)]
    )
    def test_stack_assembly_never_densifies(
        self, backend, epsilon, monkeypatch
    ):
        from repro.core import gains as gains_mod

        def boom(self, *args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("stacking materialized a dense matrix")

        cls = (
            gains_mod.SparseBackend
            if backend == "sparse"
            else gains_mod.ArrayBackend
        )
        for name in ("dense_u", "dense_v", "dense_ut", "dense_vt"):
            monkeypatch.setattr(cls, name, boom)
        batch = ContextBatch(
            _pairs([12, 12], seed=81),
            backend=backend,
            sparse_epsilon=epsilon,
        )
        assert batch.stacked
        batch.margins()
        batch.first_fit_schedules()


class TestLocalSearchSchedules:
    """Batched local search conforms exactly to the per-pair
    ``improve_schedule`` reference on every lossless backend and on the
    ragged fallback."""

    @pytest.mark.parametrize("direction", ["bidirectional", "directed"])
    @pytest.mark.parametrize(
        "backend,epsilon",
        [("dense", None), ("sparse", 0.0), ("array", None)],
    )
    def test_matches_improve_schedule(self, direction, backend, epsilon):
        from repro.scheduling.local_search import improve_schedule

        pairs = _pairs([30, 30, 30], direction=direction, seed=90)
        batch = ContextBatch(pairs, backend=backend, sparse_epsilon=epsilon)
        assert batch.stacked
        seeds = batch.first_fit_schedules()
        improved = batch.local_search_schedules(seeds)
        for (instance, powers), seed, result in zip(pairs, seeds, improved):
            reference = improve_schedule(instance, seed)
            np.testing.assert_array_equal(result.colors, reference.colors)
            result.validate(instance)

    def test_ragged_fallback_matches(self):
        from repro.scheduling.local_search import improve_schedule

        pairs = _pairs([10, 16], seed=91)
        batch = ContextBatch(pairs)
        assert not batch.stacked
        seeds = batch.first_fit_schedules()
        improved = batch.local_search_schedules(seeds)
        for (instance, powers), seed, result in zip(pairs, seeds, improved):
            reference = improve_schedule(instance, seed)
            np.testing.assert_array_equal(result.colors, reference.colors)

    def test_max_rounds_threads_through(self):
        pairs = _pairs([20, 20], seed=92)
        batch = ContextBatch(pairs)
        seeds = batch.first_fit_schedules()
        capped = batch.local_search_schedules(seeds, max_rounds=0)
        for seed, result in zip(seeds, capped):
            np.testing.assert_array_equal(
                result.colors, seed.compacted().colors
            )

    def test_schedule_count_mismatch(self):
        pairs = _pairs([8, 8], seed=93)
        batch = ContextBatch(pairs)
        seeds = batch.first_fit_schedules()
        with pytest.raises(InvalidScheduleError, match="1 schedules"):
            batch.local_search_schedules(seeds[:1])

    def test_foreign_powers_rejected(self):
        pairs = _pairs([8, 8], seed=94)
        batch = ContextBatch(pairs)
        seeds = batch.first_fit_schedules()
        foreign = Schedule(
            colors=seeds[1].colors.copy(), powers=seeds[1].powers * 2.0
        )
        with pytest.raises(InvalidScheduleError, match="powers differ"):
            batch.local_search_schedules([seeds[0], foreign])
