"""E9 — §6: performance vs energy efficiency.

"In comparison to the linear power assignment, the square root power
assignment uses increased power levels for pairs of nodes of small
distance with the objective to increase the performance."

The experiment schedules the same instances under uniform, linear and
square-root assignments, reporting colors (performance) and total
transmit energy, normalised so every assignment gives the *longest*
link the same power (making energies comparable).  Expected shape: on
nesting-heavy instances, sqrt trades extra energy for far fewer
colors than linear; uniform burns the most energy on short links for
the least performance.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.instance import Instance
from repro.instances.nested import nested_instance
from repro.instances.random_instances import clustered_instance
from repro.power.base import ObliviousPowerAssignment
from repro.power.oblivious import LinearPower, SquareRootPower, UniformPower
from repro.runner.spec import ExperimentSpec
from repro.scheduling.registry import run_algorithm
from repro.util.rng import RngLike, ensure_rng, spawn_rngs
from repro.util.tables import Table


def normalised_powers(
    assignment: ObliviousPowerAssignment, instance: Instance
) -> np.ndarray:
    """Powers scaled so the longest link transmits at power 1."""
    powers = assignment(instance)
    longest = int(np.argmax(instance.link_losses))
    return powers / powers[longest]


def run_energy_tradeoff(
    n: int = 25,
    trials: int = 3,
    rng: RngLike = 41,
) -> Table:
    """Measure the colors/energy trade-off across assignments."""
    rng = ensure_rng(rng)
    assignments: Tuple[ObliviousPowerAssignment, ...] = (
        UniformPower(),
        LinearPower(),
        SquareRootPower(),
    )
    table = Table(
        title="E9: §6 — performance vs energy",
        columns=["instance", "assignment", "colors", "total_energy", "energy_per_color"],
    )
    table.add_note(
        "powers normalised so the longest link uses power 1; "
        "energy = sum of powers (one slot per request)"
    )
    children = spawn_rngs(rng, trials)
    scenarios = [("nested", nested_instance(n, beta=0.5))]
    for k, child in enumerate(children):
        scenarios.append((f"clustered-{k}", clustered_instance(n, beta=0.5, rng=child)))
    for name, instance in scenarios:
        for assignment in assignments:
            powers = normalised_powers(assignment, instance)
            schedule = run_algorithm(
                "first_fit", instance, powers=powers
            ).schedule
            schedule.validate(instance)
            energy = float(np.sum(powers))
            table.add_row(
                instance=name,
                assignment=assignment.name,
                colors=schedule.num_colors,
                total_energy=energy,
                energy_per_color=energy / schedule.num_colors,
            )
    return table
SPEC = ExperimentSpec(
    id="e9",
    title="Performance vs energy",
    runner="repro.experiments.e09_energy_tradeoff:run_energy_tradeoff",
    full={"n": 25, "trials": 3},
    fast={"n": 10, "trials": 1},
    seed=41,
    shard_by=None,
    metric="energy_per_color",
    algorithms=("first_fit",),
)
