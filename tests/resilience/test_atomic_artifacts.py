"""Atomic artifact/checkpoint writes and artifacts-dir fail-fast.

The durability contract: a reader never observes a truncated or
half-serialized ``BENCH_*.json`` / checkpoint — every file is either
the previous complete version or the new complete version, even if the
writer is SIGKILLed mid-write.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import textwrap
import time

import pytest

import repro
from repro.runner.artifacts import (
    artifact_path,
    atomic_write_text,
    validate_artifacts_dir,
)

#: Absolute src/ dir, so subprocesses import the same repro tree no
#: matter what cwd pytest runs from.
SRC_DIR = str(pathlib.Path(repro.__file__).resolve().parents[1])


class TestAtomicWriteText:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(target, '{"a": 1}\n')
        assert target.read_text() == '{"a": 1}\n'

    def test_replaces_existing_file(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_failed_replace_preserves_old_content(self, tmp_path, monkeypatch):
        target = tmp_path / "out.json"
        atomic_write_text(target, "old")

        def broken_replace(src, dst):
            raise OSError("disk detached")

        monkeypatch.setattr(os, "replace", broken_replace)
        with pytest.raises(OSError, match="disk detached"):
            atomic_write_text(target, "new")
        monkeypatch.undo()
        # The original survives and the temp file was cleaned up.
        assert target.read_text() == "old"
        assert list(tmp_path.iterdir()) == [target]

    def test_no_temp_files_left_on_success(self, tmp_path):
        target = tmp_path / "out.json"
        for i in range(5):
            atomic_write_text(target, f"gen {i}")
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]


class TestKillMidWrite:
    def test_sigkill_never_leaves_partial_json(self, tmp_path):
        """Regression: SIGKILL a process hammering artifact writes and
        assert every surviving ``*.json`` is complete, parseable JSON.

        Before the atomic-write path, a kill between ``open`` and the
        final flush left a truncated file that poisoned the next
        resume.
        """
        script = textwrap.dedent(
            """
            import json, pathlib, sys
            from repro.runner.artifacts import atomic_write_text

            out = pathlib.Path(sys.argv[1])
            # A payload big enough that a non-atomic write would very
            # likely be caught half-flushed.
            body = {"rows": [{"i": i, "pad": "x" * 256} for i in range(512)]}
            generation = 0
            print("ready", flush=True)
            while True:
                generation += 1
                body["generation"] = generation
                for k in range(4):
                    atomic_write_text(
                        out / f"BENCH_e{k}.json",
                        json.dumps(body) + "\\n",
                    )
            """
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(tmp_path)],
            stdout=subprocess.PIPE,
            env={**os.environ, "PYTHONPATH": SRC_DIR},
            text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "ready"
            # Let it write for a moment, then kill it mid-flight.
            time.sleep(0.5)
        finally:
            proc.kill()
        proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL

        written = sorted(tmp_path.glob("BENCH_*.json"))
        assert written, "the writer never produced an artifact"
        for path in written:
            payload = json.loads(path.read_text())  # must not raise
            assert payload["generation"] >= 1
        # Stray .tmp files are permitted (the kill may land mid-write);
        # what matters is that no *final* artifact is ever partial.


class TestValidateArtifactsDir:
    def test_accepts_and_creates_directory(self, tmp_path):
        target = tmp_path / "a" / "b"
        assert validate_artifacts_dir(target) == target
        assert target.is_dir()
        assert list(target.iterdir()) == []  # probe cleaned up

    def test_rejects_file_path(self, tmp_path):
        target = tmp_path / "occupied"
        target.write_text("i am a file")
        with pytest.raises(ValueError, match="not a writable directory"):
            validate_artifacts_dir(target)

    def test_rejects_unwritable_directory(self, tmp_path):
        if os.geteuid() == 0:
            pytest.skip("root ignores permission bits")
        target = tmp_path / "readonly"
        target.mkdir()
        target.chmod(0o500)
        try:
            with pytest.raises(ValueError, match="not a writable directory"):
                validate_artifacts_dir(target)
        finally:
            target.chmod(0o700)

    def test_run_experiments_fails_before_any_shard(self, tmp_path, monkeypatch):
        """Satellite contract: a bad artifacts_dir aborts before any
        shard is submitted or executed."""
        from repro.runner import orchestrator

        bad = tmp_path / "occupied"
        bad.write_text("file, not dir")

        def exploding_run_shard(*args, **kwargs):
            raise AssertionError("a shard ran despite a bad artifacts_dir")

        monkeypatch.setattr(orchestrator, "run_shard", exploding_run_shard)
        with pytest.raises(ValueError, match="not a writable directory"):
            orchestrator.run_experiments(
                ["e1"], fast=True, jobs=1, artifacts_dir=str(bad)
            )

    def test_artifact_written_through_atomic_path(self, tmp_path):
        from repro.runner import run_experiments, read_artifact

        run_experiments(["e1"], fast=True, jobs=1, artifacts_dir=str(tmp_path))
        path = artifact_path(tmp_path, "e1")
        assert path.is_file()
        assert read_artifact(path).experiment == "e1"
        assert not list(tmp_path.glob("*.tmp"))
