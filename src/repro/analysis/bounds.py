"""Certified lower bounds on the optimal number of colors.

Approximation experiments need a handle on OPT.  Two sound bounds are
implemented:

* **Node multiplicity** — requests sharing an endpoint can never share
  a color (shared nodes give zero loss, i.e. infinite interference),
  so the maximum number of requests incident to one node lower-bounds
  OPT.
* **Pairwise conflicts** — two requests that are mutually infeasible
  under *every* power assignment (power-control growth factor >= 1 for
  the pair) must receive distinct colors; any clique in this conflict
  graph lower-bounds OPT.  A greedy clique heuristic provides the
  certificate.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx
import numpy as np

from repro.analysis.power_control import free_power_spectral_radius
from repro.core.instance import Instance


def node_multiplicity_lower_bound(instance: Instance) -> int:
    """Max number of requests sharing a node — a sound OPT lower bound."""
    endpoints = np.concatenate([instance.senders, instance.receivers])
    _, counts = np.unique(endpoints, return_counts=True)
    # A node used by k requests forces k distinct colors.
    return int(np.max(counts))


def conflict_graph(instance: Instance, beta: Optional[float] = None) -> nx.Graph:
    """Graph on requests with an edge where *no* power assignment lets
    the two requests share a color."""
    graph = nx.Graph()
    graph.add_nodes_from(range(instance.n))
    for i in range(instance.n):
        for j in range(i + 1, instance.n):
            rho = free_power_spectral_radius(instance, [i, j], beta=beta)
            if not rho < 1.0:
                graph.add_edge(i, j)
    return graph


def clique_lower_bound(instance: Instance, beta: Optional[float] = None) -> int:
    """Size of a greedily grown clique in the conflict graph.

    Every member of a conflict clique needs its own color, so the
    clique size is a certified lower bound on OPT.
    """
    graph = conflict_graph(instance, beta=beta)
    if graph.number_of_edges() == 0:
        return 1
    # Greedy: seed with the max-degree vertex, extend by common neighbours.
    best = 1
    degrees = sorted(graph.degree, key=lambda kv: -kv[1])
    for seed, _ in degrees[: min(10, len(degrees))]:
        clique = {seed}
        candidates = set(graph.neighbors(seed))
        while candidates:
            vertex = max(candidates, key=lambda v: graph.degree(v))
            clique.add(vertex)
            candidates &= set(graph.neighbors(vertex))
        best = max(best, len(clique))
    return best


def opt_color_lower_bound(instance: Instance, beta: Optional[float] = None) -> int:
    """Best available certified lower bound on the optimal color count."""
    return max(
        node_multiplicity_lower_bound(instance),
        clique_lower_bound(instance, beta=beta),
    )
