"""Environment-variable validation at load time (satellite).

Malformed ``REPRO_BACKEND`` / ``REPRO_CONTEXT_CACHE`` /
``REPRO_SPARSE_EPSILON`` / ``REPRO_ARRAY_NAMESPACE`` values must fail
with messages naming the variable and the accepted values — these
parsers run at module import, so a typo surfaces immediately instead of
deep inside ``get_context``.
"""

import pytest

from repro.core.context import (
    DEFAULT_CONTEXT_CACHE_LIMIT,
    _env_cache_limit,
)
from repro.core.gains import (
    _env_array_namespace,
    _env_backend,
    _env_epsilon,
)


class TestContextCacheEnv:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_CONTEXT_CACHE", raising=False)
        assert _env_cache_limit() == DEFAULT_CONTEXT_CACHE_LIMIT

    def test_blank_is_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONTEXT_CACHE", "   ")
        assert _env_cache_limit() == DEFAULT_CONTEXT_CACHE_LIMIT

    def test_valid_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONTEXT_CACHE", "7")
        assert _env_cache_limit() == 7

    def test_non_integer_names_variable_and_form(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONTEXT_CACHE", "lots")
        with pytest.raises(ValueError, match="REPRO_CONTEXT_CACHE") as err:
            _env_cache_limit()
        assert "positive integer" in str(err.value)
        assert "'lots'" in str(err.value)

    def test_zero_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONTEXT_CACHE", "0")
        with pytest.raises(ValueError, match=">= 1"):
            _env_cache_limit()


class TestBackendEnv:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert _env_backend() == "dense"

    def test_case_and_whitespace_normalized(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "  Sparse ")
        assert _env_backend() == "sparse"

    def test_array_backend_accepted(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "array")
        assert _env_backend() == "array"

    def test_unknown_backend_lists_allowed_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "gpu")
        with pytest.raises(ValueError, match="REPRO_BACKEND") as err:
            _env_backend()
        assert "dense" in str(err.value) and "sparse" in str(err.value)
        assert "array" in str(err.value)


class TestArrayNamespaceEnv:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_ARRAY_NAMESPACE", raising=False)
        assert _env_array_namespace() == "numpy"

    def test_blank_is_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARRAY_NAMESPACE", "   ")
        assert _env_array_namespace() == "numpy"

    def test_case_and_whitespace_normalized(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARRAY_NAMESPACE", "  NumPy ")
        assert _env_array_namespace() == "numpy"

    def test_known_namespaces_accepted(self, monkeypatch):
        # Configuration never imports the framework, so names whose
        # packages are absent still validate.
        for name in ("array_api_strict", "torch", "cupy"):
            monkeypatch.setenv("REPRO_ARRAY_NAMESPACE", name)
            assert _env_array_namespace() == name

    def test_unknown_namespace_names_variable_and_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARRAY_NAMESPACE", "jax")
        with pytest.raises(ValueError, match="REPRO_ARRAY_NAMESPACE") as err:
            _env_array_namespace()
        message = str(err.value)
        assert "numpy" in message and "torch" in message
        assert "'jax'" in message


class TestSparseEpsilonEnv:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPARSE_EPSILON", raising=False)
        assert _env_epsilon() == 0.0

    def test_valid_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPARSE_EPSILON", "0.25")
        assert _env_epsilon() == 0.25

    def test_non_float_names_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPARSE_EPSILON", "tiny")
        with pytest.raises(ValueError, match="REPRO_SPARSE_EPSILON") as err:
            _env_epsilon()
        assert "[0, 1)" in str(err.value)

    def test_out_of_range_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPARSE_EPSILON", "1.0")
        with pytest.raises(ValueError, match=r"\[0, 1\)"):
            _env_epsilon()
