"""Tests for the multi-worker random-access protocol
(:func:`repro.distributed.distributed_protocol`)."""

import numpy as np
import pytest

from repro.core.context import clear_context_cache
from repro.distributed import distributed_protocol
from repro.distributed.protocol import ProtocolNodeBlock
from repro.instances.random_instances import random_uniform_instance


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_context_cache()
    yield
    clear_context_cache()


def _instance(n=16, seed=5):
    return random_uniform_instance(n, rng=seed, direction="directed")


class TestProtocolSchedule:
    def test_valid_complete_schedule(self):
        instance = _instance()
        schedule, stats = distributed_protocol(
            instance, workers=2, executor="serial", seed=7
        )
        schedule.validate(instance)
        assert schedule.colors.size == instance.n
        assert (schedule.colors >= 0).all()
        assert stats.slots >= schedule.num_colors
        assert stats.attempts_per_success >= 1.0

    def test_deterministic_in_seed(self):
        instance = _instance()
        a, stats_a = distributed_protocol(
            instance, workers=2, executor="serial", seed=123
        )
        b, stats_b = distributed_protocol(
            instance, workers=2, executor="serial", seed=123
        )
        np.testing.assert_array_equal(a.colors, b.colors)
        assert stats_a.slots == stats_b.slots

    def test_worker_count_changes_streams_not_validity(self):
        # Different W means different per-block RNG streams — the
        # schedule may differ but must stay valid and complete.
        instance = _instance()
        for workers in (1, 2, 4):
            schedule, _ = distributed_protocol(
                instance, workers=workers, executor="serial", seed=11
            )
            schedule.validate(instance)

    def test_parameter_validation(self):
        instance = _instance(n=6)
        with pytest.raises(ValueError):
            distributed_protocol(instance, p0=0.0)
        with pytest.raises(ValueError):
            distributed_protocol(instance, backoff=1.5)
        with pytest.raises(ValueError):
            distributed_protocol(instance, workers=0)


class TestProtocolNodeBlock:
    def test_draw_and_resolve_stay_in_range(self):
        block = ProtocolNodeBlock(
            lo=4, hi=9, p0=1.0, backoff=0.5, p_min=0.01,
            policy="backoff", seed=3,
        )
        drawn = block.draw()
        assert ((drawn >= 4) & (drawn < 9)).all()
        remaining = block.resolve(
            winners=np.array([4, 5]), losers=np.array([6, 7, 8])
        )
        assert remaining == 3
        # Winners never transmit again.
        assert not np.isin([4, 5], block.draw()).any()

    def test_backoff_respects_floor(self):
        block = ProtocolNodeBlock(
            lo=0, hi=3, p0=0.5, backoff=0.5, p_min=0.25,
            policy="backoff", seed=1,
        )
        losers = np.arange(3)
        for _ in range(8):
            block.resolve(winners=np.empty(0, dtype=int), losers=losers)
        assert (block.probability >= 0.25).all()
