"""Tests for gain rescaling (Props 3-4) and the protocol-model baseline."""

import numpy as np
import pytest

from repro.core.feasibility import is_feasible_subset
from repro.core.instance import Instance
from repro.geometry.line import LineMetric
from repro.instances.random_instances import clustered_instance, random_uniform_instance
from repro.power.oblivious import LinearPower, SquareRootPower
from repro.scheduling.gain_scaling import (
    densest_subset_at_gain,
    rescale_gain_coloring,
)
from repro.scheduling.protocol_model import (
    protocol_conflict_graph,
    protocol_schedule,
)


class TestGainScaling:
    def test_rescaled_classes_satisfy_strict_gain(self, rng):
        inst = clustered_instance(20, beta=0.5, rng=rng)
        powers = SquareRootPower()(inst)
        gamma_target = 4.0
        schedule = rescale_gain_coloring(inst, powers, gamma_target)
        schedule.validate(inst, beta=gamma_target)

    def test_blowup_is_bounded_by_proposition4(self, rng):
        # Colors at gamma' vs colors at gamma: within s * log n plus
        # slack, where s = gamma'/gamma.
        inst = random_uniform_instance(30, beta=0.5, rng=rng)
        powers = SquareRootPower()(inst)
        base = rescale_gain_coloring(inst, powers, 0.5)
        strict = rescale_gain_coloring(inst, powers, 4.0)
        s = 4.0 / 0.5
        assert strict.num_colors <= base.num_colors * s * np.log2(30) + 1

    def test_densest_subset_feasible_at_gain(self, rng):
        inst = clustered_instance(15, beta=0.5, rng=rng)
        powers = SquareRootPower()(inst)
        subset, schedule = densest_subset_at_gain(inst, powers, 2.0)
        assert subset.size >= 1
        assert is_feasible_subset(inst, powers, subset, beta=2.0)

    def test_invalid_gamma(self, small_random_instance):
        powers = SquareRootPower()(small_random_instance)
        with pytest.raises(ValueError):
            rescale_gain_coloring(small_random_instance, powers, 0.0)


class TestProtocolModel:
    def test_conflict_graph_close_links(self):
        metric = LineMetric([0.0, 1.0, 1.5, 2.5, 100.0, 101.0])
        inst = Instance.bidirectional(metric, [(0, 1), (2, 3), (4, 5)])
        graph = protocol_conflict_graph(inst, range_factor=2.0)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 2)

    def test_larger_range_more_conflicts(self, rng):
        inst = random_uniform_instance(15, rng=rng)
        small = protocol_conflict_graph(inst, range_factor=0.5)
        large = protocol_conflict_graph(inst, range_factor=5.0)
        assert large.number_of_edges() >= small.number_of_edges()

    def test_repaired_schedule_is_feasible(self, rng):
        inst = clustered_instance(15, beta=0.5, rng=rng)
        powers = LinearPower()(inst)
        schedule, raw = protocol_schedule(inst, powers)
        schedule.validate(inst)
        assert raw >= 1
        assert schedule.num_colors >= raw or raw >= 1

    def test_unrepaired_returns_raw_coloring(self, rng):
        inst = random_uniform_instance(10, rng=rng)
        powers = LinearPower()(inst)
        schedule, raw = protocol_schedule(inst, powers, repair=False)
        assert schedule.num_colors == raw

    def test_invalid_range_factor(self, small_random_instance):
        with pytest.raises(ValueError):
            protocol_conflict_graph(small_random_instance, range_factor=0.0)
