"""Shared interference engine: cached gain matrices + incremental classes.

Every algorithm in this library reduces to one primitive — querying
SINR interference under a fixed power vector.  Before this module each
caller rebuilt the O(n^2) gain matrices (and re-exponentiated the full
metric loss matrix) on every query; :class:`InterferenceContext` builds
them once per ``(instance, powers)`` and answers all subsequent queries
from the cache.

Two levels of API
-----------------

* **Wrappers** (:func:`repro.core.feasibility.sinr_margins`,
  :func:`repro.analysis.capacity.greedy_max_feasible_subset`, the
  schedulers in :mod:`repro.scheduling`): unchanged public signatures.
  They transparently fetch a cached context via :func:`get_context`.
  Use these for one-off queries and everyday code — caching makes
  repeated calls with the same ``(instance, powers)`` cheap
  automatically.

* **The context itself**: fetch one with
  ``ctx = get_context(instance, powers)`` when you are writing a hot
  loop that issues many interference queries (a scheduler, a search, a
  simulation).  Methods — :meth:`~InterferenceContext.margins`,
  :meth:`~InterferenceContext.feasible_mask`,
  :meth:`~InterferenceContext.budget_slack`,
  :meth:`~InterferenceContext.greedy_max_feasible_subset` — are
  vectorized on the cached matrices and skip all per-call rebuilding.
  For sets that grow and shrink one request at a time (first-fit
  classes, local search, protocol simulation), obtain a
  :class:`ClassAccumulator` via :meth:`InterferenceContext.accumulator`:
  it maintains the interference **every request of the instance** would
  suffer from the current member set, so membership changes cost O(n)
  and feasibility checks cost O(k) — no O(k^2) recompute.

Numerical contract
------------------

The context reproduces the from-scratch path bit-for-bit: gain-matrix
entries are computed by the same :mod:`repro.core.interference`
builders, and subset/color reductions use the same operation order, so
margins (and therefore every feasibility decision and every schedule)
are identical with the engine on or off.  The accumulator is the one
exception — it maintains sums incrementally, so its values agree with
:func:`~repro.core.feasibility.sinr_margins` only up to floating-point
accumulation order (tested to 1e-9 relative).

Shared-node pairs (infinite gain) are tracked exactly: the accumulator
counts infinite contributions separately from the finite sum, so
removing a shared-node member restores the finite interference instead
of leaving ``inf - inf = nan`` behind.  Zero interference is exact
too — the accumulator counts positive contributors per request, so a
request whose interferers all left reports margin ``inf`` again rather
than a cancellation residue.

Disabling the engine
--------------------

``with engine_disabled(): ...`` (or ``set_engine_enabled(False)``)
routes every wrapper back to the pre-engine from-scratch code path.
The conformance suite runs every scheduler both ways; the benchmark
(``benchmarks/bench_context_engine.py``) uses it to time the legacy
path honestly.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import InvalidScheduleError
from repro.core.instance import Direction, Instance
from repro.core.interference import (
    _class_sum,
    bidirectional_gain_matrices,
    directed_gain_matrix,
)
from repro.core.interference import interference as _interference_from_scratch

#: Default relative tolerance for feasibility comparisons (kept in sync
#: with :data:`repro.core.feasibility.DEFAULT_RTOL` without importing it,
#: to avoid a circular import).
DEFAULT_RTOL = 1e-9

#: Cached contexts kept per instance (LRU on the power-vector key).
MAX_CONTEXTS_PER_INSTANCE = 8


def _margins_from(
    signals: np.ndarray, interf: np.ndarray, beta: float, noise: float
) -> np.ndarray:
    """``signal / (beta * (interference + noise))`` with the inf/zero
    conventions of :func:`repro.core.feasibility.sinr_margins`."""
    denom = beta * (interf + noise)
    margins = np.full(signals.shape, np.inf)
    np.divide(signals, denom, out=margins, where=denom > 0)
    margins[np.isinf(interf)] = 0.0
    return margins


class InterferenceContext:
    """Cached interference state for one ``(instance, powers)`` pair.

    Parameters
    ----------
    instance:
        The scheduling instance (fixes the metric, variant, alpha and
        the default ``beta``/``noise``).
    powers:
        Fixed positive power vector of length ``instance.n``.  A
        private copy is kept; later mutation of the caller's array does
        not corrupt the context (and :func:`get_context` keys the cache
        by value, so mutated powers simply resolve to a new context).
    beta, noise:
        Defaults for the per-query overrides; fall back to the
        instance's values.

    Notes
    -----
    Gain matrices are built lazily on first use and shared read-only.
    All query methods accept ``beta``/``noise`` overrides, so a single
    context serves the γ-rescaling machinery of §3.1 (e.g. the
    Theorem 15 repair pass at ``beta / 2``) without rebuilding
    anything.
    """

    def __init__(
        self,
        instance: Instance,
        powers: np.ndarray,
        beta: Optional[float] = None,
        noise: Optional[float] = None,
    ):
        powers = np.array(powers, dtype=float).reshape(-1)
        if powers.shape != (instance.n,):
            raise InvalidScheduleError(
                f"powers must have shape ({instance.n},), got {powers.shape}"
            )
        if np.any(powers <= 0):
            raise InvalidScheduleError("all powers must be strictly positive")
        self.instance = instance
        self.powers = powers
        self.powers.setflags(write=False)
        self.beta = instance.beta if beta is None else float(beta)
        self.noise = instance.noise if noise is None else float(noise)
        if not self.beta > 0:
            raise ValueError(f"beta must be > 0, got {self.beta}")
        if self.noise < 0:
            raise ValueError(f"noise must be >= 0, got {self.noise}")
        self._signals: Optional[np.ndarray] = None
        self._gains: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._gains_t: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._worst_gains: Optional[np.ndarray] = None
        self._has_inf: Optional[bool] = None

    # ------------------------------------------------------------------
    # Cached matrices
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of requests."""
        return self.instance.n

    @property
    def signals(self) -> np.ndarray:
        """Received signal strengths ``p_i / l(u_i, v_i)`` (read-only)."""
        if self._signals is None:
            signals = self.powers / self.instance.link_losses
            signals.setflags(write=False)
            self._signals = signals
        return self._signals

    def _gain_pair(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._gains is None:
            if self.instance.direction is Direction.DIRECTED:
                gains = directed_gain_matrix(self.instance, self.powers)
                gains.setflags(write=False)
                self._gains = (gains, gains)
            else:
                gains_u, gains_v = bidirectional_gain_matrices(
                    self.instance, self.powers
                )
                gains_u.setflags(write=False)
                gains_v.setflags(write=False)
                self._gains = (gains_u, gains_v)
        return self._gains

    @property
    def gains_u(self) -> np.ndarray:
        """Gain matrix at endpoint ``u`` (the single directed matrix in
        the directed variant; read-only)."""
        return self._gain_pair()[0]

    @property
    def gains_v(self) -> np.ndarray:
        """Gain matrix at endpoint ``v`` (aliases :attr:`gains_u` in the
        directed variant; read-only)."""
        return self._gain_pair()[1]

    @property
    def worst_gains(self) -> np.ndarray:
        """Worst-endpoint gain matrix ``max(G_u, G_v)`` (read-only).

        This is the matrix affectance and conflict-graph analyses work
        on; in the directed variant it is :attr:`gains_u` itself.
        """
        if self._worst_gains is None:
            gains_u, gains_v = self._gain_pair()
            if gains_u is gains_v:
                self._worst_gains = gains_u
            else:
                worst = np.maximum(gains_u, gains_v)
                worst.setflags(write=False)
                self._worst_gains = worst
        return self._worst_gains

    def _gain_pair_t(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._gains_t is None:
            gains_u, gains_v = self._gain_pair()
            gains_ut = np.ascontiguousarray(gains_u.T)
            gains_ut.setflags(write=False)
            if gains_v is gains_u:
                self._gains_t = (gains_ut, gains_ut)
            else:
                gains_vt = np.ascontiguousarray(gains_v.T)
                gains_vt.setflags(write=False)
                self._gains_t = (gains_ut, gains_vt)
        return self._gains_t

    @property
    def gains_ut(self) -> np.ndarray:
        """Contiguous transpose of :attr:`gains_u` (read-only, cached).

        ``gains_ut[j]`` is the gain *column* of request ``j`` — what
        every other request suffers when ``j`` transmits — laid out
        contiguously.  Column-consuming hot loops (the scheduler
        kernels, the accumulator's O(n) membership updates) read this
        instead of strided ``gains_u[:, j]`` views, which cost one
        cache miss per element on large instances.
        """
        return self._gain_pair_t()[0]

    @property
    def gains_vt(self) -> np.ndarray:
        """Contiguous transpose of :attr:`gains_v` (read-only, cached;
        aliases :attr:`gains_ut` in the directed variant)."""
        return self._gain_pair_t()[1]

    @property
    def has_infinite_gains(self) -> bool:
        """Does any gain entry equal ``inf`` (shared-node pairs)?

        Computed once per context.  The accumulator and the scheduler
        kernels take a cheaper all-finite fast path (no per-update
        ``isfinite`` masking) when this is ``False`` — which is every
        instance without shared-node pairs.
        """
        if self._has_inf is None:
            gains_u, gains_v = self._gain_pair()
            has_inf = not bool(np.all(np.isfinite(gains_u)))
            if not has_inf and gains_v is not gains_u:
                has_inf = not bool(np.all(np.isfinite(gains_v)))
            self._has_inf = has_inf
        return self._has_inf

    def budgets(
        self, beta: Optional[float] = None, noise: Optional[float] = None
    ) -> np.ndarray:
        """Interference budgets ``signal / beta - noise`` per request.

        A request can join a class only while the class's interference
        at it stays within this budget.
        """
        beta = self.beta if beta is None else float(beta)
        noise = self.noise if noise is None else float(noise)
        return self.signals / beta - noise

    # ------------------------------------------------------------------
    # Vectorized queries
    # ------------------------------------------------------------------

    def interference(
        self,
        colors: Optional[np.ndarray] = None,
        subset: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Worst-endpoint interference per request (cf.
        :func:`repro.core.interference.interference`).

        Parameters
        ----------
        colors:
            If given, only same-color pairs interfere.
        subset:
            Restrict to these request indices (result aligned to the
            subset, like the module-level function).
        """
        gains_u, gains_v = self._gain_pair()
        if subset is not None:
            idx = np.asarray(subset, dtype=int)
            if np.unique(idx).size != idx.size:
                # A repeated index names two copies of one request; the
                # cached matrices' zero diagonal cannot express their
                # mutual interference, so defer to the from-scratch
                # sub-instance computation (identical to the legacy
                # path) for this degenerate call.
                return _interference_from_scratch(
                    self.instance, self.powers, colors, idx
                )
            block = np.ix_(idx, idx)
            sub_colors = None if colors is None else np.asarray(colors)[idx]
            interf = _class_sum(gains_u[block], sub_colors)
            if gains_v is not gains_u:
                interf = np.maximum(interf, _class_sum(gains_v[block], sub_colors))
            return interf
        interf = _class_sum(gains_u, colors)
        if gains_v is not gains_u:
            interf = np.maximum(interf, _class_sum(gains_v, colors))
        return interf

    def margins(
        self,
        colors: Optional[np.ndarray] = None,
        subset: Optional[Sequence[int]] = None,
        beta: Optional[float] = None,
        noise: Optional[float] = None,
    ) -> np.ndarray:
        """SINR margins ``signal / (beta * (interference + noise))``.

        Bit-for-bit identical to
        :func:`repro.core.feasibility.sinr_margins` (which routes here
        when the engine is enabled).
        """
        beta = self.beta if beta is None else float(beta)
        noise = self.noise if noise is None else float(noise)
        signals = self.signals
        interf = self.interference(colors=colors, subset=subset)
        if subset is not None:
            signals = signals[np.asarray(subset, dtype=int)]
        return _margins_from(signals, interf, beta, noise)

    def budget_slack(
        self,
        subset: Sequence[int],
        colors: Optional[np.ndarray] = None,
        beta: Optional[float] = None,
        noise: Optional[float] = None,
    ) -> np.ndarray:
        """Remaining interference budget for each request of *subset*.

        ``slack[i] = budget_i - interference_i`` where the interference
        is taken within *subset* (or within *subset*'s same-color peers
        when *colors* is given).  Negative slack means the request's
        SINR constraint is violated; shared-node interference yields
        ``-inf``.
        """
        idx = np.asarray(subset, dtype=int)
        interf = self.interference(colors=colors, subset=idx)
        slack = self.budgets(beta=beta, noise=noise)[idx] - interf
        return slack

    def feasible_mask(
        self,
        subset: Sequence[int],
        beta: Optional[float] = None,
        noise: Optional[float] = None,
        rtol: float = DEFAULT_RTOL,
    ) -> np.ndarray:
        """Boolean mask (aligned to *subset*) of satisfied requests when
        all of *subset* transmits together."""
        idx = np.asarray(subset, dtype=int)
        if idx.size == 0:
            return np.zeros(0, dtype=bool)
        return self.margins(subset=idx, beta=beta, noise=noise) >= 1.0 - rtol

    def is_feasible_subset(
        self,
        subset: Sequence[int],
        beta: Optional[float] = None,
        noise: Optional[float] = None,
        rtol: float = DEFAULT_RTOL,
    ) -> bool:
        """Can all requests of *subset* share one color?"""
        idx = np.asarray(subset, dtype=int)
        if idx.size == 0:
            return True
        return bool(np.all(self.feasible_mask(idx, beta=beta, noise=noise, rtol=rtol)))

    def is_feasible_partition(
        self,
        colors: np.ndarray,
        beta: Optional[float] = None,
        noise: Optional[float] = None,
        rtol: float = DEFAULT_RTOL,
    ) -> bool:
        """Does the coloring *colors* satisfy every class?"""
        margins = self.margins(colors=np.asarray(colors), beta=beta, noise=noise)
        return bool(np.all(margins >= 1.0 - rtol))

    # ------------------------------------------------------------------
    # Incremental structures and algorithms
    # ------------------------------------------------------------------

    def accumulator(
        self,
        members: Optional[Sequence[int]] = None,
        beta: Optional[float] = None,
        noise: Optional[float] = None,
    ) -> "ClassAccumulator":
        """A fresh :class:`ClassAccumulator`, optionally pre-seeded with
        *members* (bulk-initialized in one vectorized pass)."""
        return ClassAccumulator(self, members=members, beta=beta, noise=noise)

    def greedy_max_feasible_subset(
        self,
        candidates: Optional[Sequence[int]] = None,
        beta: Optional[float] = None,
        rtol: float = DEFAULT_RTOL,
    ) -> np.ndarray:
        """A maximal feasible subset of *candidates* (peel worst margin,
        then re-add).

        Decision-for-decision identical to the legacy
        :func:`repro.analysis.capacity.greedy_max_feasible_subset` loop
        (margins are computed with the same operation order), but each
        round costs O(k^2) on the cached gains instead of re-deriving
        loss and gain matrices from the metric.
        """
        if candidates is None:
            current = list(range(self.n))
        else:
            current = [int(i) for i in candidates]
        dropped: List[int] = []
        while current:
            subset = np.asarray(current, dtype=int)
            margins = self.margins(subset=subset, beta=beta)
            if np.all(margins >= 1.0 - rtol):
                break
            worst = int(np.argmin(margins))
            dropped.append(current.pop(worst))
        for req in reversed(dropped):
            trial = np.asarray(current + [req], dtype=int)
            trial_margins = self.margins(subset=trial, beta=beta)
            if np.all(trial_margins >= 1.0 - rtol):
                current.append(req)
        return np.asarray(sorted(current), dtype=int)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "built" if self._gains is not None else "lazy"
        return (
            f"InterferenceContext(n={self.n}, "
            f"direction={self.instance.direction.value}, gains={state})"
        )


class ClassAccumulator:
    """Incremental same-color interference bookkeeping for one class.

    Generalizes the private ``_ClassState`` bookkeeping that used to
    live inside ``first_fit_schedule``: the accumulator maintains, for
    **every** request of the instance, the interference it would suffer
    from the current member set — so testing whether an outside request
    can join is O(k), and joining/leaving is O(n) (one gain-matrix
    column), never an O(k^2) recompute.

    Infinite gains (shared-node pairs) are tracked as separate counts so
    that removal is exact: ``inf`` contributions never enter the finite
    running sums, hence never leave ``nan`` debris behind.

    Use :meth:`InterferenceContext.accumulator` to construct one.
    """

    def __init__(
        self,
        context: InterferenceContext,
        members: Optional[Sequence[int]] = None,
        beta: Optional[float] = None,
        noise: Optional[float] = None,
    ):
        self.context = context
        self.beta = context.beta if beta is None else float(beta)
        self.noise = context.noise if noise is None else float(noise)
        n = context.n
        self._mask = np.zeros(n, dtype=bool)
        self._order: List[int] = []
        # Finite part, infinite-contribution count and positive-finite
        # contribution count of the member interference at each
        # request, per endpoint.  The counts make two cases *exact*
        # (not merely close): infinite interference (shared nodes) and
        # zero interference (no contributing member) — the latter so a
        # request whose interferers all left reports margin inf again
        # instead of a cancellation residue.
        self._fin_u = np.zeros(n)
        self._ninf_u = np.zeros(n, dtype=np.int64)
        self._npos_u = np.zeros(n, dtype=np.int64)
        self._directed = context.gains_u is context.gains_v
        if self._directed:
            self._fin_v = self._fin_u
            self._ninf_v = self._ninf_u
            self._npos_v = self._npos_u
        else:
            self._fin_v = np.zeros(n)
            self._ninf_v = np.zeros(n, dtype=np.int64)
            self._npos_v = np.zeros(n, dtype=np.int64)
        if members is not None:
            self._bulk_add(np.asarray(members, dtype=int))

    # -- membership ----------------------------------------------------

    @property
    def members(self) -> np.ndarray:
        """Current members in insertion order."""
        return np.asarray(self._order, dtype=int)

    @property
    def member_mask(self) -> np.ndarray:
        """Boolean membership mask over all requests (read-only view)."""
        view = self._mask.view()
        view.setflags(write=False)
        return view

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, request: int) -> bool:
        return bool(self._mask[int(request)])

    def _apply_columns(self, members: np.ndarray, sign: int) -> None:
        """Accumulate the gain columns of *members* into the running
        sums — one vectorized pass per endpoint, shared by single-add,
        remove and bulk initialization.

        Instances without shared-node pairs (the common case, detected
        once via :attr:`InterferenceContext.has_infinite_gains`) skip
        the per-update ``isfinite`` masking entirely: the finite sum is
        a plain column (sum) add and the infinite counts stay zero.
        Values are bit-identical either way (``np.where`` with an
        all-true mask is the identity).
        """
        single = members.size == 1
        finite_gains = not self.context.has_infinite_gains
        for fin, ninf, npos, gains in (
            (self._fin_u, self._ninf_u, self._npos_u, self.context.gains_u),
            (self._fin_v, self._ninf_v, self._npos_v, self.context.gains_v),
        ):
            if single:
                columns = gains[:, members[0]]
                if finite_gains:
                    np.add(fin, sign * columns, out=fin)
                    np.add(npos, sign * (columns > 0), out=npos)
                else:
                    finite = np.isfinite(columns)
                    np.add(fin, sign * np.where(finite, columns, 0.0), out=fin)
                    np.add(ninf, sign * ~finite, out=ninf)
                    np.add(npos, sign * (finite & (columns > 0)), out=npos)
            else:
                columns = gains[:, members]
                if finite_gains:
                    np.add(fin, sign * columns.sum(axis=1), out=fin)
                    np.add(npos, sign * (columns > 0).sum(axis=1), out=npos)
                else:
                    finite = np.isfinite(columns)
                    np.add(
                        fin,
                        sign * np.where(finite, columns, 0.0).sum(axis=1),
                        out=fin,
                    )
                    np.add(ninf, sign * (~finite).sum(axis=1), out=ninf)
                    np.add(
                        npos,
                        sign * (finite & (columns > 0)).sum(axis=1),
                        out=npos,
                    )
            if self._directed:
                break

    def _bulk_add(self, members: np.ndarray) -> None:
        if members.size == 0:
            return
        if np.unique(members).size != members.size or np.any(self._mask[members]):
            raise ValueError("duplicate member in bulk initialization")
        self._mask[members] = True
        self._order.extend(int(i) for i in members)
        self._apply_columns(members, +1)

    def add(self, request: int) -> None:
        """Add *request* to the class — O(n)."""
        request = int(request)
        if self._mask[request]:
            raise ValueError(f"request {request} is already a member")
        self._mask[request] = True
        self._order.append(request)
        self._apply_columns(np.asarray([request], dtype=int), +1)

    def remove(self, request: int) -> None:
        """Remove *request* from the class — O(n), exact even for
        shared-node (infinite-gain) members."""
        request = int(request)
        if not self._mask[request]:
            raise ValueError(f"request {request} is not a member")
        self._mask[request] = False
        self._order.remove(request)
        if not self._order:
            # Reset exactly: an emptied class must not carry rounding
            # residue from the add/subtract cycle.
            self._fin_u.fill(0.0)
            self._ninf_u.fill(0)
            self._npos_u.fill(0)
            self._fin_v.fill(0.0)
            self._ninf_v.fill(0)
            self._npos_v.fill(0)
        else:
            self._apply_columns(np.asarray([request], dtype=int), -1)

    # -- queries -------------------------------------------------------

    def interference_parts(
        self, requests: Optional[Sequence[int]] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-endpoint member interference ``(at u, at v)`` at
        *requests* (default: members, ascending).  In the directed
        variant both entries are the same array."""
        requests = self._requests_or_members(requests)

        def _resolve(fin, ninf, npos):
            # inf wins; with no positive contributor the value is an
            # exact 0; otherwise the (clamped) running sum.
            values = np.where(
                npos[requests] > 0, np.maximum(fin[requests], 0.0), 0.0
            )
            return np.where(ninf[requests] > 0, np.inf, values)

        interf_u = _resolve(self._fin_u, self._ninf_u, self._npos_u)
        if self._directed:
            return interf_u, interf_u
        interf_v = _resolve(self._fin_v, self._ninf_v, self._npos_v)
        return interf_u, interf_v

    def _requests_or_members(self, requests: Optional[Sequence[int]]) -> np.ndarray:
        if requests is None:
            return np.asarray(sorted(self._order), dtype=int)
        return np.asarray(requests, dtype=int)

    def interference(
        self, requests: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Worst-endpoint interference the current members induce at
        *requests* (default: the members themselves, ascending).

        Because the gain diagonals are zero, a member's own entry counts
        only the *other* members — exactly the same-color interference
        of :func:`repro.core.interference.interference`.  Entries for
        non-members answer "what would this request suffer if it
        joined?" in O(1).
        """
        idx = self._requests_or_members(requests)
        interf_u, interf_v = self.interference_parts(idx)
        return np.maximum(interf_u, interf_v)

    def margins(self, requests: Optional[Sequence[int]] = None) -> np.ndarray:
        """SINR margins of *requests* (default: members, ascending)
        against the current member set."""
        idx = self._requests_or_members(requests)
        interf = self.interference(idx)
        return _margins_from(
            self.context.signals[idx], interf, self.beta, self.noise
        )

    def budget_slack(
        self, requests: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Remaining budget ``budget - interference`` at *requests*
        (default: members, ascending); ``-inf`` under shared-node
        interference."""
        idx = self._requests_or_members(requests)
        budgets = self.context.budgets(beta=self.beta, noise=self.noise)[idx]
        return budgets - self.interference(idx)

    def feasible(self, rtol: float = DEFAULT_RTOL) -> bool:
        """Do all current members satisfy their SINR constraints?"""
        if not self._order:
            return True
        return bool(np.all(self.margins() >= 1.0 - rtol))

    def can_add(self, request: int, rtol: float = DEFAULT_RTOL) -> bool:
        """Would the class stay feasible if *request* joined? — O(k).

        Checks the candidate's own margin against the current members
        plus every member's margin with the candidate's gain column
        added; nothing is mutated.
        """
        request = int(request)
        if self._mask[request]:
            raise ValueError(f"request {request} is already a member")
        signals = self.context.signals
        threshold = 1.0 - rtol
        cand = np.asarray([request])
        cand_interf = float(self.interference(cand)[0])
        cand_margin = _margins_from(
            signals[cand], np.asarray([cand_interf]), self.beta, self.noise
        )[0]
        if not cand_margin >= threshold:
            return False
        if not self._order:
            return True
        members = np.asarray(self._order, dtype=int)
        interf_u, interf_v = self.interference_parts(members)
        new_u = interf_u + self.context.gains_u[members, request]
        new_v = interf_v + self.context.gains_v[members, request]
        new_interf = np.maximum(new_u, new_v)
        member_margins = _margins_from(
            signals[members], new_interf, self.beta, self.noise
        )
        return bool(np.all(member_margins >= threshold))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClassAccumulator(k={len(self._order)}, n={self.context.n}, "
            f"beta={self.beta}, noise={self.noise})"
        )


# ----------------------------------------------------------------------
# Engine toggle + per-instance context cache
# ----------------------------------------------------------------------

_lock = threading.RLock()
_engine_enabled = True
#: Per-instance caches live *on the instance* (as the attribute named
#: below): instance -> contexts -> instance is then a self-contained
#: reference cycle the garbage collector can reclaim once the caller
#: drops the instance.  (A module-level WeakKeyDictionary would never
#: evict — each context holds a strong reference to its instance, which
#: would keep the weak key alive forever.)  This WeakSet only tracks
#: which instances carry a cache, for cache_info()/clear_context_cache.
_CACHE_ATTR = "_interference_context_cache"
_cached_instances: "weakref.WeakSet[Instance]" = weakref.WeakSet()
_hits = 0
_misses = 0


def engine_enabled() -> bool:
    """Is the shared interference engine active on the wrapper paths?"""
    return _engine_enabled


def set_engine_enabled(flag: bool) -> None:
    """Globally enable/disable routing the public wrappers through the
    cached engine (disabled = pre-engine from-scratch code paths)."""
    global _engine_enabled
    _engine_enabled = bool(flag)


@contextmanager
def engine_disabled() -> Iterator[None]:
    """Temporarily restore the from-scratch (legacy) compute paths."""
    previous = _engine_enabled
    set_engine_enabled(False)
    try:
        yield
    finally:
        set_engine_enabled(previous)


def get_context(
    instance: Instance,
    powers: np.ndarray,
    beta: Optional[float] = None,
    noise: Optional[float] = None,
) -> InterferenceContext:
    """The shared :class:`InterferenceContext` for ``(instance, powers)``.

    Contexts are cached per instance — on the instance object itself,
    so dropping the instance lets the garbage collector reclaim its
    contexts — under the *value* of the power vector plus the resolved
    ``beta``/``noise`` defaults, with an LRU bound of
    :data:`MAX_CONTEXTS_PER_INSTANCE`.  Gains ``beta``/``noise`` are
    also per-query overrides on the returned context's methods, so
    querying at a rescaled gain does not fragment the cache; passing
    them *here* changes the context's defaults and therefore its cache
    slot (callers that rely on instance defaults never receive a
    context seeded with overrides).
    """
    global _hits, _misses
    powers_arr = np.asarray(powers, dtype=float)
    key = (
        powers_arr.tobytes(),
        instance.beta if beta is None else float(beta),
        instance.noise if noise is None else float(noise),
    )
    with _lock:
        per_instance = getattr(instance, _CACHE_ATTR, None)
        if per_instance is None:
            per_instance = OrderedDict()
            setattr(instance, _CACHE_ATTR, per_instance)
            _cached_instances.add(instance)
        context = per_instance.get(key)
        if context is not None:
            per_instance.move_to_end(key)
            _hits += 1
            return context
        _misses += 1
        context = InterferenceContext(instance, powers_arr, beta=beta, noise=noise)
        per_instance[key] = context
        while len(per_instance) > MAX_CONTEXTS_PER_INSTANCE:
            per_instance.popitem(last=False)
        return context


def maybe_context(
    instance: Instance, powers: np.ndarray
) -> Optional[InterferenceContext]:
    """:func:`get_context` when the engine is enabled, else ``None``.

    The idiom for algorithms with a legacy fallback::

        ctx = maybe_context(instance, powers)
        if ctx is not None:
            ...  # cached fast path
        else:
            ...  # from-scratch path
    """
    if not _engine_enabled:
        return None
    return get_context(instance, powers)


def cache_info() -> Dict[str, int]:
    """Cache statistics: hits, misses, live instances, live contexts."""
    with _lock:
        caches = [
            getattr(inst, _CACHE_ATTR, None) for inst in _cached_instances
        ]
        caches = [c for c in caches if c is not None]
        return {
            "hits": _hits,
            "misses": _misses,
            "instances": len(caches),
            "contexts": sum(len(c) for c in caches),
        }


def clear_context_cache() -> None:
    """Drop every cached context and reset the hit/miss counters."""
    global _hits, _misses
    with _lock:
        for inst in list(_cached_instances):
            if hasattr(inst, _CACHE_ATTR):
                delattr(inst, _CACHE_ATTR)
        _cached_instances.clear()
        _hits = 0
        _misses = 0
