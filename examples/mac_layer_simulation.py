#!/usr/bin/env python
"""MAC-layer simulation: serving request batches over time.

The paper motivates interference scheduling as the MAC layer's job:
provide single-hop full-duplex channels.  This example simulates a
small network serving arriving batches of full-duplex (bidirectional)
requests slot by slot:

* every epoch a batch of requests arrives between random node pairs;
* the scheduler colors the batch under the square-root assignment
  (Theorem 15 algorithm);
* colors become time slots; throughput and latency are tracked.

Run:  python examples/mac_layer_simulation.py [epochs] [seed]
"""

import sys

import numpy as np

from repro import EuclideanMetric, Instance, Problem, verify_schedule


def build_network(n_nodes: int, side: float, rng: np.random.Generator):
    points = rng.uniform(0, side, size=(n_nodes, 2))
    return EuclideanMetric(points)


def arrivals(metric, batch: int, rng: np.random.Generator):
    pairs = []
    while len(pairs) < batch:
        u, v = rng.integers(metric.n, size=2)
        if u != v and all(u not in p and v not in p for p in pairs):
            pairs.append((int(u), int(v)))
    return pairs


def main(epochs: int = 5, seed: int = 0) -> None:
    rng = np.random.default_rng(seed)
    metric = build_network(n_nodes=60, side=200.0, rng=rng)
    print(f"network: {metric.n} nodes in a 200x200 area\n")

    total_slots = 0
    total_requests = 0
    latencies = []
    for epoch in range(epochs):
        batch = int(rng.integers(8, 16))
        pairs = arrivals(metric, batch, rng)
        instance = Instance.bidirectional(metric, pairs, beta=0.8)
        result = Problem(instance).session().schedule("sqrt_coloring", rng=rng)
        schedule = result.schedule
        report = verify_schedule(instance, schedule)
        assert report.feasible, "scheduler emitted an infeasible schedule"
        # A request's latency is the slot its color occupies (1-based).
        order = {c: k for k, c in enumerate(sorted(set(schedule.colors.tolist())))}
        for color in schedule.colors:
            latencies.append(order[int(color)] + 1)
        total_slots += report.num_colors
        total_requests += batch
        print(f"epoch {epoch}: {batch:>2} requests -> {report.num_colors} slots "
              f"(classes {sorted(report.class_sizes.values(), reverse=True)})")

    print(f"\nthroughput: {total_requests / total_slots:.2f} requests/slot")
    print(f"mean latency: {np.mean(latencies):.2f} slots, "
          f"p95: {np.percentile(latencies, 95):.0f} slots")


if __name__ == "__main__":
    main(
        int(sys.argv[1]) if len(sys.argv) > 1 else 5,
        int(sys.argv[2]) if len(sys.argv) > 2 else 0,
    )
