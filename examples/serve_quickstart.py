#!/usr/bin/env python
"""The asyncio serving layer in five minutes.

Drives ``repro.serve`` end to end: two named sessions behind bounded
arrival queues, online admissions through the live kernel (no context
rebuilds), a per-session n-cap rejecting excess arrivals, exact
departures freeing capacity, a shed-policy session dropping a burst,
and a graceful drain.

Run:  python examples/serve_quickstart.py [seed]
"""

import asyncio
import sys

from repro import Problem, random_uniform_instance
from repro.serve import ScheduleServer, ServeConfig


async def serve_tour(seed: int) -> None:
    instance_a = random_uniform_instance(12, side=100.0, rng=seed)
    instance_b = random_uniform_instance(10, side=100.0, rng=seed + 1)

    async with ScheduleServer() as server:
        # -- two independent sessions, different knobs ------------------
        server.add_session(
            "cell-a",
            Problem(instance_a),
            ServeConfig(queue_capacity=16, max_requests=18),
        )
        server.add_session(
            "cell-b",
            Problem(instance_b, backend="sparse", sparse_epsilon=0.0),
            ServeConfig(queue_capacity=4, overflow="shed"),
        )

        # -- online arrivals: one O(n) admission each -------------------
        admitted = []
        for sender, receiver in [(0, 5), (2, 9), (7, 1), (4, 11)]:
            decision = await server.submit("cell-a", (sender, receiver))
            admitted.append(decision)
            print(
                f"cell-a ({sender:>2}, {receiver:>2}) -> "
                f"color {decision.color} "
                f"({decision.latency_s * 1e3:.2f} ms)"
            )

        # -- the n-cap rejects before queueing --------------------------
        while True:
            decision = await server.submit("cell-a", (1, 8))
            if not decision.accepted:
                print(f"cell-a at capacity: rejected ({decision.reason})")
                break
            admitted.append(decision)

        # -- exact departures free capacity -----------------------------
        server.remove("cell-a", admitted[0].handle)
        retried = await server.submit("cell-a", (1, 8))
        print(f"after departure: re-admitted with color {retried.color}")

        # -- a burst against the shed session ---------------------------
        burst = await asyncio.gather(
            *(server.submit("cell-b", (0, i + 1)) for i in range(8))
        )
        shed = sum(not d.accepted for d in burst)
        print(f"cell-b burst: {len(burst) - shed} admitted, {shed} shed")

        # -- drain, then snapshot the live schedules --------------------
        await server.drain()
        for name in server.sessions():
            stats = server.stats(name)
            result = server.session(name).live_result().validate()
            print(
                f"{name}: {result.num_colors} colors over "
                f"{result.schedule.n} requests | "
                f"{stats['admitted']} admitted, "
                f"p50 {stats['p50_latency_s'] * 1e3:.2f} ms, "
                f"p99 {stats['p99_latency_s'] * 1e3:.2f} ms "
                f"(incremental={result.provenance.incremental})"
            )


def main(seed: int = 0) -> None:
    asyncio.run(serve_tour(seed))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 0)
