"""Hand-computed interference values for both problem variants."""

import numpy as np
import pytest

from repro.core.instance import Direction, Instance
from repro.core.interference import (
    bidirectional_gain_matrices,
    bidirectional_interference,
    directed_gain_matrix,
    directed_interference,
    interference,
)
from repro.geometry.line import LineMetric


class TestDirectedGains:
    def test_hand_computed(self, two_link_directed):
        # Layout: u0=0, v0=1, u1=100, v1=101; alpha=3.
        powers = np.array([1.0, 1.0])
        gains = directed_gain_matrix(two_link_directed, powers)
        # gain at receiver of 0 from sender of 1: d(u1, v0) = 99
        assert gains[0, 1] == pytest.approx(1.0 / 99.0**3)
        # gain at receiver of 1 from sender of 0: d(u0, v1) = 101
        assert gains[1, 0] == pytest.approx(1.0 / 101.0**3)
        assert gains[0, 0] == 0.0
        assert gains[1, 1] == 0.0

    def test_power_scales_linearly(self, two_link_directed):
        g1 = directed_gain_matrix(two_link_directed, np.array([1.0, 1.0]))
        g2 = directed_gain_matrix(two_link_directed, np.array([2.0, 2.0]))
        assert np.allclose(g2, 2 * g1)

    def test_shared_node_gives_infinite_gain(self):
        metric = LineMetric([0.0, 1.0, 2.0])
        inst = Instance.directed(metric, [(0, 1), (1, 2)])
        gains = directed_gain_matrix(inst, np.ones(2))
        # sender of pair 1 is node 1 = receiver of pair 0.
        assert np.isinf(gains[0, 1])

    def test_interference_sums_rows(self, two_link_directed):
        powers = np.array([3.0, 5.0])
        interf = directed_interference(two_link_directed, powers)
        assert interf[0] == pytest.approx(5.0 / 99.0**3)
        assert interf[1] == pytest.approx(3.0 / 101.0**3)

    def test_colors_restrict_interference(self, two_link_directed):
        powers = np.ones(2)
        interf = directed_interference(
            two_link_directed, powers, colors=np.array([0, 1])
        )
        assert np.allclose(interf, 0.0)

    def test_subset_restricts(self, two_link_directed):
        powers = np.ones(2)
        interf = directed_interference(two_link_directed, powers, subset=[0])
        assert interf.shape == (1,)
        assert interf[0] == 0.0


class TestBidirectionalGains:
    def test_hand_computed(self, two_link_instance):
        powers = np.array([1.0, 1.0])
        gains_u, gains_v = bidirectional_gain_matrices(two_link_instance, powers)
        # At u0 (coord 0): nearest endpoint of pair 1 is 100.
        assert gains_u[0, 1] == pytest.approx(1.0 / 100.0**3)
        # At v0 (coord 1): nearest endpoint of pair 1 is 99 away.
        assert gains_v[0, 1] == pytest.approx(1.0 / 99.0**3)
        # At u1 (coord 100): nearest endpoint of pair 0 is 99 away.
        assert gains_u[1, 0] == pytest.approx(1.0 / 99.0**3)
        # At v1 (coord 101): nearest endpoint of pair 0 is 100 away.
        assert gains_v[1, 0] == pytest.approx(1.0 / 100.0**3)

    def test_worst_endpoint_taken(self, two_link_instance):
        interf = bidirectional_interference(two_link_instance, np.ones(2))
        assert interf[0] == pytest.approx(1.0 / 99.0**3)
        assert interf[1] == pytest.approx(1.0 / 99.0**3)

    def test_bidirectional_at_least_directed(self, small_random_instance):
        # The min-loss interference dominates the sender-only one.
        powers = np.ones(small_random_instance.n)
        directed_variant = small_random_instance.with_direction(Direction.DIRECTED)
        d = directed_interference(directed_variant, powers)
        b = bidirectional_interference(small_random_instance, powers)
        assert np.all(b >= d - 1e-15)

    def test_dispatching_helper(self, two_link_instance, two_link_directed):
        powers = np.ones(2)
        assert np.allclose(
            interference(two_link_instance, powers),
            bidirectional_interference(two_link_instance, powers),
        )
        assert np.allclose(
            interference(two_link_directed, powers),
            directed_interference(two_link_directed, powers),
        )

    def test_symmetric_pair_swap_invariance(self):
        # Swapping sender/receiver labels must not change bidirectional
        # interference (the variant is symmetric by definition).
        metric = LineMetric([0.0, 2.0, 10.0, 13.0])
        a = Instance.bidirectional(metric, [(0, 1), (2, 3)])
        b = Instance.bidirectional(metric, [(1, 0), (3, 2)])
        powers = np.array([2.0, 3.0])
        assert np.allclose(
            bidirectional_interference(a, powers),
            bidirectional_interference(b, powers),
        )
