"""Centroid/star decomposition of tree metrics (Lemma 9).

Lemma 9 turns a gamma'-feasible node set on a tree metric into a
gamma-feasible set (gamma = Omega(gamma' / log^2.5 n)) for the
square-root assignment, by recursively:

1. picking a *centroid* ``c`` of the tree (components after removal
   have at most half the nodes),
2. viewing the active nodes as a *star* around ``c`` (leaf distances =
   tree distances to ``c``; star distances dominate tree distances, so
   feasibility carries over),
3. running the Lemma 5 star selection, and
4. recursing into the subtrees obtained by splitting at ``c``.

Every node participates in at most ``log2 n`` levels; the final subset
is the set of nodes never removed at any level.  The implementation
verifies the result and reports per-level statistics so experiment E6/
E3 can measure the polylog losses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.geometry.tree import TreeMetric, find_centroid
from repro.nodeloss.feasibility import nodeloss_margins
from repro.nodeloss.instance import NodeLossInstance, StarNodeLoss
from repro.nodeloss.star_analysis import lemma5_subset


@dataclass
class Lemma9Result:
    """Outcome of the recursive star decomposition.

    Attributes
    ----------
    kept:
        Active tree nodes that survived every level (indices into the
        *active* list handed to :func:`lemma9_subset`).
    levels:
        Number of recursion levels executed.
    star_sizes:
        Sizes of the stars analysed (one entry per centroid handled).
    dropped_per_level:
        Nodes removed at each recursion depth.
    dropped_final:
        Nodes removed by the final certification peel on the tree
        metric.
    """

    kept: np.ndarray
    levels: int
    star_sizes: List[int] = field(default_factory=list)
    dropped_per_level: Dict[int, int] = field(default_factory=dict)
    dropped_final: int = 0


def lemma9_subset(
    tree: TreeMetric,
    active: Sequence[int],
    losses: Sequence[float],
    gamma: float,
    gamma_prime: Optional[float] = None,
    alpha: float = 3.0,
    max_levels: Optional[int] = None,
) -> Lemma9Result:
    """Select a square-root-feasible subset via centroid/star recursion.

    Parameters
    ----------
    tree:
        Host tree metric (may contain Steiner nodes).
    active:
        Tree-node indices carrying node-loss requests.
    losses:
        Loss parameter per active node (aligned with *active*).
    gamma:
        Target gain for each star-level Lemma 5 call.
    gamma_prime:
        Witness gain forwarded to Lemma 5 (estimated per star when
        ``None``).
    max_levels:
        Safety cap on recursion depth (default ``2 + log2(#tree
        nodes)``).

    Returns
    -------
    Lemma9Result
        ``kept`` holds positions into *active* (not tree-node ids).
    """
    active = [int(v) for v in active]
    losses = np.asarray(losses, dtype=float).reshape(-1)
    if losses.size != len(active):
        raise ValueError("losses must align with active nodes")
    if len(set(active)) != len(active):
        raise ValueError(
            "active tree nodes must be distinct; merge requests sharing an "
            "endpoint before the decomposition (they can never share a color)"
        )
    if max_levels is None:
        max_levels = 2 + int(math.ceil(math.log2(max(2, tree.n))))

    position_of = {v: k for k, v in enumerate(active)}
    tree_dist = tree.distance_matrix()
    removed: Set[int] = set()  # positions into `active`
    star_sizes: List[int] = []
    dropped_per_level: Dict[int, int] = {}
    max_depth_seen = 0

    def recurse(component: List[int], depth: int) -> None:
        nonlocal max_depth_seen
        max_depth_seen = max(max_depth_seen, depth)
        live = [v for v in component if v in position_of]
        if len(live) <= 1 or depth >= max_levels:
            return
        centroid = find_centroid(tree, component)
        # Build the star of active nodes around the centroid.  Nodes at
        # the centroid itself (distance 0) cannot be star leaves; they
        # are simply not challenged at this level.
        leaves = [v for v in live if tree_dist[v, centroid] > 0]
        if len(leaves) >= 2:
            deltas = np.asarray([tree_dist[v, centroid] for v in leaves])
            leaf_losses = np.asarray([losses[position_of[v]] for v in leaves])
            star = StarNodeLoss(deltas, leaf_losses, alpha=alpha)
            result = lemma5_subset(star, gamma, gamma_prime=gamma_prime)
            star_sizes.append(len(leaves))
            kept_set = set(int(i) for i in result.kept)
            level_drops = 0
            for leaf_pos, v in enumerate(leaves):
                if leaf_pos not in kept_set:
                    removed.add(position_of[v])
                    level_drops += 1
            if level_drops:
                dropped_per_level[depth] = (
                    dropped_per_level.get(depth, 0) + level_drops
                )
        # Split at the centroid and recurse; the centroid joins each
        # component's recursion is unnecessary (it is never challenged
        # again, matching the paper's "delete all but one edge").
        member_set = set(component)
        for sub_component in tree.subtree_nodes_after_removal(centroid):
            restricted = [v for v in sub_component if v in member_set]
            if restricted:
                recurse(restricted, depth + 1)

    recurse(list(range(tree.n)), 0)

    kept_positions = np.asarray(
        [k for k in range(len(active)) if k not in removed], dtype=int
    )

    # Certification on the tree metric: peel until gamma-feasible under
    # the square-root assignment.
    dropped_final = 0
    if kept_positions.size > 0:
        node_ids = [active[k] for k in kept_positions]
        sub_dist = tree_dist[np.ix_(node_ids, node_ids)]
        instance = NodeLossInstance(
            sub_dist, losses[kept_positions], alpha=alpha, beta=gamma
        )
        live = np.arange(kept_positions.size)
        powers = instance.sqrt_powers()
        while live.size > 0:
            margins = nodeloss_margins(instance, powers, subset=live, gamma=gamma)
            if np.all(margins >= 1.0 - 1e-9):
                break
            worst = int(np.argmin(margins))
            live = np.delete(live, worst)
            dropped_final += 1
        kept_positions = kept_positions[live]

    return Lemma9Result(
        kept=kept_positions,
        levels=max_depth_seen + 1,
        star_sizes=star_sizes,
        dropped_per_level=dropped_per_level,
        dropped_final=dropped_final,
    )
