"""Aspect-ratio and distance-extremum utilities.

The related-work discussion (§1.3) measures algorithms in terms of the
aspect ratio Delta = (max pairwise distance) / (min positive pairwise
distance); these helpers compute it for any metric.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.metric import Metric


def max_distance(metric: Metric) -> float:
    """Largest pairwise distance in *metric* (0.0 for a single node)."""
    return float(np.max(metric.distance_matrix()))


def min_positive_distance(metric: Metric) -> float:
    """Smallest strictly positive pairwise distance.

    Raises
    ------
    ValueError
        If all pairwise distances are zero (fewer than two distinct
        points).
    """
    matrix = metric.distance_matrix()
    positive = matrix[matrix > 0]
    if positive.size == 0:
        raise ValueError("metric has no positive distances")
    return float(np.min(positive))


def aspect_ratio(metric: Metric) -> float:
    """Aspect ratio Delta = max distance / min positive distance."""
    return max_distance(metric) / min_positive_distance(metric)
