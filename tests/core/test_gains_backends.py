"""Conformance tests for the pluggable gain backends.

Contracts under test (see :mod:`repro.core.gains`):

* every backend primitive of a **lossless** sparse backend
  (``epsilon = 0``) is bit-identical to the dense backend;
* schedules computed under the sparse backend match the dense backend
  exactly when the run is certified (``flip_risk_events == 0``), and in
  particular always at ``epsilon = 0``;
* a pruned backend under-estimates interference by at most the
  recorded per-request pruned mass, and never by more than ``epsilon``
  times the row mass;
* tiled metric access (``pair_distances`` / ``distance_block``) is
  bit-identical to full-matrix gathers;
* backend selection (defaults, scopes, env plumbing, cache keying)
  behaves as documented.
"""

from contextlib import contextmanager

import numpy as np
import pytest

from repro.core import gains
from repro.core.context import clear_context_cache, engine_disabled, get_context
from repro.core.gains import (
    ArrayBackend,
    DenseBackend,
    SparseBackend,
    backend_scope,
    build_backend,
    default_backend,
    resolve_backend,
    set_default_backend,
)
from repro.core.instance import Direction, Instance
from repro.geometry.euclidean import EuclideanMetric
from repro.geometry.line import LineMetric
from repro.instances.random_instances import (
    clustered_instance,
    random_uniform_instance,
)
from repro.power.oblivious import SquareRootPower
from repro.scheduling.firstfit import first_fit_schedule
from repro.scheduling.local_search import improve_schedule
from repro.scheduling.peeling import peeling_schedule
from repro.scheduling.sqrt_coloring import sqrt_coloring


def _shared_node_instance(direction):
    metric = LineMetric([0.0, 1.0, 2.5, 4.5, 7.0])
    pairs = [(0, 1), (1, 2), (2, 3), (3, 4)]
    return Instance(
        metric,
        [p[0] for p in pairs],
        [p[1] for p in pairs],
        direction=direction,
    )


def _grid():
    cases = {}
    for direction in (Direction.DIRECTED, Direction.BIDIRECTIONAL):
        tag = direction.value[:3]
        inst = random_uniform_instance(24, rng=31, direction=direction)
        cases[f"euclid-{tag}"] = (inst, SquareRootPower()(inst))
        shared = _shared_node_instance(direction)
        cases[f"shared-{tag}"] = (shared, np.ones(shared.n))
    return cases


GRID = _grid()


@contextmanager
def gains_epsilon(value):
    previous = gains.default_sparse_epsilon()
    gains.set_sparse_epsilon(value)
    try:
        yield
    finally:
        gains.set_sparse_epsilon(previous)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_context_cache()
    yield
    clear_context_cache()


class TestLosslessBitIdentity:
    """Sparse at epsilon=0 must reproduce every dense primitive bitwise."""

    @pytest.mark.parametrize("name", sorted(GRID))
    def test_primitives_match_dense(self, name):
        instance, powers = GRID[name]
        dense = build_backend(instance, powers, backend="dense")
        sparse = build_backend(
            instance, powers, backend="sparse", sparse_epsilon=0.0
        )
        assert sparse.is_lossless
        assert sparse.directed == dense.directed
        assert sparse.has_infinite_gains == dense.has_infinite_gains
        np.testing.assert_array_equal(sparse.pruned_mass_u, 0.0)
        n = instance.n
        idx = np.arange(0, n, 2)
        members = np.asarray([0, n - 1])
        colors = np.arange(n) % 3
        for endpoint in ("u", "v"):
            def op(backend, method, *args, e=endpoint):
                return getattr(backend, f"{method}_{e}")(*args)

            for j in (0, n // 2, n - 1):
                np.testing.assert_array_equal(
                    op(dense, "col", j), op(sparse, "col", j)
                )
                np.testing.assert_array_equal(
                    op(dense, "row", j), op(sparse, "row", j)
                )
            np.testing.assert_array_equal(
                op(dense, "gather_cols", members),
                op(sparse, "gather_cols", members),
            )
            np.testing.assert_array_equal(
                op(dense, "block", idx), op(sparse, "block", idx)
            )
            np.testing.assert_array_equal(
                op(dense, "cross_block", idx, members),
                op(sparse, "cross_block", idx, members),
            )
            for c in (None, colors):
                np.testing.assert_array_equal(
                    op(dense, "class_sum", c), op(sparse, "class_sum", c)
                )
            np.testing.assert_array_equal(
                op(dense, "dense", ), op(sparse, "dense", )
            )

    @pytest.mark.parametrize("name", sorted(GRID))
    def test_row_sums_match_block_gather(self, name):
        """row_sums_{u,v} must equal the dense block-gather row sums
        bitwise — on every backend, with and without a column subset,
        including infinite (shared-node) rows."""
        instance, powers = GRID[name]
        dense = build_backend(instance, powers, backend="dense")
        sparse = build_backend(
            instance, powers, backend="sparse", sparse_epsilon=0.0
        )
        n = instance.n
        rows = np.arange(n)
        cols = np.asarray(sorted({0, n - 1, n // 2}))
        for backend in (dense, sparse):
            for endpoint in ("u", "v"):
                block = getattr(backend, f"cross_block_{endpoint}")
                sums = getattr(backend, f"row_sums_{endpoint}")
                np.testing.assert_array_equal(
                    sums(rows), block(rows, rows).sum(axis=1)
                )
                np.testing.assert_array_equal(
                    sums(rows, cols), block(rows, cols).sum(axis=1)
                )
                np.testing.assert_array_equal(
                    sums(rows[::2]), block(rows[::2], rows[::2]).sum(axis=1)
                )
        # And sparse agrees with dense bitwise at epsilon=0.
        np.testing.assert_array_equal(
            dense.row_sums_u(rows), sparse.row_sums_u(rows)
        )
        np.testing.assert_array_equal(
            dense.row_sums_v(rows, cols), sparse.row_sums_v(rows, cols)
        )

    def test_row_sums_tiling_invariant(self):
        """Tiled accumulation must not change the bits: shrinking the
        tile to 1 row yields the same sums."""
        instance, powers = GRID["euclid-bid"]
        dense = build_backend(instance, powers, backend="dense")
        rows = np.arange(instance.n)
        expected = dense.row_sums_u(rows)
        dense.tile_rows = 1
        np.testing.assert_array_equal(dense.row_sums_u(rows), expected)

    @pytest.mark.parametrize("name", sorted(GRID))
    def test_context_queries_match_dense(self, name):
        instance, powers = GRID[name]
        ctx_dense = get_context(instance, powers, backend="dense")
        ctx_sparse = get_context(instance, powers, backend="sparse")
        assert ctx_dense is not ctx_sparse  # distinct cache slots
        np.testing.assert_array_equal(
            ctx_dense.margins(), ctx_sparse.margins()
        )
        subset = np.arange(instance.n)[::2]
        np.testing.assert_array_equal(
            ctx_dense.budget_slack(subset), ctx_sparse.budget_slack(subset)
        )
        np.testing.assert_array_equal(
            ctx_dense.greedy_max_feasible_subset(),
            ctx_sparse.greedy_max_feasible_subset(),
        )

    def test_schedulers_match_dense_bitwise(self):
        for direction in ("directed", "bidirectional"):
            instance = random_uniform_instance(32, rng=77, direction=direction)
            powers = SquareRootPower()(instance)
            reference = {
                "first_fit": first_fit_schedule(instance, powers).colors,
                "peeling": peeling_schedule(instance, powers).colors,
                "sqrt": sqrt_coloring(instance, rng=3, use_lp=False)[0].colors,
                "local_search": improve_schedule(
                    instance, first_fit_schedule(instance, powers)
                ).colors,
            }
            clear_context_cache()
            with backend_scope("sparse"):
                assert default_backend() == "sparse"
                results = {
                    "first_fit": first_fit_schedule(instance, powers).colors,
                    "peeling": peeling_schedule(instance, powers).colors,
                    "sqrt": sqrt_coloring(instance, rng=3, use_lp=False)[
                        0
                    ].colors,
                    "local_search": improve_schedule(
                        instance, first_fit_schedule(instance, powers)
                    ).colors,
                }
                backend = get_context(instance, powers).backend
                assert isinstance(backend, SparseBackend)
                assert backend.flip_risk_events == 0
            for key, expected in reference.items():
                np.testing.assert_array_equal(
                    results[key], expected, err_msg=f"{direction}:{key}"
                )


class TestPrunedBackend:
    def _pruned(self, instance, powers, epsilon):
        dense = build_backend(instance, powers, backend="dense")
        sparse = build_backend(
            instance, powers, backend="sparse", sparse_epsilon=epsilon
        )
        return dense, sparse

    def test_pruning_drops_mass_within_budget(self):
        instance = clustered_instance(48, rng=5, direction="directed")
        powers = SquareRootPower()(instance)
        epsilon = 1e-3
        dense, sparse = self._pruned(instance, powers, epsilon)
        assert not sparse.is_lossless
        assert sparse.nnz < dense.nnz  # pruning actually removed entries
        full_dense = dense.class_sum_u(None)
        full_sparse = sparse.class_sum_u(None)
        gap = full_dense - full_sparse
        assert np.all(gap >= -1e-12)  # never over-estimates
        # Recorded bound dominates the real gap...
        assert np.all(gap <= sparse.pruned_mass_u + 1e-12 * full_dense)
        # ...and respects the epsilon budget.
        assert np.all(sparse.pruned_mass_u <= epsilon * full_dense * (1 + 1e-6))

    def test_infinite_entries_survive_pruning(self):
        instance = _shared_node_instance(Direction.BIDIRECTIONAL)
        powers = np.ones(instance.n)
        _, sparse = self._pruned(instance, powers, 0.5)
        assert sparse.has_infinite_gains
        # Adjacent shared-node requests must still see infinite gain.
        assert np.isinf(sparse.col_u(1)).any() or np.isinf(sparse.col_v(1)).any()
        ctx = get_context(instance, powers, backend="sparse", sparse_epsilon=0.5)
        slack = ctx.budget_slack(np.asarray([0, 1]))
        assert np.all(np.isneginf(slack))

    def test_certified_run_matches_dense(self):
        """At-risk admissions are counted; a zero counter certifies the
        sparse first-fit schedule equals the dense one."""
        instance = random_uniform_instance(48, rng=11, direction="directed")
        powers = SquareRootPower()(instance)
        dense_colors = first_fit_schedule(instance, powers).colors
        clear_context_cache()
        # Small epsilon: pruning is active but far from any margin.
        epsilon = 1e-5
        ctx = get_context(
            instance, powers, backend="sparse", sparse_epsilon=epsilon
        )
        assert not ctx.backend.is_lossless
        ctx.backend.reset_flip_risk()
        with backend_scope("sparse"), gains_epsilon(epsilon):
            sparse_colors = first_fit_schedule(instance, powers).colors
        assert ctx.backend.flip_risk_events == 0
        np.testing.assert_array_equal(sparse_colors, dense_colors)

    def test_certification_soundness_under_heavy_pruning(self):
        """The certification contract: whenever a sparse run diverges
        from the dense schedule, its flip-risk counter must be nonzero
        (an uncounted divergence would be a soundness bug).  Across the
        seed sweep heavy pruning must also trip the counter at least
        once, so the property has teeth."""
        epsilon = 0.3
        any_risk = False
        for seed in range(8):
            instance = random_uniform_instance(
                48, rng=400 + seed, direction="directed"
            )
            powers = SquareRootPower()(instance)
            dense_colors = first_fit_schedule(instance, powers).colors
            clear_context_cache()
            ctx = get_context(
                instance, powers, backend="sparse", sparse_epsilon=epsilon
            )
            ctx.backend.reset_flip_risk()
            with backend_scope("sparse"), gains_epsilon(epsilon):
                sparse_colors = first_fit_schedule(instance, powers).colors
            risk = ctx.backend.flip_risk_events
            any_risk = any_risk or risk > 0
            if risk == 0:
                np.testing.assert_array_equal(
                    sparse_colors,
                    dense_colors,
                    err_msg=f"seed {seed}: uncertified divergence",
                )
        assert any_risk, "epsilon=0.3 never entered an uncertainty band"

    def test_flip_risk_counts_per_run_and_cumulatively(self):
        """Certification must be answerable per run: the kernel keeps
        its own count while the shared backend accumulates, so repeated
        runs on one cached context stay attributable."""
        from repro.core.kernels import ScheduleKernel

        instance = random_uniform_instance(48, rng=401, direction="directed")
        powers = SquareRootPower()(instance)
        epsilon = 0.3
        ctx = get_context(
            instance, powers, backend="sparse", sparse_epsilon=epsilon
        )
        with backend_scope("sparse"), gains_epsilon(epsilon):
            first_fit_schedule(instance, powers)
            first_run = ctx.backend.flip_risk_events
            assert first_run > 0  # seed 401 trips the band (see above)
            first_fit_schedule(instance, powers)
        # The backend total accumulates run over run...
        assert ctx.backend.flip_risk_events == 2 * first_run
        # ...while a fresh kernel's own counter starts at zero and
        # counts only its run.
        kernel = ScheduleKernel(ctx)
        assert kernel.flip_risk_events == 0
        budget = ctx.budgets()
        order = np.argsort(-instance.link_distances, kind="stable")
        for req in order:
            color = kernel.first_fit_admit(int(req), budget * (1.0 + 1e-9))
            if color < 0:
                color = kernel.open_class()
            kernel.add(int(req), color)
        assert kernel.flip_risk_events == first_run
        assert ctx.backend.flip_risk_events == 3 * first_run

    def test_context_pool_keys_on_sparse_epsilon(self):
        """A pool must never serve a context built under a different
        pruning budget (mirrors get_context's cache key)."""
        from repro.core.batch import ContextPool

        instance = random_uniform_instance(12, rng=21)
        powers = SquareRootPower()(instance)
        pool = ContextPool()
        lossless = pool.get(instance, powers, backend="sparse")
        assert lossless.sparse_epsilon == 0.0
        with gains_epsilon(0.2):
            pruned = pool.get(instance, powers, backend="sparse")
        assert pruned is not lossless
        assert pruned.sparse_epsilon == 0.2
        explicit = pool.get(
            instance, powers, backend="sparse", sparse_epsilon=0.2
        )
        assert explicit is pruned
        assert len(pool) == 2


class TestTiledMetricAccess:
    def test_euclidean_blocks_bit_identical(self):
        rng = np.random.default_rng(4)
        points = rng.uniform(0, 50, size=(40, 2))
        metric = EuclideanMetric(points)
        full = metric.distance_matrix()
        rows = np.asarray([0, 7, 39, 3])
        cols = np.arange(40)
        np.testing.assert_array_equal(
            metric.distance_block(rows, cols), full[np.ix_(rows, cols)]
        )
        us = np.asarray([0, 5, 11])
        vs = np.asarray([39, 2, 11])
        np.testing.assert_array_equal(
            metric.pair_distances(us, vs), full[us, vs]
        )
        np.testing.assert_array_equal(
            metric.loss_block(rows, cols, 3.0),
            metric.loss_matrix(3.0)[np.ix_(rows, cols)],
        )

    def test_default_metric_blocks_match(self):
        metric = LineMetric([0.0, 1.0, 3.0, 6.0, 10.0])
        full = metric.distance_matrix()
        rows = np.asarray([1, 4])
        cols = np.asarray([0, 2, 3])
        np.testing.assert_array_equal(
            metric.distance_block(rows, cols), full[np.ix_(rows, cols)]
        )

    def test_instance_link_distances_unchanged(self):
        """Instance now resolves link lengths via pair_distances; the
        values must match the historical full-matrix gather bitwise."""
        instance = random_uniform_instance(16, rng=8)
        expected = instance.metric.distance_matrix()[
            instance.senders, instance.receivers
        ]
        np.testing.assert_array_equal(instance.link_distances, expected)

    def test_sparse_build_never_builds_distance_matrix(self):
        """The tiled CSR build must not materialize the metric's full
        matrix (that is the whole point at n >> 10^3)."""
        instance = random_uniform_instance(32, rng=12, direction="directed")
        powers = SquareRootPower()(instance)
        assert instance.metric._matrix_cache is None
        backend = build_backend(instance, powers, backend="sparse")
        backend.class_sum_u(None)
        assert instance.metric._matrix_cache is None


class TestBackendSelection:
    def test_resolve_and_default(self):
        assert resolve_backend(None) == default_backend()
        assert resolve_backend("DENSE") == "dense"
        with pytest.raises(ValueError):
            resolve_backend("gpu")
        with pytest.raises(ValueError):
            gains.resolve_sparse_epsilon(1.5)

    def test_scope_restores_default(self):
        before = default_backend()
        with backend_scope("sparse"):
            assert default_backend() == "sparse"
            with backend_scope(None):  # None = leave as is
                assert default_backend() == "sparse"
        assert default_backend() == before

    def test_set_default_backend_roundtrip(self):
        before = default_backend()
        try:
            set_default_backend("sparse")
            instance = random_uniform_instance(6, rng=3)
            powers = SquareRootPower()(instance)
            ctx = get_context(instance, powers)
            assert ctx.backend_name == "sparse"
            assert isinstance(ctx.backend, SparseBackend)
        finally:
            set_default_backend(before)

    def test_engine_disabled_ignores_backend(self):
        """The legacy (engine-off) path stays the dense from-scratch
        reference regardless of the backend default."""
        instance = random_uniform_instance(12, rng=9)
        powers = SquareRootPower()(instance)
        expected = first_fit_schedule(instance, powers).colors
        with backend_scope("sparse"), engine_disabled():
            legacy = first_fit_schedule(instance, powers).colors
        np.testing.assert_array_equal(legacy, expected)

    def test_dense_backend_reuses_context_arrays(self):
        instance = random_uniform_instance(8, rng=2)
        powers = SquareRootPower()(instance)
        ctx = get_context(instance, powers, backend="dense")
        backend = ctx.backend
        assert isinstance(backend, DenseBackend)
        assert ctx.gains_u is backend.gains_u
        assert ctx.gains_ut is backend.gains_ut


class TestArrayBackend:
    """Tentpole: the array-API backend under the numpy namespace is
    float64 bit-identical to the dense backend on every primitive."""

    @pytest.mark.parametrize("name", sorted(GRID))
    def test_primitives_match_dense(self, name):
        instance, powers = GRID[name]
        dense = build_backend(instance, powers, backend="dense")
        array = build_backend(instance, powers, backend="array")
        assert isinstance(array, ArrayBackend)
        assert array.name == "array"
        assert array.namespace == "numpy"
        assert array.is_lossless
        assert np.all(array.pruned_bound == 0.0)
        assert array.directed == dense.directed
        assert array.has_infinite_gains == dense.has_infinite_gains
        n = instance.n
        idx = np.arange(0, n, 2)
        members = np.asarray([0, n - 1])
        colors = np.arange(n) % 3
        for endpoint in ("u", "v"):
            def op(backend, method, *args, e=endpoint):
                return getattr(backend, f"{method}_{e}")(*args)

            for j in (0, n // 2, n - 1):
                np.testing.assert_array_equal(
                    op(dense, "col", j), op(array, "col", j)
                )
                np.testing.assert_array_equal(
                    op(dense, "row", j), op(array, "row", j)
                )
            np.testing.assert_array_equal(
                op(dense, "gather_cols", members),
                op(array, "gather_cols", members),
            )
            np.testing.assert_array_equal(
                op(dense, "block", idx), op(array, "block", idx)
            )
            np.testing.assert_array_equal(
                op(dense, "cross_block", idx, members),
                op(array, "cross_block", idx, members),
            )
            np.testing.assert_array_equal(
                op(dense, "row_sums", np.arange(n)),
                op(array, "row_sums", np.arange(n)),
            )
            for c in (None, colors):
                np.testing.assert_array_equal(
                    op(dense, "class_sum", c), op(array, "class_sum", c)
                )
            np.testing.assert_array_equal(
                op(dense, "dense"), op(array, "dense")
            )

    def test_numpy_namespace_is_zero_copy(self):
        """Under the numpy namespace the transfer boundary is the
        identity: primitives return host float64 arrays without a
        round-trip copy of the whole matrix."""
        instance, powers = GRID["euclid-bid"]
        array = build_backend(instance, powers, backend="array")
        col = array.col_u(0)
        assert isinstance(col, np.ndarray)
        assert col.dtype == np.float64

    def test_schedulers_match_dense_bitwise(self):
        for direction in ("directed", "bidirectional"):
            instance = random_uniform_instance(32, rng=78, direction=direction)
            powers = SquareRootPower()(instance)
            reference = {
                "first_fit": first_fit_schedule(instance, powers).colors,
                "peeling": peeling_schedule(instance, powers).colors,
                "local_search": improve_schedule(
                    instance, first_fit_schedule(instance, powers)
                ).colors,
            }
            clear_context_cache()
            with backend_scope("array"):
                results = {
                    "first_fit": first_fit_schedule(instance, powers).colors,
                    "peeling": peeling_schedule(instance, powers).colors,
                    "local_search": improve_schedule(
                        instance, first_fit_schedule(instance, powers)
                    ).colors,
                }
                backend = get_context(instance, powers).backend
                assert isinstance(backend, ArrayBackend)
                assert backend.flip_risk_events == 0
            for key, expected in reference.items():
                np.testing.assert_array_equal(
                    results[key], expected, err_msg=f"{direction}:{key}"
                )

    def test_namespace_validation(self):
        instance, powers = GRID["euclid-dir"]
        with pytest.raises(ValueError, match="array namespace"):
            build_backend(
                instance, powers, backend="array", array_namespace="jax"
            )
        with pytest.raises(ValueError, match="array namespace"):
            gains.resolve_array_namespace("pandas")

    def test_missing_framework_names_install_extra(self):
        """Selecting an uninstalled namespace fails at build with an
        error naming the package and the [array] extra (torch/cupy are
        not test dependencies)."""
        instance, powers = GRID["euclid-dir"]
        missing = []
        for name in ("torch", "cupy"):
            try:
                __import__(name)
            except ImportError:
                missing.append(name)
        if not missing:
            pytest.skip("torch and cupy both installed")
        with pytest.raises(ImportError, match=r"\[array\]"):
            build_backend(
                instance, powers, backend="array", array_namespace=missing[0]
            )

    def test_namespace_scope_and_default(self):
        before = gains.default_array_namespace()
        with gains.array_namespace_scope("numpy"):
            assert gains.default_array_namespace() == "numpy"
            with gains.array_namespace_scope(None):
                assert gains.default_array_namespace() == "numpy"
        assert gains.default_array_namespace() == before

    def test_context_cache_keys_on_namespace_and_device(self):
        instance, powers = GRID["euclid-bid"]
        dense_ctx = get_context(instance, powers, backend="dense")
        array_ctx = get_context(instance, powers, backend="array")
        again = get_context(instance, powers, backend="array")
        assert dense_ctx is not array_ctx
        assert array_ctx is again
        assert array_ctx.array_namespace == "numpy"
        assert array_ctx.backend_name == "array"


class TestArrayApiStrict:
    """The portability gate: every primitive must survive the strict
    array-API namespace (run in CI's array-backend job; skipped locally
    when array-api-strict is absent)."""

    @pytest.fixture(autouse=True)
    def _strict(self):
        pytest.importorskip("array_api_strict")

    @pytest.mark.parametrize("name", sorted(GRID))
    def test_primitives_match_dense(self, name):
        instance, powers = GRID[name]
        dense = build_backend(instance, powers, backend="dense")
        strict = build_backend(
            instance,
            powers,
            backend="array",
            array_namespace="array_api_strict",
        )
        assert strict.namespace == "array_api_strict"
        n = instance.n
        idx = np.arange(0, n, 2)
        members = np.asarray([0, n - 1])
        colors = np.arange(n) % 3
        for endpoint in ("u", "v"):
            def op(backend, method, *args, e=endpoint):
                return getattr(backend, f"{method}_{e}")(*args)

            np.testing.assert_array_equal(
                op(dense, "col", 0), op(strict, "col", 0)
            )
            np.testing.assert_array_equal(
                op(dense, "gather_cols", members),
                op(strict, "gather_cols", members),
            )
            np.testing.assert_array_equal(
                op(dense, "block", idx), op(strict, "block", idx)
            )
            np.testing.assert_array_equal(
                op(dense, "cross_block", idx, members),
                op(strict, "cross_block", idx, members),
            )
            np.testing.assert_array_equal(
                op(dense, "row_sums", np.arange(n)),
                op(strict, "row_sums", np.arange(n)),
            )
            for c in (None, colors):
                np.testing.assert_array_equal(
                    op(dense, "class_sum", c), op(strict, "class_sum", c)
                )
            np.testing.assert_array_equal(
                op(dense, "dense"), op(strict, "dense")
            )

    def test_schedules_match_dense(self):
        instance = random_uniform_instance(24, rng=79)
        powers = SquareRootPower()(instance)
        expected = first_fit_schedule(instance, powers).colors
        clear_context_cache()
        with backend_scope("array"), gains.array_namespace_scope(
            "array_api_strict"
        ):
            got = first_fit_schedule(instance, powers).colors
        np.testing.assert_array_equal(got, expected)
