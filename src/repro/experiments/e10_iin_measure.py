"""E10 — §1.3: the static interference measure ``I_in`` of [13].

Moscibroda et al. schedule any directed set in ``O(I_in log^2 n)``
colors, but ``I_in`` "can deviate by a factor that is as large as
Omega(n) from the optimal number of colors".  The experiment measures,
across instance families,

* the correlation between ``I_in`` and the measured schedule length
  (free-power first-fit), and
* the deviation family: on the (directed) nested instance every long
  link covers all shorter links' receivers, so ``I_in`` grows like
  ``n`` while an optimal power assignment schedules the instance in
  O(1) colors — the Omega(n) deviation the paper cites.
"""

from __future__ import annotations

from typing import Sequence


from repro.analysis.measures import in_interference_measure
from repro.instances.line_instances import exponential_chain_instance
from repro.instances.nested import nested_instance
from repro.instances.random_instances import random_uniform_instance
from repro.core.instance import Direction
from repro.runner.spec import ExperimentSpec
from repro.scheduling.registry import run_algorithm
from repro.util.rng import RngLike, ensure_rng, spawn_rngs
from repro.util.tables import Table


def run_iin_measure(
    n_values: Sequence[int] = (8, 16, 32),
    rng: RngLike = 51,
) -> Table:
    """Compare the I_in measure against measured schedule lengths."""
    rng = ensure_rng(rng)
    table = Table(
        title="E10: §1.3 — I_in static measure vs measured schedule length",
        columns=["family", "n", "iin", "colors_free_power", "iin_over_colors"],
    )
    table.add_note(
        "colors via free-power first-fit (an upper bound on OPT); families "
        "chosen to show both aligned and Omega(n)-deviating regimes"
    )
    for n in n_values:
        chain = exponential_chain_instance(n, gap_fraction=0.25)
        # beta = 0.3 keeps the nested instance one-color feasible for
        # geometric free powers while I_in still grows like n.
        nested = nested_instance(n, beta=0.3, direction=Direction.DIRECTED)
        child = spawn_rngs(rng, 1)[0]
        random_inst = random_uniform_instance(
            n, direction=Direction.DIRECTED, rng=child
        )
        for family, instance in (
            ("exp-chain", chain),
            ("nested", nested),
            ("random", random_inst),
        ):
            iin = in_interference_measure(instance)
            schedule = run_algorithm("first_fit_free_power", instance).schedule
            schedule.validate(instance)
            colors = schedule.num_colors
            table.add_row(
                family=family,
                n=n,
                iin=iin,
                colors_free_power=colors,
                iin_over_colors=iin / colors,
            )
    return table
SPEC = ExperimentSpec(
    id="e10",
    title="I_in measure vs schedule length",
    runner="repro.experiments.e10_iin_measure:run_iin_measure",
    full={"n_values": (8, 16, 32)},
    fast={"n_values": (8,)},
    seed=51,
    shard_by="n_values",
    metric="iin_over_colors",
    algorithms=("first_fit_free_power",),
)
