"""Power assignments.

The paper distinguishes *oblivious* assignments — the power of a pair
is a function ``f`` of the loss (equivalently, distance) between its
endpoints — from arbitrary per-request assignments.  This subpackage
provides:

* the classic oblivious families: :class:`UniformPower`,
  :class:`LinearPower`, the paper's :class:`SquareRootPower`, and the
  interpolating :class:`MeanPower` family ``p = l**tau``;
* :class:`FunctionPower` for arbitrary oblivious functions ``f``;
* :class:`ExplicitPower` for non-oblivious assignments (e.g. the
  geometric assignment that beats every oblivious ``f`` on the
  Theorem 1 instances).
"""

from repro.power.base import ObliviousPowerAssignment, PowerAssignment
from repro.power.explicit import ExplicitPower, geometric_power
from repro.power.oblivious import (
    FunctionPower,
    LinearPower,
    MeanPower,
    SquareRootPower,
    UniformPower,
)

__all__ = [
    "PowerAssignment",
    "ObliviousPowerAssignment",
    "UniformPower",
    "LinearPower",
    "SquareRootPower",
    "MeanPower",
    "FunctionPower",
    "ExplicitPower",
    "geometric_power",
]
