"""Tests for the Theorem 15 LP coloring algorithm."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.instances.nested import nested_instance
from repro.instances.random_instances import clustered_instance, random_uniform_instance
from repro.power.oblivious import SquareRootPower
from repro.scheduling.sqrt_coloring import (
    SqrtColoringStats,
    _distance_classes,
    sqrt_coloring,
)


class TestDistanceClasses:
    def test_factor_four_buckets(self):
        distances = np.array([1.0, 3.9, 4.1, 16.5, 70.0])
        classes = _distance_classes(distances)
        grouped = [set(c.tolist()) for c in classes]
        assert {0, 1} in grouped
        assert {2} in grouped
        assert {3} in grouped
        assert {4} in grouped

    def test_single_class(self):
        classes = _distance_classes(np.array([5.0, 6.0, 7.0]))
        assert len(classes) == 1

    def test_all_positions_covered(self, rng):
        distances = np.exp(rng.uniform(0, 10, size=30))
        classes = _distance_classes(distances)
        covered = sorted(np.concatenate(classes).tolist())
        assert covered == list(range(30))


class TestSqrtColoring:
    def test_feasible_and_complete(self, small_random_instance):
        schedule, stats = sqrt_coloring(small_random_instance, rng=0)
        schedule.validate(small_random_instance)
        assert np.all(schedule.colors >= 0)
        assert isinstance(stats, SqrtColoringStats)

    def test_uses_sqrt_powers(self, small_random_instance):
        schedule, _ = sqrt_coloring(small_random_instance, rng=0)
        expected = SquareRootPower()(small_random_instance)
        assert np.allclose(schedule.powers, expected)

    def test_greedy_variant_feasible(self, small_random_instance):
        schedule, stats = sqrt_coloring(small_random_instance, rng=0, use_lp=False)
        schedule.validate(small_random_instance)
        assert stats.lp_solves == 0

    def test_lp_variant_solves_lps(self, rng):
        inst = clustered_instance(15, rng=rng)
        _, stats = sqrt_coloring(inst, rng=0, use_lp=True)
        assert stats.lp_solves > 0

    def test_deterministic_given_seed(self, small_random_instance):
        a, _ = sqrt_coloring(small_random_instance, rng=7)
        b, _ = sqrt_coloring(small_random_instance, rng=7)
        assert np.array_equal(a.colors, b.colors)

    def test_nested_instance_gets_few_colors(self):
        inst = nested_instance(20, beta=0.5)
        schedule, _ = sqrt_coloring(inst, rng=0)
        schedule.validate(inst)
        # Theorem 2 regime: polylog colors, far below n.
        assert schedule.num_colors <= 12

    def test_stats_class_sizes_sum_to_n(self, small_random_instance):
        schedule, stats = sqrt_coloring(small_random_instance, rng=0)
        assert sum(stats.class_sizes) == small_random_instance.n
        assert stats.rounds == len(stats.class_sizes)

    def test_beta_override(self, small_random_instance):
        schedule, _ = sqrt_coloring(small_random_instance, rng=0, beta=4.0)
        schedule.validate(small_random_instance, beta=4.0)

    def test_single_request(self):
        inst = random_uniform_instance(1, rng=0)
        schedule, _ = sqrt_coloring(inst, rng=0)
        assert schedule.num_colors == 1

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_always_feasible(self, seed):
        inst = random_uniform_instance(10, rng=seed)
        schedule, _ = sqrt_coloring(inst, rng=seed)
        schedule.validate(inst)


class TestSqrtColoringDirected:
    def test_directed_instances_supported(self, rng):
        from repro.core.instance import Direction

        inst = random_uniform_instance(
            12, direction=Direction.DIRECTED, rng=rng
        )
        schedule, _ = sqrt_coloring(inst, rng=0)
        schedule.validate(inst)

    def test_directed_never_needs_more_than_bidirectional(self):
        from repro.core.instance import Direction

        for seed in range(3):
            bidir = random_uniform_instance(12, rng=seed)
            direct = bidir.with_direction(Direction.DIRECTED)
            sched_b, _ = sqrt_coloring(bidir, rng=seed)
            sched_d, _ = sqrt_coloring(direct, rng=seed)
            # Directed constraints are weaker pointwise; the randomized
            # algorithm is not strictly monotone, allow +1 slack.
            assert sched_d.num_colors <= sched_b.num_colors + 1


class TestSqrtColoringWithLocalSearch:
    def test_local_search_composes(self, rng):
        from repro.instances.random_instances import clustered_instance
        from repro.scheduling.local_search import improve_schedule

        inst = clustered_instance(20, rng=rng)
        schedule, _ = sqrt_coloring(inst, rng=0)
        improved = improve_schedule(inst, schedule)
        improved.validate(inst)
        assert improved.num_colors <= schedule.num_colors


class TestSingleRequestFallback:
    """The guaranteed-progress path: when no candidate survives the
    repair/thinning passes (here: ambient noise so strong that even
    singletons miss their SINR target), every round must still extract
    the longest remaining request on its own."""

    def _run(self, noise):
        from repro.core.instance import Instance
        from repro.instances.random_instances import random_uniform_instance

        base = random_uniform_instance(6, rng=3)
        inst = Instance(
            base.metric,
            base.senders,
            base.receivers,
            direction=base.direction,
            alpha=base.alpha,
            beta=base.beta,
            noise=noise,
        )
        return inst, sqrt_coloring(inst, rng=0, use_lp=False)

    def test_fallback_emits_singletons_and_terminates(self):
        inst, (schedule, stats) = self._run(noise=1e12)
        # One request per round, each class a singleton.
        assert stats.rounds == inst.n
        assert sorted(schedule.colors.tolist()) == list(range(inst.n))
        assert stats.class_sizes == [1] * inst.n

    def test_fallback_matches_between_engine_paths(self):
        from repro.core.context import clear_context_cache, engine_disabled

        clear_context_cache()
        _, (engine_schedule, _) = self._run(noise=1e12)
        with engine_disabled():
            _, (legacy_schedule, _) = self._run(noise=1e12)
        assert (
            engine_schedule.colors.tolist() == legacy_schedule.colors.tolist()
        )

    def test_fallback_picks_longest_first(self):
        import numpy as np

        inst, (schedule, stats) = self._run(noise=1e12)
        # Round r extracts the longest request still alive, so colors
        # sort by descending link length (ties impossible here).
        order = np.argsort(-inst.link_distances, kind="stable")
        assert schedule.colors[order].tolist() == list(range(inst.n))
