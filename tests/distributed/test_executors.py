"""Unit tests for the ShardExecutor abstraction (serial + process)."""

import os
import signal

import pytest

from repro.resilience import RetryPolicy
from repro.runner.executors import (
    SHARD_EXECUTORS,
    ProcessShardExecutor,
    SerialShardExecutor,
    ShardExecutorError,
    build_shard_executor,
)


class Counter:
    """Tiny deterministic actor used across the executor tests."""

    def __init__(self, payload):
        self.base = int(payload)

    def add(self, x):
        return self.base + int(x)

    def pid(self):
        return os.getpid()

    def boom(self):
        raise ValueError("deterministic actor error")

    def die(self):
        os.kill(os.getpid(), signal.SIGKILL)


def _counter_factory(payload):
    return Counter(payload)


def _bad_factory(payload):
    raise ValueError(f"bad shard payload: {payload!r}")


class _Unpicklable:
    def __reduce__(self):
        raise TypeError("not picklable")


class TestSerialExecutor:
    def test_call_broadcast_scatter_order(self):
        with SerialShardExecutor(3) as ex:
            ex.start(_counter_factory, [10, 20, 30])
            assert ex.call(1, "add", 5) == 25
            assert ex.broadcast("add", 1) == [11, 21, 31]
            assert ex.scatter("add", [(1,), (2,), (3,)]) == [11, 22, 33]

    def test_payload_count_validated(self):
        ex = SerialShardExecutor(2)
        with pytest.raises(ValueError, match="one payload per worker"):
            ex.start(_counter_factory, [1])

    def test_double_start_rejected(self):
        ex = SerialShardExecutor(1)
        ex.start(_counter_factory, [0])
        with pytest.raises(RuntimeError, match="already started"):
            ex.start(_counter_factory, [0])

    def test_call_before_start_rejected(self):
        with pytest.raises(RuntimeError, match="not started"):
            SerialShardExecutor(1).call(0, "add", 1)

    def test_actor_error_propagates(self):
        ex = SerialShardExecutor(1)
        ex.start(_counter_factory, [0])
        with pytest.raises(ValueError, match="deterministic actor error"):
            ex.call(0, "boom")

    def test_workers_validated(self):
        with pytest.raises(ValueError, match="workers"):
            SerialShardExecutor(0)


class TestBuildShardExecutor:
    def test_names(self):
        assert build_shard_executor("serial", 2).workers == 2
        proc = build_shard_executor("process", 2)
        assert isinstance(proc, ProcessShardExecutor)
        proc.close()

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="shard executor"):
            build_shard_executor("mpi", 2)

    def test_registry_constant_matches_gains_copy(self):
        from repro.core.gains import SHARD_EXECUTORS as gains_names

        assert tuple(SHARD_EXECUTORS) == tuple(gains_names)

    def test_none_resolves_process_default(self):
        from repro.core.gains import shard_executor_scope

        with shard_executor_scope("serial"):
            assert isinstance(build_shard_executor(None, 1), SerialShardExecutor)


class TestProcessExecutor:
    def test_calls_run_in_real_processes(self):
        with ProcessShardExecutor(2) as ex:
            ex.start(_counter_factory, [100, 200])
            assert ex.broadcast("add", 7) == [107, 207]
            pids = ex.broadcast("pid")
            assert len(set(pids)) == 2
            assert os.getpid() not in pids

    def test_scatter_order_and_results(self):
        with ProcessShardExecutor(2) as ex:
            ex.start(_counter_factory, [1, 2])
            assert ex.scatter("add", [(10,), (20,)]) == [11, 22]

    def test_actor_error_propagates_without_respawn(self):
        with ProcessShardExecutor(1) as ex:
            ex.start(_counter_factory, [0])
            pid = ex.call(0, "pid")
            with pytest.raises(ShardExecutorError, match="ValueError") as info:
                ex.call(0, "boom")
            assert info.value.failure.shard_index == 0
            assert info.value.failure.error_type == "ValueError"
            # Same process is still serving: no respawn happened.
            assert ex.call(0, "pid") == pid

    def test_sigkill_respawns_and_replays(self):
        with ProcessShardExecutor(2) as ex:
            ex.start(_counter_factory, [10, 20])
            victim = ex.worker_pids()[1]
            os.kill(victim, signal.SIGKILL)
            # The dead worker is respawned from its payload mid-call.
            assert ex.broadcast("add", 1) == [11, 21]
            assert ex.worker_pids()[1] != victim

    def test_suicide_inside_call_is_replayed(self):
        with ProcessShardExecutor(1) as ex:
            ex.start(_counter_factory, [5])
            with pytest.raises(ShardExecutorError, match="retry budget"):
                # `die` kills the worker during every replay, so the
                # budget must eventually exhaust with a ShardFailure.
                ex.call(0, "die")

    def test_retry_budget_recorded_in_failure(self):
        retry = RetryPolicy(max_attempts=2, base_delay=0.0)
        with ProcessShardExecutor(1, retry=retry) as ex:
            ex.start(_counter_factory, [5])
            with pytest.raises(ShardExecutorError) as info:
                ex.call(0, "die")
            assert info.value.failure.attempts == 2
            assert info.value.failure.key == "die"

    def test_build_error_surfaces_without_retry(self):
        ex = ProcessShardExecutor(1)
        with pytest.raises(ShardExecutorError, match="failed to build"):
            ex.start(_bad_factory, [17])
        ex.close()

    def test_unpicklable_payload_fails_start(self):
        ex = ProcessShardExecutor(1)
        with pytest.raises(Exception):
            ex.start(_counter_factory, [_Unpicklable()])
        ex.close()

    def test_close_idempotent_and_kills_workers(self):
        ex = ProcessShardExecutor(2)
        ex.start(_counter_factory, [0, 1])
        pids = ex.worker_pids()
        ex.close()
        ex.close()
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
        with pytest.raises(RuntimeError, match="closed"):
            ex.call(0, "add", 1)
