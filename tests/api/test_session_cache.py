"""Context-cache LRU interacting with live Sessions (satellite).

Eviction from the global context LRU must never invalidate a session
mid-schedule — sessions pin their context with a strong reference —
and the weakref recency bookkeeping must stay GC-safe while sessions
come and go.
"""

import gc

import numpy as np
import pytest

from repro.api import Problem
from repro.core.context import (
    cache_info,
    clear_context_cache,
    context_cache_limit,
    get_context,
    set_context_cache_limit,
)
from repro.instances.random_instances import random_uniform_instance
from repro.power.oblivious import SquareRootPower
from repro.scheduling.firstfit import first_fit_schedule


@pytest.fixture(autouse=True)
def _restore_cache_limit():
    previous = context_cache_limit()
    clear_context_cache()
    yield
    set_context_cache_limit(previous)
    clear_context_cache()


def _churn_cache(count: int, n: int = 6) -> None:
    """Create *count* fresh contexts to push older entries out."""
    for i in range(count):
        inst = random_uniform_instance(n, rng=9000 + i)
        get_context(inst, SquareRootPower()(inst))


class TestEvictionVsLiveSessions:
    def test_evicted_session_still_schedules_identically(self):
        set_context_cache_limit(2)
        instance = random_uniform_instance(10, rng=1)
        session = Problem(instance).session()
        first = session.schedule("first_fit")
        # Push the session's context out of the global LRU.
        _churn_cache(8)
        info = cache_info()
        assert info["contexts"] <= info["limit"]
        # The session still holds its context and reschedules bit-identically.
        assert session.context is not None
        second = session.reschedule()
        np.testing.assert_array_equal(first.colors, second.colors)
        ref = first_fit_schedule(instance, session.powers)
        np.testing.assert_array_equal(second.colors, ref.colors)

    def test_eviction_does_not_corrupt_pinned_context_state(self):
        set_context_cache_limit(1)
        instance = random_uniform_instance(8, rng=2)
        session = Problem(instance).session()
        context = session.context
        margins_before = context.margins()
        _churn_cache(5)
        # The pinned context object answers queries unchanged after its
        # cache slot was reused.
        np.testing.assert_array_equal(margins_before, context.margins())
        acc = context.accumulator(members=[0])
        assert len(acc) == 1

    def test_session_context_is_stable_across_calls(self):
        set_context_cache_limit(4)
        session = Problem(random_uniform_instance(8, rng=3)).session()
        context = session.context
        session.schedule("first_fit")
        _churn_cache(6)
        session.schedule("peeling")
        assert session.context is context


class TestCertificationUnderEviction:
    def test_flip_risk_counted_after_eviction(self):
        """Certification must measure the context the algorithm really
        ran on: after LRU eviction the session re-pins its context, so
        the at-risk admission count matches the un-evicted run instead
        of silently reading 0 from a stale object."""
        set_context_cache_limit(4)
        instance = random_uniform_instance(48, rng=3)

        baseline_session = Problem(
            instance, backend="sparse", sparse_epsilon=0.2
        ).session()
        baseline = baseline_session.schedule("first_fit")
        # The pruned run must actually have at-risk admissions for this
        # regression test to mean anything.
        assert baseline.provenance.flip_risk_events > 0
        assert baseline.provenance.certified is False

        clear_context_cache()
        session = Problem(
            instance, backend="sparse", sparse_epsilon=0.2
        ).session()
        context = session.context  # build + pin
        _churn_cache(8)  # evict it from the global LRU
        churned = session.schedule("first_fit")
        assert (
            churned.provenance.flip_risk_events
            == baseline.provenance.flip_risk_events
        )
        assert churned.provenance.certified is False
        # Re-pinning reuses the session's own warm context, not a
        # cold rebuild.
        assert session.context is context
        np.testing.assert_array_equal(churned.colors, baseline.colors)

    def test_fixed_power_algorithms_pin_the_context(self):
        """Every needs_powers algorithm builds and pins the session
        context (the pinning guarantee is not certifiable-only)."""
        session = Problem(random_uniform_instance(8, rng=6)).session()
        assert session._context is None
        session.schedule("peeling")
        assert session._context is not None


class TestAddRequestsReleasesOldContext:
    """Growing a session must not leak the old instance's cache slot.

    ``add_requests`` now extends the pinned context in place: the old
    cache key is released eagerly (no cycle GC needed) and the same —
    grown — context object is re-pinned under the new key, so the live
    slot count never drifts and no dead entries crowd out the LRU."""

    def test_old_slot_moved_without_gc(self):
        set_context_cache_limit(4)
        session = Problem(random_uniform_instance(6, rng=50)).session()
        session.schedule("first_fit")
        before = cache_info()["contexts"]
        assert before >= 1
        context = session.context
        gc.disable()
        try:
            session.add_requests([(0, 3)])
            # The stale key is gone immediately — no cycle GC needed —
            # and the grown context re-occupies exactly one slot.
            assert cache_info()["contexts"] == before
            assert session._context is context
            assert context.n == 7
        finally:
            gc.enable()

    def test_repeated_growth_under_pressure(self):
        set_context_cache_limit(3)
        session = Problem(random_uniform_instance(6, rng=52)).session()
        gc.disable()
        try:
            for i in range(6):
                session.schedule("first_fit")
                session.add_requests([(0, 3 + (i % 5))])
            session.schedule("first_fit")
            # Only the live context occupies a slot; without the eager
            # release the dead entries would pile up to the limit.
            assert cache_info()["contexts"] == 1
        finally:
            gc.enable()

    def test_grown_session_schedules_correctly(self):
        session = Problem(random_uniform_instance(6, rng=53)).session()
        session.schedule("first_fit")
        session.add_requests([(0, 5), (2, 9)])
        result = session.reschedule()
        assert result.colors.size == 8
        ref = first_fit_schedule(session.instance, session.powers)
        np.testing.assert_array_equal(result.colors, ref.colors)


class TestWeakrefRecencyGcSafety:
    def test_dead_sessions_release_their_instances(self):
        set_context_cache_limit(4)
        for i in range(6):
            session = Problem(random_uniform_instance(6, rng=100 + i)).session()
            session.schedule("first_fit")
        del session
        gc.collect()
        info = cache_info()
        # Dropped instances are reclaimable; the live-context count
        # stays within the bound either way.
        assert info["contexts"] <= info["limit"]

    def test_churn_with_interleaved_live_session(self):
        set_context_cache_limit(2)
        live = Problem(random_uniform_instance(7, rng=4)).session()
        baseline = live.schedule("first_fit")
        for i in range(4):
            _churn_cache(3)
            gc.collect()
            again = live.reschedule()
            np.testing.assert_array_equal(baseline.colors, again.colors)

    def test_shrinking_limit_below_live_sessions_is_safe(self):
        set_context_cache_limit(8)
        sessions = [
            Problem(random_uniform_instance(6, rng=200 + i)).session()
            for i in range(4)
        ]
        results = [s.schedule("first_fit") for s in sessions]
        set_context_cache_limit(1)
        gc.collect()
        for session, result in zip(sessions, results):
            np.testing.assert_array_equal(
                session.reschedule().colors, result.colors
            )
