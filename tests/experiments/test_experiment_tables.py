"""Smoke + shape tests for every experiment module (E1 .. E10).

Each test runs the experiment at reduced size and asserts the *shape*
of the paper claim it reproduces, not exact numbers.
"""

import pytest

from repro.experiments import (
    run_coloring_algorithm,
    run_directed_lower_bound,
    run_directed_vs_bidirectional,
    run_energy_tradeoff,
    run_gain_scaling,
    run_iin_measure,
    run_nested_intuition,
    run_sqrt_universal,
    run_star_analysis,
    run_tree_embedding,
)
from repro.util.tables import Table, format_table


class TestE1DirectedLowerBound:
    @pytest.fixture(scope="class")
    def table(self):
        return run_directed_lower_bound(n_values=(4, 8, 16))

    def test_returns_table(self, table):
        assert isinstance(table, Table)
        assert len(table) > 0

    def test_ratio_grows_with_n(self, table):
        for assignment in ("uniform", "linear", "loss^1.5"):
            rows = [r for r in table.rows if r["assignment"] == assignment]
            ratios = [r["ratio"] for r in rows]
            assert ratios == sorted(ratios)
            assert ratios[-1] > ratios[0]

    def test_free_power_stays_constant(self, table):
        for row in table.rows:
            assert row["colors_free_power"] <= 2

    def test_linear_hits_full_omega_n(self, table):
        rows = [r for r in table.rows if r["assignment"] == "linear"]
        for row in rows:
            assert row["colors_oblivious"] == row["n"]


class TestE2Nested:
    @pytest.fixture(scope="class")
    def table(self):
        return run_nested_intuition(n_values=(5, 10, 20))

    def test_uniform_and_linear_stuck_at_constant(self, table):
        for assignment in ("uniform", "linear", "loss^1.5"):
            rows = [r for r in table.rows if r["assignment"] == assignment]
            assert all(r["capacity"] <= 2 for r in rows)

    def test_sqrt_capacity_grows(self, table):
        rows = [r for r in table.rows if r["assignment"] == "sqrt"]
        caps = [r["capacity"] for r in rows]
        assert caps[-1] > caps[0]


class TestE3SqrtUniversal:
    @pytest.fixture(scope="class")
    def table(self):
        return run_sqrt_universal(n_values=(8, 16), trials=2, rng=5)

    def test_ratio_stays_small(self, table):
        # Polylog regime: ratio far below n / log n.
        for row in table.rows:
            assert row["ratio"] <= 3.0 + row["log2n"]


class TestE4Coloring:
    @pytest.fixture(scope="class")
    def table(self):
        return run_coloring_algorithm(n_values=(8, 16), trials=2, rng=6)

    def test_trivial_is_worst(self, table):
        for row in table.rows:
            assert row["trivial"] >= row["first_fit"]
            assert row["trivial"] >= row["lp"] - 1e-9

    def test_approx_factor_below_log(self, table):
        for row in table.rows:
            assert row["approx_factor"] <= 2.0 + row["log2n"]


class TestE5GainScaling:
    @pytest.fixture(scope="class")
    def table(self):
        return run_gain_scaling(n=16, trials=2, rng=7)

    def test_blowup_within_envelope(self, table):
        for row in table.rows:
            assert row["blowup"] <= row["envelope_s_logn"] + 1.0

    def test_densest_class_respects_prop3(self, table):
        for row in table.rows:
            assert row["densest_class"] >= row["prop3_bound"] - 1e-9


class TestE6StarAnalysis:
    @pytest.fixture(scope="class")
    def table(self):
        return run_star_analysis(m=30, separations=(16.0, 64.0), trials=2, rng=8)

    def test_fraction_meets_envelope(self, table):
        for row in table.rows:
            assert row["fraction_kept"] >= row["envelope"] - 0.2

    def test_larger_separation_keeps_more(self, table):
        for regime in ("mixed", "small", "large"):
            rows = [r for r in table.rows if r["regime"] == regime]
            fractions = [r["fraction_kept"] for r in rows]
            assert fractions[-1] >= fractions[0] - 0.05


class TestE7TreeEmbedding:
    @pytest.fixture(scope="class")
    def table(self):
        return run_tree_embedding(n_values=(8,), trials=1, rng=9)

    def test_dominance_always_holds(self, table):
        assert all(row["dominates"] for row in table.rows)

    def test_calibrated_core_hits_target(self, table):
        for row in table.rows:
            assert row["calibrated_core_fraction"] >= 0.9 - 1e-9


class TestE8DirectedVsBidirectional:
    @pytest.fixture(scope="class")
    def table(self):
        return run_directed_vs_bidirectional(n_values=(8,), trials=2, rng=10)

    def test_simulation_is_exactly_double_and_feasible(self, table):
        for row in table.rows:
            assert row["simulation_feasible"]
            assert row["simulation_colors"] == pytest.approx(
                2 * row["colors_bidirectional"]
            )


class TestE9Energy:
    @pytest.fixture(scope="class")
    def table(self):
        return run_energy_tradeoff(n=12, trials=1, rng=11)

    def test_sqrt_between_linear_and_uniform_energy(self, table):
        by_instance = {}
        for row in table.rows:
            by_instance.setdefault(row["instance"], {})[row["assignment"]] = row
        for rows in by_instance.values():
            assert rows["linear"]["total_energy"] <= rows["sqrt"]["total_energy"]
            assert rows["sqrt"]["total_energy"] <= rows["uniform"]["total_energy"]

    def test_sqrt_wins_colors_on_nested(self, table):
        nested = {
            row["assignment"]: row
            for row in table.rows
            if row["instance"] == "nested"
        }
        assert nested["sqrt"]["colors"] < nested["uniform"]["colors"]
        assert nested["sqrt"]["colors"] < nested["linear"]["colors"]


class TestE10Iin:
    @pytest.fixture(scope="class")
    def table(self):
        return run_iin_measure(n_values=(8, 16), rng=12)

    def test_nested_shows_omega_n_deviation(self, table):
        rows = [r for r in table.rows if r["family"] == "nested"]
        deviations = [r["iin_over_colors"] for r in rows]
        assert deviations[-1] > deviations[0]
        assert deviations[-1] >= 3.0


class TestE3bTheorem2Literal:
    def test_literal_premise_gives_tiny_colorings(self):
        from repro.experiments import run_theorem2_literal

        table = run_theorem2_literal(n_values=(10,), trials=2, rng=15)
        for row in table.rows:
            assert row["colors_sqrt_firstfit"] <= 4
            assert row["colors_sqrt_firstfit"] <= row["polylog_envelope"]


class TestE13Exact:
    def test_factors_at_least_one(self):
        from repro.experiments import run_exact_certification

        table = run_exact_certification(n_values=(6,), trials=2, rng=16)
        for row in table.rows:
            assert row["first_fit_factor"] >= 1.0 - 1e-9
            assert row["lp_factor"] >= 1.0 - 1e-9
            assert row["exact_free_opt"] <= row["exact_opt"] + 1e-9


class TestFormatting:
    def test_all_tables_render(self):
        table = run_nested_intuition(n_values=(5,))
        text = format_table(table)
        assert "E2" in text
