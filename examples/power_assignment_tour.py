#!/usr/bin/env python
"""A tour of oblivious power assignments on the nested instance.

Recreates the §1.2 intuition: on the nested requests
``u_i = -2^i, v_i = 2^i``,

* uniform power lets inner pairs drown outer pairs,
* linear (and superlinear) power lets outer pairs drown inner pairs,
* the square-root assignment balances both directions and schedules a
  constant fraction simultaneously.

Run:  python examples/power_assignment_tour.py
"""

import numpy as np

from repro import (
    LinearPower,
    MeanPower,
    SquareRootPower,
    UniformPower,
    greedy_max_feasible_subset,
    nested_instance,
    sinr_margins,
)


def main() -> None:
    n = 24
    instance = nested_instance(n, beta=0.5)
    print(f"nested instance with {n} bidirectional pairs, "
          f"radii 2^1 .. 2^{n}\n")

    assignments = [
        UniformPower(),
        LinearPower(),
        MeanPower(1.5),
        MeanPower(0.75),
        SquareRootPower(),
    ]
    print(f"{'assignment':>12} | {'capacity':>8} | {'fraction':>8} | scheduled pairs")
    print("-" * 70)
    for assignment in assignments:
        powers = assignment(instance)
        subset = greedy_max_feasible_subset(instance, powers)
        print(f"{assignment.name:>12} | {subset.size:>8} | "
              f"{subset.size / n:>8.2f} | {subset.tolist()}")

    print("\nWhy uniform fails: margins when ALL pairs transmit at power 1")
    margins = sinr_margins(instance, UniformPower()(instance),
                           colors=np.zeros(n, dtype=int))
    print("  outermost pair margin:", f"{margins[-1]:.2e}",
          "(drowned by inner signals)")
    print("  innermost pair margin:", f"{margins[0]:.2e}")

    print("\nWhy sqrt works: same experiment under the sqrt assignment")
    margins = sinr_margins(instance, SquareRootPower()(instance),
                           colors=np.zeros(n, dtype=int))
    print("  worst margin:", f"{margins.min():.2e}",
          "- every pair is within a constant factor of feasibility,")
    print("  so a constant fraction can be kept (Theorem 2's engine).")


if __name__ == "__main__":
    main()
