"""Tests for the Lemma 5 star analysis machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nodeloss.feasibility import is_gamma_feasible, max_feasible_gain
from repro.nodeloss.instance import StarNodeLoss
from repro.nodeloss.star_analysis import (
    claim12_trim,
    decay_classes,
    large_loss_threshold,
    lemma5_subset,
    small_loss_subset,
    split_large_small,
)


def random_star(m, rng, loss_scale=(0.0, 5.0)):
    deltas = np.exp(rng.uniform(0.0, 6.0, size=m))
    losses = np.exp(rng.uniform(*loss_scale, size=m))
    return StarNodeLoss(deltas, losses, alpha=3.0)


class TestThresholdAndSplit:
    def test_threshold_formula(self):
        assert large_loss_threshold(3.0, 2.0) == pytest.approx(2.0**4 / 2.0)

    def test_split_partitions(self, rng):
        star = random_star(20, rng)
        gamma_prime = max_feasible_gain(star)
        large, small = split_large_small(star, gamma_prime)
        assert len(large) + len(small) == star.m
        assert set(large.tolist()).isdisjoint(small.tolist())

    def test_split_respects_threshold(self, rng):
        star = random_star(20, rng)
        gamma_prime = 0.5
        threshold = large_loss_threshold(star.alpha, gamma_prime)
        large, small = split_large_small(star, gamma_prime)
        assert np.all(star.loss_to_decay[large] > threshold)
        assert np.all(star.loss_to_decay[small] <= threshold)

    def test_invalid_gamma_prime(self):
        with pytest.raises(ValueError):
            large_loss_threshold(3.0, 0.0)


class TestDecayClasses:
    def test_every_node_in_exactly_one_class(self, rng):
        star = random_star(30, rng)
        classes = decay_classes(star)
        all_nodes = np.concatenate(list(classes.values()))
        assert sorted(all_nodes.tolist()) == list(range(30))

    def test_classes_are_geometric(self, rng):
        star = random_star(30, rng)
        classes = decay_classes(star)
        d_min = star.decay.min()
        for j, members in classes.items():
            normalised = star.decay[members] / d_min
            assert np.all(normalised <= 2.0**j * (1 + 1e-9))
            if j > 0:
                assert np.all(normalised > 2.0 ** (j - 1) * (1 - 1e-9))

    def test_equal_decays_single_class(self):
        star = StarNodeLoss([5.0] * 4, [1.0, 2.0, 3.0, 4.0])
        classes = decay_classes(star)
        assert len(classes) == 1


class TestClaim12Trim:
    def test_trims_loss_outliers(self):
        # Nine modest nodes and one node with a huge loss parameter at
        # the same decay: the outlier must go.
        deltas = np.full(10, 2.0)
        losses = np.array([1.0] * 9 + [1e9])
        star = StarNodeLoss(deltas, losses)
        kept = claim12_trim(star, np.arange(10), gamma_prime=1.0, eps=0.3)
        assert 9 not in kept.tolist()

    def test_keeps_uniform_nodes(self):
        star = StarNodeLoss(np.full(8, 3.0), np.full(8, 0.5))
        kept = claim12_trim(star, np.arange(8), gamma_prime=0.1, eps=0.3)
        assert kept.size == 8

    def test_invalid_eps(self, rng):
        star = random_star(5, rng)
        with pytest.raises(ValueError):
            claim12_trim(star, np.arange(5), gamma_prime=1.0, eps=0.0)


class TestSmallLossSubset:
    def test_result_is_gamma_feasible(self, rng):
        star = random_star(40, rng, loss_scale=(-3.0, 1.0))
        gamma_prime = max_feasible_gain(star)
        gamma = gamma_prime / 16.0
        kept = small_loss_subset(star, gamma, gamma_prime=gamma_prime)
        if kept.size:
            assert is_gamma_feasible(star, star.sqrt_powers(), kept, gamma)

    def test_keeps_most_nodes_at_large_separation(self, rng):
        star = random_star(40, rng, loss_scale=(-3.0, 1.0))
        gamma_prime = max_feasible_gain(star)
        kept = small_loss_subset(star, gamma_prime / 256.0, gamma_prime=gamma_prime)
        assert kept.size >= 0.7 * star.m


class TestLemma5:
    def test_certified_feasible(self, rng):
        star = random_star(30, rng)
        gamma_prime = max_feasible_gain(star)
        gamma = gamma_prime / 32.0
        result = lemma5_subset(star, gamma, gamma_prime=gamma_prime)
        if result.kept.size:
            assert is_gamma_feasible(
                star, star.sqrt_powers(), result.kept, gamma
            )

    def test_fraction_envelope(self, rng):
        """Retained fraction respects 1 - O((gamma/gamma')^{2/3})."""
        star = random_star(60, rng)
        gamma_prime = max_feasible_gain(star)
        for separation in (16.0, 64.0):
            result = lemma5_subset(
                star, gamma_prime / separation, gamma_prime=gamma_prime
            )
            envelope = 1.0 - (1.0 / separation) ** (2.0 / 3.0)
            assert result.fraction_kept >= envelope - 0.15

    def test_drop_accounting_sums(self, rng):
        star = random_star(25, rng)
        gamma_prime = max_feasible_gain(star)
        result = lemma5_subset(star, gamma_prime / 10.0, gamma_prime=gamma_prime)
        total = (
            result.kept.size
            + result.dropped_trim
            + result.dropped_selection
            + result.dropped_window
            + result.dropped_final
        )
        assert total == star.m

    def test_non_interacting_star_keeps_all(self):
        # Huge distances, tiny losses: no interference to speak of.
        star = StarNodeLoss([1e6, 2e6, 3e6], [1.0, 1.0, 1.0])
        gamma_prime = max_feasible_gain(star)
        result = lemma5_subset(star, 1.0, gamma_prime=gamma_prime)
        assert result.kept.size == 3

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_always_certified(self, seed):
        rng = np.random.default_rng(seed)
        star = random_star(15, rng)
        gamma_prime = max_feasible_gain(star)
        gamma = gamma_prime / 20.0
        result = lemma5_subset(star, gamma, gamma_prime=gamma_prime)
        if result.kept.size:
            assert is_gamma_feasible(star, star.sqrt_powers(), result.kept, gamma)
