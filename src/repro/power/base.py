"""Power-assignment interfaces.

A :class:`PowerAssignment` maps an instance to a positive power vector.
:class:`ObliviousPowerAssignment` specialises to the paper's definition
(§1.1): "a power assignment is called oblivious if there is a function
``f: R>0 -> R>0`` such that, for every i, ``p_i = f(l(u_i, v_i))``."
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.errors import InvalidScheduleError
from repro.core.instance import Instance


class PowerAssignment(abc.ABC):
    """Maps instances to power vectors."""

    @abc.abstractmethod
    def powers(self, instance: Instance) -> np.ndarray:
        """Positive power vector of length ``instance.n``."""

    @property
    def name(self) -> str:
        """Short human-readable name used in experiment tables."""
        return type(self).__name__

    def __call__(self, instance: Instance) -> np.ndarray:
        result = np.asarray(self.powers(instance), dtype=float)
        if result.shape != (instance.n,):
            raise InvalidScheduleError(
                f"{self.name} produced shape {result.shape}, "
                f"expected ({instance.n},)"
            )
        if not np.all(np.isfinite(result)) or np.any(result <= 0):
            raise InvalidScheduleError(
                f"{self.name} produced non-positive or non-finite powers"
            )
        return result


class ObliviousPowerAssignment(PowerAssignment):
    """A power assignment defined by a function of the link loss."""

    @abc.abstractmethod
    def power_of_loss(self, loss: np.ndarray) -> np.ndarray:
        """Apply the oblivious function ``f`` elementwise to losses."""

    def powers(self, instance: Instance) -> np.ndarray:
        return np.asarray(
            self.power_of_loss(instance.link_losses), dtype=float
        ).reshape(-1)

    def is_oblivious(self) -> bool:
        """All assignments of this class are oblivious by construction."""
        return True
