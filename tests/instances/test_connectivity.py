"""Tests for the strong-connectivity workloads."""

import networkx as nx
import numpy as np
import pytest

from repro.core.instance import Direction
from repro.geometry.euclidean import EuclideanMetric
from repro.instances.connectivity import (
    exponential_node_chain,
    mst_connectivity_instance,
    nearest_neighbor_instance,
)


@pytest.fixture
def metric(rng):
    return EuclideanMetric(rng.uniform(0, 100, size=(12, 2)))


class TestMstConnectivity:
    def test_bidirectional_edge_count(self, metric):
        inst = mst_connectivity_instance(metric)
        assert inst.n == metric.n - 1

    def test_directed_doubles_edges(self, metric):
        inst = mst_connectivity_instance(metric, direction=Direction.DIRECTED)
        assert inst.n == 2 * (metric.n - 1)

    def test_spans_all_nodes(self, metric):
        inst = mst_connectivity_instance(metric)
        touched = set(inst.senders.tolist()) | set(inst.receivers.tolist())
        assert touched == set(range(metric.n))

    def test_requests_form_connected_graph(self, metric):
        inst = mst_connectivity_instance(metric)
        graph = nx.Graph(inst.pairs())
        assert nx.is_connected(graph)

    def test_total_weight_is_minimal(self, metric):
        # The request lengths sum to the MST weight.
        inst = mst_connectivity_instance(metric)
        full = nx.Graph()
        matrix = metric.distance_matrix()
        for u in range(metric.n):
            for v in range(u + 1, metric.n):
                full.add_edge(u, v, weight=matrix[u, v])
        expected = nx.minimum_spanning_tree(full).size(weight="weight")
        assert float(np.sum(inst.link_distances)) == pytest.approx(expected)

    def test_single_node_rejected(self):
        with pytest.raises(ValueError):
            mst_connectivity_instance(EuclideanMetric([[0.0, 0.0]]))


class TestNearestNeighbor:
    def test_one_request_per_node(self, metric):
        inst = nearest_neighbor_instance(metric)
        assert inst.n == metric.n
        assert np.array_equal(inst.senders, np.arange(metric.n))

    def test_links_are_nearest(self, metric):
        inst = nearest_neighbor_instance(metric)
        matrix = metric.distance_matrix().copy()
        np.fill_diagonal(matrix, np.inf)
        for u, v in inst.pairs():
            assert matrix[u, v] == pytest.approx(matrix[u].min())


class TestExponentialChain:
    def test_positions(self):
        chain = exponential_node_chain(4, base=2.0)
        assert np.allclose(chain.coordinates, [2.0, 4.0, 8.0, 16.0])

    def test_nn_link_lengths_grow_geometrically(self):
        chain = exponential_node_chain(8)
        inst = nearest_neighbor_instance(chain)
        lengths = np.sort(np.unique(inst.link_distances))
        assert np.all(np.diff(np.log2(lengths)) > 0.9)

    def test_overflow_guard(self):
        with pytest.raises(ValueError):
            exponential_node_chain(500)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            exponential_node_chain(1)
        with pytest.raises(ValueError):
            exponential_node_chain(4, base=1.0)


class TestConnectivityScheduling:
    def test_chain_separates_assignments(self):
        """The [12] shape: uniform/linear Omega(n), sqrt/free small."""
        from repro.power.oblivious import SquareRootPower, UniformPower
        from repro.scheduling.firstfit import first_fit_schedule

        chain = exponential_node_chain(16)
        inst = mst_connectivity_instance(chain, beta=0.5)
        uniform = first_fit_schedule(inst, UniformPower()(inst))
        sqrt = first_fit_schedule(inst, SquareRootPower()(inst))
        uniform.validate(inst)
        sqrt.validate(inst)
        assert uniform.num_colors >= 3 * sqrt.num_colors
