#!/usr/bin/env python
"""Multi-hop network: route end-to-end flows, then schedule every hop.

The related work (§1.3, Chafekar et al.) layers routing on top of
power assignment + coloring.  This example builds a random 50-node
network, routes a handful of end-to-end flows along shortest paths
within transmission range, schedules each hop layer under the
square-root assignment, and reports per-flow latency.

Run:  python examples/multihop_network.py [seed]
"""

import sys

import numpy as np

from repro import EuclideanMetric
from repro.multihop import layered_multihop_schedule, route_requests


def main(seed: int = 1) -> None:
    rng = np.random.default_rng(seed)
    metric = EuclideanMetric(rng.uniform(0, 100, size=(50, 2)))

    flows = []
    while len(flows) < 8:
        u, v = rng.integers(50, size=2)
        if u != v and (int(u), int(v)) not in flows:
            flows.append((int(u), int(v)))

    routes = route_requests(metric, flows, transmission_range=40.0)
    result = layered_multihop_schedule(metric, routes, beta=0.8)

    print(f"{'flow':>10} | {'hops':>4} | {'latency':>7} | path")
    print("-" * 60)
    for route, latency in zip(routes, result.latencies):
        flow = f"{route.source}->{route.destination}"
        print(f"{flow:>10} | {route.hop_count:>4} | {latency:>7} | {route.path}")

    print(f"\nschedule length: {result.total_slots} slots "
          f"(layers: {result.layer_slots})")
    print(f"mean latency {result.mean_latency:.1f}, max {result.max_latency}")
    print("every layer's schedule is SINR-verified under the sqrt assignment")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1)
