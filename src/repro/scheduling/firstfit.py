"""Greedy first-fit coloring.

Requests are processed in a given order (longest link first by
default); each request is placed into the first color class it can
join without violating any SINR constraint, opening a new class when
none fits.  This is the workhorse O(n)-approximation used both as a
baseline and as the constructive engine behind the gain-rescaling
propositions.

Two variants:

* :func:`first_fit_schedule` — fixed power assignment.  The default
  path runs on the vectorized
  :class:`repro.core.kernels.ScheduleKernel`: all color classes are
  maintained simultaneously as dense ``(C, n)`` interference state, so
  each request needs **one** admission check across every open class
  instead of a Python loop over per-class accumulators.  The PR-1
  per-class :class:`~repro.core.context.ClassAccumulator` scan remains
  as the conformance reference under
  :func:`~repro.core.kernels.kernels_disabled`, and the pre-engine
  from-scratch bookkeeping under
  :func:`~repro.core.context.engine_disabled`.  All three paths emit
  bit-identical schedules.
* :func:`first_fit_free_power_schedule` — powers are free per class;
  class feasibility is decided by power-control theory
  (:mod:`repro.analysis.power_control`) and each class receives its
  own feasible power vector.  This realises "an optimal schedule has
  constant length" comparisons of Theorem 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.power_control import (
    free_power_feasible,
    free_powers,
)
from repro.core.context import ClassAccumulator, InterferenceContext, maybe_context
from repro.core.errors import InvalidScheduleError
from repro.core.instance import Direction, Instance
from repro.core.interference import (
    bidirectional_gain_matrices,
    directed_gain_matrix,
)
from repro.core.kernels import first_fit_colors, kernels_enabled
from repro.core.schedule import Schedule, build_schedule


def _default_order(instance: Instance) -> np.ndarray:
    """Longest links first (ties broken by index for determinism)."""
    return np.argsort(-instance.link_distances, kind="stable")


@dataclass
class _ClassState:
    """Legacy incremental bookkeeping for one color class (engine-off
    path; the engine path uses :class:`ClassAccumulator` or the
    :class:`ScheduleKernel` instead)."""

    members: List[int]
    interference_u: np.ndarray  # running interference at each member (endpoint u)
    interference_v: np.ndarray  # endpoint v (same as u in directed mode)


def _check_budgets(
    signals: np.ndarray, budget: np.ndarray, beta: float, noise: float
) -> None:
    if np.any(budget < 0):
        bad = int(np.argmax(budget < 0))
        raise InvalidScheduleError(
            f"request {bad} cannot satisfy its SINR constraint even alone "
            f"(signal {signals[bad]:.4g} < beta*noise {beta * noise:.4g}); "
            "scale the powers first (see scale_powers_for_noise)"
        )


def _first_fit_kernel(
    context: InterferenceContext,
    powers: np.ndarray,
    order: np.ndarray,
    beta: float,
    rtol: float,
) -> Schedule:
    """Kernel path: one vectorized admission check per request across
    every open class (decision-identical to :func:`_first_fit_engine`)."""
    signals = context.signals
    budget = context.budgets(beta=beta)
    _check_budgets(signals, budget, beta, context.noise)
    limits = budget * (1.0 + rtol)
    return build_schedule(first_fit_colors(context, order, limits), powers)


def _first_fit_engine(
    context: InterferenceContext,
    powers: np.ndarray,
    order: np.ndarray,
    beta: float,
    rtol: float,
) -> Schedule:
    """Accumulator reference path: per-class :class:`ClassAccumulator`
    bookkeeping, scanned one class at a time."""
    instance = context.instance
    noise = context.noise
    signals = context.signals
    budget = context.budgets(beta=beta)
    _check_budgets(signals, budget, beta, noise)
    backend = context.backend
    directed = context.directed

    classes: List[ClassAccumulator] = []
    colors = np.full(instance.n, -1, dtype=int)
    tolerance = 1.0 + rtol

    for req in order:
        placed = False
        # The request's gain columns (what it would add at every other
        # request), fetched once per request from the backend — same
        # values as the dense gains_u[members, req] gathers.
        col_u = backend.col_u(int(req))
        col_v = col_u if directed else backend.col_v(int(req))
        for color, acc in enumerate(classes):
            members = acc.members
            # One resolution pass covers the candidate (last entry) and
            # every member; values are identical to resolving them in
            # two separate calls.
            int_u, int_v = acc.interference_parts(np.append(members, req))
            if max(float(int_u[-1]), float(int_v[-1])) > budget[req] * tolerance:
                continue
            limits = budget[members] * tolerance
            if np.any(int_u[:-1] + col_u[members] > limits):
                continue
            if np.any(int_v[:-1] + col_v[members] > limits):
                continue
            acc.add(int(req))
            colors[req] = color
            placed = True
            break
        if not placed:
            classes.append(context.accumulator(members=[int(req)], beta=beta))
            colors[req] = len(classes) - 1

    return build_schedule(colors, powers)


def first_fit_schedule(
    instance: Instance,
    powers: np.ndarray,
    order: Optional[Sequence[int]] = None,
    beta: Optional[float] = None,
    rtol: float = 1e-9,
) -> Schedule:
    """First-fit coloring under a fixed power vector.

    Parameters
    ----------
    powers:
        The (fixed) power of every request.
    order:
        Processing order; longest-first by default.
    beta:
        Gain override (defaults to the instance's).
    """
    beta = instance.beta if beta is None else float(beta)
    noise = instance.noise
    powers = np.asarray(powers, dtype=float)
    if order is None:
        order = _default_order(instance)
    order = np.asarray(order, dtype=int)

    context = maybe_context(instance, powers)
    if context is not None:
        if kernels_enabled():
            return _first_fit_kernel(context, powers, order, beta, rtol)
        return _first_fit_engine(context, powers, order, beta, rtol)

    if instance.direction is Direction.DIRECTED:
        gains = directed_gain_matrix(instance, powers)
        gains_u, gains_v = gains, gains
    else:
        gains_u, gains_v = bidirectional_gain_matrices(instance, powers)
    signals = powers / instance.link_losses
    budget = signals / beta - noise  # max tolerable interference per request
    _check_budgets(signals, budget, beta, noise)

    classes: List[_ClassState] = []
    colors = np.full(instance.n, -1, dtype=int)
    tolerance = 1.0 + rtol

    for req in order:
        placed = False
        for color, state in enumerate(classes):
            members = state.members
            new_u = float(np.sum(gains_u[req, members]))
            new_v = float(np.sum(gains_v[req, members]))
            if max(new_u, new_v) > budget[req] * tolerance:
                continue
            member_arr = np.asarray(members)
            add_u = gains_u[member_arr, req]
            add_v = gains_v[member_arr, req]
            if np.any(state.interference_u + add_u > budget[member_arr] * tolerance):
                continue
            if np.any(state.interference_v + add_v > budget[member_arr] * tolerance):
                continue
            state.interference_u = np.append(state.interference_u + add_u, new_u)
            state.interference_v = np.append(state.interference_v + add_v, new_v)
            state.members.append(int(req))
            colors[req] = color
            placed = True
            break
        if not placed:
            classes.append(
                _ClassState(
                    members=[int(req)],
                    interference_u=np.zeros(1),
                    interference_v=np.zeros(1),
                )
            )
            colors[req] = len(classes) - 1

    return build_schedule(colors, powers)


def first_fit_free_power_schedule(
    instance: Instance,
    order: Optional[Sequence[int]] = None,
    beta: Optional[float] = None,
    margin: float = 1e-3,
) -> Schedule:
    """First-fit coloring where every class chooses its own powers.

    A request joins the first class that stays feasible for *some*
    power assignment (power-control growth factor below ``1 - margin``;
    the default keeps classes comfortably subcritical so the emitted
    power vectors have real SINR slack).  After the coloring, each
    class receives a strictly feasible power vector, so the returned
    schedule is a genuine SINR schedule.
    """
    if order is None:
        order = _default_order(instance)
    order = np.asarray(order, dtype=int)
    classes: List[List[int]] = []
    colors = np.full(instance.n, -1, dtype=int)
    for req in order:
        placed = False
        for color, members in enumerate(classes):
            trial = members + [int(req)]
            if free_power_feasible(instance, trial, beta=beta, margin=margin):
                members.append(int(req))
                colors[req] = color
                placed = True
                break
        if not placed:
            classes.append([int(req)])
            colors[req] = len(classes) - 1

    powers = np.ones(instance.n)
    for members in classes:
        powers[np.asarray(members)] = free_powers(instance, members, beta=beta)
    return build_schedule(colors, powers, copy_powers=False)
