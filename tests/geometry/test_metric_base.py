"""Tests for the Metric interface and is_metric_matrix."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.euclidean import EuclideanMetric
from repro.geometry.metric import is_metric_matrix


class TestMetricInterface:
    def test_distance_symmetry(self, line_metric):
        for u in range(line_metric.n):
            for v in range(line_metric.n):
                assert line_metric.distance(u, v) == line_metric.distance(v, u)

    def test_zero_self_distance(self, line_metric):
        for u in range(line_metric.n):
            assert line_metric.distance(u, u) == 0.0

    def test_len(self, line_metric):
        assert len(line_metric) == 5

    def test_distance_matrix_is_cached(self, line_metric):
        assert line_metric.distance_matrix() is line_metric.distance_matrix()

    def test_distance_matrix_readonly(self, line_metric):
        with pytest.raises(ValueError):
            line_metric.distance_matrix()[0, 1] = 9.0

    def test_index_out_of_range(self, line_metric):
        with pytest.raises(IndexError):
            line_metric.distance(0, 99)

    def test_loss_is_distance_to_alpha(self, line_metric):
        assert line_metric.loss(0, 2, alpha=3.0) == pytest.approx(27.0)

    def test_loss_matrix_matches_elementwise(self, square_metric):
        loss = square_metric.loss_matrix(2.0)
        dist = square_metric.distance_matrix()
        assert np.allclose(loss, dist**2)

    def test_loss_alpha_below_one_rejected(self, line_metric):
        with pytest.raises(ValueError):
            line_metric.loss_matrix(0.5)


class TestIsMetricMatrix:
    def test_valid_line_metric(self, line_metric):
        assert is_metric_matrix(line_metric.distance_matrix())

    def test_rejects_asymmetric(self):
        m = np.array([[0.0, 1.0], [2.0, 0.0]])
        assert not is_metric_matrix(m)

    def test_rejects_nonzero_diagonal(self):
        m = np.array([[0.5, 1.0], [1.0, 0.0]])
        assert not is_metric_matrix(m)

    def test_rejects_negative(self):
        m = np.array([[0.0, -1.0], [-1.0, 0.0]])
        assert not is_metric_matrix(m)

    def test_rejects_triangle_violation(self):
        m = np.array(
            [
                [0.0, 1.0, 10.0],
                [1.0, 0.0, 1.0],
                [10.0, 1.0, 0.0],
            ]
        )
        assert not is_metric_matrix(m)

    def test_rejects_non_square(self):
        assert not is_metric_matrix(np.zeros((2, 3)))

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(-50, 50, allow_nan=False),
                st.floats(-50, 50, allow_nan=False),
            ),
            min_size=2,
            max_size=8,
        )
    )
    def test_euclidean_always_metric(self, points):
        metric = EuclideanMetric(points)
        assert is_metric_matrix(metric.distance_matrix())
