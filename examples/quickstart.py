#!/usr/bin/env python
"""Quickstart: schedule a random wireless deployment.

Builds a bidirectional instance of 30 requests in a 100x100 area,
schedules it under the square-root power assignment with the
Theorem 15 LP algorithm, verifies the schedule, and compares against
the simple baselines.

Run:  python examples/quickstart.py [seed]
"""

import sys

import numpy as np

from repro import (
    SquareRootPower,
    first_fit_free_power_schedule,
    first_fit_schedule,
    random_uniform_instance,
    sqrt_coloring,
    trivial_schedule,
    verify_schedule,
)


def main(seed: int = 0) -> None:
    rng = np.random.default_rng(seed)
    instance = random_uniform_instance(30, side=100.0, rng=rng)
    print(f"instance: {instance!r}")
    print(f"link lengths: {instance.link_distances.min():.2f} .. "
          f"{instance.link_distances.max():.2f}")

    schedule, stats = sqrt_coloring(instance, rng=rng)
    report = verify_schedule(instance, schedule)
    print(f"\nTheorem 15 LP coloring   : {report.summary()}")
    print(f"  rounds={stats.rounds}, LP solves={stats.lp_solves}, "
          f"class sizes={stats.class_sizes}")

    powers = SquareRootPower()(instance)
    ff = first_fit_schedule(instance, powers)
    print(f"first-fit (sqrt powers)  : {verify_schedule(instance, ff).summary()}")

    free = first_fit_free_power_schedule(instance)
    print(f"first-fit (free powers)  : {verify_schedule(instance, free).summary()}")

    triv = trivial_schedule(instance)
    print(f"trivial (1 color/request): {verify_schedule(instance, triv).summary()}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 0)
