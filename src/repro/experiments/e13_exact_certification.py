"""E13 — exact certification of approximation factors (extension).

On small instances the true optimum is computable by the subset DP of
:mod:`repro.scheduling.exact`; this experiment certifies the measured
approximation factors of the heuristic and LP schedulers against that
ground truth rather than against lower-bound proxies.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.instances.random_instances import clustered_instance, random_uniform_instance
from repro.power.oblivious import SquareRootPower
from repro.runner.spec import ExperimentSpec
from repro.scheduling.registry import run_algorithm
from repro.util.rng import RngLike, ensure_rng, spawn_rngs
from repro.util.tables import Table


def run_exact_certification(
    n_values: Sequence[int] = (6, 8, 10),
    trials: int = 4,
    rng: RngLike = 81,
) -> Table:
    """Certify heuristic approximation factors against exact OPT."""
    rng = ensure_rng(rng)
    table = Table(
        title="E13: exact OPT certification (small instances)",
        columns=[
            "family",
            "n",
            "exact_opt",
            "first_fit_factor",
            "peeling_factor",
            "lp_factor",
            "exact_free_opt",
        ],
    )
    table.add_note(
        "factors = measured colors / exact OPT for the sqrt assignment; "
        "exact_free_opt allows per-class power control"
    )
    families = {
        "uniform-square": lambda n, child: random_uniform_instance(n, rng=child),
        "clustered": lambda n, child: clustered_instance(
            n, cluster_std=3.0, rng=child
        ),
    }
    for family_name, factory in families.items():
        for n in n_values:
            opts, ff_f, peel_f, lp_f, free_opts = [], [], [], [], []
            for child in spawn_rngs(rng, trials):
                instance = factory(n, child)
                powers = SquareRootPower()(instance)
                opt = run_algorithm(
                    "exact", instance, powers=powers
                ).extras["optimal_colors"]
                ff = run_algorithm("first_fit", instance, powers=powers).schedule
                peel = run_algorithm("peeling", instance, powers=powers).schedule
                lp = run_algorithm("sqrt_coloring", instance, rng=child).schedule
                free_opt = run_algorithm(
                    "exact", instance, free_power=True
                ).extras["optimal_colors"]
                opts.append(opt)
                ff_f.append(ff.num_colors / opt)
                peel_f.append(peel.num_colors / opt)
                lp_f.append(lp.num_colors / opt)
                free_opts.append(free_opt)
            table.add_row(
                family=family_name,
                n=n,
                exact_opt=float(np.mean(opts)),
                first_fit_factor=float(np.mean(ff_f)),
                peeling_factor=float(np.mean(peel_f)),
                lp_factor=float(np.mean(lp_f)),
                exact_free_opt=float(np.mean(free_opts)),
            )
    return table
SPEC = ExperimentSpec(
    id="e13",
    title="Exact OPT certification",
    runner="repro.experiments.e13_exact_certification:run_exact_certification",
    full={"n_values": (6, 8, 10), "trials": 3},
    fast={"n_values": (6,), "trials": 1},
    seed=81,
    shard_by="n_values",
    metric="first_fit_factor",
    algorithms=("exact", "first_fit", "peeling", "sqrt_coloring"),
)
