"""Asyncio serving layer for live interference scheduling.

``repro.serve`` multiplexes many :class:`repro.Session` objects behind
bounded arrival queues with admission control, producer backpressure,
and graceful drain.  Every admission is the O(n) incremental path — the
grown gain context is extended in place, never rebuilt.

Quickstart
----------
>>> import asyncio
>>> from repro import Problem
>>> from repro.serve import ScheduleServer, ServeConfig
>>>
>>> async def main(instance):
...     async with ScheduleServer() as server:
...         server.add_session("cell-a", Problem(instance),
...                            ServeConfig(queue_capacity=32))
...         decision = await server.submit("cell-a", (0, 1))
...         return decision.color
"""

from repro.serve.service import (
    AdmissionDecision,
    ScheduleServer,
    ServeConfig,
    SessionStats,
)

__all__ = [
    "AdmissionDecision",
    "ScheduleServer",
    "ServeConfig",
    "SessionStats",
]
