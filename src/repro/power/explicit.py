"""Non-oblivious power assignments.

Theorem 1 separates oblivious assignments from arbitrary ones: on the
adversarial instance family a *geometric* assignment (``p_i``
proportional to ``sqrt(2)**(alpha * i)`` in request order — the paper
writes ``p_i = sqrt(2^(alpha i))``) schedules everything in O(1)
colors, while every oblivious ``f`` needs Omega(n).  These classes
represent such per-request assignments.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.instance import Instance
from repro.power.base import PowerAssignment


class ExplicitPower(PowerAssignment):
    """A fixed per-request power vector.

    Only applicable to instances with matching request count.
    """

    def __init__(self, powers: Sequence[float], name: str = "explicit"):
        vec = np.asarray(powers, dtype=float).reshape(-1)
        if vec.size == 0:
            raise ValueError("power vector must be non-empty")
        if np.any(vec <= 0) or not np.all(np.isfinite(vec)):
            raise ValueError("powers must be positive and finite")
        self._powers = vec.copy()
        self._powers.setflags(write=False)
        self._name = str(name)

    @property
    def name(self) -> str:
        return self._name

    def powers(self, instance: Instance) -> np.ndarray:
        if instance.n != self._powers.size:
            raise ValueError(
                f"explicit powers cover {self._powers.size} requests, "
                f"instance has {instance.n}"
            )
        return self._powers.copy()


def geometric_power(instance: Instance, base: Optional[float] = None) -> ExplicitPower:
    """The geometric assignment used in the Theorem 1 proof.

    Assigns ``p_i = base**i`` in request order, with the paper's choice
    ``base = 2**(alpha / 2)`` (i.e. ``p_i = sqrt(2**(alpha * i))``) by
    default.  On the adversarial family this makes interference at each
    link a geometric series, so a constant fraction of links can share
    each color.
    """
    if base is None:
        base = 2.0 ** (instance.alpha / 2.0)
    if not base > 0:
        raise ValueError(f"base must be > 0, got {base}")
    exponents = np.arange(instance.n, dtype=float)
    # Normalise to avoid overflow for large n: only ratios matter
    # because SINR constraints are scale-invariant at sigma = 0.
    exponents -= exponents.mean()
    powers = np.power(base, exponents)
    return ExplicitPower(powers, name=f"geometric(base={base:g})")
