"""Tests for RNG plumbing."""

import numpy as np
import pytest

from repro.util.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=5)
        b = ensure_rng(42).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 2**31, size=8)
        b = ensure_rng(2).integers(0, 2**31, size=8)
        assert not np.array_equal(a, b)

    def test_generator_passes_through(self):
        gen = np.random.default_rng(7)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_seed(self):
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        children = spawn_rngs(0, 3)
        draws = [c.integers(0, 2**31, size=4) for c in children]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_deterministic_from_seed(self):
        a = [c.integers(0, 100) for c in spawn_rngs(9, 3)]
        b = [c.integers(0, 100) for c in spawn_rngs(9, 3)]
        assert a == b
