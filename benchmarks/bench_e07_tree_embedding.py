"""E7 — regenerate the Lemma 6 tree-ensemble table."""

from repro.experiments import run_tree_embedding


def test_e07_tree_embedding(benchmark, save_table):
    table = benchmark.pedantic(
        run_tree_embedding,
        kwargs=dict(n_values=(10, 20, 40), trials=2, rng=21),
        rounds=1,
        iterations=1,
    )
    save_table("e07_tree_embedding", table)
    assert all(row["dominates"] for row in table.rows)
    for row in table.rows:
        assert row["calibrated_core_fraction"] >= 0.9 - 1e-9
