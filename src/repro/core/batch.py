"""Batched interference queries across many ``(instance, powers)`` pairs.

:class:`repro.core.context.InterferenceContext` answers every query for
*one* ``(instance, powers)`` pair from cached gain matrices.  Workloads
that evaluate **many** pairs at once — validating all trial schedules of
an experiment cell, scoring a population of power assignments, batched
feasibility sweeps — still paid one Python-level dispatch per pair.
This module closes that gap:

* :class:`ContextBatch` — a fixed collection of pairs.  When every pair
  has the same request count and direction (the common case: trials of
  one experiment cell), the per-pair gain matrices are **stacked** into
  one ``(B, n, n)`` array and margins/feasibility for the whole batch
  are computed in single vectorized passes.  Ragged batches fall back
  to a loop over pooled per-pair contexts — still cached, just not
  stacked.
* :class:`ContextPool` — a strong-reference working set of contexts.
  :func:`repro.core.context.get_context` caches through a small global
  LRU; the pool pins a batch's contexts for its lifetime so a sweep
  over hundreds of pairs cannot thrash that LRU.
* :meth:`ContextBatch.first_fit_schedules` — batched **scheduling**,
  not just batched validation: the stacked gains feed the vectorized
  first-fit kernel (:func:`repro.core.kernels.stacked_first_fit`), so
  one admission pass per order position colors every pair in lockstep,
  emitting per-pair schedules bit-identical to scheduling each pair
  alone.

Numerical contract: the stacked path reproduces the per-context
results bit-for-bit — gain matrices are the cached per-context arrays
(stacked, not recomputed), and reductions run along the trailing axis
exactly as the 2-D ``_class_sum`` does per slice.  The conformance
tests in ``tests/core/test_batch.py`` assert exact equality.
"""

from __future__ import annotations

import logging
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.context import (
    DEFAULT_RTOL,
    InterferenceContext,
    _margins_from,
    get_context,
)
from repro.core.errors import InvalidScheduleError
from repro.core.gains import resolve_backend, resolve_sparse_epsilon
from repro.core.instance import Instance
from repro.core.kernels import first_fit_colors, stacked_first_fit
from repro.core.schedule import Schedule, build_schedule

PairLike = Tuple[Instance, np.ndarray]
ColorsLike = Union[None, np.ndarray, Sequence[Optional[np.ndarray]]]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class BatchFallbackInfo:
    """Why a :class:`ContextBatch` could not take the stacked fast path.

    Attached as :attr:`ContextBatch.fallback` (``None`` when the batch
    is stacked) and surfaced in
    :class:`repro.api.Provenance.batch_fallback`, so the pooled
    per-pair fallback is a *visible* property of a result instead of a
    silent performance cliff.

    Attributes
    ----------
    reasons:
        Machine-readable reason tags, any of ``"ragged_n"`` (pairs
        disagree on request count), ``"mixed_direction"`` (directed and
        bidirectional pairs mixed), ``"sparse_backend"`` (a pair uses a
        sparse gain backend — stacking would materialize dense
        ``(B, n, n)`` gains).
    pairs:
        Batch size.
    detail:
        Human-readable one-liner (also the logged message).
    """

    reasons: Tuple[str, ...]
    pairs: int
    detail: str


def _diagnose_fallback(contexts: List[InterferenceContext]) -> Optional[BatchFallbackInfo]:
    """The :class:`BatchFallbackInfo` for *contexts*, or ``None`` when
    the batch can stack.  Logged at ``WARNING`` for the sparse-backend
    reason (the caller asked for batching but gets a per-pair loop) and
    ``DEBUG`` for shape mismatches (ragged batches are routine)."""
    first = contexts[0]
    reasons = []
    if any(ctx.n != first.n for ctx in contexts):
        reasons.append("ragged_n")
    if any(
        ctx.instance.direction is not first.instance.direction
        for ctx in contexts
    ):
        reasons.append("mixed_direction")
    if any(ctx.backend_name != "dense" for ctx in contexts):
        reasons.append("sparse_backend")
    if not reasons:
        return None
    info = BatchFallbackInfo(
        reasons=tuple(reasons),
        pairs=len(contexts),
        detail=(
            f"ContextBatch of {len(contexts)} pairs falls back to pooled "
            f"per-pair contexts ({', '.join(reasons)}); queries stay "
            "correct but are not stacked into one (B, n, n) pass"
        ),
    )
    level = logging.WARNING if "sparse_backend" in reasons else logging.DEBUG
    logger.log(level, info.detail)
    return info


class ContextPool:
    """A strong-reference working set of :class:`InterferenceContext`.

    The global cache of :func:`get_context` is a bounded LRU
    (:func:`repro.core.context.context_cache_limit` contexts across all
    instances) and only lives as long as the instances do.  A pool pins
    the contexts of a working set (a batch, a sweep, a simulation
    episode) so repeated passes hit warm gain matrices regardless of
    what else runs in between.

    Parameters
    ----------
    max_contexts:
        Optional LRU bound on pinned contexts (``None`` = unbounded).
    """

    def __init__(self, max_contexts: Optional[int] = None):
        if max_contexts is not None and max_contexts < 1:
            raise ValueError("max_contexts must be >= 1 or None")
        self.max_contexts = max_contexts
        self._contexts: "OrderedDict[Tuple, InterferenceContext]" = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._contexts)

    def get(
        self,
        instance: Instance,
        powers: np.ndarray,
        beta: Optional[float] = None,
        noise: Optional[float] = None,
        backend: Optional[str] = None,
        sparse_epsilon: Optional[float] = None,
    ) -> InterferenceContext:
        """The pooled context for ``(instance, powers)`` (pinned).

        *backend* and *sparse_epsilon* default to the process-wide gain
        backend settings; the resolved values are part of the pool key
        (exactly like :func:`get_context`'s cache key), so a pool
        filled while one backend configuration was active never serves
        those contexts to a caller running under another.
        """
        powers_arr = np.asarray(powers, dtype=float)
        backend_name = resolve_backend(backend)
        epsilon = (
            resolve_sparse_epsilon(sparse_epsilon)
            if backend_name == "sparse"
            else 0.0
        )
        key = (
            id(instance),
            powers_arr.tobytes(),
            instance.beta if beta is None else float(beta),
            instance.noise if noise is None else float(noise),
            backend_name,
            epsilon,
        )
        context = self._contexts.get(key)
        if context is None:
            context = get_context(
                instance,
                powers_arr,
                beta=beta,
                noise=noise,
                backend=backend_name,
                sparse_epsilon=epsilon,
            )
            self._contexts[key] = context
            if (
                self.max_contexts is not None
                and len(self._contexts) > self.max_contexts
            ):
                self._contexts.popitem(last=False)
        else:
            self._contexts.move_to_end(key)
        return context

    def warm(self, pairs: Sequence[PairLike]) -> "ContextPool":
        """Prebuild gain backends for every pair; returns ``self``."""
        for instance, powers in pairs:
            context = self.get(instance, powers)
            context.backend  # noqa: B018 - touch to force the lazy build
            context.signals
        return self

    def clear(self) -> None:
        """Drop every pinned context (the global cache may retain them)."""
        self._contexts.clear()


class ContextBatch:
    """Vectorized interference queries over a batch of pairs.

    Parameters
    ----------
    pairs:
        Sequence of ``(instance, powers)`` pairs.  Per-pair contexts are
        fetched through *pool* (shared caching), so building a batch for
        pairs that were already queried individually is cheap.
    pool:
        Optional :class:`ContextPool` to pin the contexts in; a private
        pool is created when omitted.
    backend, sparse_epsilon:
        Optional gain-backend preference applied to every pair's
        context (``None`` follows the process default, exactly like
        :func:`repro.core.context.get_context`).

    Notes
    -----
    When every pair has the same ``n`` and direction on the dense
    backend the batch is *stacked*: queries run on one ``(B, n, n)``
    gain stack.  Otherwise ``stacked`` is ``False``, :attr:`fallback`
    carries a :class:`BatchFallbackInfo` naming why, and queries loop
    over the pooled contexts (list-valued results).  Either way the
    numbers are identical to querying each pair's own context.
    """

    def __init__(
        self,
        pairs: Sequence[PairLike],
        pool: Optional[ContextPool] = None,
        backend: Optional[str] = None,
        sparse_epsilon: Optional[float] = None,
    ):
        if len(pairs) == 0:
            raise ValueError("a ContextBatch needs at least one pair")
        self.pool = ContextPool() if pool is None else pool
        self.contexts: List[InterferenceContext] = [
            self.pool.get(
                instance, powers, backend=backend, sparse_epsilon=sparse_epsilon
            )
            for instance, powers in pairs
        ]
        # Stacking materializes (B, n, n) dense gains, so it requires
        # same-shape pairs on the dense backend; other batches take the
        # pooled per-pair fallback (every query and the first-fit
        # kernel are backend-generic there), recorded as a structured
        # :class:`BatchFallbackInfo` instead of a silent switch.
        self.fallback = _diagnose_fallback(self.contexts)
        self.stacked = self.fallback is None
        self._signals: Optional[np.ndarray] = None
        self._gains: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._gains_t: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def for_schedules(
        cls,
        instances: Union[Instance, Sequence[Instance]],
        schedules: Sequence[Schedule],
        pool: Optional[ContextPool] = None,
    ) -> "ContextBatch":
        """A batch pairing each schedule's powers with its instance.

        *instances* may be a single instance (shared by all schedules)
        or one instance per schedule.
        """
        if isinstance(instances, Instance):
            instances = [instances] * len(schedules)
        if len(instances) != len(schedules):
            raise ValueError(
                f"{len(instances)} instances for {len(schedules)} schedules"
            )
        pairs = [
            (instance, schedule.powers)
            for instance, schedule in zip(instances, schedules)
        ]
        return cls(pairs, pool=pool)

    # ------------------------------------------------------------------
    # Stacked state
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.contexts)

    @property
    def n(self) -> int:
        """Request count of a stacked batch (raises when ragged)."""
        if not self.stacked:
            raise ValueError("ragged batch has no single request count")
        return self.contexts[0].n

    def _stacked_signals(self) -> np.ndarray:
        if self._signals is None:
            self._signals = np.stack([ctx.signals for ctx in self.contexts])
        return self._signals

    def _stacked_gains(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._gains is None:
            gains_u = np.stack([ctx.gains_u for ctx in self.contexts])
            if all(ctx.gains_u is ctx.gains_v for ctx in self.contexts):
                gains_v = gains_u
            else:
                gains_v = np.stack([ctx.gains_v for ctx in self.contexts])
            self._gains = (gains_u, gains_v)
        return self._gains

    def _stacked_gains_t(self) -> Tuple[np.ndarray, np.ndarray]:
        """Stacked contiguous-transpose gains ``(B, n, n)`` for the
        column-consuming scheduler kernels (see
        :attr:`InterferenceContext.gains_ut`)."""
        if self._gains_t is None:
            gains_ut = np.stack([ctx.gains_ut for ctx in self.contexts])
            if all(ctx.gains_ut is ctx.gains_vt for ctx in self.contexts):
                gains_vt = gains_ut
            else:
                gains_vt = np.stack([ctx.gains_vt for ctx in self.contexts])
            self._gains_t = (gains_ut, gains_vt)
        return self._gains_t

    def _colors_array(self, colors: ColorsLike) -> Optional[np.ndarray]:
        if colors is None:
            return None
        colors_arr = np.asarray(colors)
        if colors_arr.shape != (len(self), self.n):
            raise ValueError(
                f"colors must have shape {(len(self), self.n)}, "
                f"got {colors_arr.shape}"
            )
        return colors_arr

    def _use_stacked(self, colors: ColorsLike) -> bool:
        """Stacked math applies unless *colors* mixes per-pair ``None``
        entries (uncolorable in one ``(B, n)`` array) with vectors."""
        if not self.stacked:
            return False
        if colors is None or isinstance(colors, np.ndarray):
            return True
        return not any(c is None for c in colors)

    def _per_pair_colors(self, colors: ColorsLike) -> List[Optional[np.ndarray]]:
        if colors is None:
            return [None] * len(self)
        if len(colors) != len(self):
            raise ValueError(
                f"{len(colors)} color vectors for {len(self)} pairs"
            )
        return [None if c is None else np.asarray(c) for c in colors]

    def _defaults(
        self, beta: Optional[float], noise: Optional[float]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-pair ``(beta, noise)`` columns for stacked broadcasting."""
        betas = np.asarray(
            [ctx.beta if beta is None else float(beta) for ctx in self.contexts]
        )
        noises = np.asarray(
            [ctx.noise if noise is None else float(noise) for ctx in self.contexts]
        )
        return betas[:, None], noises[:, None]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def interference(
        self, colors: ColorsLike = None
    ) -> Union[np.ndarray, List[np.ndarray]]:
        """Worst-endpoint same-color interference per pair.

        Stacked batches return a ``(B, n)`` array; ragged batches (or
        per-pair colors mixing ``None`` with vectors) a list of
        per-pair arrays.  *colors* is ``None`` (everyone interferes) or
        one color vector — or ``None`` — per pair.
        """
        if not self._use_stacked(colors):
            return [
                ctx.interference(colors=c)
                for ctx, c in zip(self.contexts, self._per_pair_colors(colors))
            ]
        gains_u, gains_v = self._stacked_gains()
        colors_arr = self._colors_array(colors)
        interf = _stacked_class_sum(gains_u, colors_arr)
        if gains_v is not gains_u:
            interf = np.maximum(interf, _stacked_class_sum(gains_v, colors_arr))
        return interf

    def margins(
        self,
        colors: ColorsLike = None,
        beta: Optional[float] = None,
        noise: Optional[float] = None,
    ) -> Union[np.ndarray, List[np.ndarray]]:
        """SINR margins per pair (``(B, n)`` stacked, else a list).

        Bit-for-bit identical to calling
        :meth:`InterferenceContext.margins` pair by pair.
        """
        if not self._use_stacked(colors):
            return [
                ctx.margins(colors=c, beta=beta, noise=noise)
                for ctx, c in zip(self.contexts, self._per_pair_colors(colors))
            ]
        betas, noises = self._defaults(beta, noise)
        interf = self.interference(colors=colors)
        return _margins_from(self._stacked_signals(), interf, betas, noises)

    def feasible(
        self,
        colors: ColorsLike = None,
        beta: Optional[float] = None,
        noise: Optional[float] = None,
        rtol: float = DEFAULT_RTOL,
    ) -> np.ndarray:
        """Boolean vector: does each pair satisfy every SINR constraint?"""
        margins = self.margins(colors=colors, beta=beta, noise=noise)
        if isinstance(margins, np.ndarray) and margins.ndim == 2:
            return np.all(margins >= 1.0 - rtol, axis=1)
        return np.asarray([bool(np.all(m >= 1.0 - rtol)) for m in margins])

    # ------------------------------------------------------------------
    # Batched scheduling
    # ------------------------------------------------------------------

    def _first_fit_limits(
        self, beta: Optional[float], rtol: float
    ) -> List[np.ndarray]:
        limits = []
        for index, ctx in enumerate(self.contexts):
            budget = ctx.budgets(beta=beta)
            if np.any(budget < 0):
                bad = int(np.argmax(budget < 0))
                raise InvalidScheduleError(
                    f"pair {index}: request {bad} cannot satisfy its SINR "
                    "constraint even alone; scale the powers first "
                    "(see scale_powers_for_noise)"
                )
            limits.append(budget * (1.0 + rtol))
        return limits

    def first_fit_schedules(
        self,
        orders: Optional[Sequence[Sequence[int]]] = None,
        beta: Optional[float] = None,
        rtol: float = 1e-9,
    ) -> List[Schedule]:
        """First-fit coloring of every pair in the batch.

        Stacked batches run :func:`repro.core.kernels.stacked_first_fit`
        over the ``(B, n, n)`` transposed gain stack — every order
        position is one vectorized admission pass covering all pairs —
        and each returned schedule is bit-identical to calling
        :func:`repro.scheduling.firstfit.first_fit_schedule` on that
        pair alone.  Ragged batches fall back to a per-pair
        :class:`~repro.core.kernels.ScheduleKernel` loop (still the
        kernel path, just not in lockstep).

        Parameters
        ----------
        orders:
            Optional per-pair processing orders (longest link first by
            default, matching ``first_fit_schedule``).
        beta, rtol:
            As in ``first_fit_schedule``.
        """
        if orders is None:
            order_list = [
                np.argsort(-ctx.instance.link_distances, kind="stable")
                for ctx in self.contexts
            ]
        else:
            if len(orders) != len(self):
                raise ValueError(
                    f"{len(orders)} orders for {len(self)} pairs"
                )
            order_list = [np.asarray(order, dtype=int) for order in orders]
        limits = self._first_fit_limits(beta, rtol)

        if self.stacked:
            gains_ut, gains_vt = self._stacked_gains_t()
            colors = stacked_first_fit(
                gains_ut,
                gains_vt,
                np.stack(limits),
                np.stack(order_list),
                finite=all(
                    not ctx.has_infinite_gains for ctx in self.contexts
                ),
            )
            return [
                build_schedule(colors[index], ctx.powers)
                for index, ctx in enumerate(self.contexts)
            ]

        return [
            build_schedule(first_fit_colors(ctx, order, pair_limits), ctx.powers)
            for ctx, order, pair_limits in zip(self.contexts, order_list, limits)
        ]

    def validate_schedules(
        self,
        schedules: Sequence[Schedule],
        rtol: float = DEFAULT_RTOL,
    ) -> None:
        """Validate one schedule per pair in a single batched pass.

        Raises :class:`InvalidScheduleError` naming the first offending
        pair.  Equivalent to ``schedule.validate(instance)`` per pair,
        assuming the batch was built from the schedules' own powers
        (see :meth:`for_schedules`).
        """
        if len(schedules) != len(self):
            raise InvalidScheduleError(
                f"{len(schedules)} schedules for {len(self)} pairs"
            )
        for ctx, schedule in zip(self.contexts, schedules):
            if schedule.n != ctx.n:
                raise InvalidScheduleError(
                    f"schedule covers {schedule.n} requests, "
                    f"instance has {ctx.n}"
                )
            if not np.array_equal(schedule.powers, ctx.powers):
                raise InvalidScheduleError(
                    "schedule powers differ from the batch pair powers"
                )
        colors = [schedule.colors for schedule in schedules]
        feasible = self.feasible(colors=colors, rtol=rtol)
        if not np.all(feasible):
            bad = int(np.flatnonzero(~feasible)[0])
            bad_margins = self.margins(colors=colors)[bad]
            worst = int(np.argmin(bad_margins))
            raise InvalidScheduleError(
                f"pair {bad}: SINR constraint violated, e.g. request {worst} "
                f"has margin {bad_margins[worst]:.4g} (< 1)"
            )


def _stacked_class_sum(
    gains: np.ndarray, colors: Optional[np.ndarray]
) -> np.ndarray:
    """Batched :func:`repro.core.interference._class_sum`.

    ``gains`` is ``(B, n, n)``; *colors* is ``None`` or ``(B, n)``.  The
    reduction runs along the trailing axis, which matches the 2-D row
    sum slice by slice (bit-for-bit).
    """
    if colors is None:
        return gains.sum(axis=2)
    same = colors[:, :, None] == colors[:, None, :]
    n = gains.shape[-1]
    same &= ~np.eye(n, dtype=bool)
    masked = np.where(same, gains, 0.0)
    return masked.sum(axis=2)


def batch_margins(
    pairs: Sequence[PairLike],
    colors: ColorsLike = None,
    pool: Optional[ContextPool] = None,
) -> Union[np.ndarray, List[np.ndarray]]:
    """One-shot :meth:`ContextBatch.margins` over *pairs*."""
    return ContextBatch(pairs, pool=pool).margins(colors=colors)


def batch_validate_schedules(
    instances: Union[Instance, Sequence[Instance]],
    schedules: Sequence[Schedule],
    rtol: float = DEFAULT_RTOL,
    pool: Optional[ContextPool] = None,
) -> None:
    """Batched ``schedule.validate(instance)`` over aligned sequences."""
    batch = ContextBatch.for_schedules(instances, schedules, pool=pool)
    batch.validate_schedules(schedules, rtol=rtol)
