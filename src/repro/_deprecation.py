"""Deprecation machinery for the legacy free-function API.

PR 5 introduced the unified solver facade (:mod:`repro.api`) backed by
the algorithm registry (:mod:`repro.scheduling.registry`).  The old
package-level free functions (``repro.first_fit_schedule`` and
friends) remain available as thin shims that delegate, bit-identically,
to the same implementations the registry adapters call — but each shim
announces itself with a :class:`ReproDeprecationWarning` so callers can
migrate at their own pace.

Warnings fire **exactly once per call site** (keyed by the caller's
``(filename, lineno)``), independent of the process-wide warning
filters' duplicate suppression — a loop calling a shim a million times
produces one warning, while two distinct call sites produce two.

The dedicated warning category (a :class:`DeprecationWarning` subclass)
lets CI escalate *our* deprecations to errors without tripping over
third-party ones::

    python -m pytest -W error::repro._deprecation.ReproDeprecationWarning
"""

from __future__ import annotations

import functools
import sys
import warnings
from typing import Callable, Set, Tuple, TypeVar

__all__ = [
    "ReproDeprecationWarning",
    "deprecated_shim",
    "reset_deprecation_registry",
    "warn_deprecated",
]

F = TypeVar("F", bound=Callable)


class ReproDeprecationWarning(DeprecationWarning):
    """A deprecated entry point of this library was called."""


#: Call sites that already warned, as ``(name, filename, lineno)``.
_seen: Set[Tuple[str, str, int]] = set()


def reset_deprecation_registry() -> None:
    """Forget which call sites warned (so tests can observe warnings
    from a site that fired earlier in the process)."""
    _seen.clear()


def warn_deprecated(name: str, replacement: str, stacklevel: int = 2) -> None:
    """Emit the once-per-call-site deprecation warning for *name*.

    *stacklevel* identifies the frame of the deprecated call site the
    same way :func:`warnings.warn` counts: ``2`` means the caller of
    the function invoking ``warn_deprecated``.
    """
    frame = sys._getframe(stacklevel - 1)
    key = (name, frame.f_code.co_filename, frame.f_lineno)
    if key in _seen:
        return
    _seen.add(key)
    warnings.warn(
        f"{name}() is deprecated; use {replacement} instead "
        "(see the README migration table)",
        ReproDeprecationWarning,
        stacklevel=stacklevel,
    )


def deprecated_shim(impl: F, name: str, replacement: str) -> F:
    """Wrap *impl* so every call first warns (once per call site).

    The wrapper forwards all arguments unchanged, so shimmed calls stay
    bit-identical to calling the implementation directly.
    """

    @functools.wraps(impl)
    def shim(*args, **kwargs):
        warn_deprecated(name, replacement, stacklevel=3)
        return impl(*args, **kwargs)

    shim.__doc__ = (
        f".. deprecated:: 1.1\n   Use {replacement} instead.\n\n"
        + (impl.__doc__ or "")
    )
    shim.__wrapped__ = impl
    return shim  # type: ignore[return-value]
