"""Tests for the local-search schedule improver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import Schedule
from repro.instances.random_instances import clustered_instance, random_uniform_instance
from repro.power.oblivious import SquareRootPower
from repro.scheduling.firstfit import first_fit_schedule
from repro.scheduling.local_search import improve_schedule
from repro.scheduling.trivial import trivial_schedule


class TestImproveSchedule:
    def test_never_increases_colors_and_stays_feasible(self):
        for seed in range(5):
            inst = clustered_instance(15, rng=seed)
            powers = SquareRootPower()(inst)
            base = first_fit_schedule(inst, powers)
            improved = improve_schedule(inst, base)
            improved.validate(inst)
            assert improved.num_colors <= base.num_colors

    def test_improves_trivial_schedule(self, small_random_instance):
        base = trivial_schedule(small_random_instance)
        improved = improve_schedule(small_random_instance, base)
        improved.validate(small_random_instance)
        # The trivial schedule is massively wasteful; local search must
        # make real progress (first-fit achieves far fewer colors).
        ff = first_fit_schedule(
            small_random_instance, SquareRootPower()(small_random_instance)
        )
        assert improved.num_colors < base.num_colors
        assert improved.num_colors <= 2 * ff.num_colors + 1

    def test_single_color_schedule_untouched(self, two_link_instance):
        base = first_fit_schedule(two_link_instance, np.ones(2))
        assert base.num_colors == 1
        improved = improve_schedule(two_link_instance, base)
        assert improved.num_colors == 1

    def test_powers_unchanged(self, small_random_instance):
        powers = SquareRootPower()(small_random_instance)
        base = trivial_schedule(small_random_instance)
        improved = improve_schedule(small_random_instance, base)
        assert np.allclose(improved.powers, base.powers)

    def test_rejects_infeasible_input(self, small_random_instance):
        bad = Schedule(
            colors=np.zeros(small_random_instance.n, dtype=int),
            powers=SquareRootPower()(small_random_instance),
        )
        if bad.is_feasible(small_random_instance):
            pytest.skip("instance happens to be one-color feasible")
        with pytest.raises(Exception):
            improve_schedule(small_random_instance, bad)

    def test_beta_override(self, small_random_instance):
        powers = SquareRootPower()(small_random_instance)
        base = first_fit_schedule(small_random_instance, powers, beta=2.0)
        improved = improve_schedule(small_random_instance, base, beta=2.0)
        improved.validate(small_random_instance, beta=2.0)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_idempotent_at_fixed_point(self, seed):
        inst = random_uniform_instance(8, rng=seed)
        powers = SquareRootPower()(inst)
        once = improve_schedule(inst, first_fit_schedule(inst, powers))
        twice = improve_schedule(inst, once)
        assert twice.num_colors == once.num_colors


class TestNoiseGuard:
    def test_first_fit_rejects_unscalable_noise(self):
        from repro.core.errors import InvalidScheduleError
        from repro.core.instance import Instance
        from repro.geometry.line import LineMetric

        metric = LineMetric([0.0, 10.0])
        inst = Instance.bidirectional(metric, [(0, 1)], noise=1e6)
        with pytest.raises(InvalidScheduleError, match="alone"):
            first_fit_schedule(inst, np.ones(1))

    def test_first_fit_handles_mild_noise(self):
        from repro.core.instance import Instance
        from repro.geometry.line import LineMetric

        metric = LineMetric([0.0, 1.0, 50.0, 51.0])
        inst = Instance.bidirectional(metric, [(0, 1), (2, 3)], noise=0.1)
        schedule = first_fit_schedule(inst, np.full(2, 10.0))
        schedule.validate(inst)
