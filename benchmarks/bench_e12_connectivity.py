"""E12 — regenerate the strong-connectivity table ([12]'s workload)."""

from repro.experiments import run_connectivity


def test_e12_connectivity(benchmark, save_table):
    table = benchmark.pedantic(
        run_connectivity,
        kwargs=dict(n_values=(8, 16, 32), trials=2, rng=71),
        rounds=1,
        iterations=1,
    )
    save_table("e12_connectivity", table)
    chain = [r for r in table.rows if r["placement"] == "exp-chain"]
    assert chain[-1]["uniform"] >= 2 * chain[0]["uniform"]
    assert chain[-1]["sqrt"] <= 4
