"""Analysis and verification layer.

* :mod:`~repro.analysis.power_control` — feasibility with *free*
  (unconstrained, per-request) powers via Perron-Frobenius theory;
  this realises the paper's "optimal power assignment" comparisons.
* :mod:`~repro.analysis.capacity` — one-shot capacity estimation
  (largest simultaneously-schedulable subset) under fixed powers.
* :mod:`~repro.analysis.bounds` — certified lower bounds on the
  optimal number of colors.
* :mod:`~repro.analysis.measures` — static interference measures from
  the related work (the ``I_in``-style measure of Moscibroda et al.).
* :mod:`~repro.analysis.verify` — schedule verification reports.
"""

from repro.analysis.affectance import (
    affectance_matrix,
    fixed_power_conflict_bound,
    max_average_affectance,
    total_affectance,
)
from repro.analysis.achieved_gain import (
    achieved_gain,
    nodeloss_achieved_gain,
    per_class_achieved_gains,
    schedule_achieved_gain,
)
from repro.analysis.bounds import (
    conflict_graph,
    clique_lower_bound,
    node_multiplicity_lower_bound,
    opt_color_lower_bound,
)
from repro.analysis.capacity import greedy_max_feasible_subset, one_shot_capacity
from repro.analysis.measures import in_interference_measure
from repro.analysis.power_control import (
    free_power_feasible,
    free_power_spectral_radius,
    free_powers,
)
from repro.analysis.verify import VerificationReport, verify_schedule

__all__ = [
    "affectance_matrix",
    "total_affectance",
    "max_average_affectance",
    "fixed_power_conflict_bound",
    "achieved_gain",
    "schedule_achieved_gain",
    "per_class_achieved_gains",
    "nodeloss_achieved_gain",
    "free_power_spectral_radius",
    "free_power_feasible",
    "free_powers",
    "greedy_max_feasible_subset",
    "one_shot_capacity",
    "conflict_graph",
    "clique_lower_bound",
    "node_multiplicity_lower_bound",
    "opt_color_lower_bound",
    "in_interference_measure",
    "VerificationReport",
    "verify_schedule",
]
