"""Static interference measures from the related work (§1.3).

Moscibroda, Wattenhofer and Zollinger [13] schedule every set of
directed requests in ``O(I_in log^2 n)`` colors, where ``I_in`` is a
static measure of the instance.  The paper points out that ``I_in``
can deviate from OPT by Omega(n), so it gives no approximation
guarantee.  Experiment E10 reproduces both facts empirically.

We use the standard formulation: the *in-interference* of a node ``w``
is the number of requests whose own link is at least as long as their
distance to ``w`` (i.e. requests that would "cover" ``w`` when
transmitting at linear power), and

    I_in = max over request endpoints w of in-interference(w).
"""

from __future__ import annotations

import numpy as np

from repro.core.instance import Instance


def in_interference_measure(instance: Instance, slack: float = 1.0) -> int:
    """The ``I_in`` static interference measure of *instance*.

    Parameters
    ----------
    slack:
        A request ``j`` covers node ``w`` when
        ``d(u_j, w) <= slack * d(u_j, v_j)``; the measure is the
        maximum cover count over all request endpoints.
    """
    if slack <= 0:
        raise ValueError(f"slack must be > 0, got {slack}")
    dist = instance.metric.distance_matrix()
    link = instance.link_distances
    endpoints = np.unique(np.concatenate([instance.senders, instance.receivers]))
    # covers[j, w] = request j covers endpoint node w.
    sender_to_node = dist[np.ix_(instance.senders, endpoints)]
    covers = sender_to_node <= slack * link[:, None]
    # A request trivially covers its own receiver; exclude self-cover at
    # both own endpoints to measure *external* interference pressure.
    node_pos = {int(node): k for k, node in enumerate(endpoints)}
    for j in range(instance.n):
        covers[j, node_pos[int(instance.senders[j])]] = False
        covers[j, node_pos[int(instance.receivers[j])]] = False
    per_node = covers.sum(axis=0)
    return int(per_node.max()) if per_node.size else 0
