"""Star metrics: ``n`` leaves around a centre.

The innermost layer of the Theorem 2 proof (Lemma 5, Section 4)
analyses the node-loss problem on a star ``S([n], delta, l)``: nodes
``1..n`` at distances ``delta_i`` from a common centre ``c``.  Pairwise
distances are ``delta_i + delta_j`` (paths go through the centre).

By convention the *leaves* are the metric's nodes ``0 .. n-1``; the
centre is implicit (it carries no request), matching the paper.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.metric import Metric


class StarMetric(Metric):
    """Leaves at distances ``delta_i`` around an implicit centre.

    ``distance(i, j) = delta_i + delta_j`` for ``i != j``.
    """

    def __init__(self, center_distances: Sequence[float]):
        super().__init__()
        deltas = np.asarray(center_distances, dtype=float).reshape(-1)
        if deltas.size == 0:
            raise ValueError("star must have at least one leaf")
        if not np.all(np.isfinite(deltas)):
            raise ValueError("centre distances must be finite")
        if np.any(deltas <= 0):
            raise ValueError("centre distances must be strictly positive")
        self._deltas = deltas.copy()
        self._deltas.setflags(write=False)

    @property
    def n(self) -> int:
        return self._deltas.size

    @property
    def center_distances(self) -> np.ndarray:
        """The leaf-to-centre distances ``delta_i`` (read-only)."""
        return self._deltas

    def decay(self, alpha: float) -> np.ndarray:
        """The decay parameters ``d_i = delta_i**alpha`` of Section 4."""
        if alpha < 1:
            raise ValueError(f"alpha must be >= 1, got {alpha}")
        return self._deltas**alpha

    def _compute_matrix(self) -> np.ndarray:
        matrix = self._deltas[:, None] + self._deltas[None, :]
        np.fill_diagonal(matrix, 0.0)
        return matrix
