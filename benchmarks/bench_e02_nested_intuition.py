"""E2 — regenerate the §1.2 nested-instance capacity table."""

from repro.experiments import run_nested_intuition


def test_e02_nested_intuition(benchmark, save_table):
    table = benchmark.pedantic(
        run_nested_intuition,
        kwargs=dict(n_values=(5, 10, 20, 30, 40)),
        rounds=1,
        iterations=1,
    )
    save_table("e02_nested_intuition", table)
    sqrt_rows = [r for r in table.rows if r["assignment"] == "sqrt"]
    flat = [r for r in table.rows if r["assignment"] in ("uniform", "linear")]
    # sqrt capacity grows with n; uniform/linear stay O(1).
    assert sqrt_rows[-1]["capacity"] >= 3 * sqrt_rows[0]["capacity"]
    assert all(r["capacity"] <= 2 for r in flat)
