"""The trivial schedule: one color per request.

With zero noise a single request is always feasible (no interference),
so ``n`` colors always suffice — "there is a straightforward algorithm
that achieves an O(n)-approximation" (abstract).  This is the
worst-case baseline every experiment reports against.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.instance import Instance
from repro.core.schedule import Schedule, build_schedule
from repro.power.base import PowerAssignment
from repro.power.oblivious import SquareRootPower


def trivial_schedule(
    instance: Instance, power: Optional[PowerAssignment] = None
) -> Schedule:
    """Schedule every request in its own color.

    Parameters
    ----------
    power:
        Power assignment used (the colors make any positive powers
        feasible at zero noise); defaults to the square-root
        assignment.

    Notes
    -----
    The trivial scheduler issues no interference queries of its own;
    any downstream validation or analysis of the returned schedule
    creates (and caches) the shared
    :class:`~repro.core.context.InterferenceContext` on first use.
    """
    if power is None:
        power = SquareRootPower()
    powers = power(instance)
    return build_schedule(np.arange(instance.n), powers, copy_powers=False)
