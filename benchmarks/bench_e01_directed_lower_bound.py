"""E1 — regenerate the Theorem 1 separation table."""

from repro.experiments import run_directed_lower_bound


def test_e01_directed_lower_bound(benchmark, save_table):
    table = benchmark.pedantic(
        run_directed_lower_bound,
        kwargs=dict(n_values=(4, 8, 16, 24, 32)),
        rounds=1,
        iterations=1,
    )
    save_table("e01_directed_lower_bound", table)
    # Shape: oblivious colors grow ~linearly, free-power colors are O(1).
    linear_rows = [r for r in table.rows if r["assignment"] == "linear"]
    assert linear_rows[-1]["ratio"] >= linear_rows[0]["ratio"] * 4
    assert all(r["colors_free_power"] <= 2 for r in table.rows)
