"""Small shared utilities: RNG plumbing, validation, table formatting.

These helpers are intentionally tiny and dependency-free so that every
other subpackage can import them without cycles.
"""

from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.tables import Table, format_table
from repro.util.validation import (
    check_finite,
    check_index,
    check_positive,
    check_probability,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Table",
    "format_table",
    "check_finite",
    "check_index",
    "check_positive",
    "check_probability",
]
