"""Tree ensembles with cores (Lemma 6).

Lemma 6: for any finite metric there are ``r = O(log n)`` trees that
all *dominate* the metric, such that every node ``v`` has low stretch
(``T(u, v) <= O(log n) * d(u, v)`` for all ``u``) in at least a 9/10
fraction of the trees.  The trees with low stretch for ``v`` are the
trees whose *core* contains ``v``.

The construction samples independent FRT embeddings; since each pair's
expected stretch is O(log n), Markov + concentration over independent
trees yields the core property for suitable constants.  The constants
are exposed as parameters so experiment E7 can measure how small they
can be in practice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.embedding.hst import HstEmbedding, build_hst
from repro.geometry.metric import Metric
from repro.util.rng import RngLike, ensure_rng, spawn_rngs


@dataclass
class TreeEnsembleMember:
    """One tree of the ensemble with its per-node stretch and core."""

    embedding: HstEmbedding
    stretch: np.ndarray
    core: np.ndarray  # boolean mask over points

    @property
    def core_indices(self) -> np.ndarray:
        """Indices of core nodes."""
        return np.flatnonzero(self.core)


@dataclass
class TreeEnsemble:
    """An ensemble of dominating trees with cores (Lemma 6).

    Attributes
    ----------
    members:
        The sampled trees.
    stretch_bound:
        The stretch threshold defining core membership.
    """

    members: List[TreeEnsembleMember]
    stretch_bound: float

    @property
    def r(self) -> int:
        """Number of trees."""
        return len(self.members)

    def core_membership_counts(self) -> np.ndarray:
        """For each node, in how many cores it appears."""
        return np.sum([m.core for m in self.members], axis=0)

    def core_membership_fractions(self) -> np.ndarray:
        """Fraction of trees whose core contains each node."""
        return self.core_membership_counts() / max(1, self.r)

    def calibrated(self, fraction: float = 0.9) -> "TreeEnsemble":
        """Recompute cores with the smallest bound giving every node
        core membership in at least a *fraction* of the trees.

        Lemma 6 asserts such a bound of size O(log n) *exists*; this
        method measures it: per node, take the *fraction*-quantile of
        its stretches across trees, then the maximum over nodes.
        """
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        stretches = np.stack([m.stretch for m in self.members])  # (r, n)
        per_node = np.quantile(stretches, fraction, axis=0, method="higher")
        bound = float(np.max(per_node))
        members = [
            TreeEnsembleMember(
                embedding=m.embedding, stretch=m.stretch, core=m.stretch <= bound
            )
            for m in self.members
        ]
        return TreeEnsemble(members=members, stretch_bound=bound)

    def best_tree_for(self, active: Sequence[int]) -> int:
        """Index of the tree whose core contains the most of *active*.

        This realises Proposition 7: some tree's core contains at least
        a 9/10 fraction of any given node set (averaging argument).
        """
        active = np.asarray(active, dtype=int)
        counts = [int(np.sum(member.core[active])) for member in self.members]
        return int(np.argmax(counts))


def default_stretch_bound(n: int, factor: float = 8.0) -> float:
    """The core stretch threshold ``factor * log2(n + 1)``."""
    return factor * math.log2(n + 1)


def build_tree_ensemble(
    metric: Metric,
    r: Optional[int] = None,
    stretch_bound: Optional[float] = None,
    rng: RngLike = None,
) -> TreeEnsemble:
    """Sample a Lemma 6 tree ensemble for *metric*.

    Parameters
    ----------
    r:
        Number of trees; defaults to ``4 * ceil(log2(n + 1))`` (the
        lemma needs O(log n)).
    stretch_bound:
        Core membership threshold; defaults to
        :func:`default_stretch_bound`.
    """
    rng = ensure_rng(rng)
    n = metric.n
    if r is None:
        r = max(4, 4 * int(math.ceil(math.log2(n + 1))))
    if r < 1:
        raise ValueError("r must be >= 1")
    if stretch_bound is None:
        stretch_bound = default_stretch_bound(n)
    if stretch_bound <= 1:
        raise ValueError("stretch_bound must exceed 1")
    members: List[TreeEnsembleMember] = []
    for child_rng in spawn_rngs(rng, r):
        embedding = build_hst(metric, rng=child_rng)
        stretch = embedding.stretches(metric)
        core = stretch <= stretch_bound
        members.append(
            TreeEnsembleMember(embedding=embedding, stretch=stretch, core=core)
        )
    return TreeEnsemble(members=members, stretch_bound=float(stretch_bound))
