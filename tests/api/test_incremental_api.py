"""The handle-based incremental Session API (arrivals/departures)."""

import warnings

import numpy as np
import pytest

from repro import ReproDeprecationWarning
from repro.api import Problem, RequestHandle, RequestHandles, Session
from repro.core.errors import InvalidInstanceError, InvalidScheduleError
from repro.instances.random_instances import random_uniform_instance
from repro.scheduling.firstfit import first_fit_schedule
from repro.scheduling.sqrt_coloring import sqrt_coloring


@pytest.fixture
def instance():
    return random_uniform_instance(10, rng=21)


@pytest.fixture
def session(instance):
    return Problem(instance).session()


class TestHandles:
    def test_add_requests_returns_handles(self, session):
        handles = session.add_requests([(0, 3), (2, 7)])
        assert isinstance(handles, RequestHandles)
        assert all(isinstance(h, RequestHandle) for h in handles)
        assert [(h.sender, h.receiver) for h in handles] == [(0, 3), (2, 7)]
        # uids are fresh and distinct from the initial requests'.
        assert len({h.uid for h in session.handles}) == 12

    def test_handles_stay_stable_across_departures(self, session):
        added = session.add_requests([(0, 3), (2, 7), (4, 9)])
        keep = added[1]
        session.remove_requests([added[0], added[2]])
        assert keep in session.handles
        assert session.active_requests == 11
        # The kept handle still resolves to a color.
        assert session.color_of(keep) >= 0

    def test_color_of_unknown_handle_raises(self, session):
        with pytest.raises(KeyError):
            session.color_of(RequestHandle(uid=999, sender=0, receiver=1))

    def test_chaining_shim_warns_once_and_forwards(self, session):
        with pytest.warns(ReproDeprecationWarning, match="add_requests"):
            result = session.add_requests([(0, 3)]).schedule("first_fit")
        assert result.colors.size == 11

    def test_plain_list_behavior_is_silent(self, session):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            handles = session.add_requests([(0, 3)])
            assert len(handles) == 1
            assert list(handles)[0].uid == handles[0].uid


class TestRemoveRequests:
    def test_remove_accepts_handles_and_uids(self, session):
        handles = session.add_requests([(0, 3), (2, 7)])
        session.remove_requests([handles[0], handles[1].uid])
        assert session.active_requests == 10
        assert session.departures == 2

    def test_remove_duplicate_rejected_atomically(self, session):
        handles = session.add_requests([(0, 3)])
        with pytest.raises(ValueError, match="duplicate"):
            session.remove_requests([handles[0], handles[0]])
        # The failed call removed nothing.
        assert session.active_requests == 11

    def test_remove_unknown_uid_rejected(self, session):
        handles = session.add_requests([(0, 3)])
        session.remove_requests(handles)
        with pytest.raises(KeyError):
            session.remove_requests(handles)

    def test_schedule_after_departure_compacts(self, session):
        handles = session.add_requests([(0, 3), (2, 7)])
        session.remove_requests([handles[0]])
        result = session.schedule("first_fit")
        assert result.colors.size == 11
        ref = first_fit_schedule(session.instance, session.powers)
        np.testing.assert_array_equal(result.colors, ref.colors)

    def test_rebuild_remaps_surviving_handles(self, session):
        handles = session.add_requests([(0, 3), (2, 7)])
        session.remove_requests([handles[0]])
        survivor = handles[1]
        session.rebuild()
        assert session.instance.n == 11
        assert survivor in session.handles
        assert session.color_of(survivor) >= 0

    def test_removing_every_request_blocks_rebuild(self, instance):
        session = Problem(instance).session()
        session.remove_requests(list(session.handles))
        with pytest.raises(InvalidScheduleError):
            session.rebuild()


class TestLiveAdmission:
    def test_add_requests_keeps_context_object(self, session):
        session.schedule("first_fit")
        context = session.context
        session.add_requests([(0, 3)])
        assert session._context is context
        assert context.n == 11

    def test_live_result_provenance(self, session):
        session.ensure_live()
        handles = session.add_requests([(0, 3), (2, 7)])
        session.remove_requests([handles[0]])
        result = session.live_result()
        prov = result.provenance
        assert prov.algorithm == "first_fit_online"
        assert prov.incremental is True
        assert prov.arrivals == 2
        assert prov.departures == 1
        assert result.colors.size == 11
        result.validate()

    def test_batch_provenance_counts_stream(self, session):
        session.add_requests([(0, 3)])
        result = session.schedule("first_fit")
        assert result.provenance.incremental is False
        assert result.provenance.arrivals == 1
        assert result.provenance.departures == 0

    def test_arrival_colors_match_fresh_session(self, session):
        session.ensure_live()
        session.add_requests([(0, 3), (2, 7), (5, 1)])
        live = np.asarray(session.ensure_live().colors)
        fresh = Problem(session.instance).session()
        ref = np.asarray(fresh.ensure_live().colors)
        np.testing.assert_array_equal(live, ref)


class TestValidationRegressions:
    def test_out_of_range_receiver_fails_up_front(self, session):
        with pytest.raises(InvalidInstanceError, match="receiver index 99"):
            session.add_requests([(0, 99)])
        # Nothing was committed by the failed call.
        assert session.instance.n == 10
        assert session.arrivals == 0

    def test_out_of_range_sender_names_the_pair(self, session):
        with pytest.raises(InvalidInstanceError, match="sender index -1"):
            session.add_requests([(0, 3), (-1, 2)])

    def test_message_names_valid_range(self, session):
        metric_size = session.instance.metric.n
        with pytest.raises(
            InvalidInstanceError, match=f"0..{metric_size - 1}"
        ):
            session.add_requests([(metric_size, 0)])


class TestRngReplay:
    def test_reschedule_replays_recorded_rng(self, instance):
        session = Problem(instance).session()
        first = session.schedule("sqrt_coloring", rng=42)
        replay = session.reschedule()
        np.testing.assert_array_equal(first.colors, replay.colors)
        ref, _ = sqrt_coloring(instance, rng=42)
        np.testing.assert_array_equal(replay.colors, ref.colors)

    def test_explicit_rng_overrides_recorded(self, instance):
        session = Problem(instance).session()
        session.schedule("sqrt_coloring", rng=42)
        override = session.reschedule(rng=7)
        ref, _ = sqrt_coloring(instance, rng=7)
        np.testing.assert_array_equal(override.colors, ref.colors)

    def test_replay_survives_growth(self, instance):
        session = Problem(instance).session()
        session.schedule("sqrt_coloring", rng=13)
        session.add_requests([(0, 3)])
        regrown = session.reschedule()
        ref, _ = sqrt_coloring(session.instance, rng=13)
        np.testing.assert_array_equal(regrown.colors, ref.colors)
