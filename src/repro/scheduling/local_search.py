"""Local-search schedule improvement.

A post-processing pass applicable to any fixed-power schedule: try to
*empty the smallest color class* by reassigning each of its members
into some other class that still satisfies every SINR constraint; on
success the color disappears.  Repeats until a fixed point.

The pass never increases the number of colors and never breaks
feasibility, so it composes with every scheduler in this package
(first-fit, peeling, LP pipeline, distributed protocol output).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.context import InterferenceContext, maybe_context
from repro.core.feasibility import is_feasible_subset
from repro.core.instance import Instance
from repro.core.schedule import Schedule


def _subset_feasible(
    instance: Instance,
    context: Optional[InterferenceContext],
    powers: np.ndarray,
    subset: np.ndarray,
    beta: Optional[float],
) -> bool:
    if context is not None:
        return context.is_feasible_subset(subset, beta=beta)
    return is_feasible_subset(instance, powers, subset, beta=beta)


def _try_empty_class(
    instance: Instance,
    context: Optional[InterferenceContext],
    colors: np.ndarray,
    powers: np.ndarray,
    victim: int,
    beta: Optional[float],
) -> bool:
    """Try to dissolve color class *victim* by moving its members.

    Moves are committed member by member; on the first stuck member,
    every prior move is rolled back (all-or-nothing semantics keep the
    invariant simple and the result a strict improvement).
    """
    members = np.flatnonzero(colors == victim)
    snapshot = colors.copy()
    targets = [c for c in np.unique(colors) if c != victim]
    for request in members:
        placed = False
        for target in targets:
            trial = np.append(np.flatnonzero(colors == target), request)
            if _subset_feasible(instance, context, powers, trial, beta=beta):
                colors[request] = target
                placed = True
                break
        if not placed:
            colors[:] = snapshot
            return False
    return True


def improve_schedule(
    instance: Instance,
    schedule: Schedule,
    beta: Optional[float] = None,
    max_rounds: Optional[int] = None,
) -> Schedule:
    """Reduce *schedule*'s colors by dissolving small classes.

    Parameters
    ----------
    schedule:
        A feasible fixed-power schedule (validated before and after).
    max_rounds:
        Cap on dissolution attempts (defaults to the color count).

    Returns
    -------
    Schedule
        A feasible schedule with at most as many colors; powers are
        unchanged.
    """
    schedule.validate(instance, beta=beta)
    colors = schedule.compacted().colors.copy()
    powers = schedule.powers
    context = maybe_context(instance, powers)
    if max_rounds is None:
        max_rounds = int(np.unique(colors).size)

    for _ in range(max_rounds):
        sizes = {c: int(np.sum(colors == c)) for c in np.unique(colors)}
        if len(sizes) <= 1:
            break
        # Try victims from the smallest class upward; stop the round at
        # the first success (classes change) or give up entirely.
        dissolved = False
        for victim in sorted(sizes, key=lambda c: (sizes[c], c)):
            if _try_empty_class(instance, context, colors, powers, victim, beta):
                dissolved = True
                break
        if not dissolved:
            break
        # Re-compact so color ids stay dense.
        _, colors = np.unique(colors, return_inverse=True)

    improved = Schedule(colors=colors, powers=powers.copy())
    improved.validate(instance, beta=beta)
    return improved
