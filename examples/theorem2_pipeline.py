#!/usr/bin/env python
"""Watch the Theorem 2 proof machinery schedule an instance.

Runs the constructive existence pipeline — pair splitting, tree
ensemble + cores, centroid/star decomposition with the Lemma 5 star
analysis, certification, gain rescaling — and prints what every stage
keeps and drops, round by round.

Run:  python examples/theorem2_pipeline.py [n] [seed]
"""

import sys

import numpy as np

from repro import clustered_instance, verify_schedule
from repro.experiments import sqrt_existence_pipeline


def main(n: int = 20, seed: int = 3) -> None:
    rng = np.random.default_rng(seed)
    instance = clustered_instance(n, beta=0.8, rng=rng)
    print(f"instance: {n} bidirectional pairs across clusters\n")

    schedule, rounds = sqrt_existence_pipeline(instance, rng=rng)
    report = verify_schedule(instance, schedule)

    header = (f"{'round':>5} | {'remain':>6} | {'nodes':>5} | {'core':>4} | "
              f"{'lemma9':>6} | {'certified':>9} | {'colored':>7} | fallback")
    print(header)
    print("-" * len(header))
    for s in rounds:
        print(f"{s.round_index:>5} | {s.remaining_pairs:>6} | "
              f"{s.active_nodes:>5} | {s.core_nodes:>4} | "
              f"{s.lemma9_kept:>6} | {s.certified_nodes:>9} | "
              f"{s.pairs_colored:>7} | {s.fallback_used}")

    print(f"\nfinal schedule: {report.summary()}")
    print("(each round is one pass of the §3.5 argument; Proposition 4 may "
          "split a round's catch into several colors)")


if __name__ == "__main__":
    main(
        int(sys.argv[1]) if len(sys.argv) > 1 else 20,
        int(sys.argv[2]) if len(sys.argv) > 2 else 3,
    )
