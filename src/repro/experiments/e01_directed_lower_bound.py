"""E1 — Theorem 1: oblivious assignments are Omega(n)-bad (directed).

For each oblivious assignment we build its tailored lower-bound family
and compare the colors it needs (greedy first-fit, which is within a
constant of forced usage on these instances) against an optimal
free-power schedule.  Expected shape: colors under the oblivious
assignment grow linearly in ``n`` while free-power colors stay O(1),
so the ratio grows as Omega(n).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.instances.adversarial import (
    BoundedFunctionError,
    ConstructionOverflowError,
    adaptive_lower_bound_instance,
    growing_chain_instance,
)
from repro.power.base import ObliviousPowerAssignment
from repro.power.oblivious import LinearPower, MeanPower, SquareRootPower, UniformPower
from repro.runner.spec import ExperimentSpec
from repro.scheduling.registry import run_algorithm
from repro.util.tables import Table


def default_assignments() -> Tuple[ObliviousPowerAssignment, ...]:
    """The assignments exercised by E1: the classic families of §1."""
    return (UniformPower(), LinearPower(), MeanPower(1.5), SquareRootPower())


def run_directed_lower_bound(
    n_values: Sequence[int] = (4, 8, 16, 24, 32, 40),
    assignments: Optional[Sequence[ObliviousPowerAssignment]] = None,
    alpha: float = 3.0,
    beta: float = 1.0,
    kappa: float = 128.0,
) -> Table:
    """Reproduce the Theorem 1 separation.

    Parameters
    ----------
    kappa:
        Drowning safety factor of the adaptive construction
        (``4^alpha * 2`` by default forces O(1)-size color classes).
    """
    if assignments is None:
        assignments = default_assignments()
    table = Table(
        title="E1: Theorem 1 — directed lower bound for oblivious assignments",
        columns=[
            "assignment",
            "n",
            "colors_oblivious",
            "colors_free_power",
            "ratio",
            "construction",
        ],
    )
    table.add_note(
        f"alpha={alpha}, beta={beta}, kappa={kappa}; first-fit under f vs "
        "free-power first-fit (power-control feasibility)"
    )
    for assignment in assignments:
        for n in n_values:
            try:
                adv = adaptive_lower_bound_instance(
                    assignment, n, alpha=alpha, beta=beta, kappa=kappa
                )
                construction = "adaptive"
            except BoundedFunctionError:
                adv = growing_chain_instance(n, alpha=alpha, beta=beta)
                construction = "growing-chain"
            except ConstructionOverflowError:
                # Doubly-exponential families (e.g. the square root)
                # leave float range; retry with kappa=1, else skip.
                try:
                    adv = adaptive_lower_bound_instance(
                        assignment, n, alpha=alpha, beta=beta, kappa=1.0
                    )
                    construction = "adaptive(kappa=1)"
                except ConstructionOverflowError:
                    table.add_note(
                        f"{assignment.name}: n={n} exceeds double precision "
                        "(construction is doubly exponential); skipped"
                    )
                    continue
            instance = adv.instance
            powers = assignment(instance)
            oblivious = run_algorithm(
                "first_fit", instance, powers=powers
            ).schedule
            oblivious.validate(instance)
            free = run_algorithm("first_fit_free_power", instance).schedule
            free.validate(instance)
            table.add_row(
                assignment=assignment.name,
                n=n,
                colors_oblivious=oblivious.num_colors,
                colors_free_power=free.num_colors,
                ratio=oblivious.num_colors / free.num_colors,
                construction=construction,
            )
    return table
SPEC = ExperimentSpec(
    id="e1",
    title="Theorem 1 directed lower bound",
    runner="repro.experiments.e01_directed_lower_bound:run_directed_lower_bound",
    full={"n_values": (4, 8, 16, 24, 32)},
    fast={"n_values": (4, 8)},
    seed=None,
    shard_by="n_values",
    metric="ratio",
    algorithms=("first_fit", "first_fit_free_power"),
)
