"""Cross-module integration tests: full paper pipelines end to end."""

import numpy as np

from repro import (
    Direction,
    Problem,
    SquareRootPower,
    UniformPower,
    lower_bound_instance_for,
    nested_instance,
    random_uniform_instance,
    scale_powers_for_noise,
    sinr_margins,
    verify_schedule,
)
from repro.experiments import sqrt_existence_pipeline
from repro.scheduling.firstfit import (
    first_fit_free_power_schedule,
    first_fit_schedule,
)
from repro.scheduling.sqrt_coloring import sqrt_coloring


class TestTheorem1EndToEnd:
    """The full Theorem 1 separation, from construction to verdict."""

    def test_uniform_separation(self):
        adv = lower_bound_instance_for(UniformPower(), 20)
        inst = adv.instance
        oblivious = first_fit_schedule(inst, UniformPower()(inst))
        free = first_fit_free_power_schedule(inst)
        oblivious.validate(inst)
        free.validate(inst)
        # Omega(n) vs O(1): at n=20 the gap must be at least 3x.
        assert oblivious.num_colors >= 3 * free.num_colors

    def test_sqrt_is_also_beaten_in_directed(self):
        adv = lower_bound_instance_for(SquareRootPower(), 5, kappa=1.0)
        inst = adv.instance
        oblivious = first_fit_schedule(inst, SquareRootPower()(inst))
        free = first_fit_free_power_schedule(inst)
        assert oblivious.num_colors > free.num_colors


class TestTheorem2EndToEnd:
    """Square-root assignment + coloring algorithms on shared instances."""

    def test_three_roads_to_a_schedule_agree_on_feasibility(self):
        inst = random_uniform_instance(15, rng=42)
        powers = SquareRootPower()(inst)
        lp, _ = sqrt_coloring(inst, rng=42)
        ff = first_fit_schedule(inst, powers)
        pipeline, _ = sqrt_existence_pipeline(inst, rng=42)
        for schedule in (lp, ff, pipeline):
            report = verify_schedule(inst, schedule)
            assert report.feasible
            assert report.num_colors <= inst.n

    def test_bidirectional_beats_directed_obliviousness(self):
        """The paper's punchline: sqrt is polylog-good bidirectionally
        even though every oblivious assignment is Omega(n)-bad
        directionally."""
        inst = nested_instance(16, beta=0.5)
        ff = first_fit_schedule(inst, SquareRootPower()(inst))
        ff.validate(inst)
        assert ff.num_colors <= 8  # far below n = 16


class TestNoisePipeline:
    def test_schedule_then_add_noise(self):
        inst = random_uniform_instance(12, rng=3)
        powers = SquareRootPower()(inst)
        schedule = first_fit_schedule(inst, powers)
        noisy_powers = scale_powers_for_noise(
            inst, schedule.powers, schedule.colors, noise=5.0
        )
        margins = sinr_margins(
            inst, noisy_powers, colors=schedule.colors, noise=5.0
        )
        assert np.all(margins >= 1.0)

    def test_noise_scaling_preserves_colors(self):
        inst = random_uniform_instance(12, rng=3)
        powers = SquareRootPower()(inst)
        schedule = first_fit_schedule(inst, powers)
        noisy = scale_powers_for_noise(
            inst, schedule.powers, schedule.colors, noise=2.0
        )
        # Same coloring, scaled powers: still one factor for all.
        factors = noisy / schedule.powers
        assert np.allclose(factors, factors[0])


class TestUnifiedApiPipeline:
    """The Session facade drives the same pipelines end to end."""

    def test_session_reproduces_theorem1_separation(self):
        adv = lower_bound_instance_for(UniformPower(), 20)
        session = Problem(adv.instance, powers=UniformPower()).session()
        oblivious = session.schedule("first_fit").validate()
        free = session.schedule("first_fit_free_power").validate()
        assert oblivious.num_colors >= 3 * free.num_colors

    def test_session_improvement_chain(self):
        inst = random_uniform_instance(15, rng=42)
        session = Problem(inst).session()
        ff = session.schedule("first_fit")
        improved = session.schedule("local_search", schedule=ff)
        assert improved.validate().num_colors <= ff.num_colors
        lp = session.schedule("sqrt_coloring", rng=42)
        assert verify_schedule(inst, lp.schedule).feasible


class TestDirectionInterplay:
    def test_directed_is_never_harder_than_bidirectional_for_firstfit(self):
        # Bidirectional constraints dominate directed ones pointwise,
        # so any bidirectional-feasible coloring works directionally.
        inst = random_uniform_instance(12, rng=9)
        powers = SquareRootPower()(inst)
        bidir = first_fit_schedule(inst, powers)
        directed_view = inst.with_direction(Direction.DIRECTED)
        from repro.core.feasibility import is_feasible_partition

        assert is_feasible_partition(directed_view, bidir.powers, bidir.colors)
