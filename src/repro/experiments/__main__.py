"""Command-line experiment orchestrator.

Regenerates any subset of the paper's experiment tables, fanning the
work out over worker processes and optionally writing one
machine-readable ``BENCH_<experiment>.json`` artifact per experiment:

    python -m repro.experiments                       # run everything
    python -m repro.experiments e1 e2 e5              # selected experiments
    python -m repro.experiments --list                # show what exists
    python -m repro.experiments --list-algorithms     # the algorithm registry
    python -m repro.experiments e3 --fast             # reduced smoke sizes
    python -m repro.experiments --jobs 4              # 4 worker processes
    python -m repro.experiments --fast --jobs 4 --artifacts out/

Tables are bit-identical for any ``--jobs`` value: shard seeds derive
from the experiment specs alone and results merge in spec order (see
:mod:`repro.runner`).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.core.gains import ARRAY_NAMESPACES, BACKENDS, set_array_namespace
from repro.experiments.registry import get_registry
from repro.resilience.policy import RetryPolicy
from repro.runner.orchestrator import run_experiments
from repro.scheduling.registry import list_algorithms
from repro.util.tables import format_table


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper-reproduction experiment tables.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (e1 .. e13, e3b); all when omitted",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--list-algorithms",
        action="store_true",
        help="list the scheduling-algorithm registry with capability flags",
    )
    parser.add_argument(
        "--fast", action="store_true", help="reduced sizes (smoke run)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default 1; results are identical for any N)",
    )
    parser.add_argument(
        "--artifacts",
        metavar="DIR",
        default=None,
        help="write one BENCH_<experiment>.json per experiment under DIR",
    )
    parser.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default=None,
        help=(
            "gain backend for every experiment without its own pin "
            "(default: the process default, see REPRO_BACKEND)"
        ),
    )
    parser.add_argument(
        "--array-namespace",
        choices=list(ARRAY_NAMESPACES),
        default=None,
        help=(
            "array-API namespace for the 'array' backend (default: the "
            "process default, see REPRO_ARRAY_NAMESPACE); exported to "
            "the environment so --jobs workers inherit it"
        ),
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        metavar="N",
        help=(
            "retry a failing shard up to N attempts, then quarantine it "
            "into the artifact's 'failures' section (default: fail fast "
            "on the first error, as always)"
        ),
    )
    parser.add_argument(
        "--retry-base-delay",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help=(
            "backoff before the first retry; doubles per retry "
            "(default 0.05; only meaningful with --max-attempts)"
        ),
    )
    parser.add_argument(
        "--shard-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-shard result deadline; a late shard counts as a failed "
            "attempt and its stuck worker is reclaimed (requires "
            "--jobs > 1 to preempt; implies a retry policy)"
        ),
    )
    parser.add_argument(
        "--no-resume",
        action="store_true",
        help=(
            "ignore shard checkpoints from an interrupted run with the "
            "same --artifacts directory (default: resume them)"
        ),
    )
    args = parser.parse_args(argv)

    registry = get_registry()
    if args.list_algorithms:
        specs = list_algorithms()
        width = max(len(spec.name) for spec in specs)
        flag_width = max(len(spec.capabilities.flags()) for spec in specs)
        for spec in specs:
            print(
                f"{spec.name:<{width}}  "
                f"[{spec.capabilities.flags():<{flag_width}}]  "
                f"{spec.summary}"
            )
        return 0
    if args.list:
        for key in registry:
            print(key)
        return 0
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.max_attempts is not None and args.max_attempts < 1:
        parser.error("--max-attempts must be >= 1")
    if args.array_namespace is not None:
        # Per-process default plus the environment, so --jobs worker
        # processes (which re-read REPRO_ARRAY_NAMESPACE on import)
        # resolve the same namespace as the parent.
        os.environ["REPRO_ARRAY_NAMESPACE"] = args.array_namespace
        set_array_namespace(args.array_namespace)
    retry = None
    if args.max_attempts is not None or args.shard_deadline is not None:
        retry = RetryPolicy(
            max_attempts=args.max_attempts or 1,
            base_delay=args.retry_base_delay,
            deadline=args.shard_deadline,
        )

    had_failures = False

    def _print_report(report) -> None:
        nonlocal had_failures
        print(format_table(report.table))
        for failure in report.failures:
            had_failures = True
            print(
                f"  QUARANTINED shard {failure.key} "
                f"({failure.error_type} after {failure.attempts} "
                f"attempt(s)): {failure.error}",
                file=sys.stderr,
            )
        print()

    try:
        run_experiments(
            args.experiments,
            fast=args.fast,
            jobs=args.jobs,
            artifacts_dir=args.artifacts,
            on_report=_print_report,
            backend=args.backend,
            retry=retry,
            resume=not args.no_resume,
        )
    except KeyError as exc:
        # resolve_specs rejects unknown ids before any work starts.
        parser.error(str(exc).strip("'\""))
    return 1 if had_failures else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
