"""Tests for the constructive Theorem 2 pipeline."""

import numpy as np
import pytest

from repro.core.instance import Direction
from repro.experiments.theorem2 import (
    Theorem2RoundStats,
    _active_endpoint_nodes,
    sqrt_existence_pipeline,
)
from repro.geometry.line import LineMetric
from repro.core.instance import Instance
from repro.instances.nested import nested_instance
from repro.instances.random_instances import clustered_instance, random_uniform_instance
from repro.power.oblivious import SquareRootPower


class TestActiveEndpointNodes:
    def test_disjoint_pairs_all_active(self):
        metric = LineMetric([0.0, 1.0, 5.0, 7.0])
        inst = Instance.bidirectional(metric, [(0, 1), (2, 3)])
        nodes, losses, owner, deferred = _active_endpoint_nodes(
            inst, np.arange(2)
        )
        assert nodes == [0, 1, 2, 3]
        assert owner == [0, 0, 1, 1]
        assert deferred == 0
        assert losses[0] == pytest.approx(1.0)

    def test_shared_endpoint_deferred(self):
        metric = LineMetric([0.0, 1.0, 2.0])
        inst = Instance.bidirectional(metric, [(0, 1), (1, 2)])
        nodes, _, _, deferred = _active_endpoint_nodes(inst, np.arange(2))
        assert deferred == 1
        assert len(nodes) == 2


class TestPipeline:
    def test_schedule_is_feasible(self):
        inst = random_uniform_instance(12, rng=4)
        schedule, stats = sqrt_existence_pipeline(inst, rng=4)
        schedule.validate(inst)
        assert all(isinstance(s, Theorem2RoundStats) for s in stats)

    def test_uses_sqrt_powers(self):
        inst = random_uniform_instance(8, rng=4)
        schedule, _ = sqrt_existence_pipeline(inst, rng=4)
        assert np.allclose(schedule.powers, SquareRootPower()(inst))

    def test_all_requests_colored(self):
        inst = clustered_instance(10, rng=5)
        schedule, _ = sqrt_existence_pipeline(inst, rng=5)
        assert np.all(schedule.colors >= 0)

    def test_directed_rejected(self):
        inst = random_uniform_instance(5, direction=Direction.DIRECTED, rng=4)
        with pytest.raises(ValueError, match="bidirectional"):
            sqrt_existence_pipeline(inst, rng=4)

    def test_nested_far_fewer_than_n_colors(self):
        inst = nested_instance(16, beta=0.5)
        schedule, _ = sqrt_existence_pipeline(inst, rng=6)
        schedule.validate(inst)
        assert schedule.num_colors <= 12

    def test_round_stats_consistent(self):
        inst = random_uniform_instance(10, rng=7)
        schedule, stats = sqrt_existence_pipeline(inst, rng=7)
        assert sum(s.pairs_colored for s in stats) == inst.n
        remaining = [s.remaining_pairs for s in stats]
        assert remaining == sorted(remaining, reverse=True)
