"""Tests for tree ensembles (Lemma 6) and star decomposition (Lemma 9)."""

import numpy as np
import pytest

from repro.embedding.star_decomposition import lemma9_subset
from repro.embedding.tree_ensemble import (
    build_tree_ensemble,
    default_stretch_bound,
)
from repro.geometry.euclidean import EuclideanMetric
from repro.geometry.tree import TreeMetric
from repro.nodeloss.feasibility import is_gamma_feasible
from repro.nodeloss.instance import NodeLossInstance


@pytest.fixture
def metric(rng):
    return EuclideanMetric(rng.uniform(0, 100, size=(12, 2)))


class TestTreeEnsemble:
    def test_size_default(self, metric, rng):
        ensemble = build_tree_ensemble(metric, rng=rng)
        assert ensemble.r >= 4

    def test_explicit_r(self, metric, rng):
        ensemble = build_tree_ensemble(metric, r=6, rng=rng)
        assert ensemble.r == 6

    def test_all_members_dominate(self, metric, rng):
        ensemble = build_tree_ensemble(metric, r=5, rng=rng)
        for member in ensemble.members:
            assert member.embedding.dominates(metric)

    def test_core_respects_bound(self, metric, rng):
        ensemble = build_tree_ensemble(metric, r=5, rng=rng)
        for member in ensemble.members:
            assert np.all(member.stretch[member.core] <= ensemble.stretch_bound)
            assert np.all(member.stretch[~member.core] > ensemble.stretch_bound)

    def test_membership_counts(self, metric, rng):
        ensemble = build_tree_ensemble(metric, r=5, rng=rng)
        counts = ensemble.core_membership_counts()
        assert counts.shape == (metric.n,)
        assert np.all(counts <= 5)

    def test_calibrated_reaches_target(self, metric, rng):
        ensemble = build_tree_ensemble(metric, r=10, rng=rng)
        calibrated = ensemble.calibrated(0.9)
        assert np.all(calibrated.core_membership_fractions() >= 0.9 - 1e-9)

    def test_calibrated_invalid_fraction(self, metric, rng):
        ensemble = build_tree_ensemble(metric, r=4, rng=rng)
        with pytest.raises(ValueError):
            ensemble.calibrated(0.0)

    def test_best_tree_for(self, metric, rng):
        ensemble = build_tree_ensemble(metric, r=5, rng=rng)
        best = ensemble.best_tree_for(list(range(metric.n)))
        counts = [int(m.core.sum()) for m in ensemble.members]
        assert counts[best] == max(counts)

    def test_default_stretch_bound_grows(self):
        assert default_stretch_bound(100) > default_stretch_bound(10)

    def test_invalid_args(self, metric, rng):
        with pytest.raises(ValueError):
            build_tree_ensemble(metric, r=0, rng=rng)
        with pytest.raises(ValueError):
            build_tree_ensemble(metric, stretch_bound=0.5, rng=rng)


class TestLemma9:
    @pytest.fixture
    def tree(self):
        # A balanced binary-ish tree on 15 nodes with unit weights.
        edges = [((v - 1) // 2, v, 1.0 + 0.1 * v) for v in range(1, 15)]
        return TreeMetric(15, edges)

    def test_result_certified_on_tree(self, tree, rng):
        active = list(range(15))
        losses = np.exp(rng.uniform(0, 3, size=15))
        gamma = 0.05
        result = lemma9_subset(tree, active, losses, gamma=gamma)
        if result.kept.size:
            ids = [active[k] for k in result.kept]
            sub = tree.distance_matrix()[np.ix_(ids, ids)]
            inst = NodeLossInstance(sub, losses[result.kept], alpha=3.0)
            assert is_gamma_feasible(
                inst, inst.sqrt_powers(), gamma=gamma
            )

    def test_kept_indices_are_positions(self, tree, rng):
        active = [3, 5, 7, 9, 11]
        losses = np.ones(5)
        result = lemma9_subset(tree, active, losses, gamma=1e-6)
        assert np.all(result.kept < 5)

    def test_small_gamma_keeps_everything(self, tree):
        active = list(range(15))
        losses = np.ones(15)
        result = lemma9_subset(tree, active, losses, gamma=1e-9)
        assert result.kept.size == 15

    def test_star_sizes_recorded(self, tree):
        result = lemma9_subset(tree, list(range(15)), np.ones(15), gamma=1e-6)
        assert result.star_sizes
        assert max(result.star_sizes) <= 15

    def test_duplicate_active_rejected(self, tree):
        with pytest.raises(ValueError, match="distinct"):
            lemma9_subset(tree, [1, 1], np.ones(2), gamma=0.1)

    def test_misaligned_losses_rejected(self, tree):
        with pytest.raises(ValueError, match="align"):
            lemma9_subset(tree, [1, 2], np.ones(3), gamma=0.1)

    def test_levels_bounded_by_log(self, tree):
        result = lemma9_subset(tree, list(range(15)), np.ones(15), gamma=1e-6)
        assert result.levels <= 2 + int(np.ceil(np.log2(15))) + 1
