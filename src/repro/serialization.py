"""JSON serialization for instances, schedules and result tables.

A practical library needs to save and reload experiment artefacts.
Instances serialize their metric either as Euclidean coordinates (when
available) or as an explicit distance matrix; schedules serialize
colors and powers; experiment :class:`~repro.util.tables.Table` results
serialize as plain rows (the payload embedded in the orchestrator's
``BENCH_*.json`` artifacts).  Round-tripping preserves all
SINR-relevant data bit-for-bit (floats go through ``repr``-exact JSON
numbers).
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Union

import numpy as np

from repro.core.errors import ReproError
from repro.core.instance import Direction, Instance
from repro.core.schedule import Schedule
from repro.geometry.euclidean import EuclideanMetric
from repro.geometry.explicit import ExplicitMetric
from repro.geometry.line import LineMetric
from repro.geometry.metric import Metric
from repro.util.tables import Table

FORMAT_VERSION = 1


class SerializationError(ReproError, ValueError):
    """Malformed payloads or unsupported metric types."""


def _metric_to_dict(metric: Metric) -> Dict[str, Any]:
    if isinstance(metric, LineMetric):
        return {"type": "line", "coordinates": metric.coordinates.tolist()}
    if isinstance(metric, EuclideanMetric):
        return {"type": "euclidean", "points": metric.points.tolist()}
    # Fallback: any metric can ship as its distance matrix.
    return {"type": "explicit", "matrix": metric.distance_matrix().tolist()}


def _metric_from_dict(payload: Dict[str, Any]) -> Metric:
    kind = payload.get("type")
    if kind == "line":
        return LineMetric(payload["coordinates"])
    if kind == "euclidean":
        return EuclideanMetric(np.asarray(payload["points"]))
    if kind == "explicit":
        return ExplicitMetric(
            np.asarray(payload["matrix"]), validate_triangle=False
        )
    raise SerializationError(f"unknown metric type {kind!r}")


def instance_to_dict(instance: Instance) -> Dict[str, Any]:
    """Serializable dictionary for *instance*."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "instance",
        "metric": _metric_to_dict(instance.metric),
        "senders": instance.senders.tolist(),
        "receivers": instance.receivers.tolist(),
        "direction": instance.direction.value,
        "alpha": instance.alpha,
        "beta": instance.beta,
        "noise": instance.noise,
    }


def instance_from_dict(payload: Dict[str, Any]) -> Instance:
    """Rebuild an :class:`Instance` from :func:`instance_to_dict` output."""
    if payload.get("kind") != "instance":
        raise SerializationError("payload is not an instance")
    if payload.get("format_version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {payload.get('format_version')!r}"
        )
    return Instance(
        _metric_from_dict(payload["metric"]),
        payload["senders"],
        payload["receivers"],
        direction=Direction(payload["direction"]),
        alpha=payload["alpha"],
        beta=payload["beta"],
        noise=payload["noise"],
    )


def schedule_to_dict(schedule: Schedule) -> Dict[str, Any]:
    """Serializable dictionary for *schedule*."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "schedule",
        "colors": schedule.colors.tolist(),
        "powers": schedule.powers.tolist(),
    }


def schedule_from_dict(payload: Dict[str, Any]) -> Schedule:
    """Rebuild a :class:`Schedule` from :func:`schedule_to_dict` output."""
    if payload.get("kind") != "schedule":
        raise SerializationError("payload is not a schedule")
    if payload.get("format_version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {payload.get('format_version')!r}"
        )
    return Schedule(
        colors=np.asarray(payload["colors"], dtype=int),
        powers=np.asarray(payload["powers"], dtype=float),
    )


#: Strict-JSON stand-ins for non-finite floats (bare ``Infinity``/``NaN``
#: tokens would break non-Python consumers of the artifacts).  The
#: wrapper-object shape cannot collide with scalar cells, so genuine
#: string cells like ``"NaN"`` survive round-trips untouched.
_NON_FINITE = {"Infinity": np.inf, "-Infinity": -np.inf, "NaN": np.nan}


def _json_cell(value: Any) -> Any:
    """A strict-JSON-representable copy of one table cell.

    numpy scalars are unwrapped to their Python equivalents and
    non-finite floats become ``{"$float": "Infinity" | "-Infinity" |
    "NaN"}`` wrappers (decoded back by :func:`_cell_from_json`);
    anything beyond scalars/strings is rejected so round-trips stay
    exact.
    """
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        value = float(value)
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return {"$float": "NaN"}
        return {"$float": "Infinity" if value > 0 else "-Infinity"}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise SerializationError(
        f"table cell of type {type(value).__name__} is not JSON-serializable"
    )


def _cell_from_json(value: Any) -> Any:
    """Inverse of :func:`_json_cell` (decodes non-finite wrappers)."""
    if isinstance(value, dict):
        if set(value) == {"$float"} and value["$float"] in _NON_FINITE:
            return float(_NON_FINITE[value["$float"]])
        raise SerializationError(f"malformed table cell {value!r}")
    return value


def table_to_dict(table: Table) -> Dict[str, Any]:
    """Serializable dictionary for a result *table*."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "table",
        "title": table.title,
        "columns": [str(c) for c in table.columns],
        "rows": [
            {str(k): _json_cell(v) for k, v in row.items()} for row in table.rows
        ],
        "notes": list(table.notes),
    }


def table_from_dict(payload: Dict[str, Any]) -> Table:
    """Rebuild a :class:`Table` from :func:`table_to_dict` output."""
    if payload.get("kind") != "table":
        raise SerializationError("payload is not a table")
    if payload.get("format_version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {payload.get('format_version')!r}"
        )
    table = Table(title=payload["title"], columns=list(payload["columns"]))
    for row in payload["rows"]:
        table.add_row(**{k: _cell_from_json(v) for k, v in row.items()})
    for note in payload.get("notes", []):
        table.add_note(note)
    return table


def dumps(obj: Union[Instance, Schedule, Table], indent: int = None) -> str:
    """JSON string for an instance, schedule or result table."""
    if isinstance(obj, Instance):
        payload = instance_to_dict(obj)
    elif isinstance(obj, Schedule):
        payload = schedule_to_dict(obj)
    elif isinstance(obj, Table):
        payload = table_to_dict(obj)
    else:
        raise SerializationError(f"cannot serialize {type(obj).__name__}")
    return json.dumps(payload, indent=indent)


def loads(text: str) -> Union[Instance, Schedule, Table]:
    """Parse a JSON string produced by :func:`dumps`."""
    payload = json.loads(text)
    kind = payload.get("kind")
    if kind == "instance":
        return instance_from_dict(payload)
    if kind == "schedule":
        return schedule_from_dict(payload)
    if kind == "table":
        return table_from_dict(payload)
    raise SerializationError(f"unknown payload kind {kind!r}")
