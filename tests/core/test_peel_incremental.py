"""Conformance tests for the incremental peel kernel.

Contracts under test (see :func:`repro.core.kernels.peel_max_feasible_subset`):

* the incremental peel returns exactly the same subset as the retained
  compacting reference (``peel_incremental_disabled()``) and as the
  PR-1 from-scratch reference, across the conformance grid — directed
  and bidirectional instances, shared nodes (infinite gains), candidate
  subsets, beta overrides, and epsilon-pruned sparse backends;
* tolerance-window decisions (argmin ties, threshold crossings) are
  resolved exactly and counted as ``peel_risk_events``;
* heap/argmin tie-breaking is deterministic (golden subset, stable
  across repeats);
* duplicate candidates produce a structured, logged
  :class:`~repro.core.kernels.PeelFallbackInfo` instead of a silent
  fallback;
* on a sparse backend the peel never gathers a dense ``(k, k)`` block.
"""

import logging

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import gains
from repro.core.context import clear_context_cache, get_context
from repro.core.gains import backend_scope, build_backend
from repro.core.instance import Direction, Instance
from repro.core.kernels import (
    PeelFallbackInfo,
    peel_fallback_records,
    peel_incremental_disabled,
    peel_incremental_enabled,
    peel_max_feasible_subset,
    peel_risk_events,
    reset_peel_events,
)
from repro.geometry.line import LineMetric
from repro.instances.random_instances import random_uniform_instance
from repro.power.oblivious import SquareRootPower


@pytest.fixture(autouse=True)
def _fresh_state():
    clear_context_cache()
    reset_peel_events()
    yield
    clear_context_cache()
    reset_peel_events()


def _shared_node_instance(direction):
    metric = LineMetric([0.0, 1.0, 2.5, 4.5, 7.0])
    pairs = [(0, 1), (1, 2), (2, 3), (3, 4)]
    return Instance(
        metric,
        [p[0] for p in pairs],
        [p[1] for p in pairs],
        direction=direction,
    )


def _mirror_pair_instance():
    # Two mirror-image unit links: single-term interference sums are
    # bitwise equal, so the argmin tie (first occurrence) path must
    # fire as soon as beta makes the pair infeasible.
    metric = LineMetric([0.0, 1.0, 3.0, 4.0])
    return Instance(metric, [0, 2], [1, 3], direction=Direction.BIDIRECTIONAL)


def _mirror_quad_instance():
    metric = LineMetric([0.0, 1.0, 3.0, 4.0, 6.0, 7.0, 9.0, 10.0])
    return Instance(
        metric, [0, 2, 4, 6], [1, 3, 5, 7], direction=Direction.BIDIRECTIONAL
    )


def _both_ways(context, candidates=None, beta=None):
    incremental = peel_max_feasible_subset(
        context, candidates=candidates, beta=beta
    )
    assert peel_incremental_enabled()
    with peel_incremental_disabled():
        assert not peel_incremental_enabled()
        reference = peel_max_feasible_subset(
            context, candidates=candidates, beta=beta
        )
    scratch = context.greedy_max_feasible_subset(
        candidates=candidates, beta=beta
    )
    np.testing.assert_array_equal(incremental, reference)
    np.testing.assert_array_equal(incremental, scratch)
    return incremental


class TestGridConformance:
    @pytest.mark.parametrize(
        "direction", [Direction.DIRECTED, Direction.BIDIRECTIONAL]
    )
    def test_random_instances_match_reference(self, direction):
        rng = np.random.default_rng(1234)
        for seed in range(8):
            inst = random_uniform_instance(
                16, rng=seed, direction=direction
            )
            powers = SquareRootPower()(inst)
            ctx = get_context(inst, powers)
            _both_ways(ctx)
            k = int(rng.integers(1, inst.n + 1))
            subset = np.sort(rng.choice(inst.n, size=k, replace=False))
            _both_ways(ctx, candidates=subset)
            _both_ways(ctx, candidates=subset, beta=0.5)

    @pytest.mark.parametrize(
        "direction", [Direction.DIRECTED, Direction.BIDIRECTIONAL]
    )
    def test_shared_nodes_infinite_gains(self, direction):
        inst = _shared_node_instance(direction)
        ctx = get_context(inst, np.ones(inst.n))
        assert ctx.backend.has_infinite_gains
        result = _both_ways(ctx)
        # A chain sharing consecutive nodes admits at most every other
        # request, whatever the peel order.
        assert result.size <= 2

    @pytest.mark.parametrize("epsilon", [0.0, 0.05])
    def test_sparse_backend_matches_its_own_reference(self, epsilon):
        previous = gains.default_sparse_epsilon()
        gains.set_sparse_epsilon(epsilon)
        try:
            with backend_scope("sparse"):
                for seed in range(4):
                    inst = random_uniform_instance(14, rng=seed)
                    powers = SquareRootPower()(inst)
                    ctx = get_context(inst, powers)
                    assert ctx.backend.name == "sparse"
                    _both_ways(ctx)
        finally:
            gains.set_sparse_epsilon(previous)

    def test_trivial_sizes(self):
        inst = random_uniform_instance(3, rng=9)
        ctx = get_context(inst, SquareRootPower()(inst))
        np.testing.assert_array_equal(
            peel_max_feasible_subset(ctx, candidates=[]), []
        )
        _both_ways(ctx, candidates=[1])
        _both_ways(ctx, candidates=[2, 0])


class TestPropertyConformance:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 20),
        directed=st.booleans(),
        beta_override=st.one_of(
            st.none(), st.floats(0.1, 4.0, allow_nan=False)
        ),
    )
    def test_incremental_matches_reference(
        self, seed, n, directed, beta_override
    ):
        direction = (
            Direction.DIRECTED if directed else Direction.BIDIRECTIONAL
        )
        inst = random_uniform_instance(n, rng=seed, direction=direction)
        powers = SquareRootPower()(inst)
        ctx = get_context(inst, powers)
        rng = np.random.default_rng(seed)
        k = int(rng.integers(1, n + 1))
        subset = np.sort(rng.choice(n, size=k, replace=False))
        _both_ways(ctx, candidates=subset, beta=beta_override)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), chain=st.integers(2, 7))
    def test_shared_node_chains(self, seed, chain):
        rng = np.random.default_rng(seed)
        coords = np.cumsum(rng.uniform(0.5, 3.0, size=chain + 1))
        metric = LineMetric(coords)
        pairs = [(i, i + 1) for i in range(chain)]
        inst = Instance(
            metric,
            [p[0] for p in pairs],
            [p[1] for p in pairs],
            direction=Direction.BIDIRECTIONAL,
        )
        ctx = get_context(inst, np.ones(chain))
        _both_ways(ctx)


class TestRiskEventsAndDeterminism:
    def test_exact_tie_counted_and_golden(self):
        inst = _mirror_pair_instance()
        ctx = get_context(inst, np.ones(inst.n))
        first = _both_ways(ctx, beta=10.0)
        events = peel_risk_events()
        # Mirror-image links have bitwise-tied margins: the exact
        # tie-resolution path must have fired.
        assert events > 0
        # Golden: the tie resolves to the reference's first-occurrence
        # argmin — request 0 is peeled, request 1 survives.
        np.testing.assert_array_equal(first, [1])
        again = peel_max_feasible_subset(ctx, beta=10.0)
        np.testing.assert_array_equal(first, again)
        assert peel_risk_events() == 2 * events

    def test_quad_ties_deterministic_golden(self):
        inst = _mirror_quad_instance()
        ctx = get_context(inst, np.ones(inst.n))
        result = _both_ways(ctx, beta=8.0)
        assert peel_risk_events() > 0
        np.testing.assert_array_equal(result, [0, 3])

    def test_no_risk_on_well_separated_instance(self):
        inst = random_uniform_instance(10, rng=3)
        ctx = get_context(inst, SquareRootPower()(inst))
        peel_max_feasible_subset(ctx)
        # Generic random geometry has no exact ties and no margins
        # within 1e-9 of the threshold.
        assert peel_risk_events() == 0

    def test_counter_reset(self):
        inst = _mirror_pair_instance()
        ctx = get_context(inst, np.ones(inst.n))
        peel_max_feasible_subset(ctx, beta=10.0)
        assert peel_risk_events() > 0
        reset_peel_events()
        assert peel_risk_events() == 0
        assert peel_fallback_records() == ()


class TestDuplicateFallback:
    def test_structured_record_and_log(self, caplog):
        inst = random_uniform_instance(6, rng=5)
        ctx = get_context(inst, SquareRootPower()(inst))
        with caplog.at_level(logging.WARNING, logger="repro.core.kernels"):
            result = peel_max_feasible_subset(
                ctx, candidates=[0, 1, 1, 3, 4]
            )
        records = peel_fallback_records()
        assert len(records) == 1
        info = records[0]
        assert isinstance(info, PeelFallbackInfo)
        assert info.reasons == ("duplicate_candidates",)
        assert info.candidates == 5
        assert info.detail in caplog.text
        expected = ctx.greedy_max_feasible_subset(
            candidates=[0, 1, 1, 3, 4]
        )
        np.testing.assert_array_equal(result, expected)

    def test_unique_candidates_record_nothing(self):
        inst = random_uniform_instance(6, rng=5)
        ctx = get_context(inst, SquareRootPower()(inst))
        peel_max_feasible_subset(ctx, candidates=[0, 1, 3, 4])
        assert peel_fallback_records() == ()


class TestSparseNeverDensifies:
    def test_peel_avoids_block_gathers(self, monkeypatch):
        inst = random_uniform_instance(12, rng=11)
        powers = SquareRootPower()(inst)
        backend = build_backend(
            inst, powers, backend="sparse", sparse_epsilon=0.0
        )

        def _boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError(
                "incremental peel gathered a dense block on the sparse "
                "backend"
            )

        monkeypatch.setattr(type(backend), "block_u", _boom)
        monkeypatch.setattr(type(backend), "block_v", _boom)
        with backend_scope("sparse"):
            ctx = get_context(inst, powers)
        assert ctx.backend.name == "sparse"
        monkeypatch.setattr(type(ctx.backend), "block_u", _boom)
        monkeypatch.setattr(type(ctx.backend), "block_v", _boom)
        result = peel_max_feasible_subset(ctx)
        assert result.size >= 1
