"""Round-trip tests for the JSON serialization layer."""

import json

import numpy as np
import pytest

from repro.core.instance import Direction
from repro.core.schedule import Schedule
from repro.geometry.explicit import ExplicitMetric
from repro.geometry.tree import TreeMetric
from repro.instances.nested import nested_instance
from repro.instances.random_instances import random_uniform_instance
from repro.serialization import (
    SerializationError,
    dumps,
    instance_from_dict,
    instance_to_dict,
    loads,
    schedule_from_dict,
)


class TestInstanceRoundTrip:
    def test_euclidean_round_trip(self, small_random_instance):
        clone = loads(dumps(small_random_instance))
        assert clone.n == small_random_instance.n
        assert np.allclose(clone.link_losses, small_random_instance.link_losses)
        assert clone.direction == small_random_instance.direction
        assert clone.alpha == small_random_instance.alpha

    def test_line_round_trip(self):
        inst = nested_instance(5, beta=0.5)
        clone = loads(dumps(inst))
        assert np.allclose(
            clone.metric.distance_matrix(), inst.metric.distance_matrix()
        )
        assert clone.beta == 0.5

    def test_generic_metric_ships_as_matrix(self):
        tree = TreeMetric(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)])
        from repro.core.instance import Instance

        inst = Instance.bidirectional(tree, [(0, 3)])
        clone = loads(dumps(inst))
        assert isinstance(clone.metric, ExplicitMetric)
        assert np.allclose(
            clone.metric.distance_matrix(), tree.distance_matrix()
        )

    def test_feasibility_preserved(self, small_random_instance):
        from repro.power.oblivious import SquareRootPower
        from repro.scheduling.firstfit import first_fit_schedule

        schedule = first_fit_schedule(
            small_random_instance, SquareRootPower()(small_random_instance)
        )
        clone_inst = loads(dumps(small_random_instance))
        clone_sched = loads(dumps(schedule))
        clone_sched.validate(clone_inst)

    def test_directed_round_trip(self):
        inst = random_uniform_instance(4, direction=Direction.DIRECTED, rng=0)
        clone = loads(dumps(inst))
        assert clone.direction is Direction.DIRECTED


class TestScheduleRoundTrip:
    def test_round_trip(self):
        sched = Schedule(colors=np.array([0, 1, 0]), powers=np.array([1.0, 2.5, 3.25]))
        clone = loads(dumps(sched))
        assert np.array_equal(clone.colors, sched.colors)
        assert np.array_equal(clone.powers, sched.powers)

    def test_indent_option(self):
        sched = Schedule(colors=np.array([0]), powers=np.array([1.0]))
        text = dumps(sched, indent=2)
        assert "\n" in text


class TestErrors:
    def test_unknown_kind(self):
        with pytest.raises(SerializationError):
            loads(json.dumps({"kind": "mystery"}))

    def test_wrong_kind_for_instance(self):
        with pytest.raises(SerializationError):
            instance_from_dict({"kind": "schedule"})

    def test_wrong_kind_for_schedule(self):
        with pytest.raises(SerializationError):
            schedule_from_dict({"kind": "instance"})

    def test_bad_format_version(self, small_random_instance):
        payload = instance_to_dict(small_random_instance)
        payload["format_version"] = 999
        with pytest.raises(SerializationError, match="version"):
            instance_from_dict(payload)

    def test_unknown_metric_type(self, small_random_instance):
        payload = instance_to_dict(small_random_instance)
        payload["metric"] = {"type": "hyperbolic"}
        with pytest.raises(SerializationError, match="metric"):
            instance_from_dict(payload)

    def test_unsupported_object(self):
        with pytest.raises(SerializationError):
            dumps(42)


class TestTableRoundTrip:
    def _table(self):
        from repro.util.tables import Table

        table = Table(title="E0: example", columns=["name", "n", "value"])
        table.add_row(name="a", n=4, value=0.1 + 0.2)  # repr-exact float
        table.add_row(name="b", n=np.int64(8), value=np.float64(1.5))
        table.add_note("a note")
        return table

    def test_dict_round_trip(self):
        from repro.serialization import table_from_dict, table_to_dict

        table = self._table()
        clone = table_from_dict(table_to_dict(table))
        assert clone.title == table.title
        assert list(clone.columns) == list(table.columns)
        assert clone.notes == table.notes
        # numpy scalars unwrap to equal Python values; floats are exact.
        assert clone.rows == [
            {"name": "a", "n": 4, "value": 0.1 + 0.2},
            {"name": "b", "n": 8, "value": 1.5},
        ]

    def test_json_round_trip_is_exact(self):
        table = self._table()
        clone = loads(dumps(table))
        assert clone.rows[0]["value"] == table.rows[0]["value"]
        assert dumps(clone) == dumps(table)

    def test_rejects_non_scalar_cells(self):
        from repro.serialization import table_to_dict
        from repro.util.tables import Table

        table = Table(title="bad", columns=["x"])
        table.add_row(x=np.zeros(3))
        with pytest.raises(SerializationError, match="ndarray"):
            table_to_dict(table)

    def test_wrong_kind_for_table(self):
        from repro.serialization import table_from_dict

        with pytest.raises(SerializationError):
            table_from_dict({"kind": "instance"})

    def test_non_finite_cells_are_strict_json(self):
        from repro.serialization import table_from_dict, table_to_dict
        from repro.util.tables import Table

        table = Table(title="inf", columns=["v"])
        table.add_row(v=float("inf"))
        table.add_row(v=float("-inf"))
        payload = table_to_dict(table)
        # No bare Infinity/NaN tokens: strict parsers must accept it.
        text = json.dumps(payload, allow_nan=False)
        clone = table_from_dict(json.loads(text))
        assert clone.rows[0]["v"] == float("inf")
        assert clone.rows[1]["v"] == float("-inf")

    def test_sentinel_like_strings_survive(self):
        from repro.serialization import table_from_dict, table_to_dict
        from repro.util.tables import Table

        table = Table(title="strings", columns=["s"])
        table.add_row(s="NaN")
        table.add_row(s="Infinity")
        clone = table_from_dict(table_to_dict(table))
        assert clone.rows == [{"s": "NaN"}, {"s": "Infinity"}]
