"""Constructive gain rescaling (Propositions 3 and 4, §3.1).

Proposition 3: a set satisfying the SINR constraints with gain
``gamma`` (under powers ``p``) contains a subset of size at least
``gamma / (8 gamma')`` of it satisfying them with a stricter gain
``gamma' > gamma``.

Proposition 4: the whole set can be *colored* with
``O(gamma'/gamma * log n)`` colors, each class feasible at ``gamma'``.

The paper's proofs are existential; the constructive realisation here
is greedy first-fit at the stricter gain (for Proposition 4) and
taking its largest class (for Proposition 3) — exactly the procedure
the proofs charge against.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.instance import Instance
from repro.core.schedule import Schedule
from repro.scheduling.firstfit import first_fit_schedule


def rescale_gain_coloring(
    instance: Instance,
    powers: np.ndarray,
    gamma_target: float,
    order: Optional[Sequence[int]] = None,
) -> Schedule:
    """Proposition 4 made constructive: color at a stricter gain.

    Returns a schedule whose every class satisfies the SINR constraints
    with gain *gamma_target* under the same *powers*.

    Because the gain is a per-query override on the shared
    :class:`~repro.core.context.InterferenceContext`, repeated
    rescalings of the same ``(instance, powers)`` pair (the γ-sweep of
    §3.1) all reuse one set of cached gain matrices.
    """
    if not gamma_target > 0:
        raise ValueError(f"gamma_target must be > 0, got {gamma_target}")
    return first_fit_schedule(instance, powers, order=order, beta=gamma_target)


def densest_subset_at_gain(
    instance: Instance,
    powers: np.ndarray,
    gamma_target: float,
) -> Tuple[np.ndarray, Schedule]:
    """Proposition 3 made constructive: the largest stricter-gain class.

    Returns ``(subset, schedule)`` where *subset* is the largest color
    class of the Proposition 4 coloring — a single schedule step
    feasible at *gamma_target*.
    """
    schedule = rescale_gain_coloring(instance, powers, gamma_target)
    classes = schedule.color_classes()
    subset = max(classes.values(), key=lambda members: members.size)
    return subset, schedule
