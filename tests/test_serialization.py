"""Round-trip tests for the JSON serialization layer."""

import json

import numpy as np
import pytest

from repro.core.instance import Direction
from repro.core.schedule import Schedule
from repro.geometry.explicit import ExplicitMetric
from repro.geometry.tree import TreeMetric
from repro.instances.nested import nested_instance
from repro.instances.random_instances import random_uniform_instance
from repro.serialization import (
    SerializationError,
    dumps,
    instance_from_dict,
    instance_to_dict,
    loads,
    schedule_from_dict,
    schedule_to_dict,
)


class TestInstanceRoundTrip:
    def test_euclidean_round_trip(self, small_random_instance):
        clone = loads(dumps(small_random_instance))
        assert clone.n == small_random_instance.n
        assert np.allclose(clone.link_losses, small_random_instance.link_losses)
        assert clone.direction == small_random_instance.direction
        assert clone.alpha == small_random_instance.alpha

    def test_line_round_trip(self):
        inst = nested_instance(5, beta=0.5)
        clone = loads(dumps(inst))
        assert np.allclose(
            clone.metric.distance_matrix(), inst.metric.distance_matrix()
        )
        assert clone.beta == 0.5

    def test_generic_metric_ships_as_matrix(self):
        tree = TreeMetric(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)])
        from repro.core.instance import Instance

        inst = Instance.bidirectional(tree, [(0, 3)])
        clone = loads(dumps(inst))
        assert isinstance(clone.metric, ExplicitMetric)
        assert np.allclose(
            clone.metric.distance_matrix(), tree.distance_matrix()
        )

    def test_feasibility_preserved(self, small_random_instance):
        from repro.power.oblivious import SquareRootPower
        from repro.scheduling.firstfit import first_fit_schedule

        schedule = first_fit_schedule(
            small_random_instance, SquareRootPower()(small_random_instance)
        )
        clone_inst = loads(dumps(small_random_instance))
        clone_sched = loads(dumps(schedule))
        clone_sched.validate(clone_inst)

    def test_directed_round_trip(self):
        inst = random_uniform_instance(4, direction=Direction.DIRECTED, rng=0)
        clone = loads(dumps(inst))
        assert clone.direction is Direction.DIRECTED


class TestScheduleRoundTrip:
    def test_round_trip(self):
        sched = Schedule(colors=np.array([0, 1, 0]), powers=np.array([1.0, 2.5, 3.25]))
        clone = loads(dumps(sched))
        assert np.array_equal(clone.colors, sched.colors)
        assert np.array_equal(clone.powers, sched.powers)

    def test_indent_option(self):
        sched = Schedule(colors=np.array([0]), powers=np.array([1.0]))
        text = dumps(sched, indent=2)
        assert "\n" in text


class TestErrors:
    def test_unknown_kind(self):
        with pytest.raises(SerializationError):
            loads(json.dumps({"kind": "mystery"}))

    def test_wrong_kind_for_instance(self):
        with pytest.raises(SerializationError):
            instance_from_dict({"kind": "schedule"})

    def test_wrong_kind_for_schedule(self):
        with pytest.raises(SerializationError):
            schedule_from_dict({"kind": "instance"})

    def test_bad_format_version(self, small_random_instance):
        payload = instance_to_dict(small_random_instance)
        payload["format_version"] = 999
        with pytest.raises(SerializationError, match="version"):
            instance_from_dict(payload)

    def test_unknown_metric_type(self, small_random_instance):
        payload = instance_to_dict(small_random_instance)
        payload["metric"] = {"type": "hyperbolic"}
        with pytest.raises(SerializationError, match="metric"):
            instance_from_dict(payload)

    def test_unsupported_object(self):
        with pytest.raises(SerializationError):
            dumps(42)
