"""Benchmark: online admission vs. rebuild-per-arrival, plus serve throughput.

The PR-7 serving layer exists for one reason: before it, every arrival
tore down the pinned ``(instance, powers)`` context and rebuilt the
O(n^2) gain matrices from scratch.  With in-place backend growth an
arrival is one tile-fill of the appended row/column block plus a single
O(n) vectorized admission against the live kernel.  This benchmark
measures (and gates) that unlock at steady state:

* **incremental**: a live session held at ``--n`` active requests
  (default 4096); each step admits one arrival through
  ``Session.add_requests`` and departs the oldest request, so n is
  constant.  Reports arrivals/sec and p50/p99 per-admission latency.
* **rebuild-per-arrival**: the pre-PR behavior — every arrival builds
  a cold context for the grown instance and replays all admissions.
  Amortized over ``--baseline-arrivals`` arrivals (few: each one costs
  a full O(n^2) rebuild).
* **serve**: the same steady-state stream pushed through the asyncio
  ``repro.serve`` front-end (bounded queue, worker admission), so the
  queueing layer's overhead is visible next to the raw session numbers.

Gate (exit non-zero on violation): mean incremental admission must be
at least ``--speedup`` (default 10x) faster than mean
rebuild-per-arrival admission.  The rebuild path is O(n^2) against the
incremental path's O(n), so the gate engages at every size CI runs.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py --n 512 --artifacts out/

Reference results (one run, defaults, see
``benchmarks/artifacts/BENCH_serve.json``): at n=4096 steady state the
incremental path admits hundreds of arrivals/sec at p50 well under
100 ms while a single rebuild-per-arrival step costs seconds — three
orders of magnitude over the 10x gate.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time

import numpy as np


def _make_instance(n: int, seed: int):
    """Constant-density random geometric instance (directed), same
    shape as bench_backends."""
    from repro.instances.random_instances import random_uniform_instance

    side = 2.0 * float(np.sqrt(n))
    return random_uniform_instance(
        n,
        side=side,
        max_link_fraction=min(1.0, 4.0 / side),
        direction="directed",
        rng=seed,
    )


def _pair_stream(instance, seed):
    """Random arrival pairs over the instance's metric nodes."""
    rng = np.random.default_rng(seed)
    metric_size = instance.metric.n
    while True:
        s = int(rng.integers(0, metric_size))
        r = int(rng.integers(0, metric_size))
        if s != r:
            yield (s, r)


def _percentiles(latencies):
    lat = np.asarray(latencies, dtype=np.float64)
    return {
        "mean_ms": float(lat.mean() * 1e3),
        "p50_ms": float(np.percentile(lat, 50) * 1e3),
        "p99_ms": float(np.percentile(lat, 99) * 1e3),
    }


def measure_incremental(n: int, arrivals: int, seed: int) -> dict:
    """Steady-state arrival/departure stream on one live session."""
    from repro.api import Problem

    instance = _make_instance(n, seed)
    session = Problem(instance, backend="dense").session()
    session.ensure_live()
    pairs = _pair_stream(instance, seed + 1)
    fifo = list(session.handles)
    latencies = []
    start = time.perf_counter()
    for _ in range(arrivals):
        pair = next(pairs)
        t0 = time.perf_counter()
        handle = session.add_requests([pair])[0]
        latencies.append(time.perf_counter() - t0)
        # Depart the oldest request: n stays at steady state.
        session.remove_requests([fifo.pop(0)])
        fifo.append(handle)
    elapsed = time.perf_counter() - start
    session.live_result().validate()
    return {
        "workload": "incremental",
        "n": n,
        "arrivals": arrivals,
        "arrivals_per_sec": arrivals / elapsed,
        **_percentiles(latencies),
    }


def measure_rebuild(n: int, arrivals: int, seed: int) -> dict:
    """The pre-growth behavior: cold context + full admission replay
    for every single arrival."""
    from repro.api import Problem
    from repro.core.context import clear_context_cache
    from repro.core.instance import Instance

    instance = _make_instance(n, seed)
    pairs = _pair_stream(instance, seed + 1)
    latencies = []
    start = time.perf_counter()
    for _ in range(arrivals):
        s, r = next(pairs)
        t0 = time.perf_counter()
        instance = Instance(
            instance.metric,
            np.concatenate([instance.senders, [s]]),
            np.concatenate([instance.receivers, [r]]),
            direction=instance.direction,
            alpha=instance.alpha,
        )
        clear_context_cache()
        Problem(instance, backend="dense").session().ensure_live()
        latencies.append(time.perf_counter() - t0)
    elapsed = time.perf_counter() - start
    return {
        "workload": "rebuild-per-arrival",
        "n": n,
        "arrivals": arrivals,
        "arrivals_per_sec": arrivals / elapsed,
        **_percentiles(latencies),
    }


def measure_serve(n: int, arrivals: int, seed: int) -> dict:
    """The same steady-state stream through the asyncio front-end."""
    from repro.api import Problem
    from repro.serve import ScheduleServer, ServeConfig

    instance = _make_instance(n, seed)
    pairs = _pair_stream(instance, seed + 1)

    async def main():
        async with ScheduleServer() as server:
            session = server.add_session(
                "bench", Problem(instance, backend="dense"),
                ServeConfig(queue_capacity=128),
            )
            session.ensure_live()
            fifo = list(session.handles)
            start = time.perf_counter()
            for _ in range(arrivals):
                decision = await server.submit("bench", next(pairs))
                server.remove("bench", fifo.pop(0))
                fifo.append(decision.handle)
            elapsed = time.perf_counter() - start
            stats = server.stats("bench")
        return {
            "workload": "serve",
            "n": n,
            "arrivals": arrivals,
            "arrivals_per_sec": arrivals / elapsed,
            "mean_ms": stats["mean_latency_s"] * 1e3,
            "p50_ms": stats["p50_latency_s"] * 1e3,
            "p99_ms": stats["p99_latency_s"] * 1e3,
        }

    return asyncio.run(main())


def measure_serve_faulty(
    n: int, arrivals: int, seed: int, fault_every: int
) -> dict:
    """The serve stream with a deterministic fault injected every
    *fault_every*-th admission (mid-mutation, ``add_requests:grown``),
    recovered by the supervisor and retried once.

    Measures what self-healing costs at steady state: each recovery is
    a compacting session rebuild (the next admission replays against a
    cold context), amortized over the fault-free admissions between
    faults.  The returned mean therefore bounds the *degraded* serving
    rate, which the gate still holds against the rebuild baseline.
    """
    from repro.api import Problem
    from repro.resilience.faults import FaultPlan, FaultSpec
    from repro.serve import ScheduleServer, ServeConfig

    # Each add_requests fires one "grown" occurrence, and each faulted
    # admission consumes a second one for its retry — replay the
    # arithmetic to fault exactly every fault_every-th arrival.
    fault_at = []
    occurrence = 0
    for index in range(arrivals):
        if (index + 1) % fault_every == 0:
            fault_at.append(occurrence)
            occurrence += 2  # the fault + the successful retry
        else:
            occurrence += 1
    plan = FaultPlan(
        specs=(
            FaultSpec(
                site="session",
                phase="add_requests:grown",
                at=tuple(fault_at),
            ),
        )
    )

    instance = _make_instance(n, seed)
    pairs = _pair_stream(instance, seed + 1)

    async def main():
        async with ScheduleServer() as server:
            session = server.add_session(
                "bench-faulty", Problem(instance, backend="dense"),
                ServeConfig(
                    queue_capacity=128, fault_plan=plan, admit_retries=1
                ),
            )
            session.ensure_live()
            fifo = list(session.handles)
            start = time.perf_counter()
            for _ in range(arrivals):
                decision = await server.submit("bench-faulty", next(pairs))
                assert decision.accepted, decision
                server.remove("bench-faulty", fifo.pop(0))
                fifo.append(decision.handle)
            elapsed = time.perf_counter() - start
            stats = server.stats("bench-faulty")
            session.live_result().validate()
        return {
            "workload": f"serve-faulty(1/{fault_every})",
            "n": n,
            "arrivals": arrivals,
            "arrivals_per_sec": arrivals / elapsed,
            "mean_ms": stats["mean_latency_s"] * 1e3,
            "p50_ms": stats["p50_latency_s"] * 1e3,
            "p99_ms": stats["p99_latency_s"] * 1e3,
            "recoveries": stats["recoveries"],
        }

    return asyncio.run(main())


def run(args) -> int:
    rows = []
    failures = []
    run_start = time.perf_counter()

    def show(result):
        rows.append(result)
        print(
            f"{result['workload']:<22} n={result['n']:<6} "
            f"arrivals={result['arrivals']:<5} "
            f"{result['arrivals_per_sec']:>10.1f}/s "
            f"p50={result['p50_ms']:>8.3f} ms p99={result['p99_ms']:>8.3f} ms"
        )
        return result

    incremental = show(
        measure_incremental(args.n, args.arrivals, args.seed)
    )
    rebuild = show(
        measure_rebuild(args.n, args.baseline_arrivals, args.seed)
    )
    serve = show(measure_serve(args.n, args.arrivals, args.seed))
    faulty = None
    if args.fault_every > 0:
        faulty = show(
            measure_serve_faulty(
                args.n, args.arrivals, args.seed, args.fault_every
            )
        )

    speedup = rebuild["mean_ms"] / incremental["mean_ms"]
    print(
        f"\ngate: incremental admission {incremental['mean_ms']:.3f} ms "
        f"vs rebuild-per-arrival {rebuild['mean_ms']:.3f} ms "
        f"= {speedup:.1f}x (required >= {args.speedup:g}x)"
    )
    if speedup < args.speedup:
        failures.append(
            f"incremental admission is only {speedup:.1f}x faster than "
            f"rebuild-per-arrival (< {args.speedup:g}x) at n={args.n}"
        )
    # The queueing layer must not erase the win.
    if serve["arrivals_per_sec"] < 0.5 * incremental["arrivals_per_sec"]:
        failures.append(
            "serve throughput fell below half the raw incremental rate "
            f"({serve['arrivals_per_sec']:.1f}/s vs "
            f"{incremental['arrivals_per_sec']:.1f}/s)"
        )
    if faulty is not None:
        # Self-healing must not erase the win either: even with a
        # recovery (compacting rebuild) every fault_every-th arrival,
        # mean admission keeps the same gate over rebuild-per-arrival.
        faulty_speedup = rebuild["mean_ms"] / faulty["mean_ms"]
        expected_recoveries = args.arrivals // args.fault_every
        print(
            f"gate: degraded (1 fault / {args.fault_every} arrivals) "
            f"admission {faulty['mean_ms']:.3f} ms vs rebuild-per-arrival "
            f"{rebuild['mean_ms']:.3f} ms = {faulty_speedup:.1f}x "
            f"(required >= {args.speedup:g}x; "
            f"recoveries={faulty['recoveries']})"
        )
        if faulty_speedup < args.speedup:
            failures.append(
                f"recovery overhead drops degraded admission to only "
                f"{faulty_speedup:.1f}x over rebuild-per-arrival "
                f"(< {args.speedup:g}x) at n={args.n}"
            )
        if faulty["recoveries"] != expected_recoveries:
            failures.append(
                f"expected {expected_recoveries} recoveries, the server "
                f"counted {faulty['recoveries']}"
            )

    if args.artifacts is not None:
        from repro.runner.artifacts import (
            BenchReport,
            ShardResult,
            write_artifact,
        )
        from repro.util.tables import Table

        table = Table(
            title="Online serving: incremental admission at steady state",
            columns=[
                "workload",
                "n",
                "arrivals",
                "arrivals_per_sec",
                "mean_ms",
                "p50_ms",
                "p99_ms",
                "recoveries",
            ],
        )
        table.add_note(
            f"gate: mean incremental admission >= {args.speedup:g}x faster "
            f"than rebuild-per-arrival at n={args.n} steady state "
            f"(measured {speedup:.1f}x)"
        )
        table.add_note(
            "steady state: each step admits one arrival and departs the "
            "oldest active request, so n is constant; dense backend, "
            "constant-density directed instances, sqrt powers"
        )
        shards = []
        for row in rows:
            table.add_row(**{"recoveries": 0, **row})
            shards.append(
                ShardResult(
                    key=f"{row['workload']}:n={row['n']}",
                    seed=args.seed,
                    rows=1,
                    seconds=row["arrivals"] / row["arrivals_per_sec"],
                )
            )
        report = BenchReport(
            experiment="serve",
            title="Online serving layer at steady state",
            mode="full" if args.n >= 4096 else "smoke",
            table=table,
            shards=shards,
            run_wall_seconds=time.perf_counter() - run_start,
            metric="arrivals_per_sec",
            backend="dense",
            algorithms=("first_fit",),
        )
        path = write_artifact(args.artifacts, report)
        print(f"wrote {path}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: all serve gates passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--n",
        type=int,
        default=4096,
        help="steady-state active request count (default 4096)",
    )
    parser.add_argument(
        "--arrivals",
        type=int,
        default=256,
        help="measured arrivals for the incremental/serve workloads "
        "(default 256)",
    )
    parser.add_argument(
        "--baseline-arrivals",
        type=int,
        default=4,
        help="arrivals for the rebuild-per-arrival baseline (default 4; "
        "each one costs a full O(n^2) context rebuild)",
    )
    parser.add_argument(
        "--speedup",
        type=float,
        default=10.0,
        help="required incremental-over-rebuild admission speedup "
        "(default 10x)",
    )
    parser.add_argument(
        "--fault-every",
        type=int,
        default=0,
        help="inject one recovered mid-admission fault every N arrivals "
        "in an extra serve workload and gate its degraded mean too "
        "(0 = off)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--artifacts",
        default=None,
        help="directory to write BENCH_serve.json into",
    )
    args = parser.parse_args(argv)
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
