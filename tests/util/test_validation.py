"""Tests for validation helpers."""

import math

import pytest

from repro.util.validation import (
    check_finite,
    check_index,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, -1e-12])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_positive(bad, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive(float("nan"), "x")


class TestCheckFinite:
    def test_accepts_finite(self):
        assert check_finite(-3.0, "y") == -3.0

    @pytest.mark.parametrize("bad", [math.inf, -math.inf, math.nan])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(ValueError, match="y"):
            check_finite(bad, "y")


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, ok):
        assert check_probability(ok, "p") == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01])
    def test_rejects_outside(self, bad):
        with pytest.raises(ValueError, match="p"):
            check_probability(bad, "p")


class TestCheckIndex:
    def test_accepts_valid(self):
        assert check_index(3, 5, "i") == 3

    @pytest.mark.parametrize("bad", [-1, 5, 100])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(IndexError, match="i"):
            check_index(bad, 5, "i")
