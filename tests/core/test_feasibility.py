"""Tests for SINR feasibility predicates and noise scaling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidScheduleError
from repro.core.feasibility import (
    feasible_subset_mask,
    is_feasible_partition,
    is_feasible_subset,
    scale_powers_for_noise,
    signal_strengths,
    sinr_margins,
)
from repro.core.instance import Instance
from repro.geometry.line import LineMetric
from repro.instances.random_instances import random_uniform_instance
from repro.power.oblivious import SquareRootPower


class TestSignalStrengths:
    def test_values(self, two_link_instance):
        powers = np.array([8.0, 2.0])
        signals = signal_strengths(two_link_instance, powers)
        assert np.allclose(signals, [8.0, 2.0])  # unit links, alpha=3

    def test_non_positive_power_rejected(self, two_link_instance):
        with pytest.raises(InvalidScheduleError, match="positive"):
            signal_strengths(two_link_instance, np.array([1.0, 0.0]))

    def test_wrong_shape_rejected(self, two_link_instance):
        with pytest.raises(InvalidScheduleError, match="shape"):
            signal_strengths(two_link_instance, np.ones(3))


class TestMargins:
    def test_far_apart_links_have_huge_margins(self, two_link_instance):
        margins = sinr_margins(two_link_instance, np.ones(2))
        assert np.all(margins > 1e5)

    def test_margin_formula(self, two_link_instance):
        margins = sinr_margins(two_link_instance, np.ones(2))
        # signal = 1, interference = 1/99^3, beta = 1.
        assert margins[0] == pytest.approx(99.0**3)

    def test_beta_override_scales_margins(self, two_link_instance):
        base = sinr_margins(two_link_instance, np.ones(2))
        doubled = sinr_margins(two_link_instance, np.ones(2), beta=2.0)
        assert np.allclose(doubled, base / 2.0)

    def test_noise_reduces_margin(self, two_link_instance):
        noisy = sinr_margins(two_link_instance, np.ones(2), noise=1.0)
        assert np.all(noisy < 1.0 + 1e-9)

    def test_isolated_request_margin_infinite(self, two_link_instance):
        margins = sinr_margins(two_link_instance, np.ones(2), subset=[0])
        assert np.isinf(margins[0])

    def test_shared_node_margin_zero(self):
        metric = LineMetric([0.0, 1.0, 2.0])
        inst = Instance.bidirectional(metric, [(0, 1), (1, 2)])
        margins = sinr_margins(inst, np.ones(2))
        assert np.all(margins == 0.0)

    def test_scale_invariance_of_margins(self, small_random_instance):
        # At sigma = 0, multiplying all powers by the same factor
        # preserves all margins (§1.1).
        powers = SquareRootPower()(small_random_instance)
        a = sinr_margins(small_random_instance, powers)
        b = sinr_margins(small_random_instance, powers * 7.3)
        assert np.allclose(a, b)


class TestFeasibleSubset:
    def test_far_links_feasible(self, two_link_instance):
        assert is_feasible_subset(two_link_instance, np.ones(2), [0, 1])

    def test_empty_subset_feasible(self, two_link_instance):
        assert is_feasible_subset(two_link_instance, np.ones(2), [])

    def test_shared_node_infeasible(self):
        metric = LineMetric([0.0, 1.0, 2.0])
        inst = Instance.bidirectional(metric, [(0, 1), (1, 2)])
        assert not is_feasible_subset(inst, np.ones(2), [0, 1])
        assert is_feasible_subset(inst, np.ones(2), [0])

    def test_mask_identifies_violators(self):
        # Three links: two close together, one far away.
        metric = LineMetric([0.0, 1.0, 1.5, 2.5, 100.0, 101.0])
        inst = Instance.bidirectional(metric, [(0, 1), (2, 3), (4, 5)])
        mask = feasible_subset_mask(inst, np.ones(3), [0, 1, 2])
        assert not mask[0]
        assert not mask[1]
        assert mask[2]

    def test_partition_feasibility(self):
        metric = LineMetric([0.0, 1.0, 1.5, 2.5, 100.0, 101.0])
        inst = Instance.bidirectional(metric, [(0, 1), (2, 3), (4, 5)])
        good = np.array([0, 1, 0])  # separate the two close links
        bad = np.array([0, 0, 1])
        assert is_feasible_partition(inst, np.ones(3), good)
        assert not is_feasible_partition(inst, np.ones(3), bad)

    def test_partition_shape_checked(self, two_link_instance):
        with pytest.raises(InvalidScheduleError):
            is_feasible_partition(two_link_instance, np.ones(2), np.zeros(3, int))


class TestNoiseScaling:
    def test_scaling_absorbs_noise(self, small_random_instance):
        powers = SquareRootPower()(small_random_instance)
        from repro.scheduling.firstfit import first_fit_schedule

        schedule = first_fit_schedule(small_random_instance, powers)
        noise = 10.0
        scaled = scale_powers_for_noise(
            small_random_instance, schedule.powers, schedule.colors, noise
        )
        margins = sinr_margins(
            small_random_instance, scaled, colors=schedule.colors, noise=noise
        )
        assert np.all(margins >= 1.0)

    def test_zero_noise_returns_copy(self, two_link_instance):
        powers = np.array([1.0, 2.0])
        result = scale_powers_for_noise(
            two_link_instance, powers, np.array([0, 0]), 0.0
        )
        assert np.allclose(result, powers)
        assert result is not powers

    def test_infeasible_schedule_rejected(self):
        metric = LineMetric([0.0, 1.0, 1.2, 2.2])
        inst = Instance.bidirectional(metric, [(0, 1), (2, 3)])
        # Overlapping links in one color: infeasible at zero noise.
        with pytest.raises(InvalidScheduleError, match="strictly feasible"):
            scale_powers_for_noise(inst, np.ones(2), np.array([0, 0]), 1.0)

    def test_negative_noise_rejected(self, two_link_instance):
        with pytest.raises(ValueError):
            scale_powers_for_noise(
                two_link_instance, np.ones(2), np.array([0, 1]), -1.0
            )


class TestFeasibilityProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_subset_of_feasible_is_feasible(self, seed):
        """Removing requests never hurts: monotonicity of feasibility."""
        inst = random_uniform_instance(8, rng=seed)
        powers = SquareRootPower()(inst)
        full = list(range(8))
        if not is_feasible_subset(inst, powers, full):
            mask = feasible_subset_mask(inst, powers, full)
            # Restrict to satisfied requests; they must stay satisfied
            # when the violators leave (interference only decreases).
            survivors = [i for i in full if mask[i]]
            if survivors:
                margins = sinr_margins(inst, powers, subset=survivors)
                assert np.all(margins >= 1.0 - 1e-9)
        else:
            sub = full[::2]
            assert is_feasible_subset(inst, powers, sub)
