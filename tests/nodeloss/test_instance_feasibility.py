"""Tests for node-loss instances and their feasibility layer."""

import numpy as np
import pytest

from repro.core.errors import InvalidInstanceError
from repro.geometry.line import LineMetric
from repro.nodeloss.feasibility import (
    is_gamma_feasible,
    max_feasible_gain,
    nodeloss_interference,
    nodeloss_margins,
    witness_powers,
)
from repro.nodeloss.instance import NodeLossInstance, StarNodeLoss


@pytest.fixture
def two_nodes():
    """Two nodes 10 apart, both with loss parameter 8 (alpha=3)."""
    distances = np.array([[0.0, 10.0], [10.0, 0.0]])
    return NodeLossInstance(distances, [8.0, 8.0], alpha=3.0, beta=1.0)


class TestNodeLossInstance:
    def test_basic(self, two_nodes):
        assert two_nodes.m == 2
        assert np.allclose(two_nodes.loss_matrix()[0, 1], 1000.0)

    def test_sqrt_powers(self, two_nodes):
        assert np.allclose(two_nodes.sqrt_powers(), [np.sqrt(8)] * 2)

    def test_from_metric(self):
        metric = LineMetric([0.0, 4.0, 9.0])
        inst = NodeLossInstance.from_metric(metric, [0, 2], [1.0, 2.0])
        assert inst.distances[0, 1] == pytest.approx(9.0)

    def test_subset(self, two_nodes):
        sub = two_nodes.subset([1])
        assert sub.m == 1
        assert sub.losses[0] == 8.0

    def test_asymmetric_rejected(self):
        with pytest.raises(InvalidInstanceError, match="symmetric"):
            NodeLossInstance(np.array([[0.0, 1.0], [2.0, 0.0]]), [1.0, 1.0])

    def test_non_positive_loss_rejected(self):
        with pytest.raises(InvalidInstanceError, match="loss"):
            NodeLossInstance(np.zeros((1, 1)), [0.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(InvalidInstanceError, match="shape"):
            NodeLossInstance(np.zeros((2, 2)), [1.0])


class TestStarNodeLoss:
    def test_decay_and_ratio(self):
        star = StarNodeLoss([2.0, 3.0], [16.0, 27.0], alpha=3.0)
        assert np.allclose(star.decay, [8.0, 27.0])
        assert np.allclose(star.loss_to_decay, [2.0, 1.0])

    def test_pairwise_distances_through_center(self):
        star = StarNodeLoss([1.0, 4.0], [1.0, 1.0])
        assert star.distances[0, 1] == pytest.approx(5.0)

    def test_subset_preserves_type(self):
        star = StarNodeLoss([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        sub = star.subset([0, 2])
        assert isinstance(sub, StarNodeLoss)
        assert np.allclose(sub.center_distances, [1.0, 3.0])


class TestNodeLossFeasibility:
    def test_interference_hand_computed(self, two_nodes):
        powers = np.array([5.0, 3.0])
        interf = nodeloss_interference(two_nodes, powers)
        assert interf[0] == pytest.approx(3.0 / 1000.0)
        assert interf[1] == pytest.approx(5.0 / 1000.0)

    def test_margins(self, two_nodes):
        powers = np.array([8.0, 8.0])
        margins = nodeloss_margins(two_nodes, powers, gamma=1.0)
        # signal = 8/8 = 1; interference = 8/1000.
        assert margins[0] == pytest.approx(125.0)

    def test_gamma_feasibility(self, two_nodes):
        assert is_gamma_feasible(two_nodes, np.array([8.0, 8.0]), gamma=100.0)
        assert not is_gamma_feasible(two_nodes, np.array([8.0, 8.0]), gamma=200.0)

    def test_coincident_nodes_zero_margin(self):
        inst = NodeLossInstance(np.zeros((2, 2)), [1.0, 1.0])
        margins = nodeloss_margins(inst, np.ones(2))
        assert np.all(margins == 0.0)


class TestMaxFeasibleGain:
    def test_two_symmetric_nodes_exact(self, two_nodes):
        # M[0,1] = M[1,0] = l / l(0,1) = 8/1000; rho = 8/1000.
        assert max_feasible_gain(two_nodes) == pytest.approx(125.0)

    def test_singleton_infinite(self, two_nodes):
        assert max_feasible_gain(two_nodes, subset=[0]) == np.inf

    def test_coincident_nodes_zero(self):
        inst = NodeLossInstance(np.zeros((2, 2)), [1.0, 1.0])
        assert max_feasible_gain(inst) == 0.0

    def test_gain_is_achievable(self, two_nodes):
        best = max_feasible_gain(two_nodes)
        powers = witness_powers(two_nodes, 0.9 * best)
        assert is_gamma_feasible(two_nodes, powers, gamma=0.9 * best)

    def test_above_gain_rejected(self, two_nodes):
        best = max_feasible_gain(two_nodes)
        with pytest.raises(ValueError, match="achievable"):
            witness_powers(two_nodes, 1.1 * best)

    def test_random_star_witness(self, rng):
        deltas = np.exp(rng.uniform(0, 4, size=12))
        losses = np.exp(rng.uniform(0, 5, size=12))
        star = StarNodeLoss(deltas, losses)
        best = max_feasible_gain(star)
        assert best > 0
        powers = witness_powers(star, best / 2.0)
        assert is_gamma_feasible(star, powers, gamma=best / 2.0)
