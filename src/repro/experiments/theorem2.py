"""The constructive Theorem 2 pipeline.

Theorem 2's existence proof chains §3.2 (pair splitting), Lemma 6
(tree ensemble + Proposition 7 core selection), Lemma 9 (centroid/star
decomposition with Lemma 5 at every star) and §3.1 (gain rescaling).
This module executes that exact chain as an algorithm, emitting one
color class per round:

1. split the remaining pairs into endpoint nodes with loss parameters
   (requests sharing an endpoint are deferred — they can never share a
   color anyway);
2. pick the ensemble tree whose core covers the most active nodes
   (Proposition 7); restrict to the core;
3. run the Lemma 9 star decomposition on the tree (the tree dominates
   the metric, so feasibility carries over to the tree for free);
4. certify the surviving nodes on the *original* metric (Lemma 8's
   role) by peeling at the target gain;
5. keep the pairs with both endpoints alive (§3.2 backward direction);
6. rescale the gain back to the instance's ``beta`` (Proposition 4)
   by first-fit splitting the extracted pair set, and emit the
   resulting classes as colors.

The node-world stages run at the reduced gain ``beta / (2 + beta)``
(§3.2): a node's partner alone contributes interference equal to the
node's own signal, so node-world feasibility at the full pair gain is
impossible by construction — the paper's reduction loses exactly this
factor and recovers it with Proposition 3/4 at the end (§3.5).

The result is a genuinely feasible schedule under the square-root
assignment, produced by the paper's proof machinery — the measured
number of colors is the empirical counterpart of the
``O(log^{3.5+alpha} n)`` bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.instance import Direction, Instance
from repro.core.schedule import Schedule
from repro.embedding.star_decomposition import lemma9_subset
from repro.embedding.tree_ensemble import TreeEnsemble, build_tree_ensemble
from repro.nodeloss.feasibility import nodeloss_margins
from repro.nodeloss.instance import NodeLossInstance
from repro.nodeloss.transform import node_gain_from_pair_gain
from repro.power.oblivious import SquareRootPower
from repro.scheduling.registry import run_algorithm
from repro.util.rng import RngLike, ensure_rng


@dataclass
class Theorem2RoundStats:
    """Diagnostics for one round of the existence pipeline."""

    round_index: int
    remaining_pairs: int
    active_nodes: int
    deferred_shared: int
    tree_index: int
    core_nodes: int
    lemma9_kept: int
    certified_nodes: int
    pairs_colored: int
    fallback_used: bool


def _active_endpoint_nodes(
    instance: Instance, remaining: np.ndarray
) -> Tuple[List[int], List[float], List[int], int]:
    """Unique endpoint nodes of *remaining* pairs with their losses.

    Pairs whose endpoint collides with an already-claimed node are
    deferred.  Returns (nodes, losses, pair_of_position, deferred).
    """
    claimed = {}
    nodes: List[int] = []
    losses: List[float] = []
    owner: List[int] = []
    deferred = 0
    for pair in remaining:
        u = int(instance.senders[pair])
        v = int(instance.receivers[pair])
        if u in claimed or v in claimed or u == v:
            deferred += 1
            continue
        claimed[u] = pair
        claimed[v] = pair
        loss = float(instance.link_losses[pair])
        nodes.extend([u, v])
        losses.extend([loss, loss])
        owner.extend([int(pair), int(pair)])
    return nodes, losses, owner, deferred


def sqrt_existence_pipeline(
    instance: Instance,
    rng: RngLike = None,
    ensemble: Optional[TreeEnsemble] = None,
    max_rounds: Optional[int] = None,
) -> Tuple[Schedule, List[Theorem2RoundStats]]:
    """Schedule *instance* via the Theorem 2 proof machinery.

    Parameters
    ----------
    instance:
        A bidirectional instance.
    ensemble:
        Pre-built Lemma 6 tree ensemble of the instance's metric
        (sampled fresh when ``None``).
    max_rounds:
        Safety cap (default ``4 * n``); singleton fallback guarantees
        progress, so the cap is never reached in practice.

    Returns
    -------
    (schedule, round_stats)
    """
    if instance.direction is not Direction.BIDIRECTIONAL:
        raise ValueError("the Theorem 2 pipeline applies to bidirectional instances")
    rng = ensure_rng(rng)
    if ensemble is None:
        ensemble = build_tree_ensemble(instance.metric, rng=rng)
    if max_rounds is None:
        max_rounds = 4 * instance.n

    beta = instance.beta
    gamma_node = node_gain_from_pair_gain(beta)
    colors = np.full(instance.n, -1, dtype=int)
    powers = SquareRootPower()(instance)
    metric_dist = instance.metric.distance_matrix()
    remaining = np.arange(instance.n)
    stats: List[Theorem2RoundStats] = []
    color = 0
    round_index = 0

    while remaining.size > 0 and round_index < max_rounds:
        nodes, losses, owner, deferred = _active_endpoint_nodes(instance, remaining)
        fallback = False
        certified: List[int] = []  # positions into `nodes`
        tree_index = -1
        core_count = 0
        kept_count = 0

        if nodes:
            tree_index = ensemble.best_tree_for(nodes)
            member = ensemble.members[tree_index]
            in_core = [k for k, v in enumerate(nodes) if member.core[v]]
            core_count = len(in_core)
            if core_count >= 2:
                tree = member.embedding.tree
                core_nodes = [nodes[k] for k in in_core]
                core_losses = np.asarray([losses[k] for k in in_core])
                result = lemma9_subset(
                    tree,
                    core_nodes,
                    core_losses,
                    gamma=gamma_node,
                    alpha=instance.alpha,
                )
                kept_count = int(result.kept.size)
                # Certify on the original metric (Lemma 8's role).
                kept_positions = [in_core[int(k)] for k in result.kept]
                if kept_positions:
                    ids = [nodes[k] for k in kept_positions]
                    node_inst = NodeLossInstance(
                        metric_dist[np.ix_(ids, ids)],
                        np.asarray([losses[k] for k in kept_positions]),
                        alpha=instance.alpha,
                        beta=gamma_node,
                    )
                    live = np.arange(len(kept_positions))
                    sqrt_p = node_inst.sqrt_powers()
                    while live.size > 0:
                        margins = nodeloss_margins(
                            node_inst, sqrt_p, subset=live, gamma=gamma_node
                        )
                        if np.all(margins >= 1.0 - 1e-9):
                            break
                        live = np.delete(live, int(np.argmin(margins)))
                    certified = [kept_positions[int(k)] for k in live]

        # Backward direction of §3.2: keep the pairs with both
        # endpoints certified.
        alive = set(certified)
        chosen = sorted(
            {
                owner[k]
                for k in certified
                if any(owner[j] == owner[k] and j != k for j in alive)
            }
        )
        if not chosen:
            # Guarantee progress: the longest remaining pair alone.
            longest = remaining[
                int(np.argmax(instance.link_distances[remaining]))
            ]
            chosen = [int(longest)]
            fallback = True

        # Proposition 4: rescale from gamma_node back to the full gain
        # beta by first-fit splitting the extracted pair set.
        chosen_arr = np.asarray(chosen, dtype=int)
        if chosen_arr.size == 1:
            colors[chosen_arr[0]] = color
            color += 1
        else:
            sub = instance.subset(chosen_arr)
            sub_schedule = run_algorithm(
                "first_fit", sub, powers=powers[chosen_arr], beta=beta
            ).schedule
            for local, pair in enumerate(chosen_arr):
                colors[pair] = color + int(sub_schedule.colors[local])
            color += sub_schedule.num_colors

        stats.append(
            Theorem2RoundStats(
                round_index=round_index,
                remaining_pairs=int(remaining.size),
                active_nodes=len(nodes),
                deferred_shared=deferred,
                tree_index=tree_index,
                core_nodes=core_count,
                lemma9_kept=kept_count,
                certified_nodes=len(certified),
                pairs_colored=len(chosen),
                fallback_used=fallback,
            )
        )
        chosen_set = set(chosen)
        remaining = np.asarray(
            [i for i in remaining if int(i) not in chosen_set], dtype=int
        )
        round_index += 1

    if remaining.size > 0:  # pragma: no cover - cap never binds
        for pair in remaining:
            colors[pair] = color
            color += 1

    schedule = Schedule(colors=colors, powers=powers)
    return schedule, stats
