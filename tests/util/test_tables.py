"""Tests for the Table abstraction."""

import pytest

from repro.util.tables import Table, format_table


@pytest.fixture
def table():
    t = Table(title="demo", columns=["a", "b"])
    t.add_row(a=1, b=2.5)
    t.add_row(a=3, b=None)
    return t


class TestTable:
    def test_len(self, table):
        assert len(table) == 2

    def test_column_access(self, table):
        assert table.column("a") == [1, 3]

    def test_missing_column_raises(self, table):
        with pytest.raises(KeyError):
            table.column("zzz")

    def test_unknown_row_key_raises(self, table):
        with pytest.raises(KeyError):
            table.add_row(a=1, nonsense=2)

    def test_notes_append(self, table):
        table.add_note("hello")
        assert table.notes == ["hello"]

    def test_missing_value_renders_empty(self, table):
        rendered = format_table(table)
        assert "demo" in rendered


class TestFormatTable:
    def test_contains_header_and_rows(self, table):
        out = format_table(table)
        assert "| a" in out
        assert "| 1" in out

    def test_markdown_separator(self, table):
        out = format_table(table)
        lines = out.splitlines()
        assert any(set(line) <= {"|", "-", " "} and "-" in line for line in lines)

    def test_float_formatting(self):
        t = Table(title="f", columns=["x"])
        t.add_row(x=0.000123)
        t.add_row(x=123456.0)
        t.add_row(x=1.5)
        t.add_row(x=0.0)
        out = format_table(t)
        assert "0.000123" in out
        assert "1.23e+05" in out or "123456" in out or "1.23e+5" in out
        assert "1.5" in out

    def test_notes_rendered(self, table):
        table.add_note("a note")
        assert "> a note" in format_table(table)
