"""Real-process conformance and fault injection for the sharded backend.

The serial executor is the conformance reference; these tests assert
the ``"process"`` executor is indistinguishable from it — including
when a shard worker is SIGKILLed mid-run and the
:class:`repro.resilience.RetryPolicy` respawn-and-replay path has to
rebuild the lost actor from its payload.
"""

import os
import signal

import numpy as np
import pytest

from repro.core.context import clear_context_cache
from repro.core.gains import build_backend
from repro.distributed import ShardedBackend, distributed_protocol
from repro.instances.random_instances import random_uniform_instance
from repro.power.oblivious import SquareRootPower
from repro.resilience import RetryPolicy
from repro.runner.executors import ProcessShardExecutor


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_context_cache()
    yield
    clear_context_cache()


def _instance(n=20, seed=7):
    return random_uniform_instance(n, rng=seed, direction="directed")


@pytest.mark.slow
class TestProcessConformance:
    def test_process_matches_dense_and_owns_real_workers(self):
        instance = _instance()
        powers = SquareRootPower()(instance)
        dense = build_backend(instance, powers, backend="dense")
        backend = ShardedBackend.build(
            instance, powers, epsilon=0.0, workers=2, executor="process"
        )
        try:
            health = backend.worker_health()
            pids = [record["pid"] for record in health]
            assert len(set(pids)) == 2
            assert os.getpid() not in pids
            np.testing.assert_array_equal(dense.dense_u(), backend.dense_u())
            colors = np.arange(instance.n) % 3
            np.testing.assert_array_equal(
                dense.class_sum_u(colors), backend.class_sum_u(colors)
            )
            backend.prefetch_columns(np.arange(4))
            np.testing.assert_array_equal(
                dense.col_u(2), backend.col_u(2)
            )
        finally:
            backend.close()

    def test_serial_and_process_first_fit_identical(self):
        instance = _instance()
        powers = SquareRootPower()(instance)
        results = {}
        for executor in ("serial", "process"):
            backend = ShardedBackend.build(
                instance, powers, epsilon=0.0, workers=2, executor=executor
            )
            try:
                results[executor] = backend.dense_u()
            finally:
                backend.close()
        np.testing.assert_array_equal(results["serial"], results["process"])


@pytest.mark.slow
class TestSigkillRecovery:
    def test_sigkilled_worker_respawns_and_run_completes(self):
        """The ISSUE acceptance case: one shard worker is SIGKILLed and
        the retry path completes the run with bit-identical results."""
        instance = _instance(n=24, seed=11)
        powers = SquareRootPower()(instance)
        colors = np.arange(instance.n) % 2
        dense = build_backend(instance, powers, backend="dense")
        expected_dense_u = dense.dense_u()
        expected_class_sum = dense.class_sum_u(colors)
        backend = ShardedBackend.build(
            instance, powers, epsilon=0.0, workers=2, executor="process"
        )
        try:
            executor = backend.executor
            before = executor.worker_pids()
            os.kill(before[0], signal.SIGKILL)
            # Every subsequent query self-heals: the dead worker is
            # rebuilt from its deterministic payload and replayed.
            np.testing.assert_array_equal(
                expected_dense_u, backend.dense_u()
            )
            after = executor.worker_pids()
            assert after[0] != before[0]
            assert after[1] == before[1]
            np.testing.assert_array_equal(
                expected_class_sum, backend.class_sum_u(colors)
            )
        finally:
            backend.close()

    def test_idle_death_is_not_charged_to_the_retry_budget(self):
        """A worker killed *between* calls is respawned on the next
        call's first attempt — only deaths *during* an attempt consume
        the budget (exhaustion is covered by the executor `die` tests),
        so even ``max_attempts=1`` survives an idle-time SIGKILL."""
        instance = _instance(n=12, seed=3)
        powers = SquareRootPower()(instance)
        dense = build_backend(instance, powers, backend="dense")
        expected = dense.dense_u()
        retry = RetryPolicy(max_attempts=1, base_delay=0.0)
        executor = ProcessShardExecutor(2, retry=retry)
        backend = ShardedBackend.build(
            instance, powers, epsilon=0.0, workers=2, executor=executor
        )
        try:
            victim = executor.worker_pids()[1]
            os.kill(victim, signal.SIGKILL)
            np.testing.assert_array_equal(expected, backend.dense_u())
            assert executor.worker_pids()[1] != victim
        finally:
            backend.close()


@pytest.mark.slow
class TestProtocolProcess:
    def test_protocol_serial_process_bit_identical(self):
        instance = _instance(n=16, seed=5)
        serial_schedule, serial_stats = distributed_protocol(
            instance, workers=2, executor="serial", seed=99
        )
        process_schedule, process_stats = distributed_protocol(
            instance, workers=2, executor="process", seed=99
        )
        np.testing.assert_array_equal(
            serial_schedule.colors, process_schedule.colors
        )
        assert serial_stats.slots == process_stats.slots
        process_schedule.validate(instance)


class TestEndToEndProcessFirstFit:
    @pytest.mark.slow
    def test_problem_process_first_fit_matches_dense(self):
        from repro.api import Problem

        instance = _instance(n=18, seed=29)
        dense_colors = (
            Problem(instance, backend="dense")
            .session()
            .schedule("first_fit")
            .schedule.colors
        )
        result = (
            Problem(
                instance,
                backend="sharded",
                workers=2,
                shard_executor="process",
                sparse_epsilon=0.0,
            )
            .session()
            .schedule("first_fit")
        )
        np.testing.assert_array_equal(dense_colors, result.schedule.colors)
        assert result.provenance.certified is True


def test_rebuilt_backends_are_deterministic():
    """Shard payloads rebuild bit-identical actors: two fresh builds
    (the same mechanism a post-SIGKILL respawn uses) agree exactly."""
    instance = _instance(n=14, seed=41)
    powers = SquareRootPower()(instance)
    results = []
    for _ in range(2):
        backend = ShardedBackend.build(
            instance, powers, epsilon=0.0, workers=2, executor="serial"
        )
        try:
            results.append(backend.dense_u())
        finally:
            backend.close()
    np.testing.assert_array_equal(results[0], results[1])
