"""E11 — §6 open problem: distributed vs centralized coloring.

The paper leaves open whether a *distributed* procedure can match the
centralized O(log n) approximation for the square-root assignment.
The experiment measures the natural slotted random-access protocol
(with and without backoff) against the centralized schedulers: colors
actually used, total protocol slots (idle/collision slots included —
the distributed cost), and attempts per success.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.experiments.e03_sqrt_universal import InstanceFactory, default_families
from repro.power.oblivious import SquareRootPower
from repro.runner.spec import ExperimentSpec
from repro.scheduling.registry import run_algorithm
from repro.util.rng import RngLike, ensure_rng, spawn_rngs
from repro.util.tables import Table


def run_distributed(
    n_values: Sequence[int] = (10, 20, 40),
    families: Optional[Dict[str, InstanceFactory]] = None,
    trials: int = 3,
    rng: RngLike = 61,
) -> Table:
    """Measure the distributed protocol against centralized first-fit."""
    if families is None:
        families = default_families()
    rng = ensure_rng(rng)
    table = Table(
        title="E11: §6 — distributed random-access vs centralized coloring",
        columns=[
            "family",
            "n",
            "centralized_colors",
            "distributed_colors",
            "protocol_slots",
            "attempts_per_success",
            "distributed_overhead",
        ],
    )
    table.add_note(
        "protocol: slotted random access under the sqrt assignment with "
        "multiplicative backoff; overhead = protocol slots / centralized colors"
    )
    power = SquareRootPower()
    for family_name, factory in families.items():
        for n in n_values:
            central, dist_colors, slots, att = [], [], [], []
            for child in spawn_rngs(rng, trials):
                instance = factory(n, child)
                baseline = run_algorithm(
                    "first_fit", instance, powers=power(instance)
                ).schedule
                baseline.validate(instance)
                outcome = run_algorithm("distributed", instance, rng=child)
                schedule, stats = outcome.schedule, outcome.stats
                schedule.validate(instance)
                central.append(baseline.num_colors)
                dist_colors.append(schedule.num_colors)
                slots.append(stats.slots)
                att.append(stats.attempts_per_success)
            table.add_row(
                family=family_name,
                n=n,
                centralized_colors=float(np.mean(central)),
                distributed_colors=float(np.mean(dist_colors)),
                protocol_slots=float(np.mean(slots)),
                attempts_per_success=float(np.mean(att)),
                distributed_overhead=float(np.mean(slots)) / float(np.mean(central)),
            )
    return table
SPEC = ExperimentSpec(
    id="e11",
    title="Distributed protocol vs centralized",
    runner="repro.experiments.e11_distributed:run_distributed",
    full={"n_values": (10, 20, 40), "trials": 2},
    fast={"n_values": (8,), "trials": 1},
    seed=61,
    shard_by="n_values",
    metric="distributed_overhead",
    algorithms=("distributed", "first_fit"),
)
