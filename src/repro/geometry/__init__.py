"""Metric-space substrate.

Every construction in the paper is stated for "pairs of points from a
metric space"; this subpackage provides the metric implementations used
throughout:

* :class:`~repro.geometry.metric.Metric` — the abstract interface
  (``n`` nodes indexed ``0..n-1``, pairwise ``distance``).
* :class:`~repro.geometry.euclidean.EuclideanMetric` — points in R^d.
* :class:`~repro.geometry.line.LineMetric` — 1-D convenience (the
  Theorem 1 lower bound lives on the line).
* :class:`~repro.geometry.explicit.ExplicitMetric` — a validated
  distance matrix.
* :class:`~repro.geometry.tree.TreeMetric` — shortest-path metric of an
  edge-weighted tree (Lemma 6 / Lemma 9 substrate).
* :class:`~repro.geometry.star.StarMetric` — leaves around a centre
  (Lemma 5 substrate).
* :class:`~repro.geometry.graph.GraphMetric` — shortest-path metric of
  an arbitrary weighted graph.
"""

from repro.geometry.aspect import aspect_ratio, max_distance, min_positive_distance
from repro.geometry.euclidean import EuclideanMetric
from repro.geometry.explicit import ExplicitMetric
from repro.geometry.graph import GraphMetric
from repro.geometry.line import LineMetric
from repro.geometry.metric import Metric, is_metric_matrix
from repro.geometry.star import StarMetric
from repro.geometry.tree import TreeMetric

__all__ = [
    "Metric",
    "is_metric_matrix",
    "EuclideanMetric",
    "LineMetric",
    "ExplicitMetric",
    "TreeMetric",
    "StarMetric",
    "GraphMetric",
    "aspect_ratio",
    "max_distance",
    "min_positive_distance",
]
