"""Coloring / scheduling algorithms.

* :mod:`~repro.scheduling.registry` — the **supported entry point**:
  every algorithm below is registered by name with capability flags
  and a normalized adapter, and is callable through
  :class:`repro.api.Session` or
  :func:`repro.scheduling.registry.run_algorithm`.
* :mod:`~repro.scheduling.trivial` — one color per request (the O(n)
  upper bound the paper's Omega(n) lower bound is matched against).
* :mod:`~repro.scheduling.firstfit` — greedy first-fit coloring under
  a fixed power assignment, plus a free-power variant that uses
  power-control feasibility (the "optimal power assignment" witness).
* :mod:`~repro.scheduling.peeling` — repeated extraction of maximal
  feasible subsets.
* :mod:`~repro.scheduling.gain_scaling` — constructive Propositions 3
  and 4: trade gain for colors.
* :mod:`~repro.scheduling.sqrt_coloring` — the Theorem 15 randomized
  O(log n)-approximation for the square-root assignment (distance
  classes + LP relaxation + randomized rounding).
* :mod:`~repro.scheduling.protocol_model` — a graph-based
  (protocol-model) baseline from the pre-SINR literature.

.. deprecated:: 1.1
   The free functions re-exported at this package level
   (``first_fit_schedule`` and friends) are now thin shims around the
   unchanged implementations in their submodules: calls stay
   bit-identical but emit a
   :class:`repro._deprecation.ReproDeprecationWarning` once per call
   site.  Migrate to :class:`repro.api.Session` /
   :func:`repro.scheduling.registry.run_algorithm` (see the README
   migration table).  The submodule functions themselves
   (``repro.scheduling.firstfit.first_fit_schedule`` …) are the
   engine-internal implementations and do not warn.
"""

from repro._deprecation import deprecated_shim
from repro.scheduling.exact import (
    InstanceTooLargeError,
    exact_minimum_colors as _exact_minimum_colors,
)
from repro.scheduling.local_search import improve_schedule as _improve_schedule
from repro.scheduling.distributed import (
    DistributedStats,
    ProtocolStalledError,
    distributed_coloring as _distributed_coloring,
)
from repro.scheduling.firstfit import (
    first_fit_free_power_schedule as _first_fit_free_power_schedule,
    first_fit_schedule as _first_fit_schedule,
)
from repro.scheduling.gain_scaling import (
    densest_subset_at_gain as _densest_subset_at_gain,
    rescale_gain_coloring as _rescale_gain_coloring,
)
from repro.scheduling.peeling import peeling_schedule as _peeling_schedule
from repro.scheduling.protocol_model import (
    protocol_conflict_graph,
    protocol_schedule as _protocol_schedule,
)
from repro.scheduling.sqrt_coloring import (
    SqrtColoringStats,
    sqrt_coloring as _sqrt_coloring,
)
from repro.scheduling.trivial import trivial_schedule as _trivial_schedule

exact_minimum_colors = deprecated_shim(
    _exact_minimum_colors,
    "exact_minimum_colors",
    "Session.schedule('exact')",
)
improve_schedule = deprecated_shim(
    _improve_schedule,
    "improve_schedule",
    "Session.schedule('local_search', schedule=...)",
)
distributed_coloring = deprecated_shim(
    _distributed_coloring,
    "distributed_coloring",
    "Session.schedule('distributed', rng=...)",
)
trivial_schedule = deprecated_shim(
    _trivial_schedule, "trivial_schedule", "Session.schedule('trivial')"
)
first_fit_schedule = deprecated_shim(
    _first_fit_schedule, "first_fit_schedule", "Session.schedule('first_fit')"
)
first_fit_free_power_schedule = deprecated_shim(
    _first_fit_free_power_schedule,
    "first_fit_free_power_schedule",
    "Session.schedule('first_fit_free_power')",
)
peeling_schedule = deprecated_shim(
    _peeling_schedule, "peeling_schedule", "Session.schedule('peeling')"
)
rescale_gain_coloring = deprecated_shim(
    _rescale_gain_coloring,
    "rescale_gain_coloring",
    "Session.schedule('gain_scaling', gamma_target=...)",
)
densest_subset_at_gain = deprecated_shim(
    _densest_subset_at_gain,
    "densest_subset_at_gain",
    "Session.schedule('gain_scaling', gamma_target=...).extras['densest_subset']",
)
sqrt_coloring = deprecated_shim(
    _sqrt_coloring,
    "sqrt_coloring",
    "Session.schedule('sqrt_coloring', rng=...)",
)
protocol_schedule = deprecated_shim(
    _protocol_schedule,
    "protocol_schedule",
    "Session.schedule('protocol_model')",
)

__all__ = [
    "exact_minimum_colors",
    "InstanceTooLargeError",
    "improve_schedule",
    "distributed_coloring",
    "DistributedStats",
    "ProtocolStalledError",
    "trivial_schedule",
    "first_fit_schedule",
    "first_fit_free_power_schedule",
    "peeling_schedule",
    "rescale_gain_coloring",
    "densest_subset_at_gain",
    "sqrt_coloring",
    "SqrtColoringStats",
    "protocol_conflict_graph",
    "protocol_schedule",
]
