"""Parallel experiment orchestrator with fault-tolerant execution.

Experiments are expanded into :class:`~repro.runner.spec.Shard` units
(per size, with deterministically derived seeds), fanned out over a
:class:`~concurrent.futures.ProcessPoolExecutor`, and merged back into
one table per experiment **in shard order** — so the result is
bit-identical whether the run used one worker or many.

Workers re-resolve the shard from the experiment registry by
``(spec_id, mode, shard_index)``; only small picklable identifiers
cross the process boundary on the way in and a plain
:class:`~repro.util.tables.Table` on the way out.

Fault tolerance (see :mod:`repro.resilience`)
---------------------------------------------
Supplying a :class:`~repro.resilience.RetryPolicy` (run-level, or
pinned per spec via :attr:`~repro.runner.spec.ExperimentSpec.retry`)
turns shard failures from run-aborting exceptions into managed events:

* an ordinary shard exception is retried with exponential backoff, up
  to ``max_attempts``; a shard that exhausts its budget is
  *quarantined* — the run continues and the experiment's
  :class:`~repro.runner.artifacts.BenchReport` carries a structured
  :class:`~repro.resilience.ShardFailure` instead of rows for it;
* a dead worker (OOM kill → ``BrokenProcessPool``) rebuilds the pool.
  The breakage cannot be attributed to a specific shard while several
  are in flight, so the scheduler falls back to *serial probing*: the
  remaining shards run one at a time, where a repeat kill identifies
  the poison shard exactly — it alone accumulates attempts and is
  quarantined, while innocent shards never lose retry budget to a
  sibling's crash;
* with ``jobs > 1`` a shard whose result does not arrive within the
  policy's ``deadline`` counts as a failed attempt and the pool is
  rebuilt to reclaim the stuck worker (``jobs == 1`` cannot preempt a
  running shard, so deadlines are not enforced in-process).

With no policy configured anywhere, behavior is exactly historical:
the first failure propagates and aborts the run (fail-fast).  The
default policy ``RetryPolicy()`` itself has ``max_attempts=1`` — it
adds quarantine-instead-of-abort but no retries.

Checkpoint / resume
-------------------
When ``artifacts_dir`` is given, every completed shard's table is
persisted atomically under ``<artifacts_dir>/.checkpoints/<id>/`` and
deleted once the experiment's final ``BENCH_<id>.json`` lands.  A run
that died mid-way (crash, ``SIGKILL``, power loss) restarts with only
its unfinished shards re-executing; because per-shard seeds derive
from the spec alone, the resumed artifact is bit-identical to an
uninterrupted run's.  Resumed shards are flagged ``resumed=True`` in
the artifact's ``shards`` section.
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.gains import (
    backend_scope,
    default_array_namespace,
    resolve_backend,
)
from repro.resilience.faults import FaultPlan
from repro.resilience.policy import RetryPolicy, ShardFailure
from repro.runner.artifacts import (
    BenchReport,
    ShardResult,
    clear_checkpoints,
    read_checkpoint,
    validate_artifacts_dir,
    write_artifact,
    write_checkpoint,
)
from repro.runner.spec import ExperimentSpec, Shard, merge_tables
from repro.util.tables import Table

#: ``(spec id, shard index)`` — the unit the scheduler tracks.
_ShardKey = Tuple[str, int]


def _registry() -> "Dict[str, ExperimentSpec]":
    # Imported lazily: the experiment modules import repro.runner.spec
    # for their SPEC declarations, so a module-level import here would
    # be circular.
    from repro.experiments.registry import get_registry

    return get_registry()


def available_experiments() -> List[str]:
    """Experiment ids in canonical (registry) order."""
    return list(_registry())


def resolve_specs(
    experiment_ids: Optional[Sequence[str]] = None,
) -> List[ExperimentSpec]:
    """Specs for *experiment_ids* (all, in registry order, when omitted).

    Raises ``KeyError`` naming the unknown ids otherwise.
    """
    registry = _registry()
    if not experiment_ids:
        return list(registry.values())
    chosen = [e.lower() for e in experiment_ids]
    unknown = sorted(set(chosen) - set(registry))
    if unknown:
        raise KeyError(f"unknown experiment id(s): {', '.join(unknown)}")
    return [registry[e] for e in chosen]


def run_shard(
    spec_id: str,
    fast: bool,
    shard_index: int,
    backend: Optional[str] = None,
    attempt: int = 0,
    fault_plan: Optional[FaultPlan] = None,
) -> Tuple[Table, float]:
    """Execute one shard (in this process) and time it.

    *backend* is the resolved gain-backend name for this shard; it is
    applied process-locally (workers receive it explicitly, since the
    parent's :func:`repro.core.gains.set_default_backend` state does
    not cross the process boundary).  *attempt* is the 0-based retry
    attempt — it does not influence the computation (shard seeds come
    from the spec alone, so retries are bit-identical), only the
    deterministic *fault_plan* injection point ``("shard",
    "<spec_id>:<shard_index>")``, which fires **before** any work so an
    injected crash never leaves a half-computed table behind.
    """
    if fault_plan is not None:
        fault_plan.fire(
            "shard", key=f"{spec_id}:{shard_index}", index=int(attempt)
        )
    spec = _registry()[spec_id]
    shard = spec.shards(fast)[shard_index]
    run = spec.resolve()
    start = time.perf_counter()
    with backend_scope(backend):
        table = run(**shard.kwargs)
    return table, time.perf_counter() - start


def _init_worker(sys_path: List[str]) -> None:
    """Reproduce the parent's import path in spawned workers."""
    for entry in sys_path:
        if entry not in sys.path:
            sys.path.append(entry)


@dataclass
class _Outcome:
    """Terminal state of one shard: a table or a quarantine record."""

    table: Optional[Table]
    seconds: float
    attempts: int
    resumed: bool = False
    failure: Optional[ShardFailure] = None


class _ShardScheduler:
    """Retry/deadline/pool-recovery engine behind ``run_experiments``.

    ``jobs == 1`` executes shards in-process; otherwise shards run on a
    :class:`ProcessPoolExecutor` that is rebuilt whenever it breaks (a
    worker died) or a shard result misses its deadline (the worker is
    stuck).  After an *unattributed* breakage — several shards were in
    flight, any of them may have killed the worker — the scheduler
    degrades to serial probing for the rest of the run: one shard in
    flight at a time, so every further failure is attributable and only
    the culprit spends retry budget.
    """

    def __init__(
        self,
        jobs: int,
        fast: bool,
        backends: Dict[str, str],
        policies: Dict[str, Optional[RetryPolicy]],
        fault_plan: Optional[FaultPlan],
    ):
        self.jobs = jobs
        self.fast = fast
        self.backends = backends
        self.policies = policies
        self.fault_plan = fault_plan
        self.work: Dict[_ShardKey, Shard] = {}
        self.unresolved: set = set()
        self.serial = False
        self._pool: Optional[ProcessPoolExecutor] = None
        self._futures: Dict[_ShardKey, object] = {}
        self._failures: Dict[_ShardKey, int] = {}

    # -- lifecycle ---------------------------------------------------------

    def prime(self, work: Dict[_ShardKey, Shard]) -> None:
        """Register *work* and (for pool runs) submit all of it."""
        self.work = dict(work)
        self.unresolved = set(work)
        if self.jobs > 1 and self.work:
            self._pool = self._new_pool()
            for key in self.work:
                self._submit(key)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self._futures.clear()

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.jobs,
            initializer=_init_worker,
            initargs=(list(sys.path),),
        )

    def _rebuild_pool(self) -> None:
        """Replace a broken/hogged pool; resubmit survivors unless the
        scheduler has degraded to serial probing."""
        pool, self._pool = self._pool, None
        if pool is not None:
            # wait=False: a stuck or dying worker must not block
            # recovery; orphaned workers exit on their own.
            pool.shutdown(wait=False, cancel_futures=True)
        self._futures.clear()
        self._pool = self._new_pool()
        if not self.serial:
            for key in sorted(self.unresolved):
                self._submit(key)

    def _submit(self, key: _ShardKey) -> None:
        spec_id, shard_index = key
        self._futures[key] = self._pool.submit(
            run_shard,
            spec_id,
            self.fast,
            shard_index,
            backend=self.backends[spec_id],
            attempt=self._failures.get(key, 0),
            fault_plan=self.fault_plan,
        )

    # -- failure accounting ------------------------------------------------

    def _record_failure(
        self, key: _ShardKey, exc: BaseException
    ) -> Optional[_Outcome]:
        """Count one failed attempt; quarantine when the budget is gone.

        Returns the quarantine :class:`_Outcome`, or ``None`` when the
        shard gets another attempt.  With no policy configured the
        exception propagates unchanged — the historical fail-fast run
        abort.
        """
        spec_id, shard_index = key
        policy = self.policies[spec_id]
        if policy is None:
            raise exc
        failures = self._failures.get(key, 0) + 1
        self._failures[key] = failures
        if failures < policy.max_attempts:
            return None
        shard = self.work[key]
        return _Outcome(
            table=None,
            seconds=0.0,
            attempts=failures,
            failure=ShardFailure(
                key=shard.key,
                shard_index=shard_index,
                seed=shard.seed,
                error_type=type(exc).__name__,
                error=str(exc),
                attempts=failures,
            ),
        )

    def _backoff(self, key: _ShardKey) -> None:
        policy = self.policies[key[0]]
        delay = policy.delay_before_retry(self._failures[key])
        if delay > 0:
            time.sleep(delay)

    def _finish(self, key: _ShardKey) -> None:
        self.unresolved.discard(key)
        self._futures.pop(key, None)

    # -- resolution --------------------------------------------------------

    def resolve(self, key: _ShardKey) -> _Outcome:
        """Block until *key* has a terminal outcome (table or
        quarantine), retrying and recovering the pool as needed."""
        if self.jobs == 1:
            return self._resolve_inline(key)
        return self._resolve_pool(key)

    def _resolve_inline(self, key: _ShardKey) -> _Outcome:
        spec_id, shard_index = key
        while True:
            attempt = self._failures.get(key, 0)
            try:
                table, seconds = run_shard(
                    spec_id,
                    self.fast,
                    shard_index,
                    backend=self.backends[spec_id],
                    attempt=attempt,
                    fault_plan=self.fault_plan,
                )
            except Exception as exc:
                outcome = self._record_failure(key, exc)
                if outcome is not None:
                    self._finish(key)
                    return outcome
                self._backoff(key)
                continue
            self._finish(key)
            return _Outcome(table, seconds, attempts=attempt + 1)

    def _resolve_pool(self, key: _ShardKey) -> _Outcome:
        spec_id, _ = key
        while True:
            future = self._futures.get(key)
            if future is None:
                self._submit(key)
                future = self._futures[key]
            policy = self.policies[spec_id]
            deadline = policy.deadline if policy is not None else None
            try:
                table, seconds = future.result(timeout=deadline)
            except FuturesTimeout:
                # The worker is stuck past the shard's deadline.
                # Attribution is exact (it is this shard's own budget),
                # and the pool must be rebuilt either way to reclaim
                # the hogged worker.
                outcome = self._record_failure(
                    key,
                    TimeoutError(
                        f"shard result exceeded deadline of {deadline:g}s"
                    ),
                )
                if outcome is not None:
                    self._finish(key)
                    self._rebuild_pool()
                    return outcome
                self._rebuild_pool()
                self._backoff(key)
            except BrokenProcessPool as exc:
                if self.serial:
                    # Serial probing: this shard was alone in flight,
                    # so the worker death is provably its doing.
                    outcome = self._record_failure(key, exc)
                    self._rebuild_pool()
                    if outcome is not None:
                        self._finish(key)
                        return outcome
                    self._backoff(key)
                else:
                    # Several shards in flight — any of them may have
                    # killed the worker.  Charge nobody; rerun the
                    # survivors one at a time so the next death has
                    # exactly one suspect.
                    self.serial = True
                    self._rebuild_pool()
            except Exception as exc:
                # An ordinary exception raised *by* the shard: exact
                # attribution, pool intact.
                self._futures.pop(key, None)
                outcome = self._record_failure(key, exc)
                if outcome is not None:
                    self._finish(key)
                    return outcome
                self._backoff(key)
            else:
                self._finish(key)
                return _Outcome(
                    table,
                    seconds,
                    attempts=self._failures.get(key, 0) + 1,
                )


def run_experiments(
    experiment_ids: Optional[Sequence[str]] = None,
    fast: bool = False,
    jobs: int = 1,
    artifacts_dir: Optional[str] = None,
    on_report: Optional[Callable[[BenchReport], None]] = None,
    backend: Optional[str] = None,
    retry: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    resume: bool = True,
) -> List[BenchReport]:
    """Run experiments, in parallel across shards, and merge results.

    Experiments are reported **as they complete**, in spec order: each
    experiment's artifact is written (and *on_report* called) as soon
    as its last shard finishes, so a failure or interruption late in a
    long run does not discard the experiments already done.

    Parameters
    ----------
    experiment_ids:
        Ids to run (default: every registered experiment).
    fast:
        Use each spec's reduced smoke parameters.
    jobs:
        Worker processes.  ``1`` runs everything in-process; results
        are identical either way (seeds and merge order are derived
        from the specs alone).
    artifacts_dir:
        When given, one ``BENCH_<id>.json`` per experiment is written
        there (see :mod:`repro.runner.artifacts`).  The directory is
        validated (creatable + writable) **before any shard is
        submitted**, and completed shards are checkpointed under
        ``<artifacts_dir>/.checkpoints/`` for crash resume.
    on_report:
        Optional callback invoked with each experiment's
        :class:`BenchReport` as soon as it is complete (the CLI uses
        this to stream tables).
    backend:
        Run-level gain-backend choice (the CLI ``--backend`` flag).  A
        spec's own ``backend`` pin wins over this; ``None`` falls back
        to the process default, so ``REPRO_BACKEND=sparse`` flips a
        whole run.  The resolved name is recorded per experiment in
        the artifact's ``env`` section.
    retry:
        Run-level :class:`~repro.resilience.RetryPolicy`.  A spec's
        own ``retry`` pin wins over this.  With **no** policy anywhere
        (the default) failures propagate exactly as they always have;
        any configured policy instead retries with backoff and
        quarantines exhausted shards into
        :attr:`BenchReport.failures`.
    fault_plan:
        Deterministic :class:`~repro.resilience.FaultPlan` driven
        through the ``"shard"`` (worker-side, attempt-indexed) and
        ``"checkpoint"`` (parent-side) injection points.  Test/chaos
        tooling only; ``None`` in production.
    resume:
        Load shard checkpoints left by an interrupted run with the
        same *artifacts_dir* (default ``True``).  Stale checkpoints —
        key, seed or resolved backend no longer matching the spec and
        run configuration — are ignored.

    Returns
    -------
    One :class:`BenchReport` per experiment, in request order.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    specs = resolve_specs(experiment_ids)
    mode = "fast" if fast else "full"
    plan: List[Tuple[ExperimentSpec, List[Shard]]] = [
        (spec, spec.shards(fast)) for spec in specs
    ]
    # Resolve each spec's backend and retry policy up front: spec pin >
    # run-level choice > default.  Workers receive the resolved
    # backend name explicitly.
    backends: Dict[str, str] = {
        spec.id: resolve_backend(spec.backend or backend) for spec, _ in plan
    }
    # Checkpoint staleness tag: the resolved backend, qualified with the
    # array namespace when it matters — shard tables are only reusable
    # across runs that execute on the same backend configuration.
    backend_tags: Dict[str, str] = {
        spec_id: (
            f"array:{default_array_namespace()}" if name == "array" else name
        )
        for spec_id, name in backends.items()
    }
    policies: Dict[str, Optional[RetryPolicy]] = {
        spec.id: (spec.retry if spec.retry is not None else retry)
        for spec, _ in plan
    }
    if artifacts_dir is not None:
        # Fail fast: a run can compute for hours — an unusable output
        # directory must abort before the first shard, not at the
        # first write.
        validate_artifacts_dir(artifacts_dir)

    start = time.perf_counter()
    reports: List[BenchReport] = []
    # Terminal outcome per (spec id, shard index): duplicate experiment
    # ids in the request reuse one computation, and checkpoint-resumed
    # shards never re-execute.
    outcomes: Dict[_ShardKey, _Outcome] = {}
    if artifacts_dir is not None and resume:
        for spec, shards in plan:
            for shard in shards:
                key = (spec.id, shard.index)
                if key in outcomes:
                    continue
                loaded = read_checkpoint(
                    artifacts_dir,
                    spec.id,
                    shard.index,
                    shard.key,
                    shard.seed,
                    backend=backend_tags[spec.id],
                )
                if loaded is not None:
                    table, seconds, attempts = loaded
                    outcomes[key] = _Outcome(
                        table, seconds, attempts=attempts, resumed=True
                    )

    scheduler = _ShardScheduler(jobs, fast, backends, policies, fault_plan)
    work: Dict[_ShardKey, Shard] = {}
    for spec, shards in plan:
        for shard in shards:
            key = (spec.id, shard.index)
            if key not in outcomes and key not in work:
                work[key] = shard
    scheduler.prime(work)
    try:
        for spec, shards in plan:
            shard_results: List[ShardResult] = []
            failures: List[ShardFailure] = []
            tables: List[Table] = []
            for shard in shards:
                key = (spec.id, shard.index)
                if key not in outcomes:
                    outcomes[key] = scheduler.resolve(key)
                    outcome = outcomes[key]
                    if (
                        artifacts_dir is not None
                        and outcome.failure is None
                    ):
                        write_checkpoint(
                            artifacts_dir,
                            spec.id,
                            shard.index,
                            shard.key,
                            shard.seed,
                            outcome.table,
                            outcome.seconds,
                            attempts=outcome.attempts,
                            backend=backend_tags[spec.id],
                        )
                        if fault_plan is not None:
                            fault_plan.fire(
                                "checkpoint", key=f"{spec.id}:{shard.index}"
                            )
                outcome = outcomes[key]
                if outcome.failure is not None:
                    failures.append(outcome.failure)
                    continue
                tables.append(outcome.table)
                shard_results.append(
                    ShardResult(
                        key=shard.key,
                        seed=shard.seed,
                        rows=len(outcome.table),
                        seconds=outcome.seconds,
                        attempts=outcome.attempts,
                        resumed=outcome.resumed,
                    )
                )
            if tables:
                merged = merge_tables(tables)
            else:
                # Every shard quarantined: an empty (but well-formed)
                # table keeps the artifact and the sibling experiments
                # flowing.
                merged = Table(title=spec.title, columns=[])
                merged.add_note(
                    "all shards quarantined; see the 'failures' section"
                )
            report = BenchReport(
                experiment=spec.id,
                title=spec.title,
                mode=mode,
                table=merged,
                shards=shard_results,
                run_wall_seconds=time.perf_counter() - start,
                jobs=jobs,
                metric=spec.metric,
                backend=backends[spec.id],
                algorithms=tuple(spec.algorithms),
                failures=failures,
            )
            if artifacts_dir is not None:
                write_artifact(artifacts_dir, report)
                clear_checkpoints(artifacts_dir, spec.id)
            reports.append(report)
            if on_report is not None:
                on_report(report)
    finally:
        scheduler.close()
    return reports
