"""Oblivious interference scheduling in the SINR physical model.

A faithful, fully constructive reproduction of

    Fanghänel, Kesselheim, Räcke, Vöcking:
    "Oblivious Interference Scheduling", PODC 2009.

Quickstart
----------
>>> from repro import Instance, EuclideanMetric, Problem
>>> import numpy as np
>>> rng = np.random.default_rng(0)
>>> points = rng.uniform(0, 100, size=(20, 2))
>>> pairs = [(2 * i, 2 * i + 1) for i in range(10)]
>>> instance = Instance.bidirectional(EuclideanMetric(points), pairs)
>>> session = Problem(instance).session()
>>> result = session.schedule("sqrt_coloring", rng=rng)
>>> result.validate().num_colors >= 1  # validate() raises if infeasible
True

Package map
-----------
``repro.api``         Problem / Session / ScheduleResult facade
``repro.core``        problem model, SINR feasibility, schedules
``repro.geometry``    metric spaces (Euclidean, line, tree, star, ...)
``repro.power``       oblivious + explicit power assignments
``repro.nodeloss``    §3.2 node-loss problem, §4 star analysis
``repro.embedding``   Lemma 6 tree ensembles, Lemma 9 star decomposition
``repro.scheduling``  first-fit, peeling, Theorem 15 LP coloring, baselines
                      (resolved by name via ``repro.scheduling.registry``)
``repro.instances``   adversarial (Thm 1), nested, random generators
``repro.analysis``    power control, capacity, OPT bounds, verification
``repro.experiments`` one module per paper claim (E1 .. E10)

The legacy free functions (``first_fit_schedule`` …) re-exported here
are deprecation shims; see the README migration table.
"""

from repro._deprecation import ReproDeprecationWarning
from repro.api import (
    BatchSession,
    Problem,
    Provenance,
    RequestHandle,
    RequestHandles,
    ScheduleResult,
    Session,
    schedule_batch,
)
from repro.scheduling.registry import (
    AlgorithmCapabilities,
    AlgorithmSpec,
    get_algorithm,
    list_algorithms,
    run_algorithm,
)

from repro.analysis import (
    achieved_gain,
    schedule_achieved_gain,
    free_power_feasible,
    free_power_spectral_radius,
    free_powers,
    greedy_max_feasible_subset,
    in_interference_measure,
    one_shot_capacity,
    opt_color_lower_bound,
    verify_schedule,
)
from repro.core import (
    ClassAccumulator,
    ContextBatch,
    ContextPool,
    DenseBackend,
    Direction,
    GainBackend,
    InfeasibleError,
    Instance,
    InterferenceContext,
    InvalidInstanceError,
    InvalidScheduleError,
    ReproError,
    Schedule,
    ScheduleKernel,
    SparseBackend,
    backend_scope,
    batch_margins,
    batch_validate_schedules,
    build_schedule,
    default_backend,
    engine_disabled,
    get_context,
    kernels_disabled,
    peel_max_feasible_subset,
    set_default_backend,
    stacked_first_fit,
    is_feasible_partition,
    is_feasible_subset,
    scale_powers_for_noise,
    signal_strengths,
    sinr_margins,
)
from repro.geometry import (
    EuclideanMetric,
    ExplicitMetric,
    GraphMetric,
    LineMetric,
    Metric,
    StarMetric,
    TreeMetric,
    aspect_ratio,
)
from repro.instances import (
    adaptive_lower_bound_instance,
    clustered_instance,
    exponential_node_chain,
    mst_connectivity_instance,
    nearest_neighbor_instance,
    equispaced_line_instance,
    exponential_chain_instance,
    growing_chain_instance,
    lower_bound_instance_for,
    nested_instance,
    random_graph_metric_instance,
    random_tree_metric_instance,
    random_uniform_instance,
)
from repro.nodeloss import (
    NodeLossInstance,
    StarNodeLoss,
    lemma5_subset,
    max_feasible_gain,
    nodeloss_from_pairs,
)
from repro.power import (
    ExplicitPower,
    FunctionPower,
    LinearPower,
    MeanPower,
    ObliviousPowerAssignment,
    PowerAssignment,
    SquareRootPower,
    UniformPower,
    geometric_power,
)
from repro.distributed import ShardedBackend, distributed_protocol
from repro.scheduling import (
    distributed_coloring,
    exact_minimum_colors,
    first_fit_free_power_schedule,
    first_fit_schedule,
    peeling_schedule,
    protocol_schedule,
    sqrt_coloring,
    trivial_schedule,
)
from repro.serialization import dumps as schedule_dumps
from repro.serialization import loads as schedule_loads

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # unified solver API
    "Problem",
    "Session",
    "BatchSession",
    "ScheduleResult",
    "Provenance",
    "RequestHandle",
    "RequestHandles",
    "schedule_batch",
    "AlgorithmSpec",
    "AlgorithmCapabilities",
    "get_algorithm",
    "list_algorithms",
    "run_algorithm",
    "ReproDeprecationWarning",
    # core
    "Instance",
    "Direction",
    "Schedule",
    "ReproError",
    "InvalidInstanceError",
    "InvalidScheduleError",
    "InfeasibleError",
    "signal_strengths",
    "sinr_margins",
    "is_feasible_subset",
    "is_feasible_partition",
    "scale_powers_for_noise",
    "InterferenceContext",
    "ClassAccumulator",
    "ContextBatch",
    "ContextPool",
    "batch_margins",
    "batch_validate_schedules",
    "get_context",
    "engine_disabled",
    "ScheduleKernel",
    "build_schedule",
    "peel_max_feasible_subset",
    "stacked_first_fit",
    "kernels_disabled",
    # geometry
    "Metric",
    "EuclideanMetric",
    "LineMetric",
    "ExplicitMetric",
    "TreeMetric",
    "StarMetric",
    "GraphMetric",
    "aspect_ratio",
    # power
    "PowerAssignment",
    "ObliviousPowerAssignment",
    "UniformPower",
    "LinearPower",
    "SquareRootPower",
    "MeanPower",
    "FunctionPower",
    "ExplicitPower",
    "geometric_power",
    # scheduling
    "trivial_schedule",
    "first_fit_schedule",
    "first_fit_free_power_schedule",
    "peeling_schedule",
    "sqrt_coloring",
    "protocol_schedule",
    "distributed_coloring",
    "distributed_protocol",
    "ShardedBackend",
    "exact_minimum_colors",
    "schedule_dumps",
    "schedule_loads",
    # node-loss / embedding
    "NodeLossInstance",
    "StarNodeLoss",
    "lemma5_subset",
    "max_feasible_gain",
    "nodeloss_from_pairs",
    # instances
    "nested_instance",
    "adaptive_lower_bound_instance",
    "growing_chain_instance",
    "lower_bound_instance_for",
    "random_uniform_instance",
    "clustered_instance",
    "random_tree_metric_instance",
    "random_graph_metric_instance",
    "equispaced_line_instance",
    "exponential_chain_instance",
    "mst_connectivity_instance",
    "nearest_neighbor_instance",
    "exponential_node_chain",
    # analysis
    "achieved_gain",
    "schedule_achieved_gain",
    "free_power_spectral_radius",
    "free_power_feasible",
    "free_powers",
    "greedy_max_feasible_subset",
    "one_shot_capacity",
    "opt_color_lower_bound",
    "in_interference_measure",
    "verify_schedule",
]
