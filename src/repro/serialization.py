"""JSON serialization for instances and schedules.

A practical library needs to save and reload experiment artefacts.
Instances serialize their metric either as Euclidean coordinates (when
available) or as an explicit distance matrix; schedules serialize
colors and powers.  Round-tripping preserves all SINR-relevant data
bit-for-bit (floats go through ``repr``-exact JSON numbers).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Union

import numpy as np

from repro.core.errors import ReproError
from repro.core.instance import Direction, Instance
from repro.core.schedule import Schedule
from repro.geometry.euclidean import EuclideanMetric
from repro.geometry.explicit import ExplicitMetric
from repro.geometry.line import LineMetric
from repro.geometry.metric import Metric

FORMAT_VERSION = 1


class SerializationError(ReproError, ValueError):
    """Malformed payloads or unsupported metric types."""


def _metric_to_dict(metric: Metric) -> Dict[str, Any]:
    if isinstance(metric, LineMetric):
        return {"type": "line", "coordinates": metric.coordinates.tolist()}
    if isinstance(metric, EuclideanMetric):
        return {"type": "euclidean", "points": metric.points.tolist()}
    # Fallback: any metric can ship as its distance matrix.
    return {"type": "explicit", "matrix": metric.distance_matrix().tolist()}


def _metric_from_dict(payload: Dict[str, Any]) -> Metric:
    kind = payload.get("type")
    if kind == "line":
        return LineMetric(payload["coordinates"])
    if kind == "euclidean":
        return EuclideanMetric(np.asarray(payload["points"]))
    if kind == "explicit":
        return ExplicitMetric(
            np.asarray(payload["matrix"]), validate_triangle=False
        )
    raise SerializationError(f"unknown metric type {kind!r}")


def instance_to_dict(instance: Instance) -> Dict[str, Any]:
    """Serializable dictionary for *instance*."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "instance",
        "metric": _metric_to_dict(instance.metric),
        "senders": instance.senders.tolist(),
        "receivers": instance.receivers.tolist(),
        "direction": instance.direction.value,
        "alpha": instance.alpha,
        "beta": instance.beta,
        "noise": instance.noise,
    }


def instance_from_dict(payload: Dict[str, Any]) -> Instance:
    """Rebuild an :class:`Instance` from :func:`instance_to_dict` output."""
    if payload.get("kind") != "instance":
        raise SerializationError("payload is not an instance")
    if payload.get("format_version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {payload.get('format_version')!r}"
        )
    return Instance(
        _metric_from_dict(payload["metric"]),
        payload["senders"],
        payload["receivers"],
        direction=Direction(payload["direction"]),
        alpha=payload["alpha"],
        beta=payload["beta"],
        noise=payload["noise"],
    )


def schedule_to_dict(schedule: Schedule) -> Dict[str, Any]:
    """Serializable dictionary for *schedule*."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "schedule",
        "colors": schedule.colors.tolist(),
        "powers": schedule.powers.tolist(),
    }


def schedule_from_dict(payload: Dict[str, Any]) -> Schedule:
    """Rebuild a :class:`Schedule` from :func:`schedule_to_dict` output."""
    if payload.get("kind") != "schedule":
        raise SerializationError("payload is not a schedule")
    if payload.get("format_version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {payload.get('format_version')!r}"
        )
    return Schedule(
        colors=np.asarray(payload["colors"], dtype=int),
        powers=np.asarray(payload["powers"], dtype=float),
    )


def dumps(obj: Union[Instance, Schedule], indent: int = None) -> str:
    """JSON string for an instance or schedule."""
    if isinstance(obj, Instance):
        payload = instance_to_dict(obj)
    elif isinstance(obj, Schedule):
        payload = schedule_to_dict(obj)
    else:
        raise SerializationError(f"cannot serialize {type(obj).__name__}")
    return json.dumps(payload, indent=indent)


def loads(text: str) -> Union[Instance, Schedule]:
    """Parse a JSON string produced by :func:`dumps`."""
    payload = json.loads(text)
    kind = payload.get("kind")
    if kind == "instance":
        return instance_from_dict(payload)
    if kind == "schedule":
        return schedule_from_dict(payload)
    raise SerializationError(f"unknown payload kind {kind!r}")
