"""Exception hierarchy for the library.

All library-specific failures derive from :class:`ReproError` so that
callers can catch everything from this package with one clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class InvalidInstanceError(ReproError, ValueError):
    """An instance violates a structural requirement (bad indices,
    non-positive link distances, invalid model parameters)."""


class InvalidScheduleError(ReproError, ValueError):
    """A schedule object is malformed (wrong lengths, negative colors,
    non-positive powers)."""


class InfeasibleError(ReproError, RuntimeError):
    """An algorithm could not produce a feasible result, e.g. a single
    request that cannot satisfy its own SINR constraint under the
    required power assignment."""
