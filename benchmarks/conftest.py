"""Benchmark-suite helpers.

Every ``bench_eXX_*`` module regenerates one experiment table (the
paper's "tables and figures", per DESIGN.md).  Besides timing, each
bench writes its regenerated table to ``benchmarks/results/eXX.md`` so
the artefacts behind EXPERIMENTS.md can be reproduced with a single
``pytest benchmarks/ --benchmark-only`` run.
"""

import pathlib

import pytest

from repro.util.tables import Table, format_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def save_table():
    """Persist a regenerated experiment table under benchmarks/results/."""

    def _save(name: str, table: Table) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.md"
        path.write_text(format_table(table) + "\n", encoding="utf-8")

    return _save
