"""Multi-hop extension (the Chafekar et al. setting of §1.3).

The related work [3, 4] studies the *cross-layer* problem: requests
are end-to-end (source, destination) pairs that must be routed over
intermediate nodes, and every hop is a single-hop interference
scheduling request.  This subpackage provides a compact version of
that pipeline on top of the core library:

* :mod:`~repro.multihop.routing` — connectivity graphs and
  shortest-path routing;
* :mod:`~repro.multihop.scheduling` — layered hop-by-hop scheduling
  with end-to-end latency accounting.
"""

from repro.multihop.routing import RoutedRequest, connectivity_graph, route_requests
from repro.multihop.scheduling import MultiHopSchedule, layered_multihop_schedule

__all__ = [
    "connectivity_graph",
    "route_requests",
    "RoutedRequest",
    "layered_multihop_schedule",
    "MultiHopSchedule",
]
