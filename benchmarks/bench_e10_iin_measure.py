"""E10 — regenerate the §1.3 I_in-measure table."""

from repro.experiments import run_iin_measure


def test_e10_iin_measure(benchmark, save_table):
    table = benchmark.pedantic(
        run_iin_measure,
        kwargs=dict(n_values=(8, 16, 32), rng=51),
        rounds=1,
        iterations=1,
    )
    save_table("e10_iin_measure", table)
    nested = [r for r in table.rows if r["family"] == "nested"]
    # The Omega(n) deviation: I_in / measured colors grows with n.
    assert nested[-1]["iin_over_colors"] > nested[0]["iin_over_colors"]
