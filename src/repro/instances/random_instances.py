"""Random instance generators.

The positive results (Theorem 2, Theorem 15) hold for every metric
space, so the experiments sample several random families:

* :func:`random_uniform_instance` — endpoints uniform in a square,
  each request connecting a random point to a nearby partner.
* :func:`clustered_instance` — Gaussian clusters, pairs within and
  across clusters; produces the wide dynamic range of link lengths that
  makes oblivious scheduling interesting.
* :func:`random_tree_metric_instance` — requests on a random weighted
  tree metric (exercises the non-Euclidean side of Theorem 2).
* :func:`random_graph_metric_instance` — requests on the shortest-path
  metric of a random connected graph.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import networkx as nx
import numpy as np

from repro.core.instance import Direction, Instance
from repro.geometry.euclidean import EuclideanMetric
from repro.geometry.graph import GraphMetric
from repro.geometry.tree import TreeMetric
from repro.util.rng import RngLike, ensure_rng


def _random_pairs(
    n_requests: int, n_nodes: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample request pairs with distinct endpoints."""
    senders = np.empty(n_requests, dtype=int)
    receivers = np.empty(n_requests, dtype=int)
    for i in range(n_requests):
        u = int(rng.integers(n_nodes))
        v = int(rng.integers(n_nodes))
        while v == u:
            v = int(rng.integers(n_nodes))
        senders[i], receivers[i] = u, v
    return senders, receivers


def random_uniform_instance(
    n: int,
    side: float = 100.0,
    max_link_fraction: float = 0.2,
    alpha: float = 3.0,
    beta: float = 1.0,
    direction: Union[Direction, str] = Direction.BIDIRECTIONAL,
    rng: RngLike = None,
) -> Instance:
    """``n`` requests between uniform random points in a square.

    Each request picks a uniform sender and a receiver displaced by a
    uniform random vector of length up to ``max_link_fraction * side``,
    clipped to the square; all ``2n`` endpoints are distinct points.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if not 0 < max_link_fraction <= 1:
        raise ValueError("max_link_fraction must be in (0, 1]")
    rng = ensure_rng(rng)
    points = np.empty((2 * n, 2))
    pairs = []
    for i in range(n):
        sender = rng.uniform(0, side, size=2)
        while True:
            angle = rng.uniform(0, 2 * np.pi)
            length = rng.uniform(1e-3 * side, max_link_fraction * side)
            receiver = sender + length * np.array([np.cos(angle), np.sin(angle)])
            receiver = np.clip(receiver, 0, side)
            if np.linalg.norm(receiver - sender) > 1e-9 * side:
                break
        points[2 * i] = sender
        points[2 * i + 1] = receiver
        pairs.append((2 * i, 2 * i + 1))
    metric = EuclideanMetric(points)
    return Instance(
        metric,
        [p[0] for p in pairs],
        [p[1] for p in pairs],
        direction=direction,
        alpha=alpha,
        beta=beta,
    )


def clustered_instance(
    n: int,
    clusters: int = 4,
    side: float = 1000.0,
    cluster_std: float = 5.0,
    cross_fraction: float = 0.25,
    alpha: float = 3.0,
    beta: float = 1.0,
    direction: Union[Direction, str] = Direction.BIDIRECTIONAL,
    rng: RngLike = None,
) -> Instance:
    """Requests inside and across Gaussian clusters.

    A ``cross_fraction`` of requests connect different clusters (long
    links); the rest stay within a cluster (short links).  The
    resulting loss range spans many orders of magnitude, which is the
    regime where power assignment choice matters most.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if clusters < 1:
        raise ValueError("clusters must be >= 1")
    if not 0 <= cross_fraction <= 1:
        raise ValueError("cross_fraction must be in [0, 1]")
    rng = ensure_rng(rng)
    centers = rng.uniform(0, side, size=(clusters, 2))
    points = np.empty((2 * n, 2))
    pairs = []
    for i in range(n):
        cross = clusters > 1 and rng.uniform() < cross_fraction
        c1 = int(rng.integers(clusters))
        if cross:
            c2 = int(rng.integers(clusters))
            while c2 == c1:
                c2 = int(rng.integers(clusters))
        else:
            c2 = c1
        while True:
            sender = centers[c1] + rng.normal(scale=cluster_std, size=2)
            receiver = centers[c2] + rng.normal(scale=cluster_std, size=2)
            if np.linalg.norm(receiver - sender) > 1e-9:
                break
        points[2 * i] = sender
        points[2 * i + 1] = receiver
        pairs.append((2 * i, 2 * i + 1))
    metric = EuclideanMetric(points)
    return Instance(
        metric,
        [p[0] for p in pairs],
        [p[1] for p in pairs],
        direction=direction,
        alpha=alpha,
        beta=beta,
    )


def random_tree_metric_instance(
    n_requests: int,
    n_nodes: Optional[int] = None,
    weight_range: Tuple[float, float] = (1.0, 100.0),
    alpha: float = 3.0,
    beta: float = 1.0,
    direction: Union[Direction, str] = Direction.BIDIRECTIONAL,
    rng: RngLike = None,
) -> Instance:
    """Requests between random nodes of a random weighted tree.

    The tree is a random recursive tree (each node attaches to a
    uniform predecessor) with log-uniform edge weights, giving a
    non-Euclidean metric with large aspect ratio.
    """
    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    rng = ensure_rng(rng)
    if n_nodes is None:
        n_nodes = max(2, 2 * n_requests)
    if n_nodes < 2:
        raise ValueError("need at least 2 nodes")
    low, high = weight_range
    if not 0 < low <= high:
        raise ValueError("weight_range must satisfy 0 < low <= high")
    edges = []
    for v in range(1, n_nodes):
        u = int(rng.integers(v))
        weight = float(np.exp(rng.uniform(np.log(low), np.log(high))))
        edges.append((u, v, weight))
    tree = TreeMetric(n_nodes, edges)
    senders, receivers = _random_pairs(n_requests, n_nodes, rng)
    return Instance(
        tree, senders, receivers, direction=direction, alpha=alpha, beta=beta
    )


def random_graph_metric_instance(
    n_requests: int,
    n_nodes: Optional[int] = None,
    edge_probability: float = 0.1,
    weight_range: Tuple[float, float] = (1.0, 50.0),
    alpha: float = 3.0,
    beta: float = 1.0,
    direction: Union[Direction, str] = Direction.BIDIRECTIONAL,
    rng: RngLike = None,
) -> Instance:
    """Requests on the shortest-path metric of a random connected graph.

    An Erdos-Renyi graph is drawn and augmented with a random spanning
    path to guarantee connectivity; edge weights are uniform in
    ``weight_range``.
    """
    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    rng = ensure_rng(rng)
    if n_nodes is None:
        n_nodes = max(2, 2 * n_requests)
    if n_nodes < 2:
        raise ValueError("need at least 2 nodes")
    low, high = weight_range
    if not 0 < low <= high:
        raise ValueError("weight_range must satisfy 0 < low <= high")
    graph = nx.Graph()
    graph.add_nodes_from(range(n_nodes))
    order = rng.permutation(n_nodes)
    for a, b in zip(order[:-1], order[1:]):
        graph.add_edge(int(a), int(b), weight=float(rng.uniform(low, high)))
    for u in range(n_nodes):
        for v in range(u + 1, n_nodes):
            if graph.has_edge(u, v):
                continue
            if rng.uniform() < edge_probability:
                graph.add_edge(u, v, weight=float(rng.uniform(low, high)))
    metric = GraphMetric(graph)
    senders, receivers = _random_pairs(n_requests, n_nodes, rng)
    return Instance(
        metric, senders, receivers, direction=direction, alpha=alpha, beta=beta
    )
