"""Declarative experiment specifications for the orchestrator.

Each experiment module exports a thin :class:`ExperimentSpec` naming its
``run_*`` function, its full/fast parameter sets, how to shard the work
into independent units, and which table column summarizes scheduler
quality.  The orchestrator (:mod:`repro.runner.orchestrator`) expands a
spec into :class:`Shard` units, fans them out over worker processes and
merges the per-shard tables deterministically — no experiment module
hand-rolls its own outer loop or seeding anymore.

Seeding contract
----------------

Shard seeds are derived from ``(spec.seed, shard_index)`` through
:class:`numpy.random.SeedSequence`, so they depend only on the spec —
never on worker count, submission order or scheduling.  This is what
makes ``--jobs 1`` and ``--jobs N`` produce bit-identical tables.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.gains import BACKENDS
from repro.resilience.policy import RetryPolicy
from repro.util.tables import Table

#: Sharding strategies a spec may declare.
SHARD_MODES = (None, "n_values")


def derive_shard_seed(base_seed: int, shard_index: int) -> int:
    """Deterministic child seed for shard *shard_index* of *base_seed*.

    Seeds are 32-bit so they stay exactly representable in IEEE
    doubles — the ``BENCH_*.json`` artifacts record them, and non-Python
    JSON consumers must be able to read them back verbatim.
    """
    state = np.random.SeedSequence([int(base_seed), int(shard_index)])
    return int(state.generate_state(1)[0])


@dataclass(frozen=True)
class Shard:
    """One independently runnable unit of an experiment."""

    spec_id: str
    index: int
    key: str
    kwargs: Mapping[str, Any]
    seed: Optional[int] = None


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one experiment for the runner.

    Attributes
    ----------
    id:
        CLI identifier (``"e1"`` .. ``"e13"``, ``"e3b"``).
    title:
        Short human-readable label (the table carries the full title).
    runner:
        Dotted ``"module:function"`` reference to the ``run_*`` function;
        resolved lazily so specs stay picklable and import-cheap.
    full, fast:
        Keyword arguments for the full run and the ``--fast`` smoke run.
        ``rng`` must *not* appear here — seeding is the runner's job.
    seed:
        Base seed for shard-seed derivation; ``None`` for experiments
        whose run function takes no ``rng`` (fully deterministic).
    shard_by:
        ``"n_values"`` to fan out one shard per entry of the
        ``n_values`` kwarg, or ``None`` for a single shard.
    metric:
        Optional numeric column summarizing scheduler quality in the
        bench artifact (mean/min/max are recorded).
    backend:
        Optional gain-backend pin (``"dense"``/``"sparse"``) for every
        shard of this experiment.  ``None`` (the default) follows the
        run-level ``--backend`` choice, falling back to the process
        default (:func:`repro.core.gains.default_backend`).  The
        resolved name is recorded in the ``BENCH_*.json`` artifact.
    algorithms:
        Names from :mod:`repro.scheduling.registry` this experiment
        exercises.  Validated against the registry at spec construction
        (a typo fails the import, not the run), listed by the CLI and
        recorded in the artifact's ``env.algorithms``.
    retry:
        Optional per-shard :class:`~repro.resilience.RetryPolicy` pin
        for this experiment.  ``None`` (the default) follows the
        run-level policy passed to
        :func:`~repro.runner.orchestrator.run_experiments`, falling
        back to fail-fast (``max_attempts=1``).
    """

    id: str
    title: str
    runner: str
    full: Mapping[str, Any] = field(default_factory=dict)
    fast: Mapping[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    shard_by: Optional[str] = None
    metric: Optional[str] = None
    backend: Optional[str] = None
    algorithms: Tuple[str, ...] = ()
    retry: Optional[RetryPolicy] = None

    def __post_init__(self) -> None:
        if self.shard_by not in SHARD_MODES:
            raise ValueError(
                f"{self.id}: shard_by must be one of {SHARD_MODES}, "
                f"got {self.shard_by!r}"
            )
        if self.algorithms:
            # Imported lazily: the registry pulls in the scheduler
            # modules, which must stay importable without the runner.
            from repro.scheduling.registry import algorithm_names

            unknown = sorted(set(self.algorithms) - set(algorithm_names()))
            if unknown:
                raise ValueError(
                    f"{self.id}: unknown algorithm(s) {unknown}; "
                    f"registered: {sorted(algorithm_names())}"
                )
        if self.backend is not None and self.backend not in BACKENDS:
            raise ValueError(
                f"{self.id}: backend must be one of {BACKENDS} or None, "
                f"got {self.backend!r}"
            )
        if self.retry is not None and not isinstance(self.retry, RetryPolicy):
            raise ValueError(
                f"{self.id}: retry must be a RetryPolicy or None, "
                f"got {self.retry!r}"
            )
        for mode_name, kwargs in (("full", self.full), ("fast", self.fast)):
            if "rng" in kwargs:
                raise ValueError(
                    f"{self.id}: {mode_name} kwargs must not pin 'rng' — "
                    "seeding is derived per shard"
                )
            if self.shard_by is not None and self.shard_by not in kwargs:
                raise ValueError(
                    f"{self.id}: shard_by={self.shard_by!r} missing from "
                    f"{mode_name} kwargs"
                )

    def resolve(self) -> Callable[..., Table]:
        """Import and return the ``run_*`` function."""
        module_name, _, function_name = self.runner.partition(":")
        if not function_name:
            raise ValueError(f"{self.id}: runner must be 'module:function'")
        module = importlib.import_module(module_name)
        return getattr(module, function_name)

    def kwargs_for(self, fast: bool) -> Dict[str, Any]:
        """A mutable copy of the parameter set for the chosen mode."""
        return dict(self.fast if fast else self.full)

    def shards(self, fast: bool) -> List[Shard]:
        """Expand this spec into its independently runnable shards."""
        kwargs = self.kwargs_for(fast)
        units: List[Tuple[str, Dict[str, Any]]] = []
        if self.shard_by == "n_values":
            for n in kwargs["n_values"]:
                shard_kwargs = dict(kwargs)
                shard_kwargs["n_values"] = (int(n),)
                units.append((f"n={int(n)}", shard_kwargs))
        else:
            units.append(("all", kwargs))
        shards: List[Shard] = []
        for index, (key, shard_kwargs) in enumerate(units):
            seed = None
            if self.seed is not None:
                seed = derive_shard_seed(self.seed, index)
                shard_kwargs["rng"] = seed
            shards.append(
                Shard(
                    spec_id=self.id,
                    index=index,
                    key=key,
                    kwargs=shard_kwargs,
                    seed=seed,
                )
            )
        return shards


def merge_tables(tables: List[Table]) -> Table:
    """Deterministically merge per-shard tables (in shard order).

    The merged table takes its title and columns from the first shard;
    rows are concatenated in shard order and notes are deduplicated
    preserving first occurrence.
    """
    if not tables:
        raise ValueError("cannot merge zero tables")
    first = tables[0]
    merged = Table(title=first.title, columns=list(first.columns))
    seen_notes = set()
    for table in tables:
        if list(table.columns) != list(merged.columns):
            raise ValueError(
                f"shard tables disagree on columns: {table.columns} "
                f"vs {merged.columns}"
            )
        for row in table.rows:
            merged.rows.append(dict(row))
        for note in table.notes:
            if note not in seen_notes:
                seen_notes.add(note)
                merged.add_note(note)
    return merged
