"""Benchmark: dense vs. sparse gain backends at large n.

The PR-4 backend split exists for exactly one reason: dense ``(n, n)``
gain matrices cap instance size long before algorithmic cost does.
This benchmark demonstrates (and gates) the unlock on random geometric
instances at **constant node density** (area grows with ``n``, the
physically meaningful scaling, where gains decay fast enough that
ε-pruning keeps a few percent of the entries):

* ``first_fit`` on the dense backend at ``--dense-n`` (default 4096) —
  the reference point;
* ``first_fit`` on the sparse backend at the same size (direct
  speedup) and at ``--sparse-n`` (default 16384), where the dense
  backend would need roughly ``16x`` the reference memory
  (loss matrix + both gain layouts — tens of GB);
* ``sqrt_coloring`` on the sparse backend at ``--sqrt-n`` (default
  8192) and ``--sqrt-big-n`` (default 32768) — the incremental peel
  kernel's unlock.  Under the old compacting peel (O(k^3) in the first
  distance bucket) n=8192 took ~343 s; the incremental kernel is gated
  to at least ``--sqrt-speedup`` (default 10x) faster than that
  committed ``--sqrt-seed-seconds`` baseline, and the big run must fit
  the RSS budget.  Both sqrt gates (and the big run itself) only
  engage when ``--sqrt-n`` is at least 8192, so CI's reduced size
  skips them;
* a bit-exactness check: at ``--conf-n`` the lossless sparse backend
  (``epsilon=0``) must emit the *identical* first-fit schedule to the
  dense backend (hard failure otherwise), and a certified pruned run
  (small epsilon, zero flip-risk events) must match too.

Every workload runs in its own spawned subprocess so peak RSS
(``ru_maxrss``) is measured per workload, not cumulatively.

Gates (exit non-zero on violation):

* sparse first-fit at ``--sparse-n`` must finish within
  ``--target-fraction`` (default 0.25) of the dense reference
  extrapolated quadratically (``dense_seconds * (sparse_n/dense_n)^2``);
* its peak RSS must stay within ``--rss-budget-mb`` (default 2048) — a
  budget the extrapolated dense run exceeds many times over;
* sqrt_coloring at ``--sqrt-n`` (when >= 8192) must beat the committed
  compacting-peel baseline by ``--sqrt-speedup``, and at
  ``--sqrt-big-n`` must stay within the RSS budget;
* the conformance workloads must match the dense schedule exactly.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_backends.py
    PYTHONPATH=src python benchmarks/bench_backends.py \
        --dense-n 1024 --sparse-n 4096 --sqrt-n 1024 --artifacts out/

Reference results (one run, defaults, see
``benchmarks/artifacts/BENCH_backends.json``): sparse first-fit at
n=16384 runs in well under the dense n=4096 quadratic extrapolation at
~3% stored density, inside a few hundred MB of RSS; sqrt_coloring at
n=8192 in ~18 s against the 343 s compacting-peel seed (~20x, same
schedule), and at n=32768 in ~1 GB RSS.
"""

from __future__ import annotations

import argparse
import multiprocessing
import resource
import sys
import time

import numpy as np

#: Pruning budget used for the lossy sparse rows (fraction of each
#: row's finite gain mass; see repro.core.gains).
BENCH_EPSILON = 0.05


def _make_instance(n: int, seed: int):
    """Constant-density random geometric instance (directed).

    The square's side grows like ``sqrt(n)`` so node density is
    n-independent, and link lengths are capped at an absolute scale
    (not a fraction of the growing side), keeping the workload the
    same 'local links in a large field' shape at every size.
    """
    from repro.instances.random_instances import random_uniform_instance

    side = 2.0 * float(np.sqrt(n))
    return random_uniform_instance(
        n,
        side=side,
        max_link_fraction=min(1.0, 4.0 / side),
        direction="directed",
        rng=seed,
    )


def _run_workload(spec: dict) -> dict:
    """Subprocess worker: build the instance, run one workload, report
    wall seconds + peak RSS + schedule/backend stats."""
    from repro.core import gains
    from repro.core.context import clear_context_cache, get_context
    from repro.power.oblivious import SquareRootPower
    from repro.scheduling.firstfit import first_fit_schedule
    from repro.scheduling.sqrt_coloring import sqrt_coloring

    n = spec["n"]
    backend = spec["backend"]
    epsilon = spec["epsilon"]
    instance = _make_instance(n, spec["seed"])
    powers = SquareRootPower()(instance)
    clear_context_cache()
    gains.set_sparse_epsilon(epsilon)
    start = time.perf_counter()
    with gains.backend_scope(backend):
        if spec["workload"] == "first_fit":
            schedule = first_fit_schedule(instance, powers)
        elif spec["workload"] == "sqrt":
            schedule, _ = sqrt_coloring(instance, rng=3, use_lp=False)
        else:  # pragma: no cover - spec misuse
            raise ValueError(spec["workload"])
        seconds = time.perf_counter() - start
        context = get_context(instance, schedule.powers)
        backend_obj = context.backend
        stats = {
            "density": backend_obj.density,
            "nnz": backend_obj.nnz,
            "gain_bytes": backend_obj.nbytes,
            "flip_risk": backend_obj.flip_risk_events,
        }
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    return {
        "seconds": seconds,
        "peak_rss_mb": peak_rss_mb,
        "colors": schedule.num_colors,
        "schedule_colors": schedule.colors.tolist(),
        **stats,
    }


def _in_subprocess(spec: dict) -> dict:
    """Run one workload isolated in a fresh (spawned) interpreter so
    ru_maxrss reflects that workload alone."""
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(1) as pool:
        return pool.apply(_run_workload, (spec,))


def run(args) -> int:
    rows = []
    failures = []

    def workload(name, workload_id, n, backend, epsilon, seed=42, repeats=1):
        spec = {
            "workload": workload_id,
            "n": n,
            "backend": backend,
            "epsilon": epsilon,
            "seed": seed,
        }
        # repeats > 1: keep the median-by-wall-time result.  The dense
        # reference allocates GBs, so its wall time swings with page
        # cache / zeroing state; the gate budget derives from it, so it
        # gets the noise treatment.
        results = sorted(
            (_in_subprocess(spec) for _ in range(max(1, repeats))),
            key=lambda r: r["seconds"],
        )
        result = results[len(results) // 2]
        rows.append(
            {
                "workload": name,
                "n": n,
                "backend": backend,
                "epsilon": epsilon,
                "seconds": result["seconds"],
                "peak_rss_mb": result["peak_rss_mb"],
                "colors": result["colors"],
                "density": result["density"],
                "flip_risk": result["flip_risk"],
            }
        )
        print(
            f"{name:<26} n={n:<6} {backend:<7} eps={epsilon:<5g} "
            f"{result['seconds']:>8.2f}s {result['peak_rss_mb']:>8.1f} MB "
            f"colors={result['colors']:<5} density={result['density']:.4f} "
            f"flip_risk={result['flip_risk']}"
        )
        return result

    run_start = time.perf_counter()

    # -- conformance: lossless sparse must match dense bit-for-bit ----
    conf_dense = workload(
        "conformance/dense", "first_fit", args.conf_n, "dense", 0.0
    )
    conf_sparse = workload(
        "conformance/sparse-eps0", "first_fit", args.conf_n, "sparse", 0.0
    )
    if conf_sparse["schedule_colors"] != conf_dense["schedule_colors"]:
        failures.append(
            f"lossless sparse first-fit diverged from dense at n={args.conf_n}"
        )
    # Certified pruned run: epsilon small enough that no admission
    # lands in the pruned-mass band — must also match exactly.
    conf_certified = workload(
        "conformance/sparse-certified",
        "first_fit",
        args.conf_n,
        "sparse",
        args.certified_epsilon,
    )
    if conf_certified["flip_risk"] == 0:
        if conf_certified["schedule_colors"] != conf_dense["schedule_colors"]:
            failures.append(
                "certified pruned run (0 flip-risk events) diverged from "
                f"dense at n={args.conf_n}"
            )
    else:
        print(
            f"note: epsilon={args.certified_epsilon} was not certified at "
            f"n={args.conf_n} ({conf_certified['flip_risk']} at-risk "
            "admissions); equality not required"
        )

    # -- headline: dense reference vs sparse at scale -----------------
    dense_ref = workload(
        "first_fit", "first_fit", args.dense_n, "dense", 0.0, repeats=3
    )
    workload("first_fit", "first_fit", args.dense_n, "sparse", BENCH_EPSILON)
    sparse_big = workload(
        "first_fit", "first_fit", args.sparse_n, "sparse", BENCH_EPSILON
    )
    sqrt_result = workload(
        "sqrt_coloring", "sqrt", args.sqrt_n, "sparse", BENCH_EPSILON
    )
    # The sqrt gates only engage at full size: CI runs a reduced
    # --sqrt-n, where the seed baseline (a full-size measurement) says
    # nothing and the big workload would dominate the job.
    sqrt_full_size = args.sqrt_n >= 8192
    if sqrt_full_size:
        sqrt_budget = args.sqrt_seed_seconds / args.sqrt_speedup
        print(
            f"gate: sqrt_coloring n={args.sqrt_n}: "
            f"{sqrt_result['seconds']:.2f}s vs budget {sqrt_budget:.2f}s "
            f"(>= {args.sqrt_speedup:g}x over the {args.sqrt_seed_seconds:g}s "
            "compacting-peel seed baseline)"
        )
        if sqrt_result["seconds"] > sqrt_budget:
            failures.append(
                f"sqrt_coloring at n={args.sqrt_n} took "
                f"{sqrt_result['seconds']:.2f}s (> {sqrt_budget:.2f}s = "
                f"{args.sqrt_seed_seconds:g}s seed / "
                f"{args.sqrt_speedup:g}x budget)"
            )
        if args.sqrt_big_n > args.sqrt_n:
            sqrt_big = workload(
                "sqrt_coloring", "sqrt", args.sqrt_big_n, "sparse",
                BENCH_EPSILON,
            )
            print(
                f"gate: sqrt_coloring n={args.sqrt_big_n}: "
                f"RSS {sqrt_big['peak_rss_mb']:.0f} MB vs budget "
                f"{args.rss_budget_mb:g} MB"
            )
            if sqrt_big["peak_rss_mb"] > args.rss_budget_mb:
                failures.append(
                    f"sqrt_coloring at n={args.sqrt_big_n} peaked at "
                    f"{sqrt_big['peak_rss_mb']:.0f} MB RSS "
                    f"(> {args.rss_budget_mb:g} MB budget)"
                )

    scale = (args.sparse_n / args.dense_n) ** 2
    budget_seconds = args.target_fraction * dense_ref["seconds"] * scale
    dense_extrapolated_mb = dense_ref["peak_rss_mb"] * scale
    print(
        f"\ngate: sparse first_fit n={args.sparse_n}: "
        f"{sparse_big['seconds']:.2f}s vs budget {budget_seconds:.2f}s "
        f"({args.target_fraction:.0%} of dense n={args.dense_n} "
        f"x{scale:.0f} quadratic extrapolation); "
        f"RSS {sparse_big['peak_rss_mb']:.0f} MB vs budget "
        f"{args.rss_budget_mb} MB (dense extrapolates to "
        f"~{dense_extrapolated_mb:.0f} MB)"
    )
    if sparse_big["seconds"] > budget_seconds:
        failures.append(
            f"sparse first-fit at n={args.sparse_n} took "
            f"{sparse_big['seconds']:.2f}s (> {budget_seconds:.2f}s budget)"
        )
    if sparse_big["peak_rss_mb"] > args.rss_budget_mb:
        failures.append(
            f"sparse first-fit at n={args.sparse_n} peaked at "
            f"{sparse_big['peak_rss_mb']:.0f} MB RSS "
            f"(> {args.rss_budget_mb} MB budget)"
        )

    if args.artifacts is not None:
        from repro.runner.artifacts import (
            BenchReport,
            ShardResult,
            write_artifact,
        )
        from repro.util.tables import Table

        table = Table(
            title="Gain backends: dense vs epsilon-pruned sparse",
            columns=[
                "workload",
                "n",
                "backend",
                "epsilon",
                "seconds",
                "peak_rss_mb",
                "colors",
                "density",
                "flip_risk",
            ],
        )
        table.add_note(
            f"gate: sparse first_fit at n={args.sparse_n} within "
            f"{args.target_fraction:.0%} of the dense n={args.dense_n} "
            f"quadratic extrapolation and {args.rss_budget_mb} MB RSS; "
            "conformance workloads bit-identical to dense"
        )
        if sqrt_full_size:
            table.add_note(
                f"gate: sqrt_coloring at n={args.sqrt_n} at least "
                f"{args.sqrt_speedup:g}x faster than the "
                f"{args.sqrt_seed_seconds:g}s compacting-peel seed "
                f"baseline (incremental peel kernel); the "
                f"n={args.sqrt_big_n} run within {args.rss_budget_mb:g} "
                "MB RSS"
            )
        table.add_note(
            "constant-density random geometric instances (directed, "
            "sqrt powers); each workload measured in its own spawned "
            "subprocess (ru_maxrss)"
        )
        shards = []
        for row in rows:
            table.add_row(**row)
            shards.append(
                ShardResult(
                    key=f"{row['workload']}:n={row['n']}:{row['backend']}",
                    seed=42,
                    rows=1,
                    seconds=row["seconds"],
                )
            )
        report = BenchReport(
            experiment="backends",
            title="Sparse gain backend at n >> 10^3",
            mode="smoke" if args.sparse_n < 16384 else "full",
            table=table,
            shards=shards,
            run_wall_seconds=time.perf_counter() - run_start,
            metric="seconds",
            backend="sparse",
        )
        write_artifact(args.artifacts, report)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: all backend gates passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dense-n",
        type=int,
        default=4096,
        help="dense reference size (default 4096)",
    )
    parser.add_argument(
        "--sparse-n",
        type=int,
        default=16384,
        help="gated sparse first-fit size (default 16384)",
    )
    parser.add_argument(
        "--sqrt-n",
        type=int,
        default=8192,
        help="sqrt_coloring size on the sparse backend (default 8192; "
        "the speed gate and the --sqrt-big-n workload only engage when "
        "this is >= 8192, so CI's reduced size skips them)",
    )
    parser.add_argument(
        "--sqrt-big-n",
        type=int,
        default=32768,
        help="scaled sqrt_coloring size, RSS-gated (default 32768; "
        "skipped when --sqrt-n is reduced or this does not exceed it)",
    )
    parser.add_argument(
        "--sqrt-seed-seconds",
        type=float,
        default=343.0,
        help="committed wall-time of the compacting-peel sqrt_coloring "
        "run at n=8192 (the seed baseline the speed gate divides)",
    )
    parser.add_argument(
        "--sqrt-speedup",
        type=float,
        default=10.0,
        help="required speedup of sqrt_coloring at --sqrt-n over the "
        "seed baseline (default 10x)",
    )
    parser.add_argument(
        "--conf-n",
        type=int,
        default=2048,
        help="bit-exactness check size (default 2048)",
    )
    parser.add_argument(
        "--certified-epsilon",
        type=float,
        default=1e-6,
        help="pruning budget for the certified-conformance workload",
    )
    parser.add_argument(
        "--target-fraction",
        type=float,
        default=0.25,
        help="allowed fraction of the quadratically extrapolated dense "
        "wall time (default 0.25)",
    )
    parser.add_argument(
        "--rss-budget-mb",
        type=float,
        default=2048.0,
        help="peak-RSS budget for the gated sparse run (default 2048)",
    )
    parser.add_argument(
        "--artifacts",
        metavar="DIR",
        default=None,
        help="write BENCH_backends.json under DIR",
    )
    args = parser.parse_args(argv)
    if args.sparse_n <= args.dense_n:
        parser.error("--sparse-n must exceed --dense-n")
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
