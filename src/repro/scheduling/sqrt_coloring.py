"""The Theorem 15 coloring algorithm for the square-root assignment.

"There exists a randomized polynomial time algorithm solving the
coloring problem for the square root power assignment with
approximation factor O(log n)."

Structure (Section 5), per extracted color class:

1. Partition the remaining requests into *distance classes* ``C_i``
   (link distances within a factor of 4, so losses within ``4^alpha``).
2. Sweep classes from short to long.  For each class, keep only the
   requests whose endpoints still tolerate the interference of the
   already-selected shorter requests (the paper's ``V'``/``C'_i``).
3. Choose a large subset of the class via an LP relaxation — variables
   ``x_j in [0, 1]``, one interference-budget constraint per candidate
   endpoint (the Claim 17 relaxation widens the budget by ``2^alpha``)
   — followed by randomized rounding and a greedy repair pass.
4. After the sweep, thin the selection at the full gain
   (Proposition 3) so the emitted class is genuinely feasible.

The extracted class is colored, removed, and the process repeats —
"It is easy to see that such a greedy approach yields an O(log n)
approximation for the optimal number of colors."

The repair (step 3) and thinning (step 4) passes are the hot path;
they run through :func:`greedy_max_feasible_subset`, which executes on
the incremental peel kernel
(:func:`repro.core.kernels.peel_max_feasible_subset`) when the engine
is enabled — identical peeling decisions from maintained interference
sums, O(k) vectorized work per round instead of re-gathering an O(k²)
gain block (tolerance-window decisions are re-resolved exactly and
surfaced as ``peel_risk_events`` in the result provenance).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.analysis.capacity import greedy_max_feasible_subset
from repro.core.context import InterferenceContext, maybe_context
from repro.core.gains import DenseBackend, GainBackend
from repro.core.instance import Direction, Instance
from repro.core.interference import (
    bidirectional_gain_matrices,
    directed_gain_matrix,
)
from repro.core.schedule import Schedule, build_schedule
from repro.power.oblivious import SquareRootPower
from repro.util.rng import RngLike, ensure_rng


@dataclass
class SqrtColoringStats:
    """Diagnostics of a :func:`sqrt_coloring` run."""

    rounds: int = 0
    lp_solves: int = 0
    class_sizes: List[int] = field(default_factory=list)
    distance_classes_seen: int = 0
    lp_objectives: List[float] = field(default_factory=list)


def _distance_classes(distances: np.ndarray) -> List[np.ndarray]:
    """Group positions by ``floor(log4(d / d_min))``, ascending."""
    d_min = float(np.min(distances))
    idx = np.floor(np.log(distances / d_min) / math.log(4.0) + 1e-12).astype(int)
    classes = []
    for value in np.unique(idx):
        classes.append(np.flatnonzero(idx == value))
    return classes


def _lp_select(
    backend: GainBackend,
    candidates: np.ndarray,
    slack: np.ndarray,
    relax: float,
    rng: np.random.Generator,
    rounding_trials: int,
) -> Tuple[np.ndarray, float]:
    """Solve the class LP and round; returns (chosen positions into
    *candidates*, LP objective)."""
    k = candidates.size
    sub_u = backend.block_u(candidates)
    sub_v = sub_u if backend.directed else backend.block_v(candidates)
    # Shared nodes produce infinite gains; clamp them so the LP stays
    # finite (an infinite column forces the corresponding x to 0 via a
    # huge coefficient).
    big = 1e30
    sub_u = np.where(np.isfinite(sub_u), sub_u, big)
    sub_v = np.where(np.isfinite(sub_v), sub_v, big)
    a_ub = np.vstack([sub_u, sub_v])
    b_ub = np.concatenate([relax * slack, relax * slack])
    result = linprog(
        c=-np.ones(k),
        A_ub=a_ub,
        b_ub=b_ub,
        bounds=[(0.0, 1.0)] * k,
        method="highs",
    )
    if not result.success:  # pragma: no cover - LP is always feasible (x=0)
        return np.zeros(0, dtype=int), 0.0
    x = np.clip(result.x, 0.0, 1.0)
    objective = float(np.sum(x))

    best: np.ndarray = np.zeros(0, dtype=int)
    for _ in range(rounding_trials):
        chosen = np.flatnonzero(rng.uniform(size=k) < x / 4.0)
        if chosen.size > best.size:
            best = chosen
    return best, objective


def _select_one_class(
    instance: Instance,
    remaining: np.ndarray,
    backend: GainBackend,
    budgets: np.ndarray,
    beta: float,
    rng: np.random.Generator,
    use_lp: bool,
    rounding_trials: int,
    stats: SqrtColoringStats,
    powers: np.ndarray,
    context: Optional[InterferenceContext],
) -> np.ndarray:
    """One run of algorithm A: extract a large feasible subset of
    *remaining* (global indices) for the square-root assignment."""
    distances = instance.link_distances[remaining]
    classes = _distance_classes(distances)
    stats.distance_classes_seen += len(classes)
    selected: List[int] = []

    for positions in classes:
        members = remaining[positions]
        if selected:
            sel = np.asarray(selected)
            # Tiled per-row sums: bit-identical to gathering the
            # (members, sel) block, without materializing it (and
            # CSR-native on the sparse backend).
            prior_u = backend.row_sums_u(members, sel)
            if backend.directed:
                prior_v = prior_u
            else:
                prior_v = backend.row_sums_v(members, sel)
            prior = np.maximum(prior_u, prior_v)
        else:
            prior = np.zeros(members.size)
        # The paper's V'/C'_i: requests whose endpoints still have at
        # least half their interference budget left.
        half = budgets[members] / 2.0
        keep = prior <= half
        candidates = members[keep]
        if candidates.size == 0:
            continue
        slack = half[keep]

        if use_lp and candidates.size > 1:
            relax = 2.0**instance.alpha
            chosen_pos, objective = _lp_select(
                backend, candidates, slack, relax, rng, rounding_trials
            )
            stats.lp_solves += 1
            stats.lp_objectives.append(objective)
            chosen = candidates[chosen_pos]
        else:
            chosen = candidates

        # Repair at gain beta/2 on top of the already-selected pairs:
        # greedily peel violators among the new picks.
        trial = selected + [int(c) for c in chosen]
        feasible = greedy_max_feasible_subset(
            instance,
            powers,
            candidates=trial,
            beta=beta / 2.0,
            context=context,
        )
        feasible_set = set(int(i) for i in feasible)
        # Never peel previously selected pairs at this stage; the final
        # thinning handles global violations (paper: Lemma 19 bounds the
        # back-interference by a constant factor).
        newly = [int(c) for c in chosen if int(c) in feasible_set]
        selected.extend(newly)

    if not selected:
        # Guarantee progress: the longest remaining request alone.
        longest = remaining[int(np.argmax(distances))]
        return np.asarray([longest], dtype=int)

    # Final thinning at the full gain (Proposition 3).
    final = greedy_max_feasible_subset(
        instance, powers, candidates=selected, beta=beta, context=context
    )
    if final.size == 0:
        longest = remaining[int(np.argmax(distances))]
        return np.asarray([longest], dtype=int)
    return final


def sqrt_coloring(
    instance: Instance,
    beta: Optional[float] = None,
    rng: RngLike = None,
    use_lp: bool = True,
    rounding_trials: int = 8,
) -> Tuple[Schedule, SqrtColoringStats]:
    """Color *instance* under the square-root assignment (Theorem 15).

    Parameters
    ----------
    use_lp:
        When ``False``, skip the LP and greedily take every candidate
        (a faster heuristic with the same repair/thinning safety nets).
    rounding_trials:
        Randomized-rounding attempts per LP solve.

    Returns
    -------
    (schedule, stats):
        A feasible schedule using the square-root powers, plus run
        diagnostics.
    """
    beta = instance.beta if beta is None else float(beta)
    rng = ensure_rng(rng)
    powers = SquareRootPower()(instance)
    context = maybe_context(instance, powers)
    if context is not None:
        backend = context.backend
        signals = context.signals
    else:
        # Legacy (engine-off) path: wrap the from-scratch dense arrays
        # in a DenseBackend so the selection code below is one path.
        if instance.direction is Direction.DIRECTED:
            gains = directed_gain_matrix(instance, powers)
            backend = DenseBackend(gains, gains)
        else:
            backend = DenseBackend(
                *bidirectional_gain_matrices(instance, powers)
            )
        signals = powers / instance.link_losses
    budgets = signals / beta  # max tolerable interference per request

    stats = SqrtColoringStats()
    colors = np.full(instance.n, -1, dtype=int)
    alive = np.ones(instance.n, dtype=bool)
    remaining = np.arange(instance.n)
    color = 0
    while remaining.size > 0:
        chosen = _select_one_class(
            instance,
            remaining,
            backend,
            budgets,
            beta,
            rng,
            use_lp,
            rounding_trials,
            stats,
            powers,
            context,
        )
        colors[chosen] = color
        stats.class_sizes.append(int(chosen.size))
        alive[chosen] = False
        remaining = np.flatnonzero(alive)
        color += 1
        stats.rounds += 1

    return build_schedule(colors, powers, copy_powers=False), stats
