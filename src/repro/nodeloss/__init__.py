"""The node-loss scheduling problem (§3.2) and its star analysis (§4).

The Theorem 2 proof replaces communication *pairs* by single *nodes*
carrying a loss parameter: node ``i`` with loss ``l_i`` and power
``p_i`` is satisfied in a set ``U`` when

    p_i / l_i > gamma * sum_{j in U \\ {i}} p_j / l(i, j).

* :mod:`~repro.nodeloss.instance` — the problem representation.
* :mod:`~repro.nodeloss.feasibility` — margins, feasible sets, the
  best achievable gain under free powers.
* :mod:`~repro.nodeloss.transform` — the pair <-> node reductions of
  §3.2 (factor ``gamma / (2 + gamma)`` in one direction, "schedule the
  pairs with both nodes selected" in the other).
* :mod:`~repro.nodeloss.star_analysis` — the constructive Lemma 5
  machinery: decay classes, the Claim 12 trim, the large/small loss
  split and the final subset extraction.
"""

from repro.nodeloss.feasibility import (
    max_feasible_gain,
    nodeloss_interference,
    nodeloss_margins,
    is_gamma_feasible,
)
from repro.nodeloss.instance import NodeLossInstance, StarNodeLoss
from repro.nodeloss.transform import (
    node_gain_from_pair_gain,
    nodeloss_from_pairs,
    pairs_fully_selected,
)
from repro.nodeloss.star_analysis import (
    Lemma5Result,
    decay_classes,
    large_loss_threshold,
    lemma5_subset,
    small_loss_subset,
    split_large_small,
)

__all__ = [
    "NodeLossInstance",
    "StarNodeLoss",
    "nodeloss_interference",
    "nodeloss_margins",
    "is_gamma_feasible",
    "max_feasible_gain",
    "nodeloss_from_pairs",
    "pairs_fully_selected",
    "node_gain_from_pair_gain",
    "decay_classes",
    "large_loss_threshold",
    "split_large_small",
    "small_loss_subset",
    "lemma5_subset",
    "Lemma5Result",
]
