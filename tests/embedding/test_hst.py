"""Tests for the FRT tree embedding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding.hst import build_hst
from repro.geometry.euclidean import EuclideanMetric
from repro.geometry.line import LineMetric
from repro.instances.random_instances import random_tree_metric_instance


class TestBuildHst:
    def test_dominates_line(self, line_metric, rng):
        embedding = build_hst(line_metric, rng=rng)
        assert embedding.dominates(line_metric)

    def test_dominates_square(self, square_metric, rng):
        embedding = build_hst(square_metric, rng=rng)
        assert embedding.dominates(square_metric)

    def test_points_are_leaves(self, line_metric, rng):
        embedding = build_hst(line_metric, rng=rng)
        assert embedding.n_points == line_metric.n
        assert embedding.tree.n >= line_metric.n

    def test_point_distance_matrix_shape(self, square_metric, rng):
        embedding = build_hst(square_metric, rng=rng)
        assert embedding.point_distances().shape == (4, 4)

    def test_single_point(self):
        metric = LineMetric([5.0])
        embedding = build_hst(metric)
        assert embedding.tree.n == 1

    def test_two_points(self, rng):
        metric = LineMetric([0.0, 7.0])
        embedding = build_hst(metric, rng=rng)
        assert embedding.dominates(metric)
        # A 2-point HST has bounded overhead.
        assert embedding.point_distances()[0, 1] <= 7.0 * 16.0

    def test_coincident_points_rejected(self):
        with pytest.raises(ValueError, match="coincide"):
            build_hst(LineMetric([1.0, 1.0]))

    def test_deterministic_given_seed(self, square_metric):
        a = build_hst(square_metric, rng=5).point_distances()
        b = build_hst(square_metric, rng=5).point_distances()
        assert np.allclose(a, b)

    def test_stretch_at_least_one(self, square_metric, rng):
        stretches = build_hst(square_metric, rng=rng).stretches(square_metric)
        assert np.all(stretches >= 1.0 - 1e-9)

    def test_expected_stretch_reasonable(self, rng):
        # Average over trees: expected distortion is O(log n); verify a
        # generous constant on a 20-point instance.
        metric = EuclideanMetric(rng.uniform(0, 100, size=(20, 2)))
        ratios = []
        for seed in range(10):
            embedding = build_hst(metric, rng=seed)
            original = metric.distance_matrix()
            embedded = embedding.point_distances()
            mask = original > 0
            ratios.append(np.mean(embedded[mask] / original[mask]))
        assert np.mean(ratios) < 40 * np.log2(21)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_dominance_property(self, seed):
        """Dominance must hold for every sample, not in expectation."""
        rng = np.random.default_rng(seed)
        points = rng.uniform(0, 50, size=(8, 2))
        metric = EuclideanMetric(points)
        embedding = build_hst(metric, rng=rng)
        assert embedding.dominates(metric)

    def test_non_euclidean_metric(self, rng):
        instance = random_tree_metric_instance(6, rng=rng)
        embedding = build_hst(instance.metric, rng=rng)
        assert embedding.dominates(instance.metric)
