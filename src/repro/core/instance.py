"""Problem instances: a metric space plus communication requests.

An :class:`Instance` bundles everything Section 1.1 fixes up front: the
metric, the request pairs ``(u_i, v_i)``, the path-loss exponent
``alpha``, the gain ``beta``, the ambient noise ``sigma`` and the
problem variant (:class:`Direction`).

Nodes are integer indices into the metric; requests are index pairs.
All hot-path data (link losses, distance matrices) is exposed as numpy
arrays.
"""

from __future__ import annotations

import enum
from typing import Sequence, Tuple, Union

import numpy as np

from repro.core.errors import InvalidInstanceError
from repro.geometry.metric import Metric


class Direction(enum.Enum):
    """Problem variant: which endpoints must decode (§1.1)."""

    DIRECTED = "directed"
    BIDIRECTIONAL = "bidirectional"


class Instance:
    """An interference scheduling instance.

    Parameters
    ----------
    metric:
        The host metric space.
    senders, receivers:
        Integer arrays of length ``n`` with the endpoints of each
        request.  In the bidirectional variant the labels "sender" and
        "receiver" are arbitrary but kept for a uniform representation.
    direction:
        :class:`Direction` or its string value.
    alpha:
        Path-loss exponent, ``alpha >= 1`` (footnote 1 of the paper).
    beta:
        Gain ``beta > 0`` of the SINR constraint.
    noise:
        Ambient noise ``sigma >= 0``; the paper's analysis uses 0.

    Raises
    ------
    InvalidInstanceError
        On malformed input, including requests whose two endpoints
        coincide (zero loss would make the SINR constraint undefined).
    """

    def __init__(
        self,
        metric: Metric,
        senders: Sequence[int],
        receivers: Sequence[int],
        direction: Union[Direction, str] = Direction.BIDIRECTIONAL,
        alpha: float = 3.0,
        beta: float = 1.0,
        noise: float = 0.0,
    ):
        senders_arr = np.asarray(senders, dtype=int).reshape(-1)
        receivers_arr = np.asarray(receivers, dtype=int).reshape(-1)
        if senders_arr.size != receivers_arr.size:
            raise InvalidInstanceError(
                f"senders ({senders_arr.size}) and receivers ({receivers_arr.size}) "
                "must have the same length"
            )
        if senders_arr.size == 0:
            raise InvalidInstanceError("instance must contain at least one request")
        if np.any(senders_arr < 0) or np.any(senders_arr >= metric.n):
            raise InvalidInstanceError("sender index out of range")
        if np.any(receivers_arr < 0) or np.any(receivers_arr >= metric.n):
            raise InvalidInstanceError("receiver index out of range")
        if isinstance(direction, str):
            direction = Direction(direction)
        if alpha < 1:
            raise InvalidInstanceError(f"alpha must be >= 1, got {alpha}")
        if not beta > 0:
            raise InvalidInstanceError(f"beta must be > 0, got {beta}")
        if noise < 0:
            raise InvalidInstanceError(f"noise must be >= 0, got {noise}")

        self.metric = metric
        self.senders = senders_arr.copy()
        self.receivers = receivers_arr.copy()
        self.senders.setflags(write=False)
        self.receivers.setflags(write=False)
        self.direction = direction
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.noise = float(noise)

        # pair_distances instead of a full-matrix gather: for
        # coordinate-backed metrics this keeps huge instances (the
        # sparse-backend regime, n >> 10^3) from materializing the
        # O(n^2) distance matrix just to resolve n link lengths.
        distances = metric.pair_distances(self.senders, self.receivers)
        if np.any(distances <= 0):
            bad = int(np.argmax(distances <= 0))
            raise InvalidInstanceError(
                f"request {bad} has zero distance between its endpoints"
            )
        self._link_distances = distances
        self._link_distances.setflags(write=False)
        self._link_losses = distances**self.alpha
        self._link_losses.setflags(write=False)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def directed(cls, metric: Metric, pairs: Sequence[Tuple[int, int]], **kwargs) -> "Instance":
        """Build a directed instance from ``(sender, receiver)`` pairs."""
        senders = [p[0] for p in pairs]
        receivers = [p[1] for p in pairs]
        return cls(metric, senders, receivers, direction=Direction.DIRECTED, **kwargs)

    @classmethod
    def bidirectional(cls, metric: Metric, pairs: Sequence[Tuple[int, int]], **kwargs) -> "Instance":
        """Build a bidirectional instance from endpoint pairs."""
        senders = [p[0] for p in pairs]
        receivers = [p[1] for p in pairs]
        return cls(metric, senders, receivers, direction=Direction.BIDIRECTIONAL, **kwargs)

    # ------------------------------------------------------------------
    # Derived data
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of requests."""
        return self.senders.size

    @property
    def link_distances(self) -> np.ndarray:
        """Distances ``d(u_i, v_i)`` of each request (read-only)."""
        return self._link_distances

    @property
    def link_losses(self) -> np.ndarray:
        """Losses ``l(u_i, v_i) = d(u_i, v_i)**alpha`` (read-only)."""
        return self._link_losses

    def pairs(self) -> list:
        """The request list as ``[(u_0, v_0), ...]``."""
        return list(zip(self.senders.tolist(), self.receivers.tolist()))

    def with_direction(self, direction: Union[Direction, str]) -> "Instance":
        """A copy of this instance in the other problem variant."""
        return Instance(
            self.metric,
            self.senders,
            self.receivers,
            direction=direction,
            alpha=self.alpha,
            beta=self.beta,
            noise=self.noise,
        )

    def with_gain(self, beta: float) -> "Instance":
        """A copy of this instance with a different gain ``beta``.

        The proof machinery of §3.1 constantly rescales the gain, so
        this is a first-class operation.
        """
        return Instance(
            self.metric,
            self.senders,
            self.receivers,
            direction=self.direction,
            alpha=self.alpha,
            beta=beta,
            noise=self.noise,
        )

    def subset(self, indices: Sequence[int]) -> "Instance":
        """The sub-instance restricted to the given request *indices*.

        The metric is shared; only the request list shrinks.
        """
        indices = np.asarray(indices, dtype=int).reshape(-1)
        if indices.size == 0:
            raise InvalidInstanceError("subset must contain at least one request")
        return Instance(
            self.metric,
            self.senders[indices],
            self.receivers[indices],
            direction=self.direction,
            alpha=self.alpha,
            beta=self.beta,
            noise=self.noise,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Instance(n={self.n}, direction={self.direction.value}, "
            f"alpha={self.alpha}, beta={self.beta}, noise={self.noise})"
        )
