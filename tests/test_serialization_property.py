"""Property-based round-trip tests for serialization."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import Schedule
from repro.instances.random_instances import random_uniform_instance
from repro.serialization import dumps, loads


class TestRoundTripProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 12))
    def test_instance_round_trip_preserves_sinr_data(self, seed, n):
        inst = random_uniform_instance(n, rng=seed)
        clone = loads(dumps(inst))
        assert clone.n == inst.n
        assert np.allclose(clone.link_losses, inst.link_losses, rtol=0, atol=0)
        assert np.allclose(
            clone.metric.distance_matrix(),
            inst.metric.distance_matrix(),
            rtol=0,
            atol=0,
        )

    @settings(max_examples=20, deadline=None)
    @given(
        colors=st.lists(st.integers(0, 5), min_size=1, max_size=15),
        seed=st.integers(0, 10_000),
    )
    def test_schedule_round_trip_exact(self, colors, seed):
        rng = np.random.default_rng(seed)
        powers = rng.uniform(0.1, 100.0, size=len(colors))
        schedule = Schedule(colors=np.asarray(colors), powers=powers)
        clone = loads(dumps(schedule))
        assert np.array_equal(clone.colors, schedule.colors)
        assert np.array_equal(clone.powers, schedule.powers)
        assert clone.num_colors == schedule.num_colors
