"""Property suite: arrival/departure streams vs. from-scratch rebuilds.

Two invariants, checked at *every step* of randomly generated
arrival/departure streams (shared-node and infinite-gain pairs
included — arrivals may reuse any metric node already serving a
request):

1. **Backend conformance.**  A dense session and a lossless
   (``epsilon=0``) sparse session replaying the identical stream hold
   bit-identical live colorings at every step — any bit drift in the
   grown sparse storage would flip an admission somewhere downstream.
2. **Cold-rebuild identity.**  For pure arrival streams the live
   kernel's coloring equals a brand-new session built cold on the
   grown instance (same admission order, cold-built context), so
   in-place context growth is observationally equal to a from-scratch
   rebuild after every batch.  With departures in the stream the
   rebuilt session replays the same arrivals/departures — history,
   not just the surviving set, determines first-fit colors.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Problem
from repro.core.instance import Instance
from repro.instances.random_instances import random_uniform_instance


def _base_instance(seed, n=4, metric_nodes=24):
    full = random_uniform_instance(metric_nodes // 2, rng=seed)
    return Instance(
        full.metric,
        full.senders[:n],
        full.receivers[:n],
        direction=full.direction,
        alpha=full.alpha,
    )


def _arrival_pairs(instance, rng, count):
    """Random pairs over the metric's nodes; reusing nodes of live
    requests (and hence creating infinite gains) is allowed."""
    pairs = []
    metric_size = instance.metric.n
    while len(pairs) < count:
        s = int(rng.integers(0, metric_size))
        r = int(rng.integers(0, metric_size))
        if s != r:
            pairs.append((s, r))
    return pairs


def _live_colors(session):
    session.ensure_live()
    active = sorted(h.uid for h in session.handles)
    return np.asarray(
        [session.color_of(uid) for uid in active], dtype=np.int64
    )


class TestArrivalStreams:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        batches=st.lists(st.integers(1, 4), min_size=1, max_size=5),
    )
    def test_growth_matches_cold_rebuild_every_step(self, seed, batches):
        rng = np.random.default_rng(seed)
        instance = _base_instance(seed)
        dense = Problem(instance, backend="dense").session()
        sparse = Problem(
            instance, backend="sparse", sparse_epsilon=0.0
        ).session()
        dense.ensure_live()
        sparse.ensure_live()

        for count in batches:
            pairs = _arrival_pairs(dense.instance, rng, count)
            dense.add_requests(pairs)
            sparse.add_requests(pairs)

            live = np.asarray(dense.ensure_live().colors)
            # (1) dense and lossless sparse agree bitwise.
            np.testing.assert_array_equal(
                live, np.asarray(sparse.ensure_live().colors)
            )
            # (2) the grown live kernel equals a cold build + fresh
            # admission pass on the grown instance.
            cold = Problem(dense.instance, backend="dense").session()
            np.testing.assert_array_equal(
                live, np.asarray(cold.ensure_live().colors)
            )
            # The live partition is feasible right now.
            dense.live_result().validate()


class TestArrivalDepartureStreams:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        ops=st.lists(
            st.tuples(
                st.sampled_from(["arrive", "depart"]), st.integers(1, 3)
            ),
            min_size=1,
            max_size=6,
        ),
    )
    def test_backends_conform_and_partition_stays_feasible(self, seed, ops):
        rng = np.random.default_rng(seed)
        instance = _base_instance(seed)
        dense = Problem(instance, backend="dense").session()
        sparse = Problem(
            instance, backend="sparse", sparse_epsilon=0.0
        ).session()
        dense.ensure_live()
        sparse.ensure_live()

        for op, count in ops:
            if op == "arrive":
                pairs = _arrival_pairs(dense.instance, rng, count)
                d_handles = dense.add_requests(pairs)
                s_handles = sparse.add_requests(pairs)
                assert [h.uid for h in d_handles] == [
                    h.uid for h in s_handles
                ]
            else:
                live = dense.handles
                if len(live) <= count:
                    continue  # keep at least one active request
                victims = rng.choice(len(live), size=count, replace=False)
                uids = [live[int(i)].uid for i in victims]
                dense.remove_requests(uids)
                sparse.remove_requests(uids)

            np.testing.assert_array_equal(
                _live_colors(dense), _live_colors(sparse)
            )
            dense.live_result().validate()
            assert dense.arrivals == sparse.arrivals
            assert dense.departures == sparse.departures

        # Compacting rebuild + batch reschedule equals the free
        # function on the surviving instance for both backends.
        dense.rebuild()
        sparse.rebuild()
        d_final = dense.schedule("first_fit")
        s_final = sparse.schedule("first_fit")
        np.testing.assert_array_equal(d_final.colors, s_final.colors)
        from repro.scheduling.firstfit import first_fit_schedule

        ref = first_fit_schedule(dense.instance, dense.powers)
        np.testing.assert_array_equal(d_final.colors, ref.colors)
