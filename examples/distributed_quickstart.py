#!/usr/bin/env python
"""The distributed data plane in five minutes.

Walks ``repro.distributed`` end to end: block-row gain shards that
never materialize the global matrix, the ``serial`` vs ``process``
shard executors, bit-identity of the sharded first-fit against the
dense reference, self-healing after a SIGKILLed shard worker, and the
genuinely distributed staging of the paper's random-access protocol.

Run:  python examples/distributed_quickstart.py [seed]
"""

import os
import signal
import sys

import numpy as np

from repro import Problem, distributed_protocol, random_uniform_instance
from repro.distributed import ShardedBackend, shard_bounds
from repro.power.oblivious import SquareRootPower


def main(seed: int = 0) -> None:
    instance = random_uniform_instance(64, rng=seed, direction="directed")
    powers = SquareRootPower()(instance)

    # -- block-row sharding --------------------------------------------
    # Each worker owns one contiguous block of gain-matrix rows; sizes
    # differ by at most one and no process ever holds the full matrix.
    bounds = shard_bounds(instance.n, workers=4)
    print(f"shard bounds for n={instance.n}, W=4: {bounds}")

    # -- sharded first-fit through the unified API ---------------------
    # backend="sharded" + workers/shard_executor; everything else —
    # algorithms, provenance, certification — is unchanged.
    dense = Problem(instance, backend="dense").session().schedule("first_fit")
    sharded = (
        Problem(instance, backend="sharded", workers=4,
                shard_executor="serial")
        .session()
        .schedule("first_fit")
        .validate()
    )
    assert np.array_equal(dense.schedule.colors, sharded.schedule.colors)
    print(f"sharded first-fit: {sharded.num_colors} colors "
          f"(bit-identical to dense), backend="
          f"{sharded.provenance.backend}, "
          f"certified={sharded.provenance.certified}")

    # -- real worker processes + self-healing --------------------------
    # The "process" executor gives every shard its own OS process; a
    # worker that dies is respawned from its deterministic payload and
    # the in-flight call replayed, bit-identical to a run that never
    # failed.
    backend = ShardedBackend.build(
        instance, powers, epsilon=0.0, workers=2, executor="process"
    )
    try:
        health = backend.worker_health()
        print("worker processes:",
              [(h["pid"], f"{h['peak_rss_mb']:.0f} MB") for h in health])
        reference = backend.dense_u()

        victim = health[0]["pid"]
        os.kill(victim, signal.SIGKILL)
        print(f"SIGKILLed worker {victim} ...")
        assert np.array_equal(reference, backend.dense_u())
        respawned = backend.worker_health()[0]["pid"]
        print(f"... respawned as {respawned}; results bit-identical")
    finally:
        backend.close()

    # -- the distributed random-access protocol (E11) ------------------
    # Node blocks with private RNG streams and backoff state, the
    # parent acting only as the shared channel.  Serial and process
    # stagings are bit-identical.
    schedule, stats = distributed_protocol(
        instance, workers=4, executor="serial", seed=seed
    )
    schedule.validate(instance)
    print(f"protocol: {schedule.num_colors} colors in {stats.slots} slots "
          f"({stats.attempts_per_success:.2f} attempts per success)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 0)
