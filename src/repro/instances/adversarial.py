"""The Theorem 1 lower-bound families (directed variant, on the line).

Theorem 1: for *every* oblivious power function ``f`` there is a family
of ``n`` directed requests on the line that needs Omega(n) colors under
``f`` while an optimal (non-oblivious) assignment schedules it in O(1)
colors.

The proof sketch constructs the family adaptively from ``f`` for
asymptotically unbounded ``f``; bounded functions (e.g. uniform) are
handled by a growing-chain instance.  Both constructions are
implemented here, together with :func:`lower_bound_instance_for` which
dispatches on the behaviour of ``f``.

Layout of the adaptive family (all on the line, left to right)::

    u_1 --x_1-- v_1 --y_2-- u_2 --x_2-- v_2 --y_3-- u_3 ...

with gaps ``y_i = 2 (x_{i-1} + y_{i-1})`` and link lengths ``x_i``
chosen so that ``f`` applied to link ``i`` drowns every earlier link:
``f(x_i^alpha) >= kappa * y_i^alpha * f(x_j^alpha) / x_j^alpha`` for
all ``j < i``.  Any color class S then satisfies ``|S| = O(1)``: the
pair with the smallest index in S receives interference at least
``kappa / (4 y_i)^alpha * y_i^alpha = kappa / 4^alpha`` times its own
signal from every other member.

Because link lengths can grow doubly exponentially (e.g. for the
square-root function), instances may exceed float range quickly; the
constructors raise :class:`ConstructionOverflowError` instead of
silently producing infinities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.errors import ReproError
from repro.core.instance import Instance
from repro.geometry.line import LineMetric
from repro.power.base import ObliviousPowerAssignment


class ConstructionOverflowError(ReproError, OverflowError):
    """The adversarial construction left double-precision range."""


class BoundedFunctionError(ReproError, ValueError):
    """The adaptive construction detected that ``f`` appears bounded
    (use :func:`growing_chain_instance` instead)."""


#: Distances beyond this leave reliable double range once raised to alpha.
_MAX_COORDINATE = 1e60


@dataclass
class AdversarialInstance:
    """An adversarial lower-bound instance plus its construction data.

    Attributes
    ----------
    instance:
        The directed :class:`~repro.core.instance.Instance` on the line.
    link_lengths:
        The ``x_i`` values.
    gaps:
        The ``y_i`` values (``gaps[0]`` is 0 by convention).
    """

    instance: Instance
    link_lengths: np.ndarray
    gaps: np.ndarray


def _evaluate_power(assignment: ObliviousPowerAssignment, distance: float, alpha: float) -> float:
    """Power ``f(distance**alpha)`` of a single link, as a float."""
    loss = float(distance) ** alpha
    if not math.isfinite(loss):
        raise ConstructionOverflowError(f"loss overflow at distance {distance:g}")
    value = float(np.asarray(assignment.power_of_loss(np.asarray([loss])))[0])
    if not value > 0 or not math.isfinite(value):
        raise ConstructionOverflowError(
            f"power function returned non-positive/non-finite value {value!r}"
        )
    return value


def appears_unbounded(
    power: ObliviousPowerAssignment,
    alpha: float,
    growth_required: float = 1e6,
    probe_max_exponent: int = 180,
) -> bool:
    """Probe whether the oblivious function looks asymptotically unbounded.

    Evaluates ``f`` on link lengths ``2^k`` for ``k = 0 .. probe_max_exponent``
    and reports whether the supremum exceeds the value at small arguments
    by *growth_required*.  The Theorem 1 adaptive construction only
    applies to unbounded functions; bounded ones (e.g. uniform power)
    are handled by the growing chain.
    """
    small = _evaluate_power(power, 1.0, alpha)
    best = small
    for k in range(1, probe_max_exponent + 1):
        x = 2.0**k
        if x**alpha > 1e300:
            break
        best = max(best, _evaluate_power(power, x, alpha))
        if best >= growth_required * small:
            return True
    return False


def adaptive_lower_bound_instance(
    power: ObliviousPowerAssignment,
    n: int,
    alpha: float = 3.0,
    beta: float = 1.0,
    kappa: float = 1.0,
    first_link: float = 1.0,
    search_doublings: int = 400,
) -> AdversarialInstance:
    """The Theorem 1 adaptive construction for an unbounded ``f``.

    Parameters
    ----------
    power:
        The oblivious assignment whose function ``f`` the construction
        is tailored against.
    n:
        Number of requests.
    kappa:
        Safety factor in the drowning condition (>= 1 strengthens the
        bound; the paper uses 1).
    first_link:
        Length ``x_1`` of the first link.
    search_doublings:
        How many doublings to try when searching for a large enough
        ``x_i``; if exceeded, ``f`` is deemed bounded and
        :class:`BoundedFunctionError` is raised.

    Raises
    ------
    ConstructionOverflowError
        If coordinates leave double range before reaching ``n`` links.
    BoundedFunctionError
        If the search cannot satisfy the drowning condition.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if kappa < 1:
        raise ValueError("kappa must be >= 1")
    if not appears_unbounded(power, alpha):
        raise BoundedFunctionError(
            "power function appears bounded; the adaptive construction "
            "requires an asymptotically unbounded f "
            "(use growing_chain_instance)"
        )
    xs: List[float] = [float(first_link)]
    ys: List[float] = [0.0]
    # ratio_j = f(x_j) / x_j^alpha tracks the signal strength of link j
    # at unit power scale; the drowning condition compares against its
    # maximum.
    max_ratio = _evaluate_power(power, xs[0], alpha) / xs[0] ** alpha

    for _ in range(1, n):
        y = 2.0 * (xs[-1] + ys[-1])
        if y > _MAX_COORDINATE:
            raise ConstructionOverflowError(
                f"gap {y:g} exceeds coordinate budget after {len(xs)} links"
            )
        target = kappa * y**alpha * max_ratio
        # Search the smallest power-of-two multiple of y whose power
        # meets the target (x_i >= y_i keeps the optimal-schedule
        # structure of the proof).
        x = y
        found = False
        for _ in range(search_doublings):
            if x > _MAX_COORDINATE:
                raise ConstructionOverflowError(
                    f"link length {x:g} exceeds coordinate budget after {len(xs)} links"
                )
            if _evaluate_power(power, x, alpha) >= target:
                found = True
                break
            x *= 2.0
        if not found:
            raise BoundedFunctionError(
                f"could not satisfy the drowning condition within "
                f"{search_doublings} doublings; f appears bounded "
                f"(use growing_chain_instance)"
            )
        xs.append(x)
        ys.append(y)
        max_ratio = max(max_ratio, _evaluate_power(power, x, alpha) / x**alpha)

    return _assemble(xs, ys, alpha, beta)


def growing_chain_instance(
    n: int,
    alpha: float = 3.0,
    beta: float = 1.0,
    growth: float = 2.0,
    gap_fraction: float = 1.0,
) -> AdversarialInstance:
    """A growing chain that defeats *bounded* oblivious functions.

    Links of length ``x_i = growth**i`` are laid out left to right with
    gaps ``y_i = gap_fraction * x_{i-1}``.  Under any oblivious ``f``
    whose values on the occurring losses span a bounded ratio (e.g.
    uniform power), the longest link in a color class receives
    interference at least a constant fraction of its signal from every
    other class member, forcing O(1)-size classes and hence Omega(n)
    colors — while a geometric (non-oblivious) assignment schedules the
    chain in O(1) colors.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if growth <= 1:
        raise ValueError("growth must be > 1")
    if gap_fraction <= 0:
        raise ValueError("gap_fraction must be > 0")
    if (n - 1) * alpha * math.log(growth) > math.log(1e300):
        raise ConstructionOverflowError(
            f"loss of the longest link (growth**{(n - 1) * alpha:g}) overflows"
        )
    xs = [float(growth**i) for i in range(n)]
    ys = [0.0] + [gap_fraction * xs[i - 1] for i in range(1, n)]
    return _assemble(xs, ys, alpha, beta)


def lower_bound_instance_for(
    power: ObliviousPowerAssignment,
    n: int,
    alpha: float = 3.0,
    beta: float = 1.0,
    kappa: float = 1.0,
) -> AdversarialInstance:
    """Dispatch: adaptive construction, falling back to the growing
    chain when ``f`` is (detected to be) bounded."""
    try:
        return adaptive_lower_bound_instance(power, n, alpha=alpha, beta=beta, kappa=kappa)
    except BoundedFunctionError:
        return growing_chain_instance(n, alpha=alpha, beta=beta)


def _assemble(xs: List[float], ys: List[float], alpha: float, beta: float) -> AdversarialInstance:
    """Lay the links out on the line and build the directed instance."""
    coordinates: List[float] = []
    pairs = []
    position = 0.0
    for i, (x, y) in enumerate(zip(xs, ys)):
        position += y
        sender_index = len(coordinates)
        coordinates.append(position)  # u_i
        position += x
        coordinates.append(position)  # v_i
        pairs.append((sender_index, sender_index + 1))
    metric = LineMetric(coordinates)
    instance = Instance.directed(metric, pairs, alpha=alpha, beta=beta)
    return AdversarialInstance(
        instance=instance,
        link_lengths=np.asarray(xs),
        gaps=np.asarray(ys),
    )
