"""Deterministic fault-injection harness semantics.

The whole resilience suite leans on FaultPlan firing at exactly the
occurrence it was told to — these tests pin that contract down.
"""

import pickle

import pytest

from repro.resilience import FaultPlan
from repro.resilience.faults import (
    FaultSpec,
    InjectedFault,
    fault_points,
)


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(site="shard", kind="explode")

    def test_rejects_negative_occurrence(self):
        with pytest.raises(ValueError, match=">= 0"):
            FaultSpec(site="shard", at=(-1,))

    def test_delay_requires_duration(self):
        with pytest.raises(ValueError, match="delay_s"):
            FaultSpec(site="shard", kind="delay")

    def test_matching(self):
        spec = FaultSpec(site="session", key="a", phase="p", at=(1, 3))
        assert spec.matches("session", "a", "p", 1)
        assert spec.matches("session", "a", "p", 3)
        assert not spec.matches("session", "a", "p", 2)
        assert not spec.matches("session", "b", "p", 1)
        assert not spec.matches("session", "a", "q", 1)
        assert not spec.matches("shard", "a", "p", 1)

    def test_wildcards(self):
        spec = FaultSpec(site="session", at=(0,))
        assert spec.matches("session", "anything", "any-phase", 0)


class TestFaultPlan:
    def test_counter_advances_per_point(self):
        plan = FaultPlan(
            specs=(FaultSpec(site="s", key="k", at=(1,)),)
        )
        plan.fire("s", key="k")  # occurrence 0: no match
        with pytest.raises(InjectedFault, match="occurrence=1"):
            plan.fire("s", key="k")
        assert plan.fired == 1

    def test_counters_are_independent_per_key(self):
        plan = FaultPlan(specs=(FaultSpec(site="s", key="b", at=(0,)),))
        plan.fire("s", key="a")  # other key: counts separately, no fire
        with pytest.raises(InjectedFault):
            plan.fire("s", key="b")

    def test_explicit_index_bypasses_counters(self):
        plan = FaultPlan(specs=(FaultSpec(site="shard", at=(2,)),))
        plan.fire("shard", key="k", index=0)
        plan.fire("shard", key="k", index=1)
        with pytest.raises(InjectedFault):
            plan.fire("shard", key="k", index=2)
        # Explicit indices never touched the counter state.
        assert plan.counts == {}

    def test_reset_replays_identically(self):
        plan = FaultPlan(specs=(FaultSpec(site="s", at=(1,)),))

        def run():
            events = []
            for _ in range(3):
                try:
                    plan.fire("s")
                    events.append("ok")
                except InjectedFault:
                    events.append("fault")
            return events

        first = run()
        plan.reset()
        assert run() == first == ["ok", "fault", "ok"]

    def test_delay_kind_sleeps(self, monkeypatch):
        import repro.resilience.faults as faults_mod

        slept = []
        monkeypatch.setattr(faults_mod.time, "sleep", slept.append)
        plan = FaultPlan(
            specs=(FaultSpec(site="s", kind="delay", delay_s=1.5),)
        )
        plan.fire("s")
        assert slept == [1.5]

    def test_seeded_is_deterministic(self):
        a = FaultPlan.seeded(7, "shard", occurrences=3, horizon=16)
        b = FaultPlan.seeded(7, "shard", occurrences=3, horizon=16)
        assert a.specs == b.specs
        at = a.specs[0].at
        assert len(at) == 3 == len(set(at))
        assert all(0 <= i < 16 for i in at)
        assert FaultPlan.seeded(8, "shard", occurrences=3, horizon=16).specs != a.specs

    def test_seeded_validation(self):
        with pytest.raises(ValueError, match="occurrences"):
            FaultPlan.seeded(1, "s", occurrences=0)
        with pytest.raises(ValueError, match="horizon"):
            FaultPlan.seeded(1, "s", occurrences=5, horizon=4)

    def test_plan_is_picklable(self):
        plan = FaultPlan(specs=(FaultSpec(site="shard", at=(0,)),))
        plan.fire("other-site")  # populate counter state
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.specs == plan.specs
        assert clone.counts == plan.counts

    def test_fault_points_summary(self):
        specs = (
            FaultSpec(site="shard", key="e1:0", at=(0, 2), kind="kill"),
            FaultSpec(site="session", phase="add_requests:pre"),
        )
        assert fault_points(specs) == [
            "shard:e1:0:*@0,2->kill",
            "session:*:add_requests:pre@0->raise",
        ]
