"""Machine-readable benchmark artifacts (``BENCH_<experiment>.json``).

Every orchestrator run can persist, per experiment, one JSON artifact
holding the merged result table, per-shard timings/seeds/sizes and the
summary quality metrics.  CI uploads these files as workflow artifacts
so the performance trajectory of the repo is diffable run over run
instead of being asserted in prose.

Schema (``format_version`` 1)::

    {
      "format_version": 1,
      "kind": "bench",
      "experiment": "e3",
      "title": "Theorem 2 universality",
      "mode": "fast" | "full" (or a benchmark-defined label, e.g. "smoke"),
      "table": {<repro.serialization table payload>},
      "shards": [
        {"key": "n=10", "seed": 123..., "rows": 3, "seconds": 0.41,
         "attempts": 1, "resumed": false},
        ...
      ],
      "failures": [
        {"key": "n=20", "shard_index": 1, "seed": 456...,
         "error_type": "InjectedFault", "error": "...", "attempts": 3},
        ...
      ],
      "timings": {"run_wall_seconds": 1.3, "total_shard_seconds": 2.2},
      "metrics": {"rows": 9, "ratio_mean": 1.4, ...},
      "env": {"jobs": 4, "backend": "dense", "algorithms": ["first_fit"]}
    }

``env.backend`` names the gain backend the experiment ran on
(``"dense"``/``"sparse"``, see :mod:`repro.core.gains`); artifacts
written before the backend split are read back as ``"dense"``.
``env.algorithms`` lists the registry algorithms the experiment
declares (:attr:`repro.runner.spec.ExperimentSpec.algorithms`); older
artifacts read back with an empty tuple.  ``shards[*].attempts`` /
``shards[*].resumed`` and the top-level ``failures`` list (quarantined
shards, see :class:`repro.resilience.ShardFailure`) arrived with the
fault-tolerant runner; artifacts written before it read back with
``attempts=1``, ``resumed=False`` and no failures.  All artifact and
checkpoint writes are atomic (temp file + ``os.replace``), so readers
never observe a truncated file.

``run_wall_seconds`` is the wall time from the start of the
orchestrator run until this experiment's results were complete (the
orchestrator reports experiments as they finish);
``total_shard_seconds`` sums this experiment's own shard times and is
the per-experiment number to diff run over run.  Everything outside
``timings``/``env`` (and the per-shard ``seconds``) is deterministic
for a given spec and mode; comparing the ``table`` sections of two
artifacts is the supported way to assert result identity across worker
counts.  Artifacts are strict JSON: non-finite table cells are encoded
as ``{"$float": "Infinity" | "-Infinity" | "NaN"}`` wrappers (see
:mod:`repro.serialization`).
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.resilience.policy import ShardFailure
from repro.serialization import (
    FORMAT_VERSION,
    SerializationError,
    table_from_dict,
    table_to_dict,
)
from repro.util.tables import Table


@dataclass
class ShardResult:
    """Outcome of one executed shard."""

    key: str
    seed: Optional[int]
    rows: int
    seconds: float
    #: Attempts the shard consumed (1 = first try succeeded).
    attempts: int = 1
    #: ``True`` when the result was loaded from a checkpoint of an
    #: earlier, interrupted run instead of being re-executed.
    resumed: bool = False


@dataclass
class BenchReport:
    """In-memory form of one ``BENCH_*.json`` artifact."""

    experiment: str
    title: str
    mode: str
    table: Table
    shards: List[ShardResult] = field(default_factory=list)
    run_wall_seconds: float = 0.0
    jobs: int = 1
    metric: Optional[str] = None
    backend: str = "dense"
    #: Registry algorithm names the experiment declares it exercises
    #: (see :attr:`repro.runner.spec.ExperimentSpec.algorithms`).
    algorithms: Tuple[str, ...] = ()
    #: Shards quarantined after exhausting their retry budget (see
    #: :class:`repro.resilience.RetryPolicy`); the merged table holds
    #: only the healthy shards' rows.  Older artifacts read back empty.
    failures: List[ShardFailure] = field(default_factory=list)

    @property
    def total_shard_seconds(self) -> float:
        return float(sum(shard.seconds for shard in self.shards))

    def metrics(self) -> Dict[str, Union[int, float]]:
        """Summary metrics: row count plus metric mean/min/max."""
        summary: Dict[str, Union[int, float]] = {"rows": len(self.table)}
        if self.metric is None or self.metric not in self.table.columns:
            return summary
        values = [
            float(v)
            for v in self.table.column(self.metric)
            if isinstance(v, (int, float)) and math.isfinite(float(v))
        ]
        if values:
            summary[f"{self.metric}_mean"] = sum(values) / len(values)
            summary[f"{self.metric}_min"] = min(values)
            summary[f"{self.metric}_max"] = max(values)
        return summary


def bench_to_dict(report: BenchReport) -> Dict[str, Any]:
    """Serializable dictionary for *report* (schema above)."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "bench",
        "experiment": report.experiment,
        "title": report.title,
        "mode": report.mode,
        "metric_column": report.metric,
        "table": table_to_dict(report.table),
        "shards": [
            {
                "key": shard.key,
                "seed": shard.seed,
                "rows": shard.rows,
                "seconds": shard.seconds,
                "attempts": shard.attempts,
                "resumed": shard.resumed,
            }
            for shard in report.shards
        ],
        "failures": [failure.to_dict() for failure in report.failures],
        "timings": {
            "run_wall_seconds": report.run_wall_seconds,
            "total_shard_seconds": report.total_shard_seconds,
        },
        "metrics": report.metrics(),
        "env": {
            "jobs": report.jobs,
            "backend": report.backend,
            "algorithms": list(report.algorithms),
        },
    }


def bench_from_dict(payload: Dict[str, Any]) -> BenchReport:
    """Rebuild a :class:`BenchReport` from :func:`bench_to_dict` output."""
    if payload.get("kind") != "bench":
        raise SerializationError("payload is not a bench artifact")
    if payload.get("format_version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {payload.get('format_version')!r}"
        )
    report = BenchReport(
        experiment=payload["experiment"],
        title=payload["title"],
        mode=payload["mode"],
        table=table_from_dict(payload["table"]),
        shards=[
            ShardResult(
                key=shard["key"],
                seed=shard["seed"],
                rows=shard["rows"],
                seconds=shard["seconds"],
                attempts=int(shard.get("attempts", 1)),
                resumed=bool(shard.get("resumed", False)),
            )
            for shard in payload.get("shards", [])
        ],
        failures=[
            ShardFailure.from_dict(entry)
            for entry in payload.get("failures", [])
        ],
        run_wall_seconds=payload.get("timings", {}).get(
            "run_wall_seconds", 0.0
        ),
        jobs=payload.get("env", {}).get("jobs", 1),
        metric=payload.get("metric_column"),
        backend=payload.get("env", {}).get("backend", "dense"),
        algorithms=tuple(payload.get("env", {}).get("algorithms", ())),
    )
    return report


def artifact_path(directory: Union[str, pathlib.Path], experiment: str) -> pathlib.Path:
    """``<directory>/BENCH_<experiment>.json``."""
    return pathlib.Path(directory) / f"BENCH_{experiment}.json"


def atomic_write_text(path: pathlib.Path, text: str) -> None:
    """Write *text* to *path* atomically.

    The payload goes to a temporary file **in the same directory**
    (same filesystem, so the final ``os.replace`` is atomic); readers
    therefore only ever observe either the previous complete file or
    the new complete file.  A crash — even ``SIGKILL`` — mid-write
    leaves at worst a stray ``*.tmp`` file, never a truncated artifact.
    """
    path = pathlib.Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def write_artifact(
    directory: Union[str, pathlib.Path], report: BenchReport
) -> pathlib.Path:
    """Write *report* under *directory* (created if missing).

    The write is atomic (temp file + ``os.replace``): an interrupted
    run never leaves a truncated or half-serialized ``BENCH_*.json``.
    """
    path = artifact_path(directory, report.experiment)
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(
        path,
        json.dumps(bench_to_dict(report), indent=2, allow_nan=False) + "\n",
    )
    return path


def read_artifact(path: Union[str, pathlib.Path]) -> BenchReport:
    """Load one ``BENCH_*.json`` artifact."""
    payload = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    return bench_from_dict(payload)


def validate_artifacts_dir(directory: Union[str, pathlib.Path]) -> pathlib.Path:
    """Fail fast if *directory* cannot hold artifacts.

    Creates the directory (parents included) and round-trips a probe
    file through the same atomic-replace path artifacts use.  Called by
    :func:`repro.runner.orchestrator.run_experiments` **before any
    shard is submitted**, so an unusable output location surfaces as an
    immediate, clearly worded error instead of a crash after hours of
    compute at the first write.
    """
    path = pathlib.Path(directory)
    try:
        path.mkdir(parents=True, exist_ok=True)
        probe = path / f".write-probe-{os.getpid()}"
        atomic_write_text(probe, "probe\n")
        probe.unlink()
    except OSError as exc:
        raise ValueError(
            f"artifacts_dir {str(directory)!r} is not a writable directory "
            f"({exc}); fix the path/permissions before launching the run"
        ) from exc
    return path


# ----------------------------------------------------------------------
# Shard checkpoints (interrupted-run resume)
# ----------------------------------------------------------------------
#
# Completed shard tables persist under
# ``<artifacts_dir>/.checkpoints/<experiment>/shard_<k>.json`` so an
# interrupted run restarts only its unfinished shards.  Per-shard
# seeding is derived from the spec alone, so a resumed run's merged
# table is bit-identical to an uninterrupted one.  Checkpoints are
# deleted once the experiment's final artifact is written.


def checkpoint_dir(
    directory: Union[str, pathlib.Path], experiment: str
) -> pathlib.Path:
    """``<directory>/.checkpoints/<experiment>``."""
    return pathlib.Path(directory) / ".checkpoints" / experiment


def checkpoint_path(
    directory: Union[str, pathlib.Path], experiment: str, shard_index: int
) -> pathlib.Path:
    """The checkpoint file for one shard."""
    return checkpoint_dir(directory, experiment) / f"shard_{shard_index}.json"


def write_checkpoint(
    directory: Union[str, pathlib.Path],
    experiment: str,
    shard_index: int,
    key: str,
    seed: Optional[int],
    table: Table,
    seconds: float,
    attempts: int = 1,
    backend: Optional[str] = None,
) -> pathlib.Path:
    """Atomically persist one completed shard's table.

    *backend* is the resolved execution-backend tag of the run (e.g.
    ``"sparse"``, ``"array:numpy"``); it becomes part of the staleness
    key so a resume under a different ``--backend`` re-runs the shard
    instead of splicing in tables computed on another backend.
    """
    path = checkpoint_path(directory, experiment, shard_index)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format_version": FORMAT_VERSION,
        "kind": "shard_checkpoint",
        "experiment": experiment,
        "shard_index": shard_index,
        "key": key,
        "seed": seed,
        "backend": backend,
        "seconds": seconds,
        "attempts": attempts,
        "table": table_to_dict(table),
    }
    atomic_write_text(
        path, json.dumps(payload, indent=2, allow_nan=False) + "\n"
    )
    return path


def read_checkpoint(
    directory: Union[str, pathlib.Path],
    experiment: str,
    shard_index: int,
    key: str,
    seed: Optional[int],
    backend: Optional[str] = None,
) -> Optional[Tuple[Table, float, int]]:
    """Load a shard checkpoint, or ``None`` when absent or stale.

    A checkpoint only resumes when its recorded ``(experiment, key,
    seed, backend)`` matches the current spec's shard — a spec or
    ``--backend`` change between runs silently invalidates old
    checkpoints instead of splicing mismatched rows into the merged
    table (shard tables can legitimately differ across backends, e.g.
    under sparse pruning).  Checkpoints written before the backend tag
    existed carry ``backend = null`` and therefore also re-run.
    Unreadable/corrupt files are likewise treated as absent (the shard
    simply re-runs).
    """
    path = checkpoint_path(directory, experiment, shard_index)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if (
        payload.get("kind") != "shard_checkpoint"
        or payload.get("format_version") != FORMAT_VERSION
        or payload.get("experiment") != experiment
        or payload.get("key") != key
        or payload.get("seed") != seed
        or payload.get("backend") != backend
    ):
        return None
    try:
        table = table_from_dict(payload["table"])
    except (KeyError, SerializationError):
        return None
    return (
        table,
        float(payload.get("seconds", 0.0)),
        int(payload.get("attempts", 1)),
    )


def clear_checkpoints(
    directory: Union[str, pathlib.Path], experiment: str
) -> None:
    """Drop an experiment's checkpoint directory (after its final
    artifact landed)."""
    target = checkpoint_dir(directory, experiment)
    if not target.is_dir():
        return
    for entry in target.glob("*.json"):
        try:
            entry.unlink()
        except OSError:
            pass
    try:
        target.rmdir()
    except OSError:
        pass
