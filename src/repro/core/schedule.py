"""Schedule representation: a coloring plus a power assignment.

A :class:`Schedule` is the output of every algorithm in
:mod:`repro.scheduling`: an integer color per request (colors are the
paper's time slots) and a positive power per request.  Validation
against an instance checks both structure and SINR feasibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.errors import InvalidScheduleError
from repro.core.feasibility import DEFAULT_RTOL, is_feasible_partition, sinr_margins
from repro.core.instance import Instance


@dataclass
class Schedule:
    """A coloring and power assignment for an instance.

    Attributes
    ----------
    colors:
        Integer array of length ``n``; colors are ``0 .. k-1`` (the
        paper's ``[k]``, shifted to 0-based).
    powers:
        Positive float array of length ``n``.
    """

    colors: np.ndarray
    powers: np.ndarray

    def __post_init__(self) -> None:
        self.colors = np.asarray(self.colors, dtype=int).reshape(-1)
        self.powers = np.asarray(self.powers, dtype=float).reshape(-1)
        if self.colors.shape != self.powers.shape:
            raise InvalidScheduleError(
                f"colors ({self.colors.shape}) and powers ({self.powers.shape}) "
                "must have the same length"
            )
        if self.colors.size == 0:
            raise InvalidScheduleError("schedule must cover at least one request")
        if np.any(self.colors < 0):
            raise InvalidScheduleError("colors must be non-negative")
        if np.any(self.powers <= 0):
            raise InvalidScheduleError("powers must be strictly positive")

    @property
    def n(self) -> int:
        """Number of scheduled requests."""
        return self.colors.size

    @property
    def num_colors(self) -> int:
        """Number of distinct colors (the schedule length)."""
        return int(np.unique(self.colors).size)

    def color_classes(self) -> Dict[int, np.ndarray]:
        """Mapping ``color -> array of request indices``."""
        classes: Dict[int, np.ndarray] = {}
        for color in np.unique(self.colors):
            classes[int(color)] = np.flatnonzero(self.colors == color)
        return classes

    def compacted(self) -> "Schedule":
        """A copy with colors relabelled to ``0 .. k-1`` densely."""
        _, dense = np.unique(self.colors, return_inverse=True)
        return Schedule(colors=dense, powers=self.powers.copy())

    def total_energy(self) -> float:
        """Sum of power levels — the §6 energy-efficiency measure."""
        return float(np.sum(self.powers))

    def validate(
        self,
        instance: Instance,
        beta: Optional[float] = None,
        noise: Optional[float] = None,
        rtol: float = DEFAULT_RTOL,
    ) -> None:
        """Raise :class:`InvalidScheduleError` unless this schedule is
        SINR-feasible for *instance*."""
        if self.n != instance.n:
            raise InvalidScheduleError(
                f"schedule covers {self.n} requests, instance has {instance.n}"
            )
        if not is_feasible_partition(
            instance, self.powers, self.colors, beta=beta, noise=noise, rtol=rtol
        ):
            margins = sinr_margins(
                instance, self.powers, colors=self.colors, beta=beta, noise=noise
            )
            worst = int(np.argmin(margins))
            raise InvalidScheduleError(
                f"SINR constraint violated, e.g. request {worst} has margin "
                f"{margins[worst]:.4g} (< 1)"
            )

    def is_feasible(
        self,
        instance: Instance,
        beta: Optional[float] = None,
        noise: Optional[float] = None,
        rtol: float = DEFAULT_RTOL,
    ) -> bool:
        """``True`` iff :meth:`validate` would pass."""
        try:
            self.validate(instance, beta=beta, noise=noise, rtol=rtol)
        except InvalidScheduleError:
            return False
        return True


def build_schedule(
    colors: np.ndarray,
    powers: np.ndarray,
    copy_powers: bool = True,
) -> Schedule:
    """The shared constructor for scheduler outputs.

    Every scheduler (engine, kernel and legacy paths alike) routes its
    result through here so dtype/shape normalization and the structural
    checks of :class:`Schedule` run exactly once, and so the emitted
    schedule never aliases a caller-owned power array
    (``copy_powers=True``, the default, takes a defensive copy; pass
    ``False`` only when the array is already private to the caller).

    The colors are always copied into a fresh writable array — some
    producers (e.g. :class:`repro.core.kernels.ScheduleKernel`) hand
    over read-only views, and the emitted schedule must be mutable and
    independent of the producer's internal state either way.
    """
    colors = np.array(colors, dtype=int).reshape(-1)
    powers = np.asarray(powers, dtype=float).reshape(-1)
    if copy_powers:
        powers = powers.copy()
    return Schedule(colors=colors, powers=powers)
