"""E13 — regenerate the exact-OPT certification table."""

from repro.experiments import run_exact_certification


def test_e13_exact_certification(benchmark, save_table):
    table = benchmark.pedantic(
        run_exact_certification,
        kwargs=dict(n_values=(6, 8, 10), trials=3, rng=81),
        rounds=1,
        iterations=1,
    )
    save_table("e13_exact_certification", table)
    for row in table.rows:
        assert row["first_fit_factor"] >= 1.0 - 1e-9
        assert row["peeling_factor"] >= 1.0 - 1e-9
        assert row["exact_free_opt"] <= row["exact_opt"] + 1e-9