"""Benchmark: first-fit over distributed gain shards at n = 131072.

The sharded backend exists to pass the memory wall the single-process
backends stop at: a dense gain matrix at n = 131072 would cost ~137 GB
and even the ε-pruned sparse CSR must be built from O(n²) gain
evaluations in one address space.  ``repro.distributed`` splits each
endpoint matrix into ``W`` block rows, builds them **in parallel
worker processes** that never materialize (or even see) the other
blocks, and answers backend queries by halo exchange — so the binding
constraint becomes per-worker memory, which this benchmark measures
and gates.

Workloads:

* conformance — first-fit on the sharded backend (``--conf-workers``
  serial shards, ε=0) at ``--conf-n`` must emit the *identical*
  schedule to the dense backend (hard failure otherwise);
* headline — first-fit at ``--n`` (default 131072) over ``--workers``
  (default 8) process shards at ``BENCH_EPSILON``, driven by the
  windowed admission loop
  (:func:`repro.core.kernels.first_fit_colors_sharded`, one column
  round trip per ``--window`` admissions).

Gates (exit non-zero on violation):

* the headline run must complete (build + schedule);
* every worker's peak RSS (``worker_health()``, measured inside the
  worker process) must stay within ``--rss-budget-mb`` (default 2048);
* the conformance schedule must match dense bit for bit.

Shard builds assemble dense scratch ``--tile-rows`` × n at a time;
smaller tiles trade build speed for per-worker peak RSS.  Tiling never
changes bits (per-row pairwise sums, per-row pruning), so the knob is
safe to tune per machine.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_distributed.py
    PYTHONPATH=src python benchmarks/bench_distributed.py \
        --n 4096 --workers 4 --conf-n 512 --artifacts out/

The committed seed artifact
(``benchmarks/artifacts/BENCH_distributed.json``) holds the full-size
reference run for this container; CI re-runs the reduced size.
"""

from __future__ import annotations

import argparse
import resource
import sys
import time

import numpy as np

#: Pruning budget for the headline run (same as bench_backends).
BENCH_EPSILON = 0.05


def _make_instance(n: int, seed: int):
    """Constant-density random geometric instance (directed) — the
    same scaling family as ``bench_backends.py``."""
    from repro.instances.random_instances import random_uniform_instance

    side = 2.0 * float(np.sqrt(n))
    return random_uniform_instance(
        n,
        side=side,
        max_link_fraction=min(1.0, 4.0 / side),
        direction="directed",
        rng=seed,
    )


def _parent_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _sharded_first_fit(
    instance,
    powers,
    epsilon: float,
    workers: int,
    executor: str,
    tile_rows: int,
    window: int,
):
    """Build the sharded backend and run windowed first-fit on it.

    Returns a result dict with timings, colors, per-worker health and
    backend stats.  The context is assembled around the explicitly
    tuned backend (tile_rows is a build knob, not a context key — it
    never changes bits)."""
    from repro.core.context import InterferenceContext
    from repro.core.kernels import first_fit_colors_sharded
    from repro.distributed import ShardedBackend

    build_start = time.perf_counter()
    backend = ShardedBackend.build(
        instance,
        powers,
        epsilon=epsilon,
        workers=workers,
        executor=executor,
        tile_rows=tile_rows,
    )
    build_seconds = time.perf_counter() - build_start
    try:
        context = InterferenceContext(
            instance,
            powers,
            backend="sharded",
            sparse_epsilon=epsilon,
            shard_workers=workers,
            shard_executor=executor,
        )
        context._backend = backend
        order = np.argsort(-instance.link_distances, kind="stable")
        limits = context.budgets() * (1.0 + 1e-9)
        schedule_start = time.perf_counter()
        colors = first_fit_colors_sharded(
            context, order, limits, window=window
        )
        schedule_seconds = time.perf_counter() - schedule_start
        health = backend.worker_health()
        return {
            "build_seconds": build_seconds,
            "schedule_seconds": schedule_seconds,
            "seconds": build_seconds + schedule_seconds,
            "colors": int(colors.max()) + 1,
            "schedule_colors": colors.tolist(),
            "worker_rss_mb": [h["peak_rss_mb"] for h in health],
            "worker_pids": [h["pid"] for h in health],
            "nnz": backend.nnz,
            "density": backend.density,
            "gain_bytes": backend.nbytes,
        }
    finally:
        backend.close()


def _dense_first_fit(instance, powers):
    from repro.core.gains import backend_scope
    from repro.scheduling.firstfit import first_fit_schedule

    start = time.perf_counter()
    with backend_scope("dense"):
        schedule = first_fit_schedule(instance, powers)
    return {
        "seconds": time.perf_counter() - start,
        "colors": schedule.num_colors,
        "schedule_colors": schedule.colors.tolist(),
    }


def run(args) -> int:
    from repro.core.context import clear_context_cache
    from repro.power.oblivious import SquareRootPower

    rows = []
    failures = []
    run_start = time.perf_counter()

    # -- conformance: sharded eps=0 must match dense bit-for-bit ------
    conf_instance = _make_instance(args.conf_n, args.seed)
    conf_powers = SquareRootPower()(conf_instance)
    clear_context_cache()
    conf_dense = _dense_first_fit(conf_instance, conf_powers)
    clear_context_cache()
    conf_sharded = _sharded_first_fit(
        conf_instance,
        conf_powers,
        epsilon=0.0,
        workers=args.conf_workers,
        executor="serial",
        tile_rows=args.tile_rows,
        window=args.window,
    )
    rows.append(
        {
            "workload": "conformance/dense",
            "n": args.conf_n,
            "workers": 0,
            "executor": "-",
            "epsilon": 0.0,
            "build_seconds": float("nan"),
            "seconds": conf_dense["seconds"],
            "colors": conf_dense["colors"],
            "max_worker_rss_mb": float("nan"),
            "density": 1.0,
        }
    )
    rows.append(
        {
            "workload": "conformance/sharded-eps0",
            "n": args.conf_n,
            "workers": args.conf_workers,
            "executor": "serial",
            "epsilon": 0.0,
            "build_seconds": conf_sharded["build_seconds"],
            "seconds": conf_sharded["seconds"],
            "colors": conf_sharded["colors"],
            "max_worker_rss_mb": max(conf_sharded["worker_rss_mb"]),
            "density": conf_sharded["density"],
        }
    )
    print(
        f"conformance n={args.conf_n}: dense {conf_dense['seconds']:.2f}s "
        f"/ sharded(W={args.conf_workers}, serial) "
        f"{conf_sharded['seconds']:.2f}s, "
        f"colors {conf_dense['colors']} vs {conf_sharded['colors']}"
    )
    if conf_sharded["schedule_colors"] != conf_dense["schedule_colors"]:
        failures.append(
            f"sharded eps=0 first-fit diverged from dense at "
            f"n={args.conf_n}, W={args.conf_workers}"
        )

    # -- headline: first-fit at --n over real process shards ----------
    instance = _make_instance(args.n, args.seed)
    powers = SquareRootPower()(instance)
    clear_context_cache()
    print(
        f"headline: n={args.n}, W={args.workers} ({args.executor}), "
        f"eps={BENCH_EPSILON}, tile_rows={args.tile_rows}, "
        f"window={args.window} ..."
    )
    headline = _sharded_first_fit(
        instance,
        powers,
        epsilon=BENCH_EPSILON,
        workers=args.workers,
        executor=args.executor,
        tile_rows=args.tile_rows,
        window=args.window,
    )
    max_worker_rss = max(headline["worker_rss_mb"])
    rows.append(
        {
            "workload": "first_fit",
            "n": args.n,
            "workers": args.workers,
            "executor": args.executor,
            "epsilon": BENCH_EPSILON,
            "build_seconds": headline["build_seconds"],
            "seconds": headline["seconds"],
            "colors": headline["colors"],
            "max_worker_rss_mb": max_worker_rss,
            "density": headline["density"],
        }
    )
    unique_pids = len(set(headline["worker_pids"]))
    print(
        f"headline done: build {headline['build_seconds']:.1f}s + "
        f"schedule {headline['schedule_seconds']:.1f}s, "
        f"colors={headline['colors']}, "
        f"density={headline['density']:.5f}, "
        f"stored gain bytes={headline['gain_bytes'] / 1e6:.0f} MB "
        f"across {unique_pids} worker(s)"
    )
    print(
        f"gate: per-worker peak RSS {max_worker_rss:.0f} MB "
        f"(parent {_parent_rss_mb():.0f} MB) vs budget "
        f"{args.rss_budget_mb:g} MB"
    )
    if args.executor == "process" and unique_pids != args.workers:
        failures.append(
            f"expected {args.workers} distinct worker processes, "
            f"saw {unique_pids}"
        )
    if max_worker_rss > args.rss_budget_mb:
        failures.append(
            f"worker peak RSS {max_worker_rss:.0f} MB exceeds the "
            f"{args.rss_budget_mb:g} MB budget at n={args.n}"
        )

    if args.artifacts is not None:
        from repro.runner.artifacts import (
            BenchReport,
            ShardResult,
            write_artifact,
        )
        from repro.util.tables import Table

        table = Table(
            title="Distributed gain shards: first-fit beyond one process",
            columns=[
                "workload",
                "n",
                "workers",
                "executor",
                "epsilon",
                "build_seconds",
                "seconds",
                "colors",
                "max_worker_rss_mb",
                "density",
            ],
        )
        table.add_note(
            f"gate: headline first-fit at n={args.n} completes across "
            f"{args.workers} {args.executor} shards with per-worker "
            f"peak RSS <= {args.rss_budget_mb:g} MB; conformance "
            "workload bit-identical to dense"
        )
        table.add_note(
            "constant-density random geometric instances (directed, "
            "sqrt powers); worker RSS measured inside each worker "
            "process (worker_health); admission windowed at "
            f"{args.window} requests per column round trip"
        )
        shards = []
        for row in rows:
            table.add_row(**row)
            shards.append(
                ShardResult(
                    key=(
                        f"{row['workload']}:n={row['n']}"
                        f":W={row['workers']}"
                    ),
                    seed=args.seed,
                    rows=1,
                    seconds=row["seconds"],
                )
            )
        report = BenchReport(
            experiment="distributed",
            title="Sharded first-fit at n >> single-process memory",
            mode="smoke" if args.n < 131072 else "full",
            table=table,
            shards=shards,
            run_wall_seconds=time.perf_counter() - run_start,
            metric="seconds",
            backend="sharded",
            algorithms=("first_fit_sharded",),
        )
        write_artifact(args.artifacts, report)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: all distributed gates passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--n",
        type=int,
        default=131072,
        help="headline instance size (default 131072)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=8,
        help="shard workers for the headline run (default 8)",
    )
    parser.add_argument(
        "--executor",
        choices=("serial", "process"),
        default="process",
        help="executor for the headline run (default process)",
    )
    parser.add_argument(
        "--tile-rows",
        type=int,
        default=256,
        help="dense scratch rows per build tile; bounds per-worker "
        "build memory at tile_rows x n doubles (default 256)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=64,
        help="admissions per column-prefetch round trip (default 64)",
    )
    parser.add_argument(
        "--conf-n",
        type=int,
        default=2048,
        help="bit-exactness check size (default 2048)",
    )
    parser.add_argument(
        "--conf-workers",
        type=int,
        default=4,
        help="shard count for the conformance workload (default 4)",
    )
    parser.add_argument(
        "--rss-budget-mb",
        type=float,
        default=2048.0,
        help="per-worker peak-RSS budget (default 2048)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--artifacts",
        metavar="DIR",
        default=None,
        help="write BENCH_distributed.json under DIR",
    )
    args = parser.parse_args(argv)
    if args.workers < 1 or args.conf_workers < 1:
        parser.error("worker counts must be >= 1")
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
