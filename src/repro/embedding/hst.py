"""FRT-style random tree embeddings.

Lemma 6 of the paper is "suitably adapted from a lemma in [6]" (Gupta,
Hajiaghayi, Räcke: oblivious network design), whose engine is the
Fakcharoenphol-Rao-Talwar (FRT) random hierarchical decomposition:

* pick a uniformly random permutation ``pi`` of the points and a
  radius scale ``b`` uniform in [1, 2);
* at level ``i`` (radii ``b * 2^(i-1)``), assign every point to the
  first point in ``pi``-order within the radius; nested assignments
  over descending levels form a laminar family;
* the laminar family, with level-``i`` edges of weight ``2^i``, is a
  tree whose shortest-path metric *dominates* the original metric and
  stretches each pair by O(log n) in expectation.

Leaves ``0 .. n-1`` of the produced :class:`TreeMetric` are the
original points; internal (Steiner) cluster nodes get indices ``>= n``.
Single-child chains are contracted (weights added) which preserves all
leaf-to-leaf distances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.geometry.metric import Metric
from repro.geometry.tree import TreeMetric
from repro.util.rng import RngLike, ensure_rng


@dataclass
class HstEmbedding:
    """A random dominating tree embedding of a metric.

    Attributes
    ----------
    tree:
        The host tree; original point ``v`` is tree node ``v``
        (indices ``>= n_points`` are Steiner cluster nodes).
    n_points:
        Number of embedded points.
    """

    tree: TreeMetric
    n_points: int

    def point_distances(self) -> np.ndarray:
        """Tree distances restricted to the embedded points."""
        return self.tree.distance_matrix()[: self.n_points, : self.n_points]

    def stretches(self, metric: Metric) -> np.ndarray:
        """Per-point worst-case stretch ``max_u T(u, v) / d(u, v)``."""
        original = metric.distance_matrix()
        embedded = self.point_distances()
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(original > 0, embedded / original, 1.0)
        return ratio.max(axis=1)

    def dominates(self, metric: Metric, rtol: float = 1e-9) -> bool:
        """Check the Lemma 6 dominance property ``T(u, v) >= d(u, v)``."""
        original = metric.distance_matrix()
        embedded = self.point_distances()
        return bool(np.all(embedded >= original * (1.0 - rtol)))


def build_hst(metric: Metric, rng: RngLike = None) -> HstEmbedding:
    """Sample one FRT tree embedding of *metric*.

    Runs in O(n^2 log Delta) time where Delta is the aspect ratio.
    A single point yields a one-node tree.
    """
    rng = ensure_rng(rng)
    n = metric.n
    if n == 1:
        return HstEmbedding(tree=_single_node_tree(), n_points=1)
    dist = metric.distance_matrix()
    positive = dist[dist > 0]
    if positive.size == 0:
        raise ValueError("all points coincide; no embedding possible")
    scale = float(np.min(positive))
    norm = dist / scale  # min positive distance becomes 1
    diameter = float(np.max(norm))
    top_level = max(1, int(math.ceil(math.log2(max(diameter, 1.0)))) + 1)

    permutation = rng.permutation(n)
    radius_scale = float(rng.uniform(1.0, 2.0))

    # clusters[level] maps frozenset-of-points -> member list; we track
    # the laminar family as parent pointers between (level, cluster_id).
    # Level top_level has the single root cluster.
    levels: List[List[List[int]]] = []  # levels[k] = clusters at level top_level - k
    parents: List[List[int]] = []  # parent cluster index (in previous level) per cluster
    levels.append([list(range(n))])
    parents.append([-1])

    current = [list(range(n))]
    for level in range(top_level - 1, -1, -1):
        radius = radius_scale * (2.0 ** (level - 1))
        next_clusters: List[List[int]] = []
        next_parents: List[int] = []
        for cluster_idx, cluster in enumerate(current):
            if len(cluster) == 1:
                next_clusters.append(list(cluster))
                next_parents.append(cluster_idx)
                continue
            assignment: Dict[int, List[int]] = {}
            for point in cluster:
                for center in permutation:
                    if norm[center, point] < radius:
                        assignment.setdefault(int(center), []).append(point)
                        break
                else:  # pragma: no cover - every point covers itself
                    assignment.setdefault(int(point), []).append(point)
            for members in assignment.values():
                next_clusters.append(members)
                next_parents.append(cluster_idx)
        levels.append(next_clusters)
        parents.append(next_parents)
        current = next_clusters

    # Bottom level must be singletons (radius < 1 <= min distance).
    if any(len(c) > 1 for c in current):  # pragma: no cover - safety net
        raise AssertionError("FRT bottom level is not singletons")

    return _laminar_to_tree(levels, parents, top_level, scale, n)


def _single_node_tree() -> TreeMetric:
    # TreeMetric requires n >= 1 and n - 1 edges.
    return TreeMetric(1, [])


def _laminar_to_tree(
    levels: List[List[List[int]]],
    parents: List[List[int]],
    top_level: int,
    scale: float,
    n: int,
) -> HstEmbedding:
    """Convert the laminar cluster family into a TreeMetric, contracting
    single-child chains (summing edge weights)."""
    # Assign tree-node ids: leaves = point ids; internal clusters get
    # fresh ids, except singleton bottom clusters which map to points.
    # Edge from a level-L cluster to its child at level L-1 has weight
    # 2^L (in normalised units, unscaled at the end).
    #
    # Contraction: a cluster with exactly one child is merged into the
    # child, adding its parent-edge weight to the child's parent edge.
    num_levels = len(levels)  # levels[k] at level top_level - k
    # children[k][cluster_idx] = list of child indices in levels[k + 1]
    children: List[List[List[int]]] = [
        [[] for _ in levels[k]] for k in range(num_levels)
    ]
    for k in range(1, num_levels):
        for child_idx, parent_idx in enumerate(parents[k]):
            children[k - 1][parent_idx].append(child_idx)

    edges: List[Tuple[int, int, float]] = []
    next_id = n

    def level_weight(k: int) -> float:
        # Edge weight between levels[k] (level top_level - k) and its
        # children at levels[k+1]: 2^(top_level - k).
        return float(2.0 ** (top_level - k))

    def resolve(k: int, idx: int) -> Tuple[int, float]:
        """Resolve cluster (k, idx) to (tree_node_id, extra_weight) where
        extra_weight accumulates contracted single-child edges *below*
        the attachment point."""
        nonlocal next_id
        kids = children[k][idx]
        if not kids:
            return levels[k][idx][0], 0.0
        if len(kids) == 1:
            child_id, extra = resolve(k + 1, kids[0])
            return child_id, extra + level_weight(k)
        node_id = next_id
        next_id += 1
        for child_idx in kids:
            child_id, extra = resolve(k + 1, child_idx)
            edges.append((node_id, child_id, level_weight(k) + extra))
        return node_id, 0.0

    root_id, root_extra = resolve(0, 0)
    total_nodes = next_id
    scaled_edges = [(u, v, w * scale) for u, v, w in edges]
    if total_nodes == 1:
        tree = _single_node_tree()
    else:
        tree = TreeMetric(total_nodes, scaled_edges)
    return HstEmbedding(tree=tree, n_points=n)
