"""Tests for the Schedule representation."""

import numpy as np
import pytest

from repro.core.errors import InvalidScheduleError
from repro.core.instance import Instance
from repro.core.schedule import Schedule
from repro.geometry.line import LineMetric


@pytest.fixture
def schedule():
    return Schedule(colors=np.array([0, 2, 0]), powers=np.array([1.0, 2.0, 3.0]))


class TestConstruction:
    def test_basic(self, schedule):
        assert schedule.n == 3
        assert schedule.num_colors == 2

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(InvalidScheduleError, match="length"):
            Schedule(colors=np.array([0, 1]), powers=np.array([1.0]))

    def test_negative_color_rejected(self):
        with pytest.raises(InvalidScheduleError, match="non-negative"):
            Schedule(colors=np.array([-1]), powers=np.array([1.0]))

    def test_non_positive_power_rejected(self):
        with pytest.raises(InvalidScheduleError, match="positive"):
            Schedule(colors=np.array([0]), powers=np.array([0.0]))

    def test_empty_rejected(self):
        with pytest.raises(InvalidScheduleError):
            Schedule(colors=np.array([], dtype=int), powers=np.array([]))


class TestAccessors:
    def test_color_classes(self, schedule):
        classes = schedule.color_classes()
        assert set(classes) == {0, 2}
        assert np.array_equal(classes[0], [0, 2])
        assert np.array_equal(classes[2], [1])

    def test_compacted_relabels_densely(self, schedule):
        dense = schedule.compacted()
        assert dense.num_colors == 2
        assert set(np.unique(dense.colors)) == {0, 1}
        # Class structure preserved.
        assert np.array_equal(
            dense.colors == dense.colors[0], schedule.colors == schedule.colors[0]
        )

    def test_total_energy(self, schedule):
        assert schedule.total_energy() == pytest.approx(6.0)


class TestValidation:
    @pytest.fixture
    def close_links(self):
        metric = LineMetric([0.0, 1.0, 1.5, 2.5])
        return Instance.bidirectional(metric, [(0, 1), (2, 3)])

    def test_valid_schedule_passes(self, close_links):
        sched = Schedule(colors=np.array([0, 1]), powers=np.ones(2))
        sched.validate(close_links)
        assert sched.is_feasible(close_links)

    def test_invalid_schedule_raises_with_detail(self, close_links):
        sched = Schedule(colors=np.array([0, 0]), powers=np.ones(2))
        with pytest.raises(InvalidScheduleError, match="margin"):
            sched.validate(close_links)
        assert not sched.is_feasible(close_links)

    def test_wrong_size_rejected(self, close_links):
        sched = Schedule(colors=np.zeros(3, int), powers=np.ones(3))
        with pytest.raises(InvalidScheduleError, match="covers"):
            sched.validate(close_links)

    def test_beta_override(self, close_links):
        sched = Schedule(colors=np.array([0, 1]), powers=np.ones(2))
        # With an absurdly strict gain even separated classes fail only
        # if there is interference; separate colors have none, so this
        # still passes.
        sched.validate(close_links, beta=1e9)

    def test_noise_override_fails_weak_powers(self, close_links):
        sched = Schedule(colors=np.array([0, 1]), powers=np.ones(2))
        assert not sched.is_feasible(close_links, noise=100.0)
