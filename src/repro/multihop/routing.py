"""Routing substrate for the multi-hop extension.

Nodes can exchange a packet directly when their distance is at most a
transmission range; end-to-end requests are routed along shortest
paths (by distance) of the resulting connectivity graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import networkx as nx

from repro.core.errors import ReproError
from repro.geometry.metric import Metric


class RoutingError(ReproError, RuntimeError):
    """No route exists between a request's endpoints."""


@dataclass
class RoutedRequest:
    """An end-to-end request and its route.

    Attributes
    ----------
    source, destination:
        Endpoint node indices.
    path:
        Node sequence from source to destination (inclusive).
    """

    source: int
    destination: int
    path: List[int]

    @property
    def hops(self) -> List[Tuple[int, int]]:
        """The single-hop links of the route."""
        return list(zip(self.path[:-1], self.path[1:]))

    @property
    def hop_count(self) -> int:
        return len(self.path) - 1


def connectivity_graph(metric: Metric, transmission_range: float) -> nx.Graph:
    """Graph with an edge wherever two nodes are within range.

    Edge weights are the metric distances (shortest *distance* paths,
    not hop counts, matching the latency objective of [3]).
    """
    if transmission_range <= 0:
        raise ValueError(f"transmission_range must be > 0, got {transmission_range}")
    matrix = metric.distance_matrix()
    graph = nx.Graph()
    graph.add_nodes_from(range(metric.n))
    for u in range(metric.n):
        for v in range(u + 1, metric.n):
            if 0 < matrix[u, v] <= transmission_range:
                graph.add_edge(u, v, weight=float(matrix[u, v]))
    return graph


def route_requests(
    metric: Metric,
    requests: Sequence[Tuple[int, int]],
    transmission_range: float,
) -> List[RoutedRequest]:
    """Shortest-path routes for all end-to-end *requests*.

    Raises
    ------
    RoutingError
        If some request's endpoints are disconnected at the given
        range.
    """
    graph = connectivity_graph(metric, transmission_range)
    routed = []
    for source, destination in requests:
        if source == destination:
            raise ValueError(f"request ({source}, {destination}) routes to itself")
        try:
            path = nx.shortest_path(
                graph, int(source), int(destination), weight="weight"
            )
        except nx.NetworkXNoPath as exc:
            raise RoutingError(
                f"no route from {source} to {destination} at range "
                f"{transmission_range:g}"
            ) from exc
        routed.append(
            RoutedRequest(
                source=int(source), destination=int(destination), path=list(path)
            )
        )
    return routed
