"""Unified solver API: ``Problem`` → ``Session`` → ``ScheduleResult``.

The one coherent entry point over the whole engine stack
(:class:`~repro.core.context.InterferenceContext`, the scheduler
kernels, the pluggable gain backends and the batched
:class:`~repro.core.batch.ContextBatch`):

>>> from repro.api import Problem
>>> session = Problem(instance).session()          # doctest: +SKIP
>>> result = session.schedule("first_fit")         # doctest: +SKIP
>>> result.schedule.num_colors                     # doctest: +SKIP
>>> result.provenance.backend, result.provenance.certified  # doctest: +SKIP

* :class:`Problem` — what to solve: the instance, the power choice (an
  explicit vector, a :class:`~repro.power.base.PowerAssignment`, or
  ``None`` for the paper's square-root assignment) and the gain-backend
  preferences (``backend``/``sparse_epsilon``).
* :class:`Session` — a reusable solving context.  It owns the cached
  :class:`~repro.core.context.InterferenceContext` for its problem (a
  strong reference, so the global context-cache LRU can never evict it
  mid-schedule), resolves algorithms by name through
  :mod:`repro.scheduling.registry`, and supports incremental workloads
  via :meth:`~Session.add_requests` / :meth:`~Session.reschedule`.
* :class:`ScheduleResult` — the schedule plus :class:`Provenance`:
  which algorithm and parameters produced it, on which backend, with
  the engine/kernel layers on or off, whether a pruned-sparse run is
  *certified* bit-identical to dense (zero
  :attr:`~repro.core.gains.GainBackend.flip_risk_events`), the wall
  time, and any batched-execution fallback
  (:class:`~repro.core.batch.BatchFallbackInfo`).
* :class:`BatchSession` / :func:`schedule_batch` — the same facade
  over many problems at once, stacking them through
  :class:`~repro.core.batch.ContextBatch` when the algorithm has a
  batched kernel.

Every result is bit-identical to the legacy free functions (which are
now deprecation shims around the very same implementations); the
conformance suite asserts this on both dense and sparse backends.
"""

from __future__ import annotations

import dataclasses
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro._deprecation import warn_deprecated
from repro.core.batch import BatchFallbackInfo, ContextBatch, ContextPool
from repro.core.context import (
    DEFAULT_RTOL,
    InterferenceContext,
    engine_enabled,
    get_context,
    repin_context,
    unpin_context,
)
from repro.core.errors import InvalidInstanceError, InvalidScheduleError
from repro.core.gains import (
    GainBackend,
    array_namespace_scope,
    backend_scope,
    default_sparse_epsilon,
    resolve_array_namespace,
    resolve_backend,
    resolve_shard_executor,
    resolve_shard_workers,
    resolve_sparse_epsilon,
    set_sparse_epsilon,
    shard_executor_scope,
    shard_workers_scope,
)
from repro.core.instance import Instance
from repro.core.kernels import (
    PeelFallbackInfo,
    ScheduleKernel,
    kernels_enabled,
    peel_fallback_records,
    peel_risk_events,
)
from repro.core.schedule import Schedule, build_schedule
from repro.power.base import PowerAssignment
from repro.resilience.faults import FaultPlan
from repro.power.oblivious import SquareRootPower
from repro.scheduling.registry import AlgorithmSpec, get_algorithm
from repro.util.rng import ensure_rng, spawn_rngs

__all__ = [
    "BatchSession",
    "Problem",
    "Provenance",
    "RequestHandle",
    "RequestHandles",
    "ScheduleResult",
    "Session",
    "schedule_batch",
]

#: Sentinel distinguishing "argument not passed" from an explicit
#: ``None`` (``reschedule(rng=None)`` must *clear* a recorded rng, not
#: silently replay it).
_UNSET = object()

PowersLike = Union[None, np.ndarray, Sequence[float], PowerAssignment]


@dataclass(frozen=True)
class Provenance:
    """How a :class:`ScheduleResult` was produced.

    Attributes
    ----------
    algorithm:
        Registry name the schedule came from.
    params:
        The algorithm-specific keyword arguments, as passed.
    backend:
        Resolved gain-backend name (``"dense"``/``"sparse"``).
    sparse_epsilon:
        Resolved pruning budget (``0.0`` on dense / lossless runs).
    engine, kernels:
        Whether the shared interference engine and the vectorized
        scheduler kernels were active on the call path.
    wall_seconds:
        Wall time of the algorithm run.
    flip_risk_events:
        Growth of the backend's at-risk-comparison counter during the
        run (always ``0`` on dense or lossless-sparse backends).
    certified:
        ``True`` — the run is provably bit-identical to the dense
        backend (zero flip-risk events on a certifiable algorithm);
        ``False`` — pruning may have changed a decision; ``None`` —
        certification does not apply (engine off, or the algorithm's
        decisions do not all route through the flip-risk-counting
        kernel).
    batch_fallback:
        Why a batched entry point could not run in lockstep (``None``
        for plain sessions and stacked batches).
    peel_risk_events:
        Growth of the incremental peel's at-risk-decision counter
        (:func:`repro.core.kernels.peel_risk_events`) during the run:
        peel/stop/re-add comparisons that landed inside the
        :data:`~repro.core.kernels.PEEL_RISK_RTOL` band and were
        resolved by exact reference-order recomputation.  Always ``0``
        when the run never peels (or the incremental peel is disabled).
    peel_fallbacks:
        :class:`~repro.core.kernels.PeelFallbackInfo` records emitted
        during the run — peel calls (e.g. duplicate candidates) that
        left the kernel path for the from-scratch reference.
    incremental:
        ``True`` when the schedule came from the live online kernel
        (:meth:`Session.live_result`) — colors were assigned one
        arrival at a time on grown-in-place state — rather than from a
        batch algorithm run over the full instance.
    arrivals, departures:
        Total requests the session has admitted via
        :meth:`Session.add_requests` / removed via
        :meth:`Session.remove_requests` up to this result.
    """

    algorithm: str
    params: Dict[str, Any]
    backend: str
    sparse_epsilon: float
    engine: bool
    kernels: bool
    wall_seconds: float
    flip_risk_events: int = 0
    certified: Optional[bool] = None
    batch_fallback: Optional[BatchFallbackInfo] = None
    peel_risk_events: int = 0
    peel_fallbacks: Tuple[PeelFallbackInfo, ...] = ()
    incremental: bool = False
    arrivals: int = 0
    departures: int = 0


@dataclass(frozen=True)
class RequestHandle:
    """A stable identity for one request admitted to a :class:`Session`.

    The handle survives :meth:`Session.rebuild` compactions (dense
    array indices do not — a departure shifts everyone behind it), so
    callers track *their* request across an arrival/departure stream
    and hand it back to :meth:`Session.remove_requests`.
    """

    uid: int
    sender: int
    receiver: int


class RequestHandles(list):
    """The list of :class:`RequestHandle` returned by
    :meth:`Session.add_requests`.

    Compatibility shim: ``add_requests`` used to return the session
    itself for chaining (``session.add_requests(...).reschedule()``).
    Unknown attribute access forwards to the owning session with a
    :class:`~repro._deprecation.ReproDeprecationWarning`, so the old
    chaining idiom keeps working while migrating callers see exactly
    where they rely on it.
    """

    def __init__(self, handles: Sequence[RequestHandle], session: "Session"):
        super().__init__(handles)
        self._session = session

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)
        session = self.__dict__.get("_session")
        if session is None or not hasattr(session, name):
            raise AttributeError(name)
        warn_deprecated(
            f"Session.add_requests(...).{name}",
            replacement=(
                "the Session itself (add_requests now returns "
                "RequestHandles, not the session)"
            ),
            stacklevel=3,
        )
        return getattr(session, name)


@dataclass(frozen=True)
class ScheduleResult:
    """A schedule plus the provenance of its computation."""

    schedule: Schedule
    instance: Instance
    provenance: Provenance
    stats: Any = None
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def colors(self) -> np.ndarray:
        """The emitted coloring (delegates to the schedule)."""
        return self.schedule.colors

    @property
    def powers(self) -> np.ndarray:
        """The emitted powers (delegates to the schedule)."""
        return self.schedule.powers

    @property
    def num_colors(self) -> int:
        """Number of colors (the schedule length)."""
        return self.schedule.num_colors

    def validate(self, **kwargs: Any) -> "ScheduleResult":
        """Validate against the originating instance; returns ``self``
        so calls chain (raises
        :class:`~repro.core.errors.InvalidScheduleError` otherwise)."""
        self.schedule.validate(self.instance, **kwargs)
        return self


@dataclass
class Problem:
    """A scheduling problem plus execution preferences.

    Parameters
    ----------
    instance:
        The :class:`~repro.core.instance.Instance` to schedule.
    powers:
        ``None`` (the paper's square-root assignment), a
        :class:`~repro.power.base.PowerAssignment`, or an explicit
        positive power vector.  Self-powered algorithms (capability
        ``needs_powers=False``) ignore it and emit their own powers.
    backend, sparse_epsilon:
        Gain-backend preference for every context the problem's
        sessions create (``None`` follows the process defaults, see
        :mod:`repro.core.gains`).  Validated eagerly so a typo fails at
        construction, not deep inside ``get_context``.
    array_namespace, device:
        Array-API namespace and device for ``backend="array"``
        (``None`` follows :func:`~repro.core.gains.default_array_namespace`
        / the namespace's default device).  *device* applies to the
        contexts the session and batch own; context fetches issued
        inside algorithm implementations resolve the namespace but use
        its default device.
    workers, shard_executor:
        Shard worker count and executor name (``"serial"``/
        ``"process"``) for ``backend="sharded"`` (``None`` follows
        :func:`~repro.core.gains.default_shard_workers` /
        :func:`~repro.core.gains.default_shard_executor`).
    """

    instance: Instance
    powers: PowersLike = None
    backend: Optional[str] = None
    sparse_epsilon: Optional[float] = None
    array_namespace: Optional[str] = None
    device: Optional[object] = None
    workers: Optional[int] = None
    shard_executor: Optional[str] = None

    def __post_init__(self) -> None:
        backend_name = resolve_backend(self.backend)
        if self.sparse_epsilon is not None:
            resolve_sparse_epsilon(self.sparse_epsilon)
        if self.array_namespace is not None:
            resolve_array_namespace(self.array_namespace)
        if self.device is not None and backend_name != "array":
            raise ValueError(
                "device= requires backend='array' "
                f"(got backend={backend_name!r})"
            )
        if self.workers is not None:
            resolve_shard_workers(self.workers)
        if self.shard_executor is not None:
            resolve_shard_executor(self.shard_executor)
        if (
            self.workers is not None or self.shard_executor is not None
        ) and backend_name != "sharded":
            raise ValueError(
                "workers=/shard_executor= require backend='sharded' "
                f"(got backend={backend_name!r})"
            )

    def session(self) -> "Session":
        """A fresh :class:`Session` for this problem."""
        return Session(self)


def _resolve_powers(
    instance: Instance, powers: PowersLike
) -> Tuple[np.ndarray, Optional[PowerAssignment]]:
    """``(power vector, assignment-or-None)`` for a problem's powers."""
    if powers is None:
        assignment: Optional[PowerAssignment] = SquareRootPower()
        return np.asarray(assignment(instance), dtype=float), assignment
    if isinstance(powers, PowerAssignment):
        return np.asarray(powers(instance), dtype=float), powers
    return np.asarray(powers, dtype=float), None


@contextmanager
def _preference_scope(
    backend: Optional[str],
    sparse_epsilon: Optional[float],
    array_namespace: Optional[str] = None,
    shard_workers: Optional[int] = None,
    shard_executor: Optional[str] = None,
) -> Iterator[None]:
    """Make a problem's backend preferences the process defaults for
    the duration of an algorithm run, so every ``get_context`` the
    implementation issues resolves to the session's own context."""
    with backend_scope(backend), array_namespace_scope(
        array_namespace
    ), shard_workers_scope(shard_workers), shard_executor_scope(
        shard_executor
    ):
        if sparse_epsilon is None:
            yield
        else:
            previous = default_sparse_epsilon()
            set_sparse_epsilon(sparse_epsilon)
            try:
                yield
            finally:
                set_sparse_epsilon(previous)


class Session:
    """A reusable solving context for one :class:`Problem`.

    The session resolves the problem's powers once, owns (a strong
    reference to) the shared
    :class:`~repro.core.context.InterferenceContext` for
    ``(instance, powers)`` and re-pins it in the global cache before
    every fixed-power run — so cache-LRU eviction can neither
    invalidate an active session nor force a cold gain-matrix rebuild
    (nor divert certification counters) between its calls.
    Self-powered algorithms (``needs_powers=False``) resolve their own
    power vectors and therefore manage their own contexts.  Every
    :meth:`schedule` call dispatches through the algorithm registry.
    """

    def __init__(self, problem: Union[Problem, Instance]):
        if isinstance(problem, Instance):
            problem = Problem(problem)
        self.problem = problem
        self._powers, self._assignment = _resolve_powers(
            problem.instance, problem.powers
        )
        self._context: Optional[InterferenceContext] = None
        self._last_algorithm: Optional[str] = None
        self._last_params: Dict[str, Any] = {}
        self._last_rng: Any = None
        self.last_result: Optional[ScheduleResult] = None
        # Incremental serving state: stable request uids -> current
        # dense index (initial requests get uids 0..n-1), tombstoned
        # indices awaiting compaction, and the live online kernel.
        n = problem.instance.n
        self._uid_to_index: Dict[int, int] = {uid: uid for uid in range(n)}
        self._uid_seq: int = n
        self._departed: set = set()
        self._kernel: Optional[ScheduleKernel] = None
        self._limits: Optional[np.ndarray] = None
        self._arrivals: int = 0
        self._departures: int = 0
        # Fault-injection hook (tests / chaos harness; see
        # repro.resilience.faults).  None in production.
        self._fault_plan: Optional["FaultPlan"] = None
        self._fault_key: Optional[str] = None

    # -- problem state -------------------------------------------------

    @property
    def instance(self) -> Instance:
        """The current instance (grows via :meth:`add_requests`)."""
        return self.problem.instance

    @property
    def powers(self) -> np.ndarray:
        """The resolved fixed power vector of this session."""
        return self._powers

    @property
    def arrivals(self) -> int:
        """Requests admitted via :meth:`add_requests` so far."""
        return self._arrivals

    @property
    def departures(self) -> int:
        """Requests removed via :meth:`remove_requests` so far."""
        return self._departures

    @property
    def active_requests(self) -> int:
        """Requests currently present (arrivals minus departures plus
        the initial instance)."""
        return len(self._uid_to_index)

    @property
    def handles(self) -> List[RequestHandle]:
        """Live :class:`RequestHandle` for every active request, in
        current index order (includes the initial requests, whose uids
        are ``0 .. n0-1``)."""
        inst = self.problem.instance
        return [
            RequestHandle(
                uid=uid,
                sender=int(inst.senders[idx]),
                receiver=int(inst.receivers[idx]),
            )
            for uid, idx in sorted(
                self._uid_to_index.items(), key=lambda kv: kv[1]
            )
        ]

    @property
    def context(self) -> InterferenceContext:
        """The session's interference context (built once, pinned).

        Built through :func:`~repro.core.context.get_context` under the
        problem's backend preferences, so algorithm implementations
        fetching the context for ``(instance, powers)`` resolve to this
        very object.  With the engine disabled
        (:func:`~repro.core.context.engine_disabled`) schedulers bypass
        it, but the property stays usable for direct queries.
        """
        if self._context is None:
            self._context = get_context(
                self.problem.instance,
                self._powers,
                backend=self.problem.backend,
                sparse_epsilon=self.problem.sparse_epsilon,
                array_namespace=self.problem.array_namespace,
                device=self.problem.device,
                shard_workers=self.problem.workers,
                shard_executor=self.problem.shard_executor,
            )
        return self._context

    # -- scheduling ----------------------------------------------------

    def schedule(
        self, algorithm: str, rng: Any = None, **params: Any
    ) -> ScheduleResult:
        """Run *algorithm* (a registry name) on this session's problem.

        Algorithm-specific keyword arguments pass through the
        registry's normalized adapter (e.g. ``beta=``, ``order=``,
        ``gamma_target=``, ``use_lp=``, ``schedule=`` for
        ``local_search``).  Randomized algorithms take ``rng=``.

        Pending departures (see :meth:`remove_requests`) are compacted
        away first via :meth:`rebuild` — batch algorithms run over the
        whole instance, so tombstoned requests must not participate.
        """
        if self._departed:
            self.rebuild()
        spec = get_algorithm(algorithm)
        return self._run(spec, rng, params, batch_fallback=None)

    def reschedule(
        self,
        algorithm: Optional[str] = None,
        rng: Any = _UNSET,
        **params: Any,
    ) -> ScheduleResult:
        """Re-run the last call on the current — possibly grown —
        problem state.

        With *algorithm* omitted, the last ``schedule()`` call is
        replayed **including its parameters and its rng** (explicit
        *params* here override individual ones; pass ``rng=`` — even
        ``rng=None`` — to override the recorded one, so replayed
        randomized runs are reproducible by default).  Naming an
        *algorithm* starts fresh: only the given *params* apply.
        """
        if algorithm is not None:
            return self.schedule(
                algorithm, rng=None if rng is _UNSET else rng, **params
            )
        if self._last_algorithm is None:
            raise ValueError(
                "nothing to reschedule: call schedule(algorithm) first or "
                "pass algorithm="
            )
        merged = {**self._last_params, **params}
        if rng is _UNSET:
            rng = self._last_rng
        return self.schedule(self._last_algorithm, rng=rng, **merged)

    def add_requests(
        self,
        pairs: Sequence[Tuple[int, int]],
        powers: Optional[Sequence[float]] = None,
    ) -> "RequestHandles":
        """Append requests (``(sender, receiver)`` node pairs on the
        same metric) and grow the cached context **in place**.

        An already-built context (and its gain backend) extends via
        :meth:`~repro.core.context.InterferenceContext.extend_to` —
        only the new rows/columns of the gain matrices are computed, so
        an arrival costs O(n) instead of the former O(n^2) cold
        rebuild, bit-identically (at ``epsilon = 0``) to one.  If the
        session's live online kernel is active (see
        :meth:`live_result`), each new request is immediately admitted
        with one O(n) vectorized first-fit check.

        When the problem's powers came from a
        :class:`~repro.power.base.PowerAssignment` (or the default
        square-root assignment) the vector is re-resolved for the grown
        instance; with explicit powers, pass one power per new request
        via *powers*.  Sender/receiver indices are validated against
        the metric up front, naming the offending pair.

        Returns the new requests' stable :class:`RequestHandle` list
        (hand them back to :meth:`remove_requests`).  The historical
        return-``self`` chaining still works through a deprecation shim
        on the returned :class:`RequestHandles`.
        """
        pairs = [(int(p[0]), int(p[1])) for p in pairs]
        if not pairs:
            return RequestHandles([], self)
        self._fire_fault("add_requests:pre")
        old = self.problem.instance
        metric_size = old.metric.n
        for pos, (sender, receiver) in enumerate(pairs):
            for role, node in (("sender", sender), ("receiver", receiver)):
                if not 0 <= node < metric_size:
                    raise InvalidInstanceError(
                        f"new request {pos} ({sender}, {receiver}): {role} "
                        f"index {node} is out of range for a metric with "
                        f"{metric_size} nodes (valid: 0..{metric_size - 1})"
                    )
        new_instance = Instance(
            old.metric,
            np.concatenate([old.senders, [p[0] for p in pairs]]),
            np.concatenate([old.receivers, [p[1] for p in pairs]]),
            direction=old.direction,
            alpha=old.alpha,
            beta=old.beta,
            noise=old.noise,
        )
        if self._assignment is not None:
            if powers is not None:
                raise ValueError(
                    "powers= conflicts with the problem's power assignment "
                    f"({self._assignment!r}); the assignment re-resolves "
                    "automatically"
                )
            new_powers: PowersLike = self._assignment
        else:
            if powers is None:
                raise ValueError(
                    "the problem was built with an explicit power vector; "
                    f"pass powers= ({len(pairs)} values) for the new requests"
                )
            appended = np.asarray(powers, dtype=float).reshape(-1)
            if appended.size != len(pairs):
                raise ValueError(
                    f"powers has {appended.size} entries for "
                    f"{len(pairs)} new requests"
                )
            new_powers = np.concatenate([self._powers, appended])
        n_old = old.n
        resolved, assignment = _resolve_powers(new_instance, new_powers)
        # Oblivious assignments are elementwise over link losses, so
        # re-resolving preserves the existing powers bit-for-bit — the
        # contract in-place growth needs.  A (hypothetical) assignment
        # whose powers depend on the whole instance falls back to the
        # historical full invalidation: drop the context (and kernel)
        # and rebuild cold on next use.
        grow_in_place = np.array_equal(resolved[:n_old], self._powers)
        self.problem = dataclasses.replace(
            self.problem, instance=new_instance, powers=new_powers
        )
        self._powers, self._assignment = resolved, assignment
        if grow_in_place and self._context is not None:
            # The context cache keys on (id(instance), power bytes) —
            # release the old slot, grow, take the new slot.
            unpin_context(self._context)
            self._context.extend_to(new_instance, resolved)
            repin_context(self._context)
            if self._kernel is not None:
                self._admit_arrivals(range(n_old, new_instance.n))
        else:
            # Release the old instance's cache slot eagerly: the
            # context / cache-dict / instance reference cycle only dies
            # under cycle GC, and until then the dead LRU entry would
            # crowd out live contexts (see unpin_context).
            if self._context is not None:
                unpin_context(self._context)
            self._context = None
            self._kernel = None
            self._limits = None
        # Instance, context and kernel have grown, but the arrivals are
        # not yet uid-accounted: a fault here leaves the session
        # genuinely half-mutated (what recover() must repair).
        self._fire_fault("add_requests:grown")
        handles = []
        for offset, (sender, receiver) in enumerate(pairs):
            uid = self._uid_seq
            self._uid_seq += 1
            self._uid_to_index[uid] = n_old + offset
            handles.append(
                RequestHandle(uid=uid, sender=sender, receiver=receiver)
            )
        self._arrivals += len(pairs)
        return RequestHandles(handles, self)

    def remove_requests(
        self, handles: Sequence[Union[RequestHandle, int]]
    ) -> "Session":
        """Remove previously admitted requests by handle (or uid).

        On the live online kernel a departure is the kernel's existing
        exact O(n) remove — no context invalidation, no re-coloring of
        anyone else.  The request's storage slot is tombstoned until
        the next :meth:`rebuild` (or batch :meth:`schedule` /
        :meth:`reschedule`, which compact automatically); tombstoned
        requests are not members of any class, so they contribute no
        interference.  Returns ``self`` for chaining.
        """
        uids = []
        seen = set()
        for handle in handles:
            uid = handle.uid if isinstance(handle, RequestHandle) else int(handle)
            if uid in seen:
                raise ValueError(f"duplicate handle (uid={uid}) in removal")
            seen.add(uid)
            if uid not in self._uid_to_index:
                raise KeyError(
                    f"unknown or already-removed request handle (uid={uid})"
                )
            uids.append(uid)
        for uid in uids:
            index = self._uid_to_index.pop(uid)
            if self._kernel is not None and self._kernel.colors[index] >= 0:
                self._kernel.remove(index)
            self._departed.add(index)
        self._departures += len(uids)
        return self

    def rebuild(self) -> "Session":
        """Compact departures away and drop to a cold context — the
        historical :meth:`add_requests` behavior, now explicit.

        The instance shrinks to the active requests (handles stay
        valid; dense indices are remapped), powers are re-resolved (or
        sliced, for explicit vectors), and the cached context and live
        kernel are discarded so the next use rebuilds from scratch.
        """
        if not self._uid_to_index:
            raise InvalidScheduleError(
                "cannot rebuild a session with zero active requests"
            )
        old = self.problem.instance
        active = np.asarray(sorted(self._uid_to_index.values()), dtype=int)
        if self._departed:
            new_instance = old.subset(active)
            if self._assignment is not None:
                new_powers: PowersLike = self._assignment
            else:
                new_powers = self._powers[active]
            self.problem = dataclasses.replace(
                self.problem, instance=new_instance, powers=new_powers
            )
            self._powers, self._assignment = _resolve_powers(
                new_instance, new_powers
            )
            index_to_uid = {
                index: uid for uid, index in self._uid_to_index.items()
            }
            self._uid_to_index = {
                index_to_uid[index]: position
                for position, index in enumerate(active)
            }
            self._departed = set()
        if self._context is not None:
            unpin_context(self._context)
        self._context = None
        self._kernel = None
        self._limits = None
        return self

    # -- fault tolerance -----------------------------------------------

    def set_fault_hook(
        self, plan: Optional[FaultPlan], key: Optional[str] = None
    ) -> "Session":
        """Install (or clear, with ``None``) a deterministic
        :class:`~repro.resilience.FaultPlan` on this session.

        The plan fires at ``site="session"`` with *key* (typically the
        serving-layer session name) at the documented injection points
        — currently ``phase="add_requests:pre"`` (before any mutation)
        and ``phase="add_requests:grown"`` (instance/context/kernel
        grown, arrival not yet accounted).  Test/chaos tooling only.
        """
        self._fault_plan = plan
        self._fault_key = key
        return self

    def _fire_fault(self, phase: str) -> None:
        if self._fault_plan is not None:
            self._fault_plan.fire(
                "session", key=self._fault_key, phase=phase
            )

    @property
    def live_kernel(self) -> Optional[ScheduleKernel]:
        """The live online kernel, or ``None`` when not built yet (see
        :meth:`ensure_live`).  Supervisors snapshot it
        (:meth:`~repro.core.kernels.ScheduleKernel.snapshot`) before a
        risky mutation and hand the snapshot to :meth:`recover`."""
        return self._kernel

    def check_consistency(self) -> Optional[str]:
        """``None`` when the session's bookkeeping is structurally
        sound, else a description of the damage.

        The invariant: every request row of the current instance is
        either uid-accounted (active) or tombstoned (departed).  An
        exception escaping mid-:meth:`add_requests` — uids are assigned
        *last* — breaks exactly this, so the check is a reliable
        damage detector for supervisors.  The live kernel, when built,
        must also span the instance.
        """
        n = self.problem.instance.n
        accounted = len(self._uid_to_index) + len(self._departed)
        if accounted != n:
            return (
                f"instance has {n} request rows but only {accounted} are "
                "accounted (active + departed): an admission was "
                "interrupted mid-mutation"
            )
        if self._kernel is not None and len(self._kernel.colors) != n:
            return (
                f"live kernel spans {len(self._kernel.colors)} requests "
                f"but the instance has {n}"
            )
        return None

    def recover(
        self, kernel_snapshot: Optional[Dict[str, object]] = None
    ) -> str:
        """Repair the session after an exception escaped a mutating
        call, choosing the cheapest sufficient action.  Returns what
        was done:

        ``"snapshot"``
            No structural damage and *kernel_snapshot* (taken from
            :attr:`live_kernel` before the mutation) restored bitwise —
            the O(C·n) transactional-rollback fast path.
        ``"rekernel"``
            No structural damage but the snapshot could not be applied
            (kernel since grown/dropped, or no snapshot given): the
            live kernel is discarded and replays lazily on next use.
        ``"rebuild"``
            Structural damage (orphaned half-admitted rows): the
            orphans are tombstoned and :meth:`rebuild` compacts the
            session back to its accounted requests — equivalent to a
            cold rebuild from the active set.

        After any of these the session satisfies
        :meth:`check_consistency` and subsequent scheduling is
        bit-identical to a freshly built session over the same active
        requests.
        """
        if self.check_consistency() is not None:
            n = self.problem.instance.n
            accounted = set(self._uid_to_index.values())
            orphans = set(range(n)) - accounted - self._departed
            # Tombstoning the orphans turns "interrupted admission"
            # into "departure awaiting compaction" — rebuild() already
            # knows how to heal that, and it discards the (possibly
            # also damaged) context and kernel with the same stroke.
            self._departed |= orphans
            self.rebuild()
            return "rebuild"
        if self._kernel is not None and kernel_snapshot is not None:
            try:
                self._kernel.restore(kernel_snapshot)
                return "snapshot"
            except ValueError:
                # Snapshot predates kernel growth; fall through.
                pass
        self._kernel = None
        self._limits = None
        return "rekernel"

    # -- live online kernel --------------------------------------------

    def _compute_limits(self, context: InterferenceContext) -> np.ndarray:
        budgets = context.budgets()
        if np.any(budgets < 0):
            bad = int(np.argmax(budgets < 0))
            raise InvalidScheduleError(
                f"request {bad} cannot meet beta={context.beta} even "
                "alone (negative interference budget)"
            )
        return budgets * (1.0 + DEFAULT_RTOL)

    def _admit_arrivals(self, indices: Sequence[int]) -> None:
        """Extend the live kernel to the grown context and first-fit
        admit *indices* in arrival order — one O(n) vectorized
        admission check each (a fresh class opens when none fits, so
        every arrival is placed)."""
        kernel = self._kernel
        context = self.context
        kernel.extend_to(context.n)
        self._limits = self._compute_limits(context)
        for index in indices:
            color = kernel.first_fit_admit(int(index), self._limits)
            if color < 0:
                color = kernel.open_class()
            kernel.add(int(index), color)

    def ensure_live(self) -> ScheduleKernel:
        """The session's live online first-fit kernel, built on first
        use by admitting every active request in arrival (index) order.

        Once live, :meth:`add_requests` admits each arrival with a
        single O(n) vectorized check and :meth:`remove_requests`
        departs members exactly — the kernel state is never replayed.
        Note the *online* admission order (arrival order) is not the
        batch ``first_fit`` default (longest links first); the stream
        of colors equals what a fresh arrival-order replay would emit.
        """
        if self._kernel is None:
            context = self.context
            repin_context(context)
            kernel = ScheduleKernel(context)
            self._limits = self._compute_limits(context)
            self._kernel = kernel
            for index in range(context.n):
                if index in self._departed:
                    continue
                color = kernel.first_fit_admit(index, self._limits)
                if color < 0:
                    color = kernel.open_class()
                kernel.add(index, color)
        return self._kernel

    def color_of(self, handle: Union[RequestHandle, int]) -> int:
        """The live kernel's current color class of *handle*."""
        uid = handle.uid if isinstance(handle, RequestHandle) else int(handle)
        index = self._uid_to_index.get(uid)
        if index is None:
            raise KeyError(
                f"unknown or already-removed request handle (uid={uid})"
            )
        return int(self.ensure_live().colors[index])

    def live_result(self) -> ScheduleResult:
        """A :class:`ScheduleResult` for the live kernel's current
        coloring over the **active** requests.

        Builds the kernel on first use (see :meth:`ensure_live`).  The
        provenance records ``incremental=True`` plus the session's
        arrival/departure totals; ``certified`` reflects the kernel's
        own flip-risk counter (always certified on lossless backends).
        """
        start = time.perf_counter()
        kernel = self.ensure_live()
        context = self.context
        active = np.asarray(sorted(self._uid_to_index.values()), dtype=int)
        if active.size == 0:
            raise InvalidScheduleError(
                "no active requests: every request has departed"
            )
        colors = np.asarray(kernel.colors)[active]
        schedule = build_schedule(colors, self._powers[active]).compacted()
        instance = (
            self.problem.instance
            if active.size == self.problem.instance.n
            else self.problem.instance.subset(active)
        )
        wall = time.perf_counter() - start
        result = ScheduleResult(
            schedule=schedule,
            instance=instance,
            provenance=Provenance(
                algorithm="first_fit_online",
                params={},
                backend=context.backend.name,
                sparse_epsilon=context.sparse_epsilon,
                engine=engine_enabled(),
                kernels=kernels_enabled(),
                wall_seconds=wall,
                flip_risk_events=kernel.flip_risk_events,
                certified=kernel.flip_risk_events == 0,
                incremental=True,
                arrivals=self._arrivals,
                departures=self._departures,
            ),
        )
        self.last_result = result
        return result

    # -- internals -----------------------------------------------------

    def _run(
        self,
        spec: AlgorithmSpec,
        rng: Any,
        params: Dict[str, Any],
        batch_fallback: Optional[BatchFallbackInfo],
    ) -> ScheduleResult:
        engine = engine_enabled()
        backend_obj: Optional[GainBackend] = None
        # Fixed-power algorithms run on the session's (instance,
        # powers) context: build it on first use, and re-pin it in the
        # global cache so LRU eviction between calls can neither force
        # a cold rebuild inside the implementation nor divert the
        # flip-risk events onto a context we never read.  Self-powered
        # algorithms (e.g. trivial, sqrt_coloring) resolve their own
        # power vectors, so the session context is not built for them.
        if engine and (
            spec.capabilities.needs_powers or self._context is not None
        ):
            context = self.context
            repin_context(context)
            backend_obj = context.backend
        before = backend_obj.flip_risk_events if backend_obj is not None else 0
        # Peel counters are module totals (self-powered algorithms build
        # contexts this session never sees), so snapshot-and-diff around
        # the run — single scheduler thread, like the toggles.
        peel_before = peel_risk_events()
        fb_before = len(peel_fallback_records())
        start = time.perf_counter()
        with _preference_scope(
            self.problem.backend,
            self.problem.sparse_epsilon,
            self.problem.array_namespace,
            self.problem.workers,
            self.problem.shard_executor,
        ):
            outcome = spec.run(
                self.problem.instance,
                powers=self._powers if spec.capabilities.needs_powers else None,
                rng=rng,
                **params,
            )
        wall = time.perf_counter() - start
        delta = (
            backend_obj.flip_risk_events - before
            if backend_obj is not None
            else 0
        )
        certified: Optional[bool] = None
        if backend_obj is not None and spec.capabilities.certifiable:
            certified = delta == 0
        result = ScheduleResult(
            schedule=outcome.schedule,
            instance=self.problem.instance,
            provenance=Provenance(
                algorithm=spec.name,
                params=dict(params),
                backend=(
                    backend_obj.name
                    if backend_obj is not None
                    else resolve_backend(self.problem.backend)
                ),
                sparse_epsilon=(
                    self._context.sparse_epsilon
                    if self._context is not None
                    else resolve_sparse_epsilon(self.problem.sparse_epsilon)
                ),
                engine=engine,
                kernels=kernels_enabled(),
                wall_seconds=wall,
                flip_risk_events=delta,
                certified=certified,
                batch_fallback=batch_fallback,
                peel_risk_events=peel_risk_events() - peel_before,
                peel_fallbacks=peel_fallback_records()[fb_before:],
                arrivals=self._arrivals,
                departures=self._departures,
            ),
            stats=outcome.stats,
            extras=dict(outcome.extras),
        )
        self._last_algorithm = spec.name
        self._last_params = dict(params)
        self._last_rng = rng
        self.last_result = result
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Session(n={self.instance.n}, "
            f"backend={resolve_backend(self.problem.backend)}, "
            f"last={self._last_algorithm!r})"
        )


class BatchSession:
    """The facade over many problems at once.

    Algorithms with a batched kernel (capability ``supports_batch``,
    currently ``first_fit`` and ``local_search``) run in lockstep over
    a :class:`~repro.core.batch.ContextBatch`; everything else loops
    the per-problem sessions, which is recorded as a
    :class:`~repro.core.batch.BatchFallbackInfo` in each result's
    provenance (as is the batch's own pooled fallback on ragged or
    lossy-backed batches).

    All problems must agree on the backend preferences (one batch, one
    substrate).
    """

    def __init__(
        self,
        problems: Sequence[Union[Problem, Instance]],
        pool: Optional[ContextPool] = None,
    ):
        if len(problems) == 0:
            raise ValueError("a BatchSession needs at least one problem")
        normalized = [
            p if isinstance(p, Problem) else Problem(p) for p in problems
        ]
        prefs = {
            (p.backend, p.sparse_epsilon, p.array_namespace, p.device)
            for p in normalized
        }
        if len(prefs) > 1:
            raise ValueError(
                "all problems of a BatchSession must share backend "
                f"preferences, got {sorted(map(str, prefs))}"
            )
        self.problems: List[Problem] = normalized
        self.sessions: List[Session] = [Session(p) for p in normalized]
        self.pool = ContextPool() if pool is None else pool
        self._batch: Optional[ContextBatch] = None

    def __len__(self) -> int:
        return len(self.sessions)

    @property
    def batch(self) -> ContextBatch:
        """The underlying :class:`~repro.core.batch.ContextBatch`
        (built lazily, contexts pinned in :attr:`pool`)."""
        if self._batch is None:
            first = self.problems[0]
            self._batch = ContextBatch(
                [(s.instance, s.powers) for s in self.sessions],
                pool=self.pool,
                backend=first.backend,
                sparse_epsilon=first.sparse_epsilon,
                array_namespace=first.array_namespace,
                device=first.device,
            )
        return self._batch

    def schedule(
        self, algorithm: str = "first_fit", rng: Any = None, **params: Any
    ) -> List[ScheduleResult]:
        """Schedule every problem; one :class:`ScheduleResult` each."""
        spec = get_algorithm(algorithm)
        if spec.capabilities.deterministic and rng is not None:
            raise TypeError(
                f"algorithm {spec.name!r} is deterministic; rng= is not "
                "accepted"
            )
        # The stacked path carries no rng, so only deterministic
        # algorithms may take it; a future randomized batch kernel
        # falls through to the per-session loop with spawned streams.
        if spec.capabilities.supports_batch and spec.capabilities.deterministic:
            return self._schedule_stacked(spec, params)
        fallback = BatchFallbackInfo(
            reasons=("no_batch_kernel",),
            pairs=len(self),
            detail=(
                f"algorithm {spec.name!r} has no batched kernel; "
                "problems were scheduled one session at a time"
            ),
        )
        if spec.capabilities.deterministic:
            rngs: List[Any] = [None] * len(self)
        else:
            rngs = list(spawn_rngs(ensure_rng(rng), len(self)))
        return [
            session._run(spec, child, dict(params), batch_fallback=fallback)
            for session, child in zip(self.sessions, rngs)
        ]

    def _schedule_stacked(
        self, spec: AlgorithmSpec, params: Dict[str, Any]
    ) -> List[ScheduleResult]:
        batch = self.batch
        backends = [ctx.backend for ctx in batch.contexts]
        before = [b.flip_risk_events for b in backends]
        start = time.perf_counter()
        if spec.name == "first_fit":
            schedules = batch.first_fit_schedules(**params)
        elif spec.name == "local_search":
            run_params = dict(params)
            seeds = run_params.pop("schedule", None)
            if seeds is None:
                raise TypeError(
                    "algorithm 'local_search' improves existing schedules; "
                    "pass schedule= (a sequence of Schedule or "
                    "ScheduleResult, one per problem)"
                )
            if len(seeds) != len(self):
                raise ValueError(
                    f"{len(seeds)} schedules for {len(self)} problems"
                )
            schedules = batch.local_search_schedules(
                [getattr(seed, "schedule", seed) for seed in seeds],
                **run_params,
            )
        else:  # pragma: no cover - registry flag without batch wiring
            raise RuntimeError(
                f"algorithm {spec.name!r} declares supports_batch but "
                "BatchSession has no stacked dispatch for it"
            )
        wall = time.perf_counter() - start
        results = []
        for index, (session, schedule) in enumerate(
            zip(self.sessions, schedules)
        ):
            delta = backends[index].flip_risk_events - before[index]
            result = ScheduleResult(
                schedule=schedule,
                instance=session.instance,
                provenance=Provenance(
                    algorithm=spec.name,
                    params=dict(params),
                    backend=backends[index].name,
                    sparse_epsilon=batch.contexts[index].sparse_epsilon,
                    engine=True,
                    kernels=True,
                    wall_seconds=wall,
                    flip_risk_events=delta,
                    certified=(
                        delta == 0 if spec.capabilities.certifiable else None
                    ),
                    batch_fallback=batch.fallback,
                ),
            )
            session._last_algorithm = spec.name
            session._last_params = dict(params)
            session.last_result = result
            results.append(result)
        return results

    def validate(self) -> "BatchSession":
        """Batched validation of every session's latest result."""
        schedules = []
        for session in self.sessions:
            if session.last_result is None:
                raise InvalidScheduleError(
                    "validate() needs a schedule per session; call "
                    "schedule() first"
                )
            schedules.append(session.last_result.schedule)
        self.batch.validate_schedules(schedules)
        return self


def schedule_batch(
    problems: Sequence[Union[Problem, Instance]],
    algorithm: str = "first_fit",
    rng: Any = None,
    pool: Optional[ContextPool] = None,
    **params: Any,
) -> List[ScheduleResult]:
    """One-shot :meth:`BatchSession.schedule` over *problems*."""
    return BatchSession(problems, pool=pool).schedule(
        algorithm, rng=rng, **params
    )
