"""The nested instance of §1.2.

``n`` bidirectional requests on the line with ``u_i = -b^i`` and
``v_i = b^i`` (the paper uses ``b = 2``).  The paper's intuition: the
uniform and linear assignments schedule only O(1) of these requests
simultaneously (inner pairs drown outer pairs, respectively the other
way around), while the square-root assignment balances interference
and schedules a constant fraction at once.
"""

from __future__ import annotations

import math
from typing import Union

from repro.core.instance import Direction, Instance
from repro.geometry.line import LineMetric


def nested_instance(
    n: int,
    base: float = 2.0,
    alpha: float = 3.0,
    beta: float = 1.0,
    direction: Union[Direction, str] = Direction.BIDIRECTIONAL,
) -> Instance:
    """Build the nested instance ``(u_i, v_i) = (-base^i, +base^i)``.

    Parameters
    ----------
    n:
        Number of requests (indices ``i = 1 .. n``).
    base:
        Nesting growth factor ``b > 1``.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if base <= 1:
        raise ValueError("base must be > 1")
    if n * alpha * math.log(base) > math.log(1e300):
        raise ValueError(
            f"nested instance with n={n}, base={base}, alpha={alpha} "
            "overflows double precision losses"
        )
    coordinates = []
    pairs = []
    for i in range(1, n + 1):
        radius = float(base) ** i
        coordinates.append(-radius)
        coordinates.append(radius)
        pairs.append((2 * (i - 1), 2 * (i - 1) + 1))
    metric = LineMetric(coordinates)
    return Instance(
        metric,
        [p[0] for p in pairs],
        [p[1] for p in pairs],
        direction=direction,
        alpha=alpha,
        beta=beta,
    )
