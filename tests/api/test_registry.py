"""Algorithm registry: resolution, capability enforcement, adapters."""

import numpy as np
import pytest

from repro.instances.random_instances import random_uniform_instance
from repro.power.oblivious import SquareRootPower
from repro.scheduling.distributed import distributed_coloring
from repro.scheduling.exact import exact_minimum_colors
from repro.scheduling.firstfit import (
    first_fit_free_power_schedule,
    first_fit_schedule,
)
from repro.scheduling.gain_scaling import (
    densest_subset_at_gain,
    rescale_gain_coloring,
)
from repro.scheduling.local_search import improve_schedule
from repro.scheduling.peeling import peeling_schedule
from repro.scheduling.protocol_model import protocol_schedule
from repro.scheduling.registry import (
    AlgorithmCapabilities,
    AlgorithmSpec,
    algorithm_names,
    get_algorithm,
    list_algorithms,
    register,
    run_algorithm,
)
from repro.scheduling.sqrt_coloring import sqrt_coloring
from repro.scheduling.trivial import trivial_schedule

NINE = (
    "trivial",
    "first_fit",
    "peeling",
    "gain_scaling",
    "sqrt_coloring",
    "local_search",
    "distributed",
    "exact",
    "protocol_model",
)


@pytest.fixture
def instance():
    return random_uniform_instance(12, rng=3)


@pytest.fixture
def powers(instance):
    return SquareRootPower()(instance)


class TestResolution:
    def test_all_nine_schedulers_registered(self):
        names = algorithm_names()
        for name in NINE:
            assert name in names

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(KeyError, match="first_fit"):
            get_algorithm("does_not_exist")

    def test_list_matches_names(self):
        assert [spec.name for spec in list_algorithms()] == algorithm_names()

    def test_duplicate_registration_rejected(self):
        spec = get_algorithm("trivial")
        with pytest.raises(ValueError, match="already registered"):
            register(spec)

    def test_flags_rendering(self):
        caps = get_algorithm("first_fit").capabilities
        rendered = caps.flags()
        assert "powers" in rendered and "batch" in rendered
        assert "certifiable" in rendered
        assert "randomized" in get_algorithm("sqrt_coloring").capabilities.flags()


class TestCapabilityEnforcement:
    def test_needs_powers_missing(self, instance):
        with pytest.raises(TypeError, match="powers"):
            run_algorithm("first_fit", instance)

    def test_self_powered_rejects_powers(self, instance, powers):
        with pytest.raises(TypeError, match="chooses its own powers"):
            run_algorithm("trivial", instance, powers=powers)

    def test_deterministic_rejects_rng(self, instance, powers):
        with pytest.raises(TypeError, match="deterministic"):
            run_algorithm("first_fit", instance, powers=powers, rng=0)

    def test_unknown_param_propagates_as_type_error(self, instance, powers):
        with pytest.raises(TypeError):
            run_algorithm("first_fit", instance, powers=powers, bogus=1)

    def test_exact_free_power_opt_out(self, instance):
        outcome = run_algorithm("exact", instance, free_power=True)
        assert outcome.extras["optimal_colors"] == outcome.schedule.num_colors

    def test_local_search_requires_schedule(self, instance):
        with pytest.raises(TypeError, match="schedule="):
            run_algorithm("local_search", instance)

    def test_capabilities_declarative(self):
        assert get_algorithm("protocol_model").capabilities.supports_sparse is False
        assert get_algorithm("first_fit").capabilities.supports_batch is True
        assert get_algorithm("sqrt_coloring").capabilities.deterministic is False
        assert get_algorithm("exact").capabilities.needs_powers is True

    def test_sparse_default_warns_for_unsupported_algorithm(
        self, instance, powers
    ):
        from repro.core.gains import backend_scope

        with backend_scope("sparse"):
            with pytest.warns(RuntimeWarning, match="sparse-backend"):
                run_algorithm("protocol_model", instance, powers=powers)

    def test_sparse_capable_algorithm_does_not_warn(self, instance, powers):
        import warnings as _warnings

        from repro.core.gains import backend_scope

        with backend_scope("sparse"):
            with _warnings.catch_warnings():
                _warnings.simplefilter("error", RuntimeWarning)
                run_algorithm("first_fit", instance, powers=powers)


class TestAdapterBitIdentity:
    """Registry outcomes must equal the direct implementation calls."""

    def test_trivial(self, instance):
        out = run_algorithm("trivial", instance)
        np.testing.assert_array_equal(
            out.schedule.colors, trivial_schedule(instance).colors
        )

    def test_first_fit(self, instance, powers):
        out = run_algorithm("first_fit", instance, powers=powers)
        ref = first_fit_schedule(instance, powers)
        np.testing.assert_array_equal(out.schedule.colors, ref.colors)
        np.testing.assert_array_equal(out.schedule.powers, ref.powers)

    def test_first_fit_free_power(self, instance):
        out = run_algorithm("first_fit_free_power", instance)
        ref = first_fit_free_power_schedule(instance)
        np.testing.assert_array_equal(out.schedule.colors, ref.colors)

    def test_peeling(self, instance, powers):
        out = run_algorithm("peeling", instance, powers=powers)
        np.testing.assert_array_equal(
            out.schedule.colors, peeling_schedule(instance, powers).colors
        )

    def test_gain_scaling_with_densest_extra(self, instance, powers):
        target = 2.0 * instance.beta
        out = run_algorithm(
            "gain_scaling", instance, powers=powers, gamma_target=target
        )
        ref = rescale_gain_coloring(instance, powers, target)
        np.testing.assert_array_equal(out.schedule.colors, ref.colors)
        subset, _ = densest_subset_at_gain(instance, powers, target)
        np.testing.assert_array_equal(out.extras["densest_subset"], subset)

    def test_sqrt_coloring_with_stats(self, instance):
        out = run_algorithm("sqrt_coloring", instance, rng=11)
        ref, stats = sqrt_coloring(instance, rng=11)
        np.testing.assert_array_equal(out.schedule.colors, ref.colors)
        assert out.stats.rounds == stats.rounds
        assert out.stats.lp_solves == stats.lp_solves

    def test_local_search(self, instance, powers):
        base = first_fit_schedule(instance, powers)
        out = run_algorithm("local_search", instance, schedule=base)
        ref = improve_schedule(instance, base)
        np.testing.assert_array_equal(out.schedule.colors, ref.colors)

    def test_distributed_with_stats(self, instance):
        out = run_algorithm("distributed", instance, rng=5)
        ref, stats = distributed_coloring(instance, rng=5)
        np.testing.assert_array_equal(out.schedule.colors, ref.colors)
        assert out.stats.slots == stats.slots

    def test_exact(self, instance, powers):
        out = run_algorithm("exact", instance, powers=powers)
        opt, ref = exact_minimum_colors(instance, powers)
        assert out.extras["optimal_colors"] == opt
        np.testing.assert_array_equal(out.schedule.colors, ref.colors)

    def test_protocol_model(self, instance, powers):
        out = run_algorithm("protocol_model", instance, powers=powers)
        ref, raw = protocol_schedule(instance, powers)
        np.testing.assert_array_equal(out.schedule.colors, ref.colors)
        assert out.extras["raw_protocol_colors"] == raw


class TestOutcomeDefaults:
    def test_default_extras_is_immutable_and_unshared(self):
        from repro.scheduling.registry import AlgorithmOutcome

        a = AlgorithmOutcome(schedule=None)
        with pytest.raises(TypeError):
            a.extras["polluted"] = 1
        assert dict(AlgorithmOutcome(schedule=None).extras) == {}


class TestExtensibility:
    def test_register_new_substrate(self, instance):
        def adapter(inst, powers, rng, params):
            from repro.scheduling.registry import AlgorithmOutcome
            from repro.scheduling.trivial import trivial_schedule

            return AlgorithmOutcome(trivial_schedule(inst), None, {})

        name = "test_only_substrate"
        spec = AlgorithmSpec(
            name=name,
            summary="test",
            capabilities=AlgorithmCapabilities(
                needs_powers=False, deterministic=True
            ),
            adapter=adapter,
        )
        register(spec)
        try:
            out = run_algorithm(name, instance)
            assert out.schedule.num_colors == instance.n
        finally:
            from repro.scheduling import registry as _registry

            _registry._REGISTRY.pop(name)
