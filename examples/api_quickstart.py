#!/usr/bin/env python
"""The unified solver API in five minutes.

Walks the ``Problem -> Session -> ScheduleResult`` facade end to end:
resolving algorithms by name from the registry, reading provenance
(backend, certification, wall time), growing a session incrementally,
switching to the sparse gain backend, and batching many problems
through one stacked kernel pass.

Run:  python examples/api_quickstart.py [seed]
"""

import sys

from repro import (
    BatchSession,
    Problem,
    list_algorithms,
    random_uniform_instance,
)


def main(seed: int = 0) -> None:
    # -- the registry ---------------------------------------------------
    print("registered algorithms:")
    for spec in list_algorithms():
        print(f"  {spec.name:<22} [{spec.capabilities.flags()}]")

    # -- one problem, one session ---------------------------------------
    instance = random_uniform_instance(40, side=100.0, rng=seed)
    session = Problem(instance).session()  # sqrt powers by default

    result = session.schedule("first_fit")
    prov = result.provenance
    print(f"\nfirst_fit: {result.num_colors} colors "
          f"(backend={prov.backend}, certified={prov.certified}, "
          f"{prov.wall_seconds * 1e3:.1f} ms)")

    improved = session.schedule("local_search", schedule=result)
    print(f"local_search: {improved.num_colors} colors")

    lp = session.schedule("sqrt_coloring", rng=seed)
    print(f"sqrt_coloring: {lp.num_colors} colors "
          f"({lp.stats.lp_solves} LP solves)")

    # -- incremental: new requests arrive -------------------------------
    session.add_requests([(0, 11), (2, 23)])
    regrown = session.reschedule("first_fit")
    print(f"\nafter add_requests: n={session.instance.n}, "
          f"{regrown.num_colors} colors")

    # -- the sparse backend, certified ----------------------------------
    sparse = Problem(instance, backend="sparse").session().schedule("first_fit")
    print(f"\nsparse backend: {sparse.num_colors} colors, "
          f"certified dense-equal: {sparse.provenance.certified}")

    # -- many problems, one stacked kernel pass -------------------------
    problems = [
        Problem(random_uniform_instance(24, rng=seed + i), backend="dense")
        for i in range(8)
    ]
    results = BatchSession(problems).schedule("first_fit")
    print(f"\nbatch of {len(results)}: "
          f"{[r.num_colors for r in results]} colors "
          f"(stacked: {results[0].provenance.batch_fallback is None})")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 0)
