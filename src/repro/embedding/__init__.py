"""Metric embedding machinery for the Theorem 2 pipeline.

* :mod:`~repro.embedding.hst` — FRT-style random hierarchically
  separated trees: dominating tree metrics with expected O(log n)
  stretch.
* :mod:`~repro.embedding.tree_ensemble` — Lemma 6: an ensemble of
  r = O(log n) trees such that every node has low stretch in at least
  a 9/10 fraction of them (its *cores*).
* :mod:`~repro.embedding.star_decomposition` — Lemma 9: recursive
  centroid decomposition of a tree metric into stars, applying the
  Lemma 5 star analysis at every level.
"""

from repro.embedding.hst import HstEmbedding, build_hst
from repro.embedding.star_decomposition import Lemma9Result, lemma9_subset
from repro.embedding.tree_ensemble import (
    TreeEnsemble,
    TreeEnsembleMember,
    build_tree_ensemble,
)

__all__ = [
    "HstEmbedding",
    "build_hst",
    "TreeEnsemble",
    "TreeEnsembleMember",
    "build_tree_ensemble",
    "Lemma9Result",
    "lemma9_subset",
]
