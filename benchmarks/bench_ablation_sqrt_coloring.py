"""Ablations of the Theorem 15 algorithm's design choices.

DESIGN.md calls out three tunables of the Section 5 pipeline:

* the LP relaxation vs a plain greedy sweep,
* the number of randomized-rounding trials,
* (implicitly) the processing granularity — distance classes group
  links within a factor 4.

Each ablation times the variant and records the colors it produced in
``benchmarks/results/ablation_sqrt_coloring.md``.
"""

import pytest

from repro.instances.random_instances import clustered_instance
from repro.scheduling.sqrt_coloring import sqrt_coloring
from repro.util.tables import Table


@pytest.fixture(scope="module")
def instance():
    return clustered_instance(40, beta=0.8, rng=123)


@pytest.fixture(scope="module")
def ablation_table():
    return Table(
        title="Ablation: Theorem 15 design choices (n=40 clustered)",
        columns=["variant", "colors"],
    )


def test_ablation_lp(benchmark, instance, ablation_table, save_table):
    schedule, _ = benchmark.pedantic(
        sqrt_coloring,
        args=(instance,),
        kwargs=dict(rng=1, use_lp=True),
        rounds=1,
        iterations=1,
    )
    schedule.validate(instance)
    ablation_table.add_row(variant="lp", colors=schedule.num_colors)
    save_table("ablation_sqrt_coloring", ablation_table)


def test_ablation_greedy(benchmark, instance, ablation_table, save_table):
    schedule, _ = benchmark.pedantic(
        sqrt_coloring,
        args=(instance,),
        kwargs=dict(rng=1, use_lp=False),
        rounds=1,
        iterations=1,
    )
    schedule.validate(instance)
    ablation_table.add_row(variant="greedy-sweep", colors=schedule.num_colors)
    save_table("ablation_sqrt_coloring", ablation_table)


@pytest.mark.parametrize("trials", [1, 8, 32])
def test_ablation_rounding_trials(benchmark, instance, ablation_table, save_table, trials):
    schedule, _ = benchmark.pedantic(
        sqrt_coloring,
        args=(instance,),
        kwargs=dict(rng=1, use_lp=True, rounding_trials=trials),
        rounds=1,
        iterations=1,
    )
    schedule.validate(instance)
    ablation_table.add_row(
        variant=f"lp-rounding-{trials}", colors=schedule.num_colors
    )
    save_table("ablation_sqrt_coloring", ablation_table)
