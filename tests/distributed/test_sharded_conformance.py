"""Conformance grid for the sharded gain backend.

The ISSUE contract: every :class:`repro.core.gains.GainBackend`
primitive of a :class:`repro.distributed.ShardedBackend` is
**bit-identical** to the dense reference at ``epsilon = 0`` for
W ∈ {1, 2, 4, 8} — including shared-node instances with infinite gains
and both link directions — and to a :class:`SparseBackend` of the same
``epsilon`` when pruning is on.  First-fit through the sharded driver
(`first_fit_colors_sharded`) must color identically to the dense path,
end to end through :class:`repro.Problem`.

All cases here run on the serial executor (the conformance reference);
real-process equivalence is covered by ``test_process_and_faults.py``.
"""

from contextlib import contextmanager

import numpy as np
import pytest

from repro.api import Problem
from repro.core import gains
from repro.core.context import clear_context_cache, get_context
from repro.core.gains import (
    backend_scope,
    build_backend,
    shard_executor_scope,
    shard_workers_scope,
)
from repro.core.instance import Direction, Instance
from repro.core.kernels import first_fit_colors_sharded
from repro.distributed import ShardedBackend, shard_bounds
from repro.geometry.line import LineMetric
from repro.instances.random_instances import random_uniform_instance
from repro.power.oblivious import SquareRootPower
from repro.scheduling.firstfit import first_fit_schedule
from repro.scheduling.registry import run_algorithm

WORKER_GRID = (1, 2, 4, 8)


def _shared_node_instance(direction):
    metric = LineMetric([0.0, 1.0, 2.5, 4.5, 7.0])
    pairs = [(0, 1), (1, 2), (2, 3), (3, 4)]
    return Instance(
        metric,
        [p[0] for p in pairs],
        [p[1] for p in pairs],
        direction=direction,
    )


def _grid():
    cases = {}
    for direction in (Direction.DIRECTED, Direction.BIDIRECTIONAL):
        tag = direction.value[:3]
        inst = random_uniform_instance(24, rng=31, direction=direction)
        cases[f"euclid-{tag}"] = (inst, SquareRootPower()(inst))
        shared = _shared_node_instance(direction)
        cases[f"shared-{tag}"] = (shared, np.ones(shared.n))
    return cases


GRID = _grid()


@contextmanager
def gains_epsilon(value):
    previous = gains.default_sparse_epsilon()
    gains.set_sparse_epsilon(value)
    try:
        yield
    finally:
        gains.set_sparse_epsilon(previous)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_context_cache()
    yield
    clear_context_cache()


def _sharded(instance, powers, workers, epsilon=0.0):
    return ShardedBackend.build(
        instance, powers, epsilon=epsilon, workers=workers, executor="serial"
    )


class TestShardBounds:
    def test_partition_properties(self):
        for n in (0, 1, 5, 24, 131):
            for workers in WORKER_GRID:
                bounds = shard_bounds(n, workers)
                assert len(bounds) == workers
                assert bounds[0][0] == 0
                assert bounds[-1][1] == n
                sizes = [hi - lo for lo, hi in bounds]
                assert all(s >= 0 for s in sizes)
                assert max(sizes) - min(sizes) <= 1
                for (_, prev_hi), (lo, _) in zip(bounds, bounds[1:]):
                    assert prev_hi == lo

    def test_workers_validated(self):
        with pytest.raises(ValueError, match="workers"):
            shard_bounds(8, 0)


class TestLosslessBitIdentity:
    """Sharded at epsilon=0 must reproduce every dense primitive
    bitwise, at every worker count."""

    @pytest.mark.parametrize("name", sorted(GRID))
    @pytest.mark.parametrize("workers", WORKER_GRID)
    def test_primitives_match_dense(self, name, workers):
        instance, powers = GRID[name]
        dense = build_backend(instance, powers, backend="dense")
        sharded = _sharded(instance, powers, workers)
        assert sharded.workers == workers
        assert sharded.is_lossless
        assert sharded.directed == dense.directed
        assert sharded.has_infinite_gains == dense.has_infinite_gains
        np.testing.assert_array_equal(sharded.pruned_mass_u, 0.0)
        np.testing.assert_array_equal(sharded.pruned_mass_v, 0.0)
        n = instance.n
        idx = np.arange(0, n, 2)
        members = np.asarray([0, n - 1])
        colors = np.arange(n) % 3
        for endpoint in ("u", "v"):
            def op(backend, method, *args, e=endpoint):
                return getattr(backend, f"{method}_{e}")(*args)

            for j in (0, n // 2, n - 1):
                np.testing.assert_array_equal(
                    op(dense, "col", j), op(sharded, "col", j)
                )
                np.testing.assert_array_equal(
                    op(dense, "row", j), op(sharded, "row", j)
                )
            np.testing.assert_array_equal(
                op(dense, "gather_cols", members),
                op(sharded, "gather_cols", members),
            )
            np.testing.assert_array_equal(
                op(dense, "block", idx), op(sharded, "block", idx)
            )
            np.testing.assert_array_equal(
                op(dense, "cross_block", idx, members),
                op(sharded, "cross_block", idx, members),
            )
            np.testing.assert_array_equal(
                op(dense, "row_sums", idx), op(sharded, "row_sums", idx)
            )
            np.testing.assert_array_equal(
                op(dense, "row_sums", idx, members),
                op(sharded, "row_sums", idx, members),
            )
            for c in (None, colors):
                np.testing.assert_array_equal(
                    op(dense, "class_sum", c), op(sharded, "class_sum", c)
                )
            np.testing.assert_array_equal(
                op(dense, "dense"), op(sharded, "dense")
            )
        np.testing.assert_array_equal(dense.dense_ut(), sharded.dense_ut())
        np.testing.assert_array_equal(dense.dense_vt(), sharded.dense_vt())
        sharded.close()

    @pytest.mark.parametrize("workers", WORKER_GRID)
    def test_first_fit_schedule_matches_dense(self, workers):
        instance, powers = GRID["euclid-dir"]
        with backend_scope("dense"):
            baseline = first_fit_schedule(instance, powers)
        with backend_scope("sharded"), shard_workers_scope(
            workers
        ), shard_executor_scope("serial"), gains_epsilon(0.0):
            sharded = first_fit_schedule(instance, powers)
        np.testing.assert_array_equal(baseline.colors, sharded.colors)


class TestPrunedMatchesSparse:
    """At epsilon > 0, sharding is transparent: every primitive equals
    a SparseBackend of the same epsilon bit for bit."""

    @pytest.mark.parametrize("workers", (2, 4))
    @pytest.mark.parametrize("name", ("euclid-dir", "euclid-bid"))
    def test_primitives_match_sparse(self, name, workers):
        instance, powers = GRID[name]
        epsilon = 0.05
        sparse = build_backend(
            instance, powers, backend="sparse", sparse_epsilon=epsilon
        )
        sharded = _sharded(instance, powers, workers, epsilon=epsilon)
        assert not sharded.is_lossless
        assert sharded.nnz == sparse.nnz
        np.testing.assert_array_equal(
            sharded.pruned_mass_u, sparse.pruned_mass_u
        )
        np.testing.assert_array_equal(
            sharded.pruned_mass_v, sparse.pruned_mass_v
        )
        n = instance.n
        idx = np.arange(0, n, 3)
        colors = np.arange(n) % 4
        for endpoint in ("u", "v"):
            def op(backend, method, *args, e=endpoint):
                return getattr(backend, f"{method}_{e}")(*args)

            np.testing.assert_array_equal(
                op(sparse, "dense"), op(sharded, "dense")
            )
            np.testing.assert_array_equal(
                op(sparse, "col", n // 2), op(sharded, "col", n // 2)
            )
            np.testing.assert_array_equal(
                op(sparse, "class_sum", colors),
                op(sharded, "class_sum", colors),
            )
            np.testing.assert_array_equal(
                op(sparse, "row_sums", idx), op(sharded, "row_sums", idx)
            )
        sharded.close()


class TestColumnCache:
    def test_prefetch_then_hits_are_local(self):
        instance, powers = GRID["euclid-dir"]
        backend = _sharded(instance, powers, 4)
        dense = build_backend(instance, powers, backend="dense")
        js = np.arange(6)
        backend.prefetch_columns(js)
        for j in js:
            np.testing.assert_array_equal(
                backend.col_u(int(j)), dense.col_u(int(j))
            )
            np.testing.assert_array_equal(
                backend.col_v(int(j)), dense.col_v(int(j))
            )
        backend.close()

    def test_cache_is_bounded(self):
        instance, powers = GRID["euclid-dir"]
        backend = _sharded(instance, powers, 2)
        limit = 4
        backend.COLUMN_CACHE_LIMIT = limit
        for j in range(instance.n):
            backend.col_u(j)
        assert len(backend._col_cache) <= limit
        backend.close()

    def test_directed_columns_alias(self):
        instance, powers = GRID["euclid-dir"]
        backend = _sharded(instance, powers, 2)
        assert backend.col_v(0) is backend.col_u(0)
        backend.close()


class TestShardedFirstFitDriver:
    """The windowed admission driver must be window-size invariant."""

    @pytest.mark.parametrize("window", (1, 3, 64))
    def test_window_invariance(self, window):
        instance, powers = GRID["euclid-dir"]
        context = get_context(
            instance, powers, backend="sharded",
            sparse_epsilon=0.0, shard_workers=2, shard_executor="serial",
        )
        order = np.argsort(-instance.link_distances, kind="stable")
        limits = context.budgets() * (1.0 + 1e-9)
        colors = first_fit_colors_sharded(
            context, order, limits, window=window
        )
        with backend_scope("dense"):
            baseline = first_fit_schedule(instance, powers)
        np.testing.assert_array_equal(colors, baseline.colors)

    def test_window_validated(self):
        instance, powers = GRID["euclid-dir"]
        context = get_context(
            instance, powers, backend="sharded",
            sparse_epsilon=0.0, shard_workers=2, shard_executor="serial",
        )
        with pytest.raises(ValueError):
            first_fit_colors_sharded(
                context, np.arange(instance.n), context.budgets(), window=0
            )


class TestProblemIntegration:
    @pytest.mark.parametrize("workers", (1, 2, 4))
    def test_problem_first_fit_bit_identical_and_certified(self, workers):
        instance, _ = GRID["euclid-bid"]
        dense_result = (
            Problem(instance, backend="dense").session().schedule("first_fit")
        )
        result = (
            Problem(
                instance,
                backend="sharded",
                workers=workers,
                shard_executor="serial",
                sparse_epsilon=0.0,
            )
            .session()
            .schedule("first_fit")
        )
        np.testing.assert_array_equal(
            dense_result.schedule.colors, result.schedule.colors
        )
        assert result.provenance.certified is True
        assert result.provenance.backend == "sharded"

    def test_registry_algorithm(self):
        instance, _ = GRID["euclid-dir"]
        powers = SquareRootPower()(instance)
        baseline = run_algorithm("first_fit", instance, powers=powers)
        sharded = run_algorithm(
            "first_fit_sharded",
            instance,
            powers=powers,
            workers=2,
            executor="serial",
        )
        np.testing.assert_array_equal(
            baseline.schedule.colors, sharded.schedule.colors
        )

    def test_workers_require_sharded_backend(self):
        instance, _ = GRID["euclid-dir"]
        with pytest.raises(ValueError, match="sharded"):
            Problem(instance, backend="dense", workers=2)
        with pytest.raises(ValueError, match="sharded"):
            Problem(instance, backend="sparse", shard_executor="serial")

    def test_context_cache_keys_on_workers(self):
        instance, powers = GRID["euclid-dir"]
        a = get_context(
            instance, powers, backend="sharded",
            sparse_epsilon=0.0, shard_workers=2, shard_executor="serial",
        )
        b = get_context(
            instance, powers, backend="sharded",
            sparse_epsilon=0.0, shard_workers=4, shard_executor="serial",
        )
        same = get_context(
            instance, powers, backend="sharded",
            sparse_epsilon=0.0, shard_workers=2, shard_executor="serial",
        )
        assert a is not b
        assert a is same
        assert a.backend.workers == 2
        assert b.backend.workers == 4

    def test_append_requests_unsupported(self):
        instance, powers = GRID["euclid-dir"]
        backend = _sharded(instance, powers, 2)
        with pytest.raises(NotImplementedError):
            backend.append_requests(instance, powers)
        backend.close()
