"""Failure-injection tests: corrupted schedules must be detected.

A verification layer is only trustworthy if it actually catches
tampering; these tests corrupt feasible schedules in targeted ways and
assert the validators notice.
"""

import numpy as np
import pytest

from repro.analysis.verify import verify_schedule
from repro.core.errors import InvalidScheduleError
from repro.core.schedule import Schedule
from repro.instances.random_instances import clustered_instance
from repro.power.oblivious import SquareRootPower
from repro.scheduling.firstfit import first_fit_schedule


@pytest.fixture
def instance():
    # Dense enough that merging color classes breaks feasibility.
    return clustered_instance(20, clusters=2, cluster_std=3.0, beta=1.0, rng=77)


@pytest.fixture
def schedule(instance):
    sched = first_fit_schedule(instance, SquareRootPower()(instance))
    sched.validate(instance)
    if sched.num_colors < 2:
        pytest.skip("instance too easy to corrupt meaningfully")
    return sched


class TestColorTampering:
    def test_merging_all_classes_detected(self, instance, schedule):
        merged = Schedule(
            colors=np.zeros(instance.n, dtype=int), powers=schedule.powers
        )
        assert not merged.is_feasible(instance)
        report = verify_schedule(instance, merged)
        assert not report.feasible
        assert report.worst_margin < 1.0

    def test_moving_one_request_detected_or_harmless(self, instance, schedule):
        # Moving a request into another class either keeps feasibility
        # (allowed) or is caught; it must never crash.
        colors = schedule.colors.copy()
        victim = int(np.argmax(instance.link_losses))
        other = (colors[victim] + 1) % schedule.num_colors
        colors[victim] = other
        tampered = Schedule(colors=colors, powers=schedule.powers)
        report = verify_schedule(instance, tampered)
        assert report.feasible in (True, False)

    def test_validate_raises_with_worst_request(self, instance, schedule):
        merged = Schedule(
            colors=np.zeros(instance.n, dtype=int), powers=schedule.powers
        )
        with pytest.raises(InvalidScheduleError, match="request"):
            merged.validate(instance)


class TestPowerTampering:
    def test_zeroing_relative_power_detected(self, instance, schedule):
        powers = schedule.powers.copy()
        # Starve the request with the longest link inside the largest class.
        classes = schedule.color_classes()
        largest = max(classes.values(), key=lambda c: c.size)
        if largest.size < 2:
            pytest.skip("no multi-request class to starve")
        victim = largest[int(np.argmax(instance.link_losses[largest]))]
        powers[victim] *= 1e-9
        tampered = Schedule(colors=schedule.colors, powers=powers)
        assert not tampered.is_feasible(instance)

    def test_boosting_one_power_hurts_neighbours(self, instance, schedule):
        powers = schedule.powers.copy()
        classes = schedule.color_classes()
        largest = max(classes.values(), key=lambda c: c.size)
        if largest.size < 2:
            pytest.skip("no multi-request class to disturb")
        powers[largest[0]] *= 1e12
        tampered = Schedule(colors=schedule.colors, powers=powers)
        assert not tampered.is_feasible(instance)

    def test_negative_power_rejected_at_construction(self, schedule):
        powers = schedule.powers.copy()
        powers[0] = -1.0
        with pytest.raises(InvalidScheduleError):
            Schedule(colors=schedule.colors, powers=powers)


class TestStructuralTampering:
    def test_truncated_schedule_rejected(self, instance, schedule):
        short = Schedule(colors=schedule.colors[:-1], powers=schedule.powers[:-1])
        with pytest.raises(InvalidScheduleError, match="covers"):
            short.validate(instance)

    def test_uniform_scaling_is_harmless(self, instance, schedule):
        # Scale invariance at sigma=0: scaling all powers is fine.
        scaled = Schedule(colors=schedule.colors, powers=schedule.powers * 1e6)
        scaled.validate(instance)
