"""Fault-injection suite for the orchestrator's retry/resume machinery.

Covers the PR's acceptance criteria: (a) injected shard crash + retry
produces a BENCH artifact bit-identical to a clean run, (b) a killed
``--jobs N`` run resumed against the same artifacts dir re-executes
only unfinished shards and matches the clean artifact, plus quarantine,
deadline, fail-fast-default and BrokenProcessPool-recovery semantics.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import textwrap

import pytest

import repro
from repro.resilience import FaultPlan, RetryPolicy, ShardFailure
from repro.resilience.faults import FAULT_KILL_EXIT, FaultSpec, InjectedFault
from repro.runner import (
    bench_to_dict,
    checkpoint_path,
    read_artifact,
    run_experiments,
    write_checkpoint,
)

SRC_DIR = str(pathlib.Path(repro.__file__).resolve().parents[1])

NO_DELAY = dict(base_delay=0.0)


def normalized(report_or_payload):
    """A bench artifact stripped of timing/attempt metadata, so two
    runs compare on results alone."""
    payload = (
        bench_to_dict(report_or_payload)
        if not isinstance(report_or_payload, dict)
        else json.loads(json.dumps(report_or_payload))
    )
    payload.pop("timings", None)
    payload.pop("failures", None)
    payload.get("env", {}).pop("jobs", None)
    for shard in payload.get("shards", []):
        shard.pop("seconds", None)
        shard.pop("attempts", None)
        shard.pop("resumed", None)
    return payload


@pytest.fixture(scope="module")
def clean_e1():
    """The reference clean fast run of e1 (two shards)."""
    return run_experiments(["e1"], fast=True, jobs=1)[0]


class TestRetryInProcess:
    def test_crash_then_retry_is_bit_identical(self, clean_e1):
        # Every shard fails its first attempt, succeeds on the second.
        plan = FaultPlan(specs=(FaultSpec(site="shard", at=(0,)),))
        report = run_experiments(
            ["e1"],
            fast=True,
            jobs=1,
            retry=RetryPolicy(max_attempts=3, **NO_DELAY),
            fault_plan=plan,
        )[0]
        assert plan.fired == 2
        assert [s.attempts for s in report.shards] == [2, 2]
        assert report.failures == []
        assert normalized(report) == normalized(clean_e1)

    def test_quarantine_keeps_siblings(self, clean_e1):
        # Shard 0 fails on every attempt; shard 1 is untouched.
        plan = FaultPlan(
            specs=(FaultSpec(site="shard", key="e1:0", at=(0, 1, 2)),)
        )
        report = run_experiments(
            ["e1"],
            fast=True,
            jobs=1,
            retry=RetryPolicy(max_attempts=3, **NO_DELAY),
            fault_plan=plan,
        )[0]
        assert [f.shard_index for f in report.failures] == [0]
        failure = report.failures[0]
        assert isinstance(failure, ShardFailure)
        assert failure.error_type == "InjectedFault"
        assert failure.attempts == 3
        # The healthy shard's rows survive, in order.
        healthy = [s.key for s in report.shards]
        assert healthy == [clean_e1.shards[1].key]

    def test_all_shards_quarantined_yields_empty_table(self):
        plan = FaultPlan(specs=(FaultSpec(site="shard", at=(0,)),))
        report = run_experiments(
            ["e1"],
            fast=True,
            jobs=1,
            retry=RetryPolicy(max_attempts=1),
            fault_plan=plan,
        )[0]
        assert len(report.failures) == 2
        assert len(report.table) == 0
        assert any("quarantined" in note for note in report.table.notes)

    def test_no_policy_preserves_fail_fast(self):
        # Without a RetryPolicy anywhere, the historical contract
        # holds: the first shard failure aborts the run.
        plan = FaultPlan(specs=(FaultSpec(site="shard", at=(0,)),))
        with pytest.raises(InjectedFault):
            run_experiments(["e1"], fast=True, jobs=1, fault_plan=plan)

    def test_default_policy_is_quarantine_without_retry(self):
        # RetryPolicy() keeps max_attempts=1 — no second attempt — but
        # opting into a policy turns aborts into quarantines.
        plan = FaultPlan(specs=(FaultSpec(site="shard", key="e1:0", at=(0,)),))
        report = run_experiments(
            ["e1"],
            fast=True,
            jobs=1,
            retry=RetryPolicy(),
            fault_plan=plan,
        )[0]
        assert [f.attempts for f in report.failures] == [1]

    def test_spec_pin_overrides_run_level_policy(self, monkeypatch):
        import dataclasses

        from repro.experiments import registry as registry_mod

        registry = dict(registry_mod.get_registry())
        registry["e1"] = dataclasses.replace(
            registry["e1"], retry=RetryPolicy(max_attempts=2, **NO_DELAY)
        )
        monkeypatch.setattr(registry_mod, "get_registry", lambda: registry)
        monkeypatch.setattr(
            "repro.runner.orchestrator._registry", lambda: registry
        )
        plan = FaultPlan(specs=(FaultSpec(site="shard", at=(0,)),))
        # Run-level policy would abort after 1 attempt; the pin's 2
        # attempts win, so the run completes cleanly.
        report = run_experiments(
            ["e1"],
            fast=True,
            jobs=1,
            retry=RetryPolicy(max_attempts=1),
            fault_plan=plan,
        )[0]
        assert report.failures == []
        assert [s.attempts for s in report.shards] == [2, 2]

    def test_failures_round_trip_through_artifact(self, tmp_path):
        plan = FaultPlan(specs=(FaultSpec(site="shard", key="e1:0", at=(0,)),))
        run_experiments(
            ["e1"],
            fast=True,
            jobs=1,
            artifacts_dir=str(tmp_path),
            retry=RetryPolicy(),
            fault_plan=plan,
        )
        loaded = read_artifact(tmp_path / "BENCH_e1.json")
        assert [f.error_type for f in loaded.failures] == ["InjectedFault"]
        assert loaded.failures[0].shard_index == 0


class TestCheckpointResume:
    def test_interrupted_run_resumes_only_unfinished_shards(
        self, tmp_path, clean_e1
    ):
        # Kill the run (via an ordinary exception here; SIGKILL below)
        # right after shard 0's checkpoint lands.
        plan = FaultPlan(
            specs=(FaultSpec(site="checkpoint", key="e1:0", at=(0,)),)
        )
        with pytest.raises(InjectedFault):
            run_experiments(
                ["e1"],
                fast=True,
                jobs=1,
                artifacts_dir=str(tmp_path),
                fault_plan=plan,
            )
        assert checkpoint_path(tmp_path, "e1", 0).is_file()
        assert not (tmp_path / "BENCH_e1.json").exists()

        resumed = run_experiments(
            ["e1"], fast=True, jobs=1, artifacts_dir=str(tmp_path)
        )[0]
        assert [s.resumed for s in resumed.shards] == [True, False]
        assert normalized(resumed) == normalized(clean_e1)
        # Checkpoints are cleared once the final artifact lands.
        assert not checkpoint_path(tmp_path, "e1", 0).exists()

    def test_resume_false_ignores_checkpoints(self, tmp_path):
        plan = FaultPlan(
            specs=(FaultSpec(site="checkpoint", key="e1:0", at=(0,)),)
        )
        with pytest.raises(InjectedFault):
            run_experiments(
                ["e1"],
                fast=True,
                jobs=1,
                artifacts_dir=str(tmp_path),
                fault_plan=plan,
            )
        report = run_experiments(
            ["e1"], fast=True, jobs=1, artifacts_dir=str(tmp_path), resume=False
        )[0]
        assert [s.resumed for s in report.shards] == [False, False]

    def test_stale_checkpoint_is_ignored(self, tmp_path, clean_e1):
        from repro.util.tables import Table

        # A checkpoint whose seed doesn't match the spec must silently
        # re-run, not splice foreign rows into the merged table.
        bogus = Table(title="bogus", columns=["x"])
        bogus.add_row(x=1)
        write_checkpoint(tmp_path, "e1", 0, "n=4", seed=999999, table=bogus, seconds=0.1)
        report = run_experiments(
            ["e1"], fast=True, jobs=1, artifacts_dir=str(tmp_path)
        )[0]
        assert [s.resumed for s in report.shards] == [False, False]
        assert normalized(report) == normalized(clean_e1)

    def test_backend_tag_mismatch_invalidates_checkpoint(self, tmp_path):
        from repro.runner import read_checkpoint
        from repro.util.tables import Table

        # Shard tables can legitimately differ across backends (sparse
        # pruning, array namespaces), so the resolved backend tag is
        # part of the staleness key.
        table = Table(title="t", columns=["x"])
        table.add_row(x=1)
        write_checkpoint(
            tmp_path, "e1", 0, "n=4", seed=7, table=table, seconds=0.1,
            backend="sparse",
        )
        hit = read_checkpoint(tmp_path, "e1", 0, "n=4", seed=7, backend="sparse")
        assert hit is not None
        assert read_checkpoint(
            tmp_path, "e1", 0, "n=4", seed=7, backend="dense"
        ) is None
        assert read_checkpoint(
            tmp_path, "e1", 0, "n=4", seed=7, backend="array:numpy"
        ) is None

    def test_pre_backend_tag_checkpoint_reruns(self, tmp_path):
        from repro.runner import read_checkpoint
        from repro.util.tables import Table

        # Checkpoints written before the backend tag existed carry
        # backend=null and never resume under a tagged reader.
        table = Table(title="t", columns=["x"])
        table.add_row(x=1)
        write_checkpoint(
            tmp_path, "e1", 0, "n=4", seed=7, table=table, seconds=0.1
        )
        assert read_checkpoint(
            tmp_path, "e1", 0, "n=4", seed=7, backend="dense"
        ) is None

    def test_resume_under_different_backend_reruns_shards(self, tmp_path):
        plan = FaultPlan(
            specs=(FaultSpec(site="checkpoint", key="e1:0", at=(0,)),)
        )
        with pytest.raises(InjectedFault):
            run_experiments(
                ["e1"],
                fast=True,
                jobs=1,
                artifacts_dir=str(tmp_path),
                fault_plan=plan,
                backend="dense",
            )
        assert checkpoint_path(tmp_path, "e1", 0).is_file()
        # A --backend switch between the interrupted run and the resume
        # must invalidate the dense-tagged checkpoint.
        report = run_experiments(
            ["e1"],
            fast=True,
            jobs=1,
            artifacts_dir=str(tmp_path),
            backend="sparse",
        )[0]
        assert [s.resumed for s in report.shards] == [False, False]

    def test_corrupt_checkpoint_is_ignored(self, tmp_path, clean_e1):
        path = checkpoint_path(tmp_path, "e1", 0)
        path.parent.mkdir(parents=True)
        path.write_text('{"kind": "shard_checkpoint", "truncated...')
        report = run_experiments(
            ["e1"], fast=True, jobs=1, artifacts_dir=str(tmp_path)
        )[0]
        assert [s.resumed for s in report.shards] == [False, False]
        assert normalized(report) == normalized(clean_e1)


@pytest.mark.slow
class TestProcessPoolRecovery:
    """Worker-death recovery: these spawn real process pools."""

    def test_worker_kill_recovers_bit_identically(self, clean_e1):
        # Shard 1's first attempt SIGKILLs its worker: the pool breaks,
        # the scheduler rebuilds it, degrades to serial probing, and
        # the retried shard completes — bit-identical to a clean run.
        plan = FaultPlan(
            specs=(FaultSpec(site="shard", kind="kill", key="e1:1", at=(0,)),)
        )
        report = run_experiments(
            ["e1"],
            fast=True,
            jobs=2,
            retry=RetryPolicy(max_attempts=2, **NO_DELAY),
            fault_plan=plan,
        )[0]
        assert report.failures == []
        assert normalized(report) == normalized(clean_e1)
        # Only the poison shard consumed retry budget.
        attempts = {s.key: s.attempts for s in report.shards}
        assert attempts[clean_e1.shards[0].key] == 1
        assert attempts[clean_e1.shards[1].key] == 2

    def test_poison_shard_is_quarantined(self, clean_e1):
        # Kills on every attempt: quarantined as BrokenProcessPool,
        # sibling shard unharmed.
        plan = FaultPlan(
            specs=(
                FaultSpec(site="shard", kind="kill", key="e1:1", at=(0, 1)),
            )
        )
        report = run_experiments(
            ["e1"],
            fast=True,
            jobs=2,
            retry=RetryPolicy(max_attempts=2, **NO_DELAY),
            fault_plan=plan,
        )[0]
        assert [f.error_type for f in report.failures] == ["BrokenProcessPool"]
        assert report.failures[0].attempts == 2
        assert [s.key for s in report.shards] == [clean_e1.shards[0].key]

    def test_deadline_reclaims_stuck_worker(self, clean_e1):
        # Shard 0's first attempt hangs well past the deadline; the
        # attempt times out, the pool is rebuilt, the retry succeeds.
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="shard",
                    kind="delay",
                    key="e1:0",
                    at=(0,),
                    delay_s=20.0,
                ),
            )
        )
        report = run_experiments(
            ["e1"],
            fast=True,
            jobs=2,
            retry=RetryPolicy(max_attempts=2, deadline=1.0, **NO_DELAY),
            fault_plan=plan,
        )[0]
        assert report.failures == []
        assert normalized(report) == normalized(clean_e1)

    def test_deadline_exhaustion_quarantines_as_timeout(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="shard",
                    kind="delay",
                    key="e1:0",
                    at=(0, 1),
                    delay_s=20.0,
                ),
            )
        )
        report = run_experiments(
            ["e1"],
            fast=True,
            jobs=2,
            retry=RetryPolicy(max_attempts=2, deadline=1.0, **NO_DELAY),
            fault_plan=plan,
        )[0]
        assert [f.error_type for f in report.failures] == ["TimeoutError"]
        assert "deadline" in report.failures[0].error


@pytest.mark.slow
class TestSigkillResume:
    def test_killed_jobs4_run_resumes_bit_identically(self, tmp_path):
        """Acceptance criterion (b): SIGKILL a ``--jobs 4`` run after
        its first checkpoint, resume it, and get an artifact
        bit-identical to a clean run's — having re-executed only the
        unfinished shards."""
        driver = textwrap.dedent(
            """
            import sys
            from repro.resilience import FaultPlan
            from repro.resilience.faults import FaultSpec
            from repro.runner import run_experiments

            # SIGKILL the parent right after shard (e1, 0)'s checkpoint
            # is written — a power-loss-grade interruption.
            plan = FaultPlan(
                specs=(
                    FaultSpec(
                        site="checkpoint", kind="kill", key="e1:0", at=(0,)
                    ),
                )
            )
            run_experiments(
                ["e1", "e2"],
                fast=True,
                jobs=4,
                artifacts_dir=sys.argv[1],
                fault_plan=plan,
            )
            raise SystemExit("unreachable: the kill fault did not fire")
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", driver, str(tmp_path)],
            env={**os.environ, "PYTHONPATH": SRC_DIR},
            timeout=300,
        )
        assert proc.returncode == FAULT_KILL_EXIT == -signal.SIGKILL
        assert checkpoint_path(tmp_path, "e1", 0).is_file()
        assert not (tmp_path / "BENCH_e1.json").exists()

        resumed = run_experiments(
            ["e1", "e2"], fast=True, jobs=4, artifacts_dir=str(tmp_path)
        )
        # Only the checkpointed shard is marked resumed — everything
        # else re-executed.
        assert [s.resumed for s in resumed[0].shards] == [True, False]
        assert [s.resumed for s in resumed[1].shards] == [False, False]

        clean = run_experiments(["e1", "e2"], fast=True, jobs=1)
        for resumed_report, clean_report in zip(resumed, clean):
            assert normalized(resumed_report) == normalized(clean_report)
        # And the on-disk artifacts are complete and parseable.
        for experiment in ("e1", "e2"):
            loaded = read_artifact(tmp_path / f"BENCH_{experiment}.json")
            assert loaded.experiment == experiment
