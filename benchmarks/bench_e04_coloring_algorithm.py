"""E4 — regenerate the Theorem 15 algorithm-comparison table."""

from repro.experiments import run_coloring_algorithm


def test_e04_coloring_algorithm(benchmark, save_table):
    table = benchmark.pedantic(
        run_coloring_algorithm,
        kwargs=dict(n_values=(10, 20, 40), trials=2, rng=99),
        rounds=1,
        iterations=1,
    )
    save_table("e04_coloring_algorithm", table)
    for row in table.rows:
        assert row["approx_factor"] <= 2.0 + row["log2n"]
        assert row["trivial"] >= row["first_fit"]
