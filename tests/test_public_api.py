"""Public API surface tests: everything advertised in __all__ exists
and the README quickstart works."""

import warnings

import numpy as np

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_flow(self):
        rng = np.random.default_rng(0)
        points = rng.uniform(0, 100, size=(20, 2))
        pairs = [(2 * i, 2 * i + 1) for i in range(10)]
        instance = repro.Instance.bidirectional(
            repro.EuclideanMetric(points), pairs
        )
        session = repro.Problem(instance).session()
        result = session.schedule("sqrt_coloring", rng=rng)
        assert result.validate().num_colors >= 1
        assert result.provenance.algorithm == "sqrt_coloring"

    def test_legacy_quickstart_still_works_but_warns(self):
        from repro._deprecation import reset_deprecation_registry

        rng = np.random.default_rng(0)
        points = rng.uniform(0, 100, size=(20, 2))
        pairs = [(2 * i, 2 * i + 1) for i in range(10)]
        instance = repro.Instance.bidirectional(
            repro.EuclideanMetric(points), pairs
        )
        reset_deprecation_registry()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            schedule, stats = repro.sqrt_coloring(instance, rng=rng)
        schedule.validate(instance)
        assert any(
            issubclass(w.category, repro.ReproDeprecationWarning)
            for w in caught
        )
        reset_deprecation_registry()

    def test_registry_surface(self):
        names = repro.run_algorithm.__module__  # exported callables exist
        assert names == "repro.scheduling.registry"
        assert "first_fit" in [s.name for s in repro.list_algorithms()]

    def test_error_hierarchy(self):
        assert issubclass(repro.InvalidInstanceError, repro.ReproError)
        assert issubclass(repro.InvalidScheduleError, repro.ReproError)
        assert issubclass(repro.InfeasibleError, repro.ReproError)

    def test_power_assignments_are_assignments(self):
        for cls in (
            repro.UniformPower,
            repro.LinearPower,
            repro.SquareRootPower,
        ):
            assert issubclass(cls, repro.ObliviousPowerAssignment)
            assert issubclass(cls, repro.PowerAssignment)
