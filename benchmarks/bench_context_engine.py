"""Benchmark: shared InterferenceContext engine vs. the legacy path.

Times the two hot paths the engine refactor targets —
``greedy_max_feasible_subset`` (the peeling primitive behind the
Theorem 15 repair/thinning passes) and ``sqrt_coloring`` itself — with
the engine enabled (cached gain matrices, incremental peeling) and
disabled (the pre-refactor from-scratch path, restored verbatim by
:func:`repro.core.context.engine_disabled`).  Outputs are asserted
identical between the two paths, so the comparison is apples to
apples.

``sqrt_coloring`` is run with ``use_lp=False``: the LP solve is
orthogonal to the interference engine and costs the same on both
paths, so including it would only dilute the measured speedup of the
interference machinery.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_context_engine.py
    PYTHONPATH=src python benchmarks/bench_context_engine.py --sizes 64,256

The default sizes are n in {64, 256, 1024}.  The script exits
non-zero if the speedup at the largest measured size falls below
``--target`` (default 3x) on either workload.

Reference results (one run, default sizes)::

    workload       n      legacy      engine   speedup
    greedy        64      19.7 ms       3.3 ms      6.0x
    sqrt          64      36.3 ms       5.2 ms      7.0x
    greedy       256     892.9 ms      65.9 ms     13.5x
    sqrt         256    3332.4 ms      74.4 ms     44.8x
    greedy      1024   91970.1 ms    3367.2 ms     27.3x
    sqrt        1024 1173776.5 ms   10216.4 ms    114.9x
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.analysis.capacity import greedy_max_feasible_subset
from repro.core.context import clear_context_cache, engine_disabled
from repro.instances.random_instances import random_uniform_instance
from repro.power.oblivious import SquareRootPower
from repro.runner.artifacts import BenchReport, ShardResult, write_artifact
from repro.scheduling.sqrt_coloring import sqrt_coloring
from repro.util.tables import Table


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def run(sizes, target, seed=7, artifacts=None):
    run_start = time.perf_counter()
    rows = []
    worst = {}
    for n in sizes:
        instance = random_uniform_instance(n, rng=seed)
        powers = SquareRootPower()(instance)

        clear_context_cache()
        result_engine = {}
        t_greedy_engine = _time(
            lambda: result_engine.__setitem__(
                "greedy", greedy_max_feasible_subset(instance, powers)
            )
        )
        clear_context_cache()
        t_sqrt_engine = _time(
            lambda: result_engine.__setitem__(
                "sqrt", sqrt_coloring(instance, rng=3, use_lp=False)[0]
            )
        )

        with engine_disabled():
            result_legacy = {}
            t_greedy_legacy = _time(
                lambda: result_legacy.__setitem__(
                    "greedy", greedy_max_feasible_subset(instance, powers)
                )
            )
            t_sqrt_legacy = _time(
                lambda: result_legacy.__setitem__(
                    "sqrt", sqrt_coloring(instance, rng=3, use_lp=False)[0]
                )
            )

        assert np.array_equal(result_engine["greedy"], result_legacy["greedy"]), (
            f"greedy outputs diverged at n={n}"
        )
        assert np.array_equal(
            result_engine["sqrt"].colors, result_legacy["sqrt"].colors
        ), f"sqrt_coloring outputs diverged at n={n}"

        for name, legacy, engine in (
            ("greedy", t_greedy_legacy, t_greedy_engine),
            ("sqrt", t_sqrt_legacy, t_sqrt_engine),
        ):
            speedup = legacy / engine if engine > 0 else float("inf")
            rows.append((name, n, legacy, engine, speedup))
            worst[name] = speedup  # sizes ascend; keep the largest n

    print(f"{'workload':<10} {'n':>5} {'legacy':>11} {'engine':>11} {'speedup':>9}")
    for name, n, legacy, engine, speedup in rows:
        print(
            f"{name:<10} {n:>5} {legacy * 1e3:>9.1f} ms {engine * 1e3:>9.1f} ms "
            f"{speedup:>8.1f}x"
        )

    if artifacts is not None:
        table = Table(
            title="Context engine vs legacy path",
            columns=["workload", "n", "legacy_seconds", "engine_seconds", "speedup"],
        )
        table.add_note(f"required speedup at n={sizes[-1]}: {target}x")
        shards = []
        for name, n, legacy, engine, speedup in rows:
            table.add_row(
                workload=name,
                n=n,
                legacy_seconds=legacy,
                engine_seconds=engine,
                speedup=speedup,
            )
            shards.append(
                ShardResult(
                    key=f"{name}:n={n}", seed=seed, rows=1, seconds=legacy + engine
                )
            )
        report = BenchReport(
            experiment="context_engine",
            title="Shared interference engine speedup",
            mode="smoke",
            table=table,
            shards=shards,
            run_wall_seconds=time.perf_counter() - run_start,
            metric="speedup",
        )
        write_artifact(artifacts, report)

    failures = [name for name, speedup in worst.items() if speedup < target]
    if failures:
        print(f"FAIL: speedup below {target}x at n={sizes[-1]} for: {failures}")
        return 1
    print(f"OK: both workloads >= {target}x at n={sizes[-1]}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes",
        default="64,256,1024",
        help="comma-separated instance sizes (ascending)",
    )
    parser.add_argument(
        "--target",
        type=float,
        default=3.0,
        help="required speedup at the largest size",
    )
    parser.add_argument(
        "--artifacts",
        metavar="DIR",
        default=None,
        help="write BENCH_context_engine.json under DIR",
    )
    args = parser.parse_args(argv)
    sizes = sorted(int(s) for s in args.sizes.split(","))
    return run(sizes, args.target, artifacts=args.artifacts)


if __name__ == "__main__":
    sys.exit(main())
