"""SINR feasibility predicates (§1.1).

The paper's analysis sets noise ``sigma = 0`` and requires the SINR
constraint strictly (">"); with floating point we instead expose a
*margin*:

    margin_i = (p_i / l_i) / (beta * (I_i + sigma))

A request is satisfied when ``margin_i >= 1`` (up to a relative
tolerance ``rtol``).  The noise-removal trick noted in §1.1 — any
schedule that is strictly feasible at ``sigma = 0`` becomes feasible at
any ``sigma > 0`` after multiplying all powers by a large enough factor
— is implemented by :func:`scale_powers_for_noise`.

These functions are thin wrappers: when the shared interference engine
is enabled (the default) they answer from the cached
:class:`repro.core.context.InterferenceContext` for ``(instance,
powers)``, falling back to the from-scratch computation under
:func:`repro.core.context.engine_disabled`.  Both paths produce
bit-identical margins.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.context import maybe_context
from repro.core.errors import InvalidScheduleError
from repro.core.instance import Instance
from repro.core.interference import interference

#: Default relative tolerance for feasibility comparisons.
DEFAULT_RTOL = 1e-9


def signal_strengths(instance: Instance, powers: np.ndarray) -> np.ndarray:
    """Received signal strength ``p_i / l(u_i, v_i)`` for each request."""
    powers = np.asarray(powers, dtype=float)
    if powers.shape != (instance.n,):
        raise InvalidScheduleError(
            f"powers must have shape ({instance.n},), got {powers.shape}"
        )
    if np.any(powers <= 0):
        raise InvalidScheduleError("all powers must be strictly positive")
    return powers / instance.link_losses


def sinr_margins(
    instance: Instance,
    powers: np.ndarray,
    colors: Optional[np.ndarray] = None,
    subset: Optional[Sequence[int]] = None,
    beta: Optional[float] = None,
    noise: Optional[float] = None,
) -> np.ndarray:
    """SINR margins ``signal / (beta * (interference + noise))``.

    A margin of ``inf`` means the request suffers no interference and
    no noise.  Margins ``>= 1`` mean the constraint holds.

    Parameters
    ----------
    colors:
        Same-color interference only (full mutual interference if
        ``None``).
    subset:
        Restrict to these request indices (result aligned to subset).
    beta, noise:
        Override the instance's gain/noise (used by the γ-rescaling
        machinery of §3.1).
    """
    beta = instance.beta if beta is None else float(beta)
    noise = instance.noise if noise is None else float(noise)
    if not beta > 0:
        raise ValueError(f"beta must be > 0, got {beta}")
    if noise < 0:
        raise ValueError(f"noise must be >= 0, got {noise}")
    context = maybe_context(instance, powers)
    if context is not None:
        return context.margins(colors=colors, subset=subset, beta=beta, noise=noise)
    signals = signal_strengths(instance, powers)
    interf = interference(instance, powers, colors, subset)
    if subset is not None:
        signals = signals[np.asarray(subset, dtype=int)]
    denom = beta * (interf + noise)
    margins = np.full(signals.shape, np.inf)
    np.divide(signals, denom, out=margins, where=denom > 0)
    # inf interference (shared node) must dominate any signal.
    margins[np.isinf(interf)] = 0.0
    return margins


def is_feasible_subset(
    instance: Instance,
    powers: np.ndarray,
    subset: Sequence[int],
    beta: Optional[float] = None,
    noise: Optional[float] = None,
    rtol: float = DEFAULT_RTOL,
) -> bool:
    """Can all requests in *subset* share one color under *powers*?"""
    subset = np.asarray(subset, dtype=int)
    if subset.size == 0:
        return True
    margins = sinr_margins(instance, powers, subset=subset, beta=beta, noise=noise)
    return bool(np.all(margins >= 1.0 - rtol))


def feasible_subset_mask(
    instance: Instance,
    powers: np.ndarray,
    subset: Sequence[int],
    beta: Optional[float] = None,
    noise: Optional[float] = None,
    rtol: float = DEFAULT_RTOL,
) -> np.ndarray:
    """Boolean mask (aligned to *subset*) of requests whose SINR
    constraint holds when all of *subset* transmits together."""
    subset = np.asarray(subset, dtype=int)
    if subset.size == 0:
        return np.zeros(0, dtype=bool)
    margins = sinr_margins(instance, powers, subset=subset, beta=beta, noise=noise)
    return margins >= 1.0 - rtol


def is_feasible_partition(
    instance: Instance,
    powers: np.ndarray,
    colors: np.ndarray,
    beta: Optional[float] = None,
    noise: Optional[float] = None,
    rtol: float = DEFAULT_RTOL,
) -> bool:
    """Does the coloring *colors* with *powers* satisfy every class?"""
    colors = np.asarray(colors)
    if colors.shape != (instance.n,):
        raise InvalidScheduleError(
            f"colors must have shape ({instance.n},), got {colors.shape}"
        )
    margins = sinr_margins(instance, powers, colors=colors, beta=beta, noise=noise)
    return bool(np.all(margins >= 1.0 - rtol))


def scale_powers_for_noise(
    instance: Instance,
    powers: np.ndarray,
    colors: np.ndarray,
    noise: float,
    beta: Optional[float] = None,
    safety: float = 1.0 + 1e-6,
) -> np.ndarray:
    """Rescale *powers* so the schedule tolerates ambient noise.

    §1.1: "one can transform a schedule that is feasible under this
    assumption [sigma = 0, strict inequality] into a schedule that is
    feasible for any sigma > 0 by multiplying all power levels by a
    sufficiently large factor."  The minimal factor ``t`` satisfies, for
    every request, ``t * (s_i - beta * I_i) >= beta * sigma``, i.e.
    ``t = beta * sigma / min_i (s_i - beta * I_i)``.

    Raises
    ------
    InvalidScheduleError
        If the schedule is not strictly feasible at zero noise (then no
        finite factor works).
    """
    if noise < 0:
        raise ValueError(f"noise must be >= 0, got {noise}")
    beta = instance.beta if beta is None else float(beta)
    powers = np.asarray(powers, dtype=float)
    signals = signal_strengths(instance, powers)
    context = maybe_context(instance, powers)
    if context is not None:
        interf = context.interference(colors=np.asarray(colors))
    else:
        interf = interference(instance, powers, np.asarray(colors))
    slack = signals - beta * interf
    if np.any(slack <= 0):
        raise InvalidScheduleError(
            "schedule is not strictly feasible at zero noise; "
            "no power scaling can absorb the noise"
        )
    if noise == 0:
        return powers.copy()
    factor = safety * beta * noise / float(np.min(slack))
    factor = max(factor, 1.0)
    return powers * factor
