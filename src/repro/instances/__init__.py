"""Instance generators.

* :mod:`~repro.instances.adversarial` — the Theorem 1 lower-bound
  families on the line (adaptive construction for unbounded oblivious
  ``f``; growing chain for bounded ``f``).
* :mod:`~repro.instances.nested` — the nested instance of §1.2
  (``u_i = -b^i, v_i = b^i``) that separates uniform/linear from the
  square-root assignment.
* :mod:`~repro.instances.random_instances` — random deployments
  (uniform, clustered, random tree/graph metrics) for the positive
  experiments.
* :mod:`~repro.instances.line_instances` — simple structured line
  instances (equispaced, exponential chains).
"""

from repro.instances.adversarial import (
    adaptive_lower_bound_instance,
    growing_chain_instance,
    lower_bound_instance_for,
)
from repro.instances.connectivity import (
    exponential_node_chain,
    mst_connectivity_instance,
    nearest_neighbor_instance,
)
from repro.instances.line_instances import (
    equispaced_line_instance,
    exponential_chain_instance,
)
from repro.instances.nested import nested_instance
from repro.instances.random_instances import (
    clustered_instance,
    random_graph_metric_instance,
    random_tree_metric_instance,
    random_uniform_instance,
)

__all__ = [
    "adaptive_lower_bound_instance",
    "growing_chain_instance",
    "lower_bound_instance_for",
    "nested_instance",
    "random_uniform_instance",
    "clustered_instance",
    "random_tree_metric_instance",
    "random_graph_metric_instance",
    "equispaced_line_instance",
    "exponential_chain_instance",
    "mst_connectivity_instance",
    "nearest_neighbor_instance",
    "exponential_node_chain",
]
