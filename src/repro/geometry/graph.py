"""Shortest-path metric of an arbitrary weighted graph.

Useful for building test metrics that are far from Euclidean (the
paper's positive result holds for *every* metric space, so the test
suite exercises graph metrics as well).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.geometry.metric import Metric


class GraphMetric(Metric):
    """Shortest-path metric of a connected weighted undirected graph.

    Parameters
    ----------
    graph:
        A connected :class:`networkx.Graph`; edge attribute ``weight``
        (default 1.0) gives edge lengths.  Nodes must be hashable; they
        are relabelled to ``0 .. n-1`` in sorted order when possible,
        insertion order otherwise.
    """

    def __init__(self, graph: nx.Graph):
        super().__init__()
        if graph.number_of_nodes() == 0:
            raise ValueError("graph must be non-empty")
        if not nx.is_connected(graph):
            raise ValueError("graph must be connected")
        for u, v, data in graph.edges(data=True):
            weight = data.get("weight", 1.0)
            if not weight > 0:
                raise ValueError(f"edge ({u}, {v}) has non-positive weight {weight}")
        try:
            node_order = sorted(graph.nodes())
        except TypeError:
            node_order = list(graph.nodes())
        self._node_order = node_order
        self._index = {node: i for i, node in enumerate(node_order)}
        self._graph = graph

    @property
    def n(self) -> int:
        return len(self._node_order)

    @property
    def node_order(self) -> list:
        """Original node labels in index order."""
        return list(self._node_order)

    def _compute_matrix(self) -> np.ndarray:
        n = self.n
        matrix = np.zeros((n, n))
        lengths = dict(nx.all_pairs_dijkstra_path_length(self._graph, weight="weight"))
        for u in self._node_order:
            iu = self._index[u]
            row = lengths[u]
            for v, dist in row.items():
                matrix[iu, self._index[v]] = dist
        return matrix
