"""Exact minimum coloring for small instances (bitmask DP).

The coloring problem is strongly NP-hard (§1), but for small ``n`` the
optimum is computable: feasibility of every request subset is
downward closed (removing transmitters only lowers interference), so
the minimum number of colors is a minimum partition of ``[n]`` into
feasible sets — solved here by the classic subset dynamic program:

    colors[mask] = 1 + min over feasible s ⊆ mask, s ∋ lowest bit,
                   of colors[mask \\ s]

Runs in O(3^n) after an O(2^n) feasibility table; practical to n≈14.
Both fixed-power and free-power (power-control) variants are
provided.  This is the ground truth the approximation experiments
certify against.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.power_control import free_power_feasible, free_powers
from repro.core.context import maybe_context
from repro.core.errors import ReproError
from repro.core.feasibility import is_feasible_subset
from repro.core.instance import Instance
from repro.core.schedule import Schedule, build_schedule

#: Hard cap: 3^16 subset-pair iterations is the practical ceiling.
MAX_EXACT_N = 16


class InstanceTooLargeError(ReproError, ValueError):
    """The instance exceeds the exact solver's size cap."""


def _feasibility_table(
    instance: Instance,
    powers: Optional[np.ndarray],
    beta: Optional[float],
) -> List[bool]:
    """feasible[mask] for every subset mask of requests."""
    n = instance.n
    # The 2^n fixed-power checks share one cached context; the
    # free-power variant has no fixed powers to cache against.
    context = None if powers is None else maybe_context(instance, powers)
    feasible = [False] * (1 << n)
    feasible[0] = True
    for mask in range(1, 1 << n):
        members = [i for i in range(n) if mask >> i & 1]
        if len(members) == 1:
            feasible[mask] = True
            continue
        # Downward closure: if the set minus its lowest element is
        # already infeasible, the superset is too — skip the check.
        if not feasible[mask & (mask - 1)]:
            feasible[mask] = False
            continue
        if powers is None:
            feasible[mask] = free_power_feasible(instance, members, beta=beta)
        elif context is not None:
            feasible[mask] = context.is_feasible_subset(members, beta=beta)
        else:
            feasible[mask] = is_feasible_subset(
                instance, powers, members, beta=beta
            )
    return feasible


def exact_minimum_colors(
    instance: Instance,
    powers: Optional[np.ndarray] = None,
    beta: Optional[float] = None,
) -> Tuple[int, Schedule]:
    """The optimal number of colors, with an optimal schedule.

    Parameters
    ----------
    powers:
        Fixed power vector; when ``None`` every class may pick its own
        powers (the unrestricted optimum the paper compares against),
        realised via power-control feasibility.

    Returns
    -------
    (opt, schedule):
        The optimal color count and a witness schedule (with per-class
        free powers when ``powers is None``).

    Raises
    ------
    InstanceTooLargeError
        For ``n > MAX_EXACT_N``.
    """
    n = instance.n
    if n > MAX_EXACT_N:
        raise InstanceTooLargeError(
            f"exact solver caps at n={MAX_EXACT_N}, got {n}"
        )
    if powers is not None:
        powers = np.asarray(powers, dtype=float)

    feasible = _feasibility_table(instance, powers, beta)
    full = (1 << n) - 1
    colors = [n + 1] * (full + 1)
    choice = [0] * (full + 1)
    colors[0] = 0
    for mask in range(1, full + 1):
        low = mask & -mask
        # Enumerate submasks of `mask` containing the lowest bit.
        sub = mask
        while sub:
            if sub & low and feasible[sub]:
                candidate = colors[mask ^ sub] + 1
                if candidate < colors[mask]:
                    colors[mask] = candidate
                    choice[mask] = sub
            sub = (sub - 1) & mask

    opt = colors[full]
    # Reconstruct the partition.
    assignment = np.full(n, -1, dtype=int)
    mask = full
    color = 0
    while mask:
        sub = choice[mask]
        for i in range(n):
            if sub >> i & 1:
                assignment[i] = color
        mask ^= sub
        color += 1

    if powers is not None:
        schedule = build_schedule(assignment, powers)
    else:
        vec = np.ones(n)
        for c in range(opt):
            members = np.flatnonzero(assignment == c)
            vec[members] = free_powers(instance, members, beta=beta)
        schedule = build_schedule(assignment, vec, copy_powers=False)
    return opt, schedule
