"""Tests for the Theorem 1 lower-bound constructions."""

import numpy as np
import pytest

from repro.core.instance import Direction
from repro.instances.adversarial import (
    BoundedFunctionError,
    ConstructionOverflowError,
    adaptive_lower_bound_instance,
    appears_unbounded,
    growing_chain_instance,
    lower_bound_instance_for,
)
from repro.power.oblivious import (
    FunctionPower,
    LinearPower,
    MeanPower,
    SquareRootPower,
    UniformPower,
)
from repro.scheduling.firstfit import (
    first_fit_free_power_schedule,
    first_fit_schedule,
)


class TestAppearsUnbounded:
    def test_uniform_is_bounded(self):
        assert not appears_unbounded(UniformPower(), alpha=3.0)

    def test_linear_is_unbounded(self):
        assert appears_unbounded(LinearPower(), alpha=3.0)

    def test_sqrt_is_unbounded(self):
        assert appears_unbounded(SquareRootPower(), alpha=3.0)

    def test_decaying_function_is_bounded(self):
        decaying = FunctionPower(lambda loss: 1.0 / (1.0 + loss))
        assert not appears_unbounded(decaying, alpha=3.0)


class TestAdaptiveConstruction:
    def test_structure(self):
        adv = adaptive_lower_bound_instance(LinearPower(), 6)
        inst = adv.instance
        assert inst.n == 6
        assert inst.direction is Direction.DIRECTED
        # Gaps follow the recursion y_i = 2 (x_{i-1} + y_{i-1}).
        for i in range(1, 6):
            assert adv.gaps[i] == pytest.approx(
                2.0 * (adv.link_lengths[i - 1] + adv.gaps[i - 1])
            )

    def test_drowning_condition_holds(self):
        power = LinearPower()
        adv = adaptive_lower_bound_instance(power, 6, kappa=2.0)
        inst = adv.instance
        f_values = power(inst)
        ratios = f_values / adv.link_lengths**inst.alpha
        for i in range(1, 6):
            target = 2.0 * adv.gaps[i] ** inst.alpha * np.max(ratios[:i])
            assert f_values[i] >= target * (1 - 1e-12)

    def test_links_dominate_gaps(self):
        adv = adaptive_lower_bound_instance(MeanPower(1.5), 6)
        assert np.all(adv.link_lengths[1:] >= adv.gaps[1:])

    def test_bounded_function_rejected(self):
        with pytest.raises(BoundedFunctionError):
            adaptive_lower_bound_instance(UniformPower(), 5)

    def test_sqrt_overflows_quickly(self):
        with pytest.raises(ConstructionOverflowError):
            adaptive_lower_bound_instance(SquareRootPower(), 40)

    def test_omega_n_colors_under_f(self):
        power = LinearPower()
        adv = adaptive_lower_bound_instance(power, 12, kappa=128.0)
        schedule = first_fit_schedule(adv.instance, power(adv.instance))
        schedule.validate(adv.instance)
        assert schedule.num_colors == 12  # every pair needs its own color

    def test_constant_colors_with_free_powers(self):
        adv = adaptive_lower_bound_instance(LinearPower(), 12, kappa=128.0)
        schedule = first_fit_free_power_schedule(adv.instance)
        schedule.validate(adv.instance)
        assert schedule.num_colors <= 2

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            adaptive_lower_bound_instance(LinearPower(), 0)
        with pytest.raises(ValueError):
            adaptive_lower_bound_instance(LinearPower(), 3, kappa=0.5)


class TestGrowingChain:
    def test_structure(self):
        adv = growing_chain_instance(8, growth=2.0)
        assert adv.instance.n == 8
        assert np.allclose(adv.link_lengths, [2.0**i for i in range(8)])

    def test_uniform_needs_many_colors(self):
        adv = growing_chain_instance(16)
        schedule = first_fit_schedule(adv.instance, UniformPower()(adv.instance))
        schedule.validate(adv.instance)
        assert schedule.num_colors >= 8

    def test_free_powers_need_few(self):
        adv = growing_chain_instance(16)
        schedule = first_fit_free_power_schedule(adv.instance)
        schedule.validate(adv.instance)
        assert schedule.num_colors <= 3

    def test_overflow_detected(self):
        with pytest.raises(ConstructionOverflowError):
            growing_chain_instance(400)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            growing_chain_instance(0)
        with pytest.raises(ValueError):
            growing_chain_instance(4, growth=1.0)
        with pytest.raises(ValueError):
            growing_chain_instance(4, gap_fraction=0.0)


class TestDispatch:
    def test_bounded_goes_to_chain(self):
        adv = lower_bound_instance_for(UniformPower(), 6)
        assert np.allclose(adv.link_lengths, [2.0**i for i in range(6)])

    def test_unbounded_goes_adaptive(self):
        adv = lower_bound_instance_for(LinearPower(), 6)
        # Adaptive gaps follow the doubling recursion, chain gaps do not.
        assert adv.gaps[2] == pytest.approx(
            2.0 * (adv.link_lengths[1] + adv.gaps[1])
        )
