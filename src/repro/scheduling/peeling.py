"""Scheduling by repeated maximal-feasible-subset extraction.

Each round extracts a greedy maximal feasible subset of the remaining
requests (peeling the worst-margin request until feasible) and assigns
it the next color.  This mirrors the structure of the Theorem 15
algorithm ("algorithm A computes a subset ... repeat recursively on
the remaining requests") with the LP replaced by greedy peeling; it is
the strongest simple baseline for fixed power assignments.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.capacity import greedy_max_feasible_subset
from repro.core.context import maybe_context
from repro.core.instance import Instance
from repro.core.schedule import Schedule, build_schedule


def peeling_schedule(
    instance: Instance,
    powers: np.ndarray,
    beta: Optional[float] = None,
    rtol: float = 1e-9,
) -> Schedule:
    """Color the instance by repeatedly peeling maximal feasible subsets.

    The shared :class:`~repro.core.context.InterferenceContext` is
    fetched once (when the engine is enabled) so every extraction round
    reuses the same cached gain matrices, and each extraction runs on
    the incremental peel kernel
    (:func:`repro.core.kernels.peel_max_feasible_subset`, identical
    decisions from maintained interference sums; tolerance-window
    decisions are re-resolved exactly and counted as risk events) via
    :func:`greedy_max_feasible_subset`.
    """
    powers = np.asarray(powers, dtype=float)
    context = maybe_context(instance, powers)
    remaining = list(range(instance.n))
    colors = np.full(instance.n, -1, dtype=int)
    color = 0
    while remaining:
        subset = greedy_max_feasible_subset(
            instance,
            powers,
            candidates=remaining,
            beta=beta,
            rtol=rtol,
            context=context,
        )
        if subset.size == 0:
            # A single request is always feasible at zero noise; if even
            # singletons fail (extreme noise), fall back to singletons.
            subset = np.asarray([remaining[0]], dtype=int)
        for req in subset:
            colors[req] = color
        chosen = set(int(i) for i in subset)
        remaining = [i for i in remaining if i not in chosen]
        color += 1
    return build_schedule(colors, powers)
