"""Tests for the distributed random-access coloring protocol."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.instance import Instance
from repro.geometry.line import LineMetric
from repro.instances.random_instances import random_uniform_instance
from repro.power.oblivious import UniformPower
from repro.scheduling.distributed import (
    ProtocolStalledError,
    distributed_coloring,
)


class TestDistributedColoring:
    def test_schedules_everything_feasibly(self, small_random_instance):
        schedule, stats = distributed_coloring(small_random_instance, rng=0)
        schedule.validate(small_random_instance)
        assert np.all(schedule.colors >= 0)
        assert stats.successes == small_random_instance.n

    def test_deterministic_given_seed(self, small_random_instance):
        a, _ = distributed_coloring(small_random_instance, rng=3)
        b, _ = distributed_coloring(small_random_instance, rng=3)
        assert np.array_equal(a.colors, b.colors)

    def test_fixed_policy(self, small_random_instance):
        schedule, stats = distributed_coloring(
            small_random_instance, policy="fixed", rng=1
        )
        schedule.validate(small_random_instance)

    def test_shared_node_pairs_eventually_separate(self):
        metric = LineMetric([0.0, 1.0, 2.0])
        inst = Instance.bidirectional(metric, [(0, 1), (1, 2)])
        schedule, _ = distributed_coloring(inst, rng=2)
        schedule.validate(inst)
        assert schedule.num_colors == 2

    def test_stats_accounting(self, small_random_instance):
        _, stats = distributed_coloring(small_random_instance, rng=0)
        assert stats.slots >= len(stats.successes_per_slot)
        assert sum(stats.successes_per_slot) == stats.successes
        assert stats.attempts >= stats.successes
        assert stats.attempts_per_success >= 1.0

    def test_stalls_raise(self, small_random_instance):
        with pytest.raises(ProtocolStalledError):
            distributed_coloring(small_random_instance, max_slots=0, rng=0)

    def test_custom_power(self, small_random_instance):
        schedule, _ = distributed_coloring(
            small_random_instance, power=UniformPower(), rng=4
        )
        schedule.validate(small_random_instance)
        assert np.allclose(schedule.powers, 1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(policy="nonsense"),
            dict(p0=0.0),
            dict(p0=2.0),
            dict(backoff=1.0),
            dict(backoff=0.0),
            dict(p_min=0.9, p0=0.5),
        ],
    )
    def test_invalid_parameters(self, small_random_instance, kwargs):
        with pytest.raises(ValueError):
            distributed_coloring(small_random_instance, rng=0, **kwargs)

    def test_backoff_helps_under_contention(self):
        # Dense cluster of mutually interfering requests: backoff
        # should need no more slots than fixed-p on average.
        inst = random_uniform_instance(20, side=10.0, rng=5)
        slots_fixed, slots_backoff = [], []
        for seed in range(5):
            _, s_fixed = distributed_coloring(
                inst, policy="fixed", p0=0.5, rng=seed
            )
            _, s_back = distributed_coloring(
                inst, policy="backoff", p0=0.5, rng=seed
            )
            slots_fixed.append(s_fixed.slots)
            slots_backoff.append(s_back.slots)
        assert np.mean(slots_backoff) <= np.mean(slots_fixed) * 2.0

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_always_feasible(self, seed):
        inst = random_uniform_instance(8, rng=seed)
        schedule, _ = distributed_coloring(inst, rng=seed)
        schedule.validate(inst)
