"""E2 — the nested-instance intuition of §1.2.

On the nested instance ``u_i = -2^i, v_i = 2^i`` (bidirectional):

* uniform — outer pairs are drowned by inner pairs: O(1) capacity;
* linear (and superlinear) — inner pairs are drowned by outer pairs:
  O(1) capacity;
* square root — balances interference: Theta(n) capacity.

The experiment measures the one-shot capacity (largest subset that
shares one color) for each assignment as ``n`` grows.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.analysis.capacity import one_shot_capacity
from repro.instances.nested import nested_instance
from repro.power.base import ObliviousPowerAssignment
from repro.power.oblivious import LinearPower, MeanPower, SquareRootPower, UniformPower
from repro.runner.spec import ExperimentSpec
from repro.util.tables import Table


def default_assignments() -> Tuple[ObliviousPowerAssignment, ...]:
    return (
        UniformPower(),
        LinearPower(),
        MeanPower(1.5),
        MeanPower(0.75),
        SquareRootPower(),
    )


def run_nested_intuition(
    n_values: Sequence[int] = (5, 10, 20, 30, 40),
    assignments: Optional[Sequence[ObliviousPowerAssignment]] = None,
    base: float = 2.0,
    alpha: float = 3.0,
    beta: float = 0.5,
) -> Table:
    """Measure one-shot capacity of the nested instance per assignment."""
    if assignments is None:
        assignments = default_assignments()
    table = Table(
        title="E2: §1.2 nested-instance capacities",
        columns=["assignment", "n", "capacity", "fraction"],
    )
    table.add_note(
        f"base={base}, alpha={alpha}, beta={beta}; capacity = greedy maximal "
        "one-color subset"
    )
    for assignment in assignments:
        for n in n_values:
            instance = nested_instance(n, base=base, alpha=alpha, beta=beta)
            capacity = one_shot_capacity(instance, assignment(instance))
            table.add_row(
                assignment=assignment.name,
                n=n,
                capacity=capacity,
                fraction=capacity / n,
            )
    return table
SPEC = ExperimentSpec(
    id="e2",
    title="Nested instance one-shot capacity",
    runner="repro.experiments.e02_nested_intuition:run_nested_intuition",
    full={"n_values": (5, 10, 20, 30, 40)},
    fast={"n_values": (5, 10)},
    seed=None,
    shard_by="n_values",
    metric="fraction",
)
