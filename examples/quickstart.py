#!/usr/bin/env python
"""Quickstart: schedule a random wireless deployment.

Builds a bidirectional instance of 30 requests in a 100x100 area,
schedules it under the square-root power assignment with the
Theorem 15 LP algorithm, verifies the schedule, and compares against
the simple baselines.

Run:  python examples/quickstart.py [seed]
"""

import sys

import numpy as np

from repro import Problem, random_uniform_instance, verify_schedule


def main(seed: int = 0) -> None:
    rng = np.random.default_rng(seed)
    instance = random_uniform_instance(30, side=100.0, rng=rng)
    print(f"instance: {instance!r}")
    print(f"link lengths: {instance.link_distances.min():.2f} .. "
          f"{instance.link_distances.max():.2f}")

    session = Problem(instance).session()  # square-root powers by default
    result = session.schedule("sqrt_coloring", rng=rng)
    report = verify_schedule(instance, result.schedule)
    stats = result.stats
    print(f"\nTheorem 15 LP coloring   : {report.summary()}")
    print(f"  rounds={stats.rounds}, LP solves={stats.lp_solves}, "
          f"class sizes={stats.class_sizes}")

    ff = session.schedule("first_fit")
    print(f"first-fit (sqrt powers)  : "
          f"{verify_schedule(instance, ff.schedule).summary()}")

    free = session.schedule("first_fit_free_power")
    print(f"first-fit (free powers)  : "
          f"{verify_schedule(instance, free.schedule).summary()}")

    triv = session.schedule("trivial")
    print(f"trivial (1 color/request): "
          f"{verify_schedule(instance, triv.schedule).summary()}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 0)
