"""Interference computations for both problem variants.

The central objects are *gain matrices*: ``G[i, j]`` is the received
power at request ``i``'s relevant endpoint(s) due to request ``j``
transmitting with power ``p_j``.

* Directed (§1.1): ``G[i, j] = p_j / l(u_j, v_i)`` — only the receiver
  ``v_i`` matters, and only the *sender* ``u_j`` of another pair
  interferes.
* Bidirectional (§1.1): both endpoints of ``i`` must decode and the
  worst endpoint of pair ``j`` interferes:
  ``G_w[i, j] = p_j / min(l(u_j, w), l(v_j, w))`` for
  ``w in {u_i, v_i}``.

Pairs that share a node produce infinite entries (zero loss), which is
the correct semantics: such pairs can never share a color.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.instance import Direction, Instance


def _safe_divide(numerator: np.ndarray, denominator: np.ndarray) -> np.ndarray:
    """Elementwise ``numerator / denominator`` with ``x/0 -> inf``."""
    if np.all(denominator > 0):
        # Fast path (no shared-node pairs): a plain divide produces the
        # identical values without the inf-fill and masked-divide
        # passes.
        return np.true_divide(numerator, denominator)
    out = np.full(np.broadcast(numerator, denominator).shape, np.inf)
    np.divide(numerator, denominator, out=out, where=denominator > 0)
    return out


def directed_gain_matrix(instance: Instance, powers: np.ndarray) -> np.ndarray:
    """The directed gain matrix ``G[i, j] = p_j / l(u_j, v_i)``.

    The diagonal is set to zero (a pair does not interfere with
    itself).
    """
    powers = np.asarray(powers, dtype=float)
    loss = instance.metric.loss_matrix(instance.alpha)
    # cross_loss[i, j] = l(u_j, v_i)
    cross_loss = loss[np.ix_(instance.receivers, instance.senders)]
    gains = _safe_divide(powers[None, :], cross_loss)
    np.fill_diagonal(gains, 0.0)
    return gains


def bidirectional_gain_matrices(
    instance: Instance, powers: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """The two endpoint gain matrices of the bidirectional variant.

    Returns ``(G_u, G_v)`` where ``G_u[i, j]`` is the interference pair
    ``j`` induces at endpoint ``u_i`` and ``G_v[i, j]`` at ``v_i``:
    ``p_j / min(l(u_j, w), l(v_j, w))``.  Diagonals are zero.
    """
    powers = np.asarray(powers, dtype=float)
    loss = instance.metric.loss_matrix(instance.alpha)
    s, r = instance.senders, instance.receivers
    # min_at_u[i, j] = min(l(u_j, u_i), l(v_j, u_i))
    l_us_us = loss[np.ix_(s, s)]  # [i, j] = l(u_i, u_j) = l(u_j, u_i)
    l_vs_us = loss[np.ix_(s, r)]  # [i, j] = l(u_i, v_j) = l(v_j, u_i)
    min_at_u = np.minimum(l_us_us, l_vs_us)
    l_us_vs = loss[np.ix_(r, s)]  # [i, j] = l(v_i, u_j)
    l_vs_vs = loss[np.ix_(r, r)]  # [i, j] = l(v_i, v_j)
    min_at_v = np.minimum(l_us_vs, l_vs_vs)

    gains_u = _safe_divide(powers[None, :], min_at_u)
    gains_v = _safe_divide(powers[None, :], min_at_v)
    np.fill_diagonal(gains_u, 0.0)
    np.fill_diagonal(gains_v, 0.0)
    return gains_u, gains_v


def _class_sum(gains: np.ndarray, colors: Optional[np.ndarray]) -> np.ndarray:
    """Row sums of *gains* restricted to same-color columns."""
    n = gains.shape[0]
    if colors is None:
        return gains.sum(axis=1)
    colors = np.asarray(colors)
    same = colors[:, None] == colors[None, :]
    np.fill_diagonal(same, False)
    # 0 * inf would be nan; mask infinities explicitly.
    masked = np.where(same, gains, 0.0)
    return masked.sum(axis=1)


def directed_interference(
    instance: Instance,
    powers: np.ndarray,
    colors: Optional[np.ndarray] = None,
    subset: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Interference at each receiver in the directed variant.

    Parameters
    ----------
    colors:
        If given, only same-color pairs interfere.
    subset:
        If given, restrict the instance to these request indices first
        (the result has ``len(subset)`` entries).
    """
    if subset is not None:
        subset = np.asarray(subset, dtype=int)
        sub = instance.subset(subset)
        sub_powers = np.asarray(powers, dtype=float)[subset]
        sub_colors = None if colors is None else np.asarray(colors)[subset]
        return directed_interference(sub, sub_powers, sub_colors)
    gains = directed_gain_matrix(instance, powers)
    return _class_sum(gains, colors)


def bidirectional_interference(
    instance: Instance,
    powers: np.ndarray,
    colors: Optional[np.ndarray] = None,
    subset: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Worst-endpoint interference for each pair, bidirectional variant.

    Returns, for each request ``i``, ``max_w`` over the two endpoints of
    the total same-color interference at ``w``.  The SINR constraint
    must hold at *both* endpoints, so the maximum is the binding value.
    """
    if subset is not None:
        subset = np.asarray(subset, dtype=int)
        sub = instance.subset(subset)
        sub_powers = np.asarray(powers, dtype=float)[subset]
        sub_colors = None if colors is None else np.asarray(colors)[subset]
        return bidirectional_interference(sub, sub_powers, sub_colors)
    gains_u, gains_v = bidirectional_gain_matrices(instance, powers)
    return np.maximum(_class_sum(gains_u, colors), _class_sum(gains_v, colors))


def interference(
    instance: Instance,
    powers: np.ndarray,
    colors: Optional[np.ndarray] = None,
    subset: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Variant-dispatching interference (directed or bidirectional)."""
    if instance.direction is Direction.DIRECTED:
        return directed_interference(instance, powers, colors, subset)
    return bidirectional_interference(instance, powers, colors, subset)
