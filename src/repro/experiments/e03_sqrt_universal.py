"""E3 — Theorem 2: the square-root assignment is universally good
(bidirectional), empirically.

Theorem 2 states that whenever *some* power assignment schedules all
requests with one color, the square-root assignment admits a coloring
with polylog(n) colors.  Measured version: across random instance
families, compare the colors the square-root assignment needs (via the
Theorem 15 algorithm and via first-fit) against the colors an optimal
free-power schedule needs.  The ratio should stay bounded by a slowly
growing (polylogarithmic) function of ``n`` — in stark contrast to the
directed variant of E1.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.core.batch import batch_validate_schedules
from repro.core.instance import Instance
from repro.instances.random_instances import (
    clustered_instance,
    random_tree_metric_instance,
    random_uniform_instance,
)
from repro.power.oblivious import SquareRootPower
from repro.runner.spec import ExperimentSpec
from repro.scheduling.registry import run_algorithm
from repro.util.rng import RngLike, ensure_rng, spawn_rngs
from repro.util.tables import Table

InstanceFactory = Callable[[int, np.random.Generator], Instance]


def run_theorem2_literal(
    n_values: Sequence[int] = (10, 20, 40),
    trials: int = 3,
    rng: RngLike = 4321,
) -> Table:
    """The literal Theorem 2 statement, measured.

    Instances are generated *certified one-color feasible* (a witness
    power assignment exists); the table reports the colors the
    square-root assignment needs — Theorem 2 bounds them by
    O(log^{3.5+alpha} n).
    """
    from repro.instances.feasible import one_color_feasible_instance

    rng = ensure_rng(rng)
    table = Table(
        title="E3b: Theorem 2 literal — one-color-feasible instances",
        columns=["n", "colors_sqrt_firstfit", "colors_sqrt_lp", "polylog_envelope"],
    )
    table.add_note(
        "instances certified one-color feasible under free powers; "
        "envelope = log2(n)^3.5 (alpha-independent part of the bound)"
    )
    for n in n_values:
        ff_counts, lp_counts = [], []
        instances, schedules = [], []
        for child in spawn_rngs(rng, trials):
            instance = one_color_feasible_instance(n, rng=child)
            powers = SquareRootPower()(instance)
            ff = run_algorithm("first_fit", instance, powers=powers).schedule
            lp = run_algorithm("sqrt_coloring", instance, rng=child).schedule
            instances.extend((instance, instance))
            schedules.extend((ff, lp))
            ff_counts.append(ff.num_colors)
            lp_counts.append(lp.num_colors)
        # All trials share one shape: one stacked validation pass.
        batch_validate_schedules(instances, schedules)
        table.add_row(
            n=n,
            colors_sqrt_firstfit=float(np.mean(ff_counts)),
            colors_sqrt_lp=float(np.mean(lp_counts)),
            polylog_envelope=math.log2(n) ** 3.5,
        )
    return table


def default_families() -> Dict[str, InstanceFactory]:
    """The random instance families exercised by E3."""
    return {
        "uniform-square": lambda n, rng: random_uniform_instance(n, rng=rng),
        "clustered": lambda n, rng: clustered_instance(n, rng=rng),
        "random-tree": lambda n, rng: random_tree_metric_instance(n, rng=rng),
    }


def run_sqrt_universal(
    n_values: Sequence[int] = (10, 20, 40, 80),
    families: Optional[Dict[str, InstanceFactory]] = None,
    trials: int = 3,
    rng: RngLike = 1234,
) -> Table:
    """Measure colors(sqrt) / colors(free-power) across families."""
    if families is None:
        families = default_families()
    rng = ensure_rng(rng)
    table = Table(
        title="E3: Theorem 2 — square-root assignment vs free-power optimum",
        columns=[
            "family",
            "n",
            "colors_sqrt_lp",
            "colors_sqrt_firstfit",
            "colors_free_power",
            "ratio",
            "log2n",
        ],
    )
    table.add_note(f"bidirectional, averaged over {trials} seeds per cell")
    for family_name, factory in families.items():
        for n in n_values:
            lp_counts, ff_counts, free_counts = [], [], []
            instances, schedules = [], []
            for child in spawn_rngs(rng, trials):
                instance = factory(n, child)
                sched_lp = run_algorithm(
                    "sqrt_coloring", instance, rng=child
                ).schedule
                powers = SquareRootPower()(instance)
                sched_ff = run_algorithm(
                    "first_fit", instance, powers=powers
                ).schedule
                sched_free = run_algorithm(
                    "first_fit_free_power", instance
                ).schedule
                instances.extend((instance, instance, instance))
                schedules.extend((sched_lp, sched_ff, sched_free))
                lp_counts.append(sched_lp.num_colors)
                ff_counts.append(sched_ff.num_colors)
                free_counts.append(sched_free.num_colors)
            # One stacked pass validates every trial's three schedules.
            batch_validate_schedules(instances, schedules)
            mean_lp = float(np.mean(lp_counts))
            mean_ff = float(np.mean(ff_counts))
            mean_free = float(np.mean(free_counts))
            table.add_row(
                family=family_name,
                n=n,
                colors_sqrt_lp=mean_lp,
                colors_sqrt_firstfit=mean_ff,
                colors_free_power=mean_free,
                ratio=min(mean_lp, mean_ff) / max(mean_free, 1.0),
                log2n=math.log2(n),
            )
    return table
SPEC = ExperimentSpec(
    id="e3",
    title="Theorem 2 sqrt universality",
    runner="repro.experiments.e03_sqrt_universal:run_sqrt_universal",
    full={"n_values": (10, 20, 40), "trials": 2},
    fast={"n_values": (8,), "trials": 1},
    seed=1234,
    shard_by="n_values",
    metric="ratio",
    algorithms=("sqrt_coloring", "first_fit", "first_fit_free_power"),
)

SPEC_THEOREM2 = ExperimentSpec(
    id="e3b",
    title="Theorem 2 literal (one-color-feasible)",
    runner="repro.experiments.e03_sqrt_universal:run_theorem2_literal",
    full={"n_values": (10, 20, 40), "trials": 2},
    fast={"n_values": (8,), "trials": 1},
    seed=4321,
    shard_by="n_values",
    metric="colors_sqrt_lp",
    algorithms=("sqrt_coloring", "first_fit"),
)
