"""Tests for the certified one-color-feasible instance generator."""

import pytest

from repro.analysis.power_control import free_power_feasible, free_powers
from repro.core.feasibility import sinr_margins
from repro.instances.feasible import one_color_feasible_instance

import numpy as np


class TestOneColorFeasible:
    def test_size_and_certificate(self):
        inst = one_color_feasible_instance(12, rng=1)
        assert inst.n == 12
        assert free_power_feasible(inst)

    def test_witness_powers_schedule_everything_at_once(self):
        inst = one_color_feasible_instance(10, rng=2)
        powers = free_powers(inst)
        margins = sinr_margins(inst, powers, colors=np.zeros(10, dtype=int))
        assert np.all(margins >= 1.0 - 1e-9)

    def test_reproducible(self):
        a = one_color_feasible_instance(8, rng=5)
        b = one_color_feasible_instance(8, rng=5)
        assert np.allclose(a.link_distances, b.link_distances)

    def test_theorem2_conclusion_holds(self):
        """The literal Theorem 2 check: few sqrt colors suffice."""
        from repro.power.oblivious import SquareRootPower
        from repro.scheduling.firstfit import first_fit_schedule

        inst = one_color_feasible_instance(20, rng=3)
        schedule = first_fit_schedule(inst, SquareRootPower()(inst))
        schedule.validate(inst)
        assert schedule.num_colors <= int(np.log2(20) ** 3.5)

    def test_impossible_gain_raises(self):
        # At sigma=0 the geometry is scale invariant, so shrinking the
        # area cannot make generation fail — but an enormous gain can:
        # almost no pair of requests may ever share a color.
        with pytest.raises(RuntimeError, match="could not build"):
            one_color_feasible_instance(30, beta=1e9, max_attempts=2, rng=4)
