"""E8 — regenerate the §6 directed-vs-bidirectional table."""

import pytest

from repro.experiments import run_directed_vs_bidirectional


def test_e08_directed_vs_bidirectional(benchmark, save_table):
    table = benchmark.pedantic(
        run_directed_vs_bidirectional,
        kwargs=dict(n_values=(10, 20, 40), trials=2, rng=31),
        rounds=1,
        iterations=1,
    )
    save_table("e08_directed_vs_bidirectional", table)
    for row in table.rows:
        assert row["simulation_feasible"]
        assert row["simulation_colors"] == pytest.approx(
            2 * row["colors_bidirectional"]
        )
