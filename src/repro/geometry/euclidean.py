"""Euclidean metrics over explicit point sets in R^d."""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.geometry.metric import Metric


class EuclideanMetric(Metric):
    """The Euclidean metric over a finite point set in R^d.

    Parameters
    ----------
    points:
        Array-like of shape ``(n, d)`` (or ``(n,)`` for points on the
        line, which is reshaped to ``(n, 1)``).
    """

    def __init__(self, points: Union[np.ndarray, Sequence[Sequence[float]]]):
        super().__init__()
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            points = points[:, None]
        if points.ndim != 2:
            raise ValueError(f"points must be (n, d), got shape {points.shape}")
        if points.shape[0] == 0:
            raise ValueError("point set must be non-empty")
        if not np.all(np.isfinite(points)):
            raise ValueError("points must be finite")
        self._points = points.copy()
        self._points.setflags(write=False)

    @property
    def n(self) -> int:
        return self._points.shape[0]

    @property
    def dim(self) -> int:
        """Ambient dimension d."""
        return self._points.shape[1]

    @property
    def points(self) -> np.ndarray:
        """The ``(n, d)`` coordinate array (read-only)."""
        return self._points

    def _compute_matrix(self) -> np.ndarray:
        diff = self._points[:, None, :] - self._points[None, :, :]
        return np.sqrt(np.sum(diff * diff, axis=-1))
