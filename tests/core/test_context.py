"""Unit + property tests for the shared interference engine.

The hypothesis properties drive a :class:`ClassAccumulator` through
random add/remove sequences and require agreement with from-scratch
:func:`sinr_margins` to 1e-9 relative — including infinite-gain
(shared-node) entries, which must survive removal exactly (no
``inf - inf`` debris).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.context import (
    InterferenceContext,
    cache_info,
    clear_context_cache,
    engine_disabled,
    engine_enabled,
    get_context,
    maybe_context,
)
from repro.core.errors import InvalidScheduleError
from repro.core.feasibility import (
    feasible_subset_mask,
    is_feasible_partition,
    is_feasible_subset,
    sinr_margins,
)
from repro.core.instance import Direction, Instance
from repro.geometry.line import LineMetric
from repro.instances.random_instances import random_uniform_instance
from repro.power.oblivious import SquareRootPower


def _shared_node_instance(direction):
    metric = LineMetric([0.0, 1.0, 2.5, 4.5, 7.0, 9.0])
    pairs = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]
    return Instance(
        metric,
        [p[0] for p in pairs],
        [p[1] for p in pairs],
        direction=direction,
    )


def _instance_pool():
    return {
        "bidir": random_uniform_instance(9, rng=11),
        "directed": random_uniform_instance(9, rng=12, direction="directed"),
        "shared-bidir": _shared_node_instance(Direction.BIDIRECTIONAL),
        "shared-dir": _shared_node_instance(Direction.DIRECTED),
    }


POOL = _instance_pool()
POWERS = {name: SquareRootPower()(inst) for name, inst in POOL.items()}


class TestContextMatchesLegacy:
    """The engine path must be bit-identical to the from-scratch path."""

    @pytest.mark.parametrize("name", sorted(POOL))
    def test_margins_full_and_colored(self, name):
        instance, powers = POOL[name], POWERS[name]
        context = get_context(instance, powers)
        rng = np.random.default_rng(0)
        colors = rng.integers(0, 3, size=instance.n)
        for kwargs in (
            {},
            {"colors": colors},
            {"subset": np.arange(instance.n // 2 + 1)},
            {"colors": colors, "subset": np.asarray([0, 2, 4])},
            {"beta": 2.5},
            {"noise": 0.25},
        ):
            with engine_disabled():
                expected = sinr_margins(instance, powers, **kwargs)
            got = context.margins(**kwargs)
            np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("name", sorted(POOL))
    def test_wrappers_agree_across_engine_toggle(self, name):
        instance, powers = POOL[name], POWERS[name]
        subset = np.asarray([0, 1, 3])
        colors = np.asarray([0, 1, 0, 1, 2] + [0] * (instance.n - 5))
        with engine_disabled():
            legacy = (
                sinr_margins(instance, powers),
                feasible_subset_mask(instance, powers, subset),
                is_feasible_subset(instance, powers, subset),
                is_feasible_partition(instance, powers, colors),
            )
        assert engine_enabled()
        engine = (
            sinr_margins(instance, powers),
            feasible_subset_mask(instance, powers, subset),
            is_feasible_subset(instance, powers, subset),
            is_feasible_partition(instance, powers, colors),
        )
        np.testing.assert_array_equal(engine[0], legacy[0])
        np.testing.assert_array_equal(engine[1], legacy[1])
        assert engine[2] == legacy[2]
        assert engine[3] == legacy[3]

    def test_budget_slack_sign_matches_feasibility(self):
        instance, powers = POOL["bidir"], POWERS["bidir"]
        context = get_context(instance, powers)
        subset = np.arange(instance.n)
        slack = context.budget_slack(subset)
        mask = context.feasible_mask(subset)
        # Nonnegative slack <=> the SINR constraint holds (up to rtol).
        np.testing.assert_array_equal(slack >= -1e-12, mask)

    def test_shared_node_slack_is_minus_inf(self):
        instance = POOL["shared-bidir"]
        context = get_context(instance, POWERS["shared-bidir"])
        slack = context.budget_slack(np.asarray([0, 1]))
        assert np.all(np.isneginf(slack))


class TestContextCache:
    def test_cache_hit_on_equal_powers(self):
        clear_context_cache()
        instance, powers = POOL["bidir"], POWERS["bidir"]
        first = get_context(instance, powers)
        second = get_context(instance, powers.copy())  # equal by value
        assert first is second
        info = cache_info()
        assert info["hits"] >= 1 and info["misses"] >= 1

    def test_distinct_powers_get_distinct_contexts(self):
        instance, powers = POOL["bidir"], POWERS["bidir"]
        first = get_context(instance, powers)
        second = get_context(instance, powers * 2.0)
        assert first is not second

    def test_seeded_defaults_do_not_leak_to_default_callers(self):
        """A context created with beta/noise overrides must not be
        served to callers expecting instance defaults."""
        clear_context_cache()
        instance, powers = POOL["bidir"], POWERS["bidir"]
        seeded = get_context(instance, powers, noise=5.0, beta=2.0)
        plain = get_context(instance, powers)
        assert plain is not seeded
        assert plain.noise == instance.noise and plain.beta == instance.beta
        assert get_context(instance, powers, noise=5.0, beta=2.0) is seeded

    def test_maybe_context_respects_toggle(self):
        instance, powers = POOL["bidir"], POWERS["bidir"]
        assert maybe_context(instance, powers) is not None
        with engine_disabled():
            assert maybe_context(instance, powers) is None
        assert maybe_context(instance, powers) is not None

    def test_context_validates_powers(self):
        instance = POOL["bidir"]
        with pytest.raises(InvalidScheduleError):
            InterferenceContext(instance, np.ones(instance.n - 1))
        with pytest.raises(InvalidScheduleError):
            InterferenceContext(instance, np.zeros(instance.n))

    def test_dropped_instances_are_collectable(self):
        """Cached contexts must not pin their instance forever: once the
        caller drops the instance, the instance<->context cycle is
        garbage-collectable."""
        import gc
        import weakref as wr

        clear_context_cache()
        refs = []
        for seed in range(3):
            inst = random_uniform_instance(5, rng=50 + seed)
            get_context(inst, SquareRootPower()(inst)).margins()
            refs.append(wr.ref(inst))
        del inst
        gc.collect()
        assert all(r() is None for r in refs), "instances leaked via cache"
        assert cache_info()["contexts"] == 0

    def test_global_lru_bounds_total_contexts(self):
        """Satellite regression: a long run over many instances must
        not grow the context cache without limit — the global LRU keeps
        the total live-context count at the configured bound."""
        from repro.core.context import (
            context_cache_limit,
            set_context_cache_limit,
        )

        clear_context_cache()
        previous = context_cache_limit()
        try:
            set_context_cache_limit(5)
            instances = [
                random_uniform_instance(4, rng=700 + i) for i in range(12)
            ]
            contexts = [
                get_context(inst, SquareRootPower()(inst))
                for inst in instances
            ]
            assert len(contexts) == 12  # all served
            info = cache_info()
            assert info["limit"] == 5
            assert info["contexts"] <= 5
            # The most recent contexts are the survivors: re-fetching
            # them hits the cache (same object)...
            for inst in instances[-5:]:
                assert (
                    get_context(inst, SquareRootPower()(inst))
                    in contexts[-5:]
                )
            # ...while the evicted ones are rebuilt.
            rebuilt = get_context(
                instances[0], SquareRootPower()(instances[0])
            )
            assert rebuilt is not contexts[0]
            # Shrinking the limit evicts immediately.
            set_context_cache_limit(2)
            assert cache_info()["contexts"] <= 2
        finally:
            set_context_cache_limit(previous)
            clear_context_cache()

    def test_lru_bound_does_not_leak_dropped_instances(self):
        """The LRU tracker must hold only weak references: instances
        dropped by the caller stay collectable even while under the
        cache bound."""
        import gc
        import weakref as wr

        from repro.core.context import (
            context_cache_limit,
            set_context_cache_limit,
        )

        clear_context_cache()
        previous = context_cache_limit()
        try:
            set_context_cache_limit(64)  # far above what we create
            refs = []
            for seed in range(4):
                inst = random_uniform_instance(4, rng=900 + seed)
                get_context(inst, SquareRootPower()(inst)).margins()
                refs.append(wr.ref(inst))
            del inst
            gc.collect()
            assert all(r() is None for r in refs)
            assert cache_info()["contexts"] == 0
        finally:
            set_context_cache_limit(previous)
            clear_context_cache()

    def test_backend_variants_get_distinct_cache_slots(self):
        instance, powers = POOL["bidir"], POWERS["bidir"]
        dense = get_context(instance, powers, backend="dense")
        sparse = get_context(instance, powers, backend="sparse")
        pruned = get_context(
            instance, powers, backend="sparse", sparse_epsilon=0.01
        )
        assert dense is not sparse
        assert sparse is not pruned
        assert get_context(instance, powers, backend="sparse") is sparse

    def test_duplicate_subset_indices_match_legacy(self):
        """A repeated index in `subset` is two copies of one request;
        engine and legacy paths must agree on its (in)feasibility."""
        for name in ("bidir", "directed"):
            instance, powers = POOL[name], POWERS[name]
            subset = np.asarray([2, 2])
            with engine_disabled():
                legacy_margins = sinr_margins(instance, powers, subset=subset)
                legacy_ok = is_feasible_subset(instance, powers, subset)
            engine_margins = sinr_margins(instance, powers, subset=subset)
            np.testing.assert_array_equal(engine_margins, legacy_margins)
            assert is_feasible_subset(instance, powers, subset) == legacy_ok

    def test_context_immune_to_caller_mutation(self):
        instance = POOL["bidir"]
        powers = SquareRootPower()(instance).copy()
        context = get_context(instance, powers)
        margins_before = context.margins()
        powers *= 10.0  # caller mutates their array afterwards
        np.testing.assert_array_equal(context.margins(), margins_before)
        # The mutated vector resolves to a *different* context.
        assert get_context(instance, powers) is not context


class TestGreedyOnContext:
    @pytest.mark.parametrize("name", sorted(POOL))
    def test_greedy_matches_legacy(self, name):
        from repro.analysis.capacity import greedy_max_feasible_subset

        instance, powers = POOL[name], POWERS[name]
        with engine_disabled():
            legacy = greedy_max_feasible_subset(instance, powers)
        engine = greedy_max_feasible_subset(instance, powers)
        np.testing.assert_array_equal(engine, legacy)
        # Also at a rescaled gain (the Theorem 15 repair setting).
        with engine_disabled():
            legacy_half = greedy_max_feasible_subset(
                instance, powers, beta=instance.beta / 2.0
            )
        engine_half = greedy_max_feasible_subset(
            instance, powers, beta=instance.beta / 2.0
        )
        np.testing.assert_array_equal(engine_half, legacy_half)


# ----------------------------------------------------------------------
# Property-based: ClassAccumulator vs from-scratch sinr_margins
# ----------------------------------------------------------------------


def _apply_ops(acc, ops):
    """Replay an add/remove script; returns the final member list."""
    members = []
    for op in ops:
        idx = op % acc.context.n
        if idx in members:
            acc.remove(idx)
            members.remove(idx)
        else:
            acc.add(idx)
            members.append(idx)
    return members


@settings(max_examples=60, deadline=None)
@given(
    name=st.sampled_from(sorted(POOL)),
    ops=st.lists(st.integers(min_value=0, max_value=10**6), max_size=40),
)
def test_accumulator_matches_from_scratch_margins(name, ops):
    instance, powers = POOL[name], POWERS[name]
    acc = get_context(instance, powers).accumulator()
    members = _apply_ops(acc, ops)
    assert sorted(members) == sorted(acc.members.tolist())
    if not members:
        assert acc.feasible()
        return
    subset = np.asarray(sorted(members), dtype=int)
    with engine_disabled():
        expected = sinr_margins(instance, powers, subset=subset)
    got = acc.margins()
    # inf/0 entries (shared-node pairs) must match exactly; finite
    # entries to 1e-9 relative.
    finite = np.isfinite(expected) & (expected > 0)
    np.testing.assert_array_equal(got[~finite], expected[~finite])
    np.testing.assert_allclose(got[finite], expected[finite], rtol=1e-9)


@settings(max_examples=60, deadline=None)
@given(
    name=st.sampled_from(sorted(POOL)),
    ops=st.lists(st.integers(min_value=0, max_value=10**6), max_size=30),
    probe=st.integers(min_value=0, max_value=10**6),
)
def test_accumulator_interference_at_outsiders(name, ops, probe):
    """The accumulator answers "what would request i suffer if it
    joined?" for non-members too — checked against a from-scratch
    computation on members + probe."""
    instance, powers = POOL[name], POWERS[name]
    context = get_context(instance, powers)
    acc = context.accumulator()
    members = _apply_ops(acc, ops)
    probe = probe % instance.n
    if probe in members:
        return
    trial = np.asarray(sorted(members + [probe]), dtype=int)
    with engine_disabled():
        expected = sinr_margins(instance, powers, subset=trial)
    expected_probe = expected[int(np.searchsorted(trial, probe))]
    got_interf = acc.interference(np.asarray([probe]))[0]
    signal = context.signals[probe]
    if np.isinf(got_interf):
        assert expected_probe == 0.0
    elif got_interf == 0.0 and instance.noise == 0.0:
        assert np.isinf(expected_probe)
    else:
        got_margin = signal / (instance.beta * (got_interf + instance.noise))
        np.testing.assert_allclose(got_margin, expected_probe, rtol=1e-9)


@settings(max_examples=40, deadline=None)
@given(
    name=st.sampled_from(sorted(POOL)),
    ops=st.lists(st.integers(min_value=0, max_value=10**6), max_size=30),
)
def test_accumulator_feasible_matches_is_feasible_subset(name, ops):
    instance, powers = POOL[name], POWERS[name]
    acc = get_context(instance, powers).accumulator()
    members = _apply_ops(acc, ops)
    with engine_disabled():
        expected = is_feasible_subset(instance, powers, sorted(members))
    assert acc.feasible() == expected


class TestAccumulatorUnit:
    def test_shared_node_add_remove_is_exact(self):
        """inf contributions must vanish exactly on removal."""
        instance = POOL["shared-bidir"]
        context = get_context(instance, POWERS["shared-bidir"])
        acc = context.accumulator()
        acc.add(0)
        baseline = acc.interference(np.arange(instance.n)).copy()
        acc.add(1)  # shares a node with request 0
        assert np.isinf(acc.interference(np.asarray([0]))[0])
        acc.remove(1)
        after = acc.interference(np.arange(instance.n))
        # The inf bookkeeping is exact (counts, not arithmetic): no
        # nan debris, and the inf/finite pattern is fully restored.
        assert not np.any(np.isnan(after))
        np.testing.assert_array_equal(np.isinf(after), np.isinf(baseline))
        finite = np.isfinite(baseline)
        np.testing.assert_allclose(
            after[finite], baseline[finite], rtol=1e-12, atol=0.0
        )

    def test_can_add_agrees_with_commit(self):
        instance, powers = POOL["bidir"], POWERS["bidir"]
        context = get_context(instance, powers)
        acc = context.accumulator()
        for req in range(instance.n):
            verdict = acc.can_add(req)
            acc.add(req)
            if verdict != acc.feasible():
                # can_add may only disagree when the class was already
                # infeasible before the candidate arrived.
                acc.remove(req)
                assert not acc.feasible()
                acc.add(req)
            if not acc.feasible():
                acc.remove(req)

    def test_bulk_init_equals_sequential(self):
        instance, powers = POOL["shared-dir"], POWERS["shared-dir"]
        context = get_context(instance, powers)
        bulk = context.accumulator(members=[0, 2, 4])
        seq = context.accumulator()
        for req in (0, 2, 4):
            seq.add(req)
        np.testing.assert_array_equal(
            bulk.interference(np.arange(instance.n)),
            seq.interference(np.arange(instance.n)),
        )
        np.testing.assert_array_equal(bulk.member_mask, seq.member_mask)

    def test_membership_errors(self):
        context = get_context(POOL["bidir"], POWERS["bidir"])
        acc = context.accumulator(members=[1])
        with pytest.raises(ValueError):
            acc.add(1)
        with pytest.raises(ValueError):
            acc.remove(2)
        with pytest.raises(ValueError):
            context.accumulator(members=[3, 3])
        assert 1 in acc and 2 not in acc and len(acc) == 1
