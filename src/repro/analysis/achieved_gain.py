"""Achieved-gain analysis: how much SINR slack a schedule really has.

The paper's machinery moves between gains (γ, γ′, γ″...) constantly;
when measuring, the natural dual question is: *given* powers and a
coloring, what is the largest gain β for which the SINR constraints
still hold?  Because margins scale as 1/β, this is simply
``beta * min_margin`` — but having it as a named, tested operation
keeps experiment code honest.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.feasibility import sinr_margins
from repro.core.instance import Instance
from repro.core.schedule import Schedule
from repro.nodeloss.feasibility import nodeloss_margins
from repro.nodeloss.instance import NodeLossInstance


def achieved_gain(
    instance: Instance,
    powers: np.ndarray,
    colors: Optional[np.ndarray] = None,
    subset: Optional[Sequence[int]] = None,
) -> float:
    """Largest gain at which the configuration satisfies all SINR
    constraints (``inf`` if nothing interferes, ``0.0`` if some request
    is drowned at every positive gain)."""
    margins = sinr_margins(instance, powers, colors=colors, subset=subset, beta=1.0)
    return float(np.min(margins))


def schedule_achieved_gain(instance: Instance, schedule: Schedule) -> float:
    """Largest gain at which *schedule* remains feasible."""
    return achieved_gain(instance, schedule.powers, colors=schedule.colors)


def per_class_achieved_gains(instance: Instance, schedule: Schedule) -> dict:
    """Achieved gain of each color class separately.

    Useful for spotting unbalanced schedules: a class with a huge
    achieved gain could absorb more requests.
    """
    gains = {}
    for color, members in schedule.color_classes().items():
        gains[color] = achieved_gain(instance, schedule.powers, subset=members)
    return gains


def nodeloss_achieved_gain(
    instance: NodeLossInstance,
    powers: np.ndarray,
    subset: Optional[Sequence[int]] = None,
) -> float:
    """Node-loss analogue of :func:`achieved_gain`."""
    margins = nodeloss_margins(instance, powers, subset=subset, gamma=1.0)
    return float(np.min(margins))
