"""Random-number-generator plumbing.

All randomness in the library flows through :class:`numpy.random.Generator`
instances so that every experiment is reproducible from a single integer
seed.  Functions accept ``rng=None`` (fresh entropy), an ``int`` seed, or
an existing ``Generator`` and normalise via :func:`ensure_rng`.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *rng*.

    Parameters
    ----------
    rng:
        ``None`` (fresh OS entropy), an integer seed, or an existing
        generator (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot build a Generator from {type(rng).__name__}")


def spawn_rngs(rng: RngLike, count: int) -> List[np.random.Generator]:
    """Derive *count* independent child generators from *rng*.

    Child streams are independent of each other and of the parent, so
    parallel experiment arms do not share randomness.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]
