"""The classic oblivious power-assignment families.

* **Uniform** — all pairs transmit at the same power (most MAC-layer
  literature, see §1).
* **Linear** — ``p_i`` proportional to the loss ``l_i``; the
  energy-minimal choice discussed in §6 and [5].
* **Square root** — the paper's hero: ``p̄_i = sqrt(l_i)``; Theorem 2
  proves it universally polylog-good for bidirectional requests.
* **Mean family** — ``p_i = l_i**tau`` for ``tau in [0, 1]``,
  interpolating uniform (``tau = 0``), square root (``tau = 1/2``) and
  linear (``tau = 1``); used by the experiments to map out the
  sublinear/superlinear divide of Section 2.
* **FunctionPower** — wraps an arbitrary ``f`` (Theorem 1 quantifies
  over *all* oblivious functions, so the adversarial construction needs
  this).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.power.base import ObliviousPowerAssignment
from repro.util.validation import check_positive


class UniformPower(ObliviousPowerAssignment):
    """Constant power ``p_i = level`` for every request."""

    def __init__(self, level: float = 1.0):
        self.level = check_positive(level, "level")

    @property
    def name(self) -> str:
        return "uniform"

    def power_of_loss(self, loss: np.ndarray) -> np.ndarray:
        return np.full_like(np.asarray(loss, dtype=float), self.level)


class LinearPower(ObliviousPowerAssignment):
    """Linear assignment ``p_i = scale * l_i``."""

    def __init__(self, scale: float = 1.0):
        self.scale = check_positive(scale, "scale")

    @property
    def name(self) -> str:
        return "linear"

    def power_of_loss(self, loss: np.ndarray) -> np.ndarray:
        return self.scale * np.asarray(loss, dtype=float)


class SquareRootPower(ObliviousPowerAssignment):
    """The square-root assignment ``p̄_i = scale * sqrt(l_i)`` (§3)."""

    def __init__(self, scale: float = 1.0):
        self.scale = check_positive(scale, "scale")

    @property
    def name(self) -> str:
        return "sqrt"

    def power_of_loss(self, loss: np.ndarray) -> np.ndarray:
        return self.scale * np.sqrt(np.asarray(loss, dtype=float))


class MeanPower(ObliviousPowerAssignment):
    """The interpolating family ``p_i = scale * l_i**tau``.

    ``tau = 0`` is uniform, ``tau = 1/2`` the square root, ``tau = 1``
    linear and ``tau > 1`` superlinear.  Section 2 shows the directed
    lower bound applies to all of them; Section 3 shows ``tau = 1/2``
    is special for bidirectional requests.
    """

    def __init__(self, tau: float, scale: float = 1.0):
        if tau < 0:
            raise ValueError(f"tau must be >= 0, got {tau}")
        self.tau = float(tau)
        self.scale = check_positive(scale, "scale")

    @property
    def name(self) -> str:
        return f"loss^{self.tau:g}"

    def power_of_loss(self, loss: np.ndarray) -> np.ndarray:
        return self.scale * np.asarray(loss, dtype=float) ** self.tau


class FunctionPower(ObliviousPowerAssignment):
    """An arbitrary oblivious assignment ``p_i = f(l_i)``.

    Parameters
    ----------
    f:
        Function from positive loss to positive power; must accept
        numpy arrays (it is applied to the whole loss vector).
    name:
        Label for experiment tables.
    """

    def __init__(self, f: Callable[[np.ndarray], np.ndarray], name: str = "custom-f"):
        self._f = f
        self._name = str(name)

    @property
    def name(self) -> str:
        return self._name

    def power_of_loss(self, loss: np.ndarray) -> np.ndarray:
        return np.asarray(self._f(np.asarray(loss, dtype=float)), dtype=float)
