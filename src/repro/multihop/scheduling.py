"""Layered multi-hop scheduling with end-to-end latency accounting.

A packet's hop ``h`` can only be transmitted after hop ``h - 1``;
the simple *layered* strategy schedules all first hops, then all
second hops, and so on.  Within a layer the hops form an ordinary
single-hop interference scheduling instance, colored by any scheduler
from :mod:`repro.scheduling` (first-fit under a chosen power
assignment by default).

The end-to-end latency of a request is the global slot at which its
final hop fires; the schedule length is the total number of slots.
This reproduces the flavour of the Chafekar et al. cross-layer
objective (minimize end-to-end latency subject to SINR constraints)
on top of our substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.instance import Direction, Instance
from repro.core.schedule import Schedule
from repro.geometry.metric import Metric
from repro.multihop.routing import RoutedRequest
from repro.power.base import PowerAssignment
from repro.power.oblivious import SquareRootPower
from repro.scheduling.firstfit import first_fit_schedule


@dataclass
class MultiHopSchedule:
    """The outcome of layered multi-hop scheduling.

    Attributes
    ----------
    total_slots:
        Overall schedule length (sum of per-layer colors).
    latencies:
        Per-request end-to-end latency (slot of the final hop, 1-based).
    layer_slots:
        Colors used by each layer.
    hop_slot:
        Mapping ``(request_index, hop_index) -> global slot`` (0-based).
    layer_schedules:
        The verified per-layer :class:`Schedule` objects.
    """

    total_slots: int
    latencies: List[int]
    layer_slots: List[int]
    hop_slot: Dict[Tuple[int, int], int]
    layer_schedules: List[Schedule] = field(default_factory=list)

    @property
    def max_latency(self) -> int:
        return max(self.latencies)

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latencies))


def layered_multihop_schedule(
    metric: Metric,
    routes: Sequence[RoutedRequest],
    power: Optional[PowerAssignment] = None,
    direction: Direction = Direction.DIRECTED,
    alpha: float = 3.0,
    beta: float = 1.0,
) -> MultiHopSchedule:
    """Schedule routed requests layer by layer.

    Parameters
    ----------
    metric:
        Host metric (routes reference its node indices).
    routes:
        Output of :func:`repro.multihop.routing.route_requests`.
    power:
        Oblivious assignment for every hop (sqrt by default).
    direction:
        Hops are directed transmissions by default; the bidirectional
        variant models full-duplex relaying.

    Notes
    -----
    Precedence is enforced *between* layers, which is sufficient (hop
    ``h`` of every packet is in an earlier layer than hop ``h + 1``)
    but not necessary; tighter pipelined schedules are possible and
    measured against in the multi-hop benchmark.
    """
    if not routes:
        raise ValueError("routes must be non-empty")
    if power is None:
        power = SquareRootPower()
    max_hops = max(route.hop_count for route in routes)

    total = 0
    layer_slots: List[int] = []
    hop_slot: Dict[Tuple[int, int], int] = {}
    latencies = [0] * len(routes)
    layer_schedules: List[Schedule] = []

    for layer in range(max_hops):
        members = [
            (req_idx, route.hops[layer])
            for req_idx, route in enumerate(routes)
            if layer < route.hop_count
        ]
        if not members:
            continue
        senders = [hop[0] for _, hop in members]
        receivers = [hop[1] for _, hop in members]
        instance = Instance(
            metric, senders, receivers, direction=direction, alpha=alpha, beta=beta
        )
        schedule = first_fit_schedule(instance, power(instance))
        schedule.validate(instance)
        layer_schedules.append(schedule)
        used = schedule.num_colors
        dense = schedule.compacted()
        for local, (req_idx, _) in enumerate(members):
            slot = total + int(dense.colors[local])
            hop_slot[(req_idx, layer)] = slot
            latencies[req_idx] = slot + 1  # final hop overwrites earlier ones
        total += used
        layer_slots.append(used)

    return MultiHopSchedule(
        total_slots=total,
        latencies=latencies,
        layer_slots=layer_slots,
        hop_slot=hop_slot,
        layer_schedules=layer_schedules,
    )
