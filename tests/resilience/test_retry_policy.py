"""RetryPolicy backoff math, validation, and ShardFailure round-trip."""

import pytest

from repro.resilience import RetryPolicy, ShardFailure


class TestRetryPolicy:
    def test_defaults_are_fail_fast(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 1
        assert policy.deadline is None

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay=0.1, backoff=2.0, max_delay=0.5
        )
        assert policy.delay_before_retry(1) == pytest.approx(0.1)
        assert policy.delay_before_retry(2) == pytest.approx(0.2)
        assert policy.delay_before_retry(3) == pytest.approx(0.4)
        # 0.8 would exceed the cap.
        assert policy.delay_before_retry(4) == pytest.approx(0.5)
        assert policy.delay_before_retry(100) == pytest.approx(0.5)

    def test_zero_base_delay_never_sleeps(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.0)
        assert policy.delay_before_retry(1) == 0.0
        assert policy.delay_before_retry(4) == 0.0

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"max_attempts": 0}, "max_attempts"),
            ({"base_delay": -0.1}, "base_delay"),
            ({"deadline": 0.0}, "deadline"),
            ({"deadline": -1.0}, "deadline"),
            ({"backoff": 0.5}, "backoff"),
            ({"max_delay": -1.0}, "max_delay"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            RetryPolicy(**kwargs)

    def test_delay_requires_positive_failures(self):
        with pytest.raises(ValueError, match="failures"):
            RetryPolicy().delay_before_retry(0)


class TestShardFailure:
    def test_round_trip(self):
        failure = ShardFailure(
            key="n=256",
            shard_index=3,
            seed=12345,
            error_type="InjectedFault",
            error="boom",
            attempts=2,
        )
        assert ShardFailure.from_dict(failure.to_dict()) == failure

    def test_from_dict_is_lenient(self):
        failure = ShardFailure.from_dict({"key": "n=4", "shard_index": 0})
        assert failure.seed is None
        assert failure.error_type == "Exception"
        assert failure.attempts == 1
