"""Distributed data plane: sharded gains + message-passing protocol.

The repo's first multi-process subsystem.  Two halves, both riding the
:class:`~repro.runner.executors.ShardExecutor` actor abstraction:

* :mod:`repro.distributed.sharded` — :class:`ShardedBackend`, the
  ``"sharded"`` :class:`~repro.core.gains.GainBackend`: ``W`` workers
  each own (and locally build) one ε-pruned block row of the gain
  matrix, which is never materialized globally; queries decompose into
  per-shard partial reductions plus one merge, bit-identical to the
  single-process backends at any ``W``.
* :mod:`repro.distributed.protocol` — :func:`distributed_protocol`,
  the §6 slotted random-access protocol staged as genuinely
  distributed node blocks (private RNG streams and state per worker,
  parent acting only as the channel) instead of the single-process
  simulation in :mod:`repro.scheduling.distributed`.
"""

from repro.distributed.protocol import ProtocolNodeBlock, distributed_protocol
from repro.distributed.sharded import GainShard, ShardedBackend, shard_bounds

__all__ = [
    "GainShard",
    "ProtocolNodeBlock",
    "ShardedBackend",
    "distributed_protocol",
    "shard_bounds",
]
