"""Affectance: the normalized interference measure of the follow-up
SINR-scheduling literature.

The affectance of request ``i`` by request ``j`` under powers ``p`` is
the fraction of ``i``'s SINR budget that ``j`` consumes:

    a_p(j -> i) = beta * (p_j / l(u_j -> i's worst endpoint)) /
                  (p_i / l_i)

(capped at 1 in the "one-slot" convention; uncapped here by default,
with the cap as an option).  A set is feasible iff every request's
total affectance is below 1.  Introduced in the literature that grew
out of this paper (Kesselheim et al.), it is the standard tool for
capacity arguments and makes a natural addition to the analysis layer.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.context import InterferenceContext, maybe_context
from repro.core.gains import DEFAULT_TILE_ROWS
from repro.core.instance import Direction, Instance
from repro.core.interference import (
    bidirectional_gain_matrices,
    directed_gain_matrix,
)


def _worst_block(
    context: InterferenceContext, rows: np.ndarray, cols: np.ndarray
) -> np.ndarray:
    """Worst-endpoint gain block ``G[np.ix_(rows, cols)]`` through the
    backend block primitives (no dense materialization)."""
    backend = context.backend
    block = backend.cross_block_u(rows, cols)
    if not backend.directed:
        block = np.maximum(block, backend.cross_block_v(rows, cols))
    return block


def _blockwise_row_affectance(
    context: InterferenceContext,
    idx: np.ndarray,
    beta: float,
    capped: bool,
) -> np.ndarray:
    """Row sums of the affectance submatrix ``A[np.ix_(idx, idx)]``,
    tiled in :data:`~repro.core.gains.DEFAULT_TILE_ROWS` full-width row
    strips.

    Each strip applies the same elementwise formula as
    :func:`affectance_matrix` to an exact gain block and reduces along
    the complete trailing axis, so the totals are bit-identical to the
    dense route — ε-pruned sparse and device-resident backends just
    never materialize ``(n, n)`` host arrays.
    """
    signals = context.signals
    totals = np.empty(idx.size)
    for lo in range(0, idx.size, DEFAULT_TILE_ROWS):
        rows = idx[lo : lo + DEFAULT_TILE_ROWS]
        block = beta * _worst_block(context, rows, idx) / (
            signals[rows][:, None]
        )
        if capped:
            block = np.minimum(block, 1.0)
        totals[lo : lo + rows.size] = block.sum(axis=1)
    return totals


def affectance_matrix(
    instance: Instance,
    powers: np.ndarray,
    beta: Optional[float] = None,
    capped: bool = False,
) -> np.ndarray:
    """The pairwise affectance matrix ``A[i, j] = a_p(j -> i)``.

    ``A[i, j]`` is the fraction of request ``i``'s interference budget
    consumed by request ``j``; the diagonal is zero.  For the
    bidirectional variant the worst endpoint of ``i`` is charged.

    Routes through the shared interference engine when enabled, so the
    worst-endpoint gain matrix is fetched from the context cache.
    """
    beta = instance.beta if beta is None else float(beta)
    powers = np.asarray(powers, dtype=float)
    context = maybe_context(instance, powers)
    if context is not None:
        gains = context.worst_gains
    elif instance.direction is Direction.DIRECTED:
        gains = directed_gain_matrix(instance, powers)
    else:
        gains_u, gains_v = bidirectional_gain_matrices(instance, powers)
        gains = np.maximum(gains_u, gains_v)
    signals = powers / instance.link_losses
    affectance = beta * gains / signals[:, None]
    if capped:
        affectance = np.minimum(affectance, 1.0)
    return affectance


def total_affectance(
    instance: Instance,
    powers: np.ndarray,
    subset: Optional[Sequence[int]] = None,
    beta: Optional[float] = None,
) -> np.ndarray:
    """Total affectance suffered by each request of *subset*.

    A value below 1 means the request's SINR constraint holds within
    the subset; the maximum total affectance of a set is its natural
    "load" measure.
    """
    powers = np.asarray(powers, dtype=float)
    context = maybe_context(instance, powers)
    if context is not None and context.backend_name != "dense":
        beta_val = instance.beta if beta is None else float(beta)
        idx = (
            np.arange(instance.n)
            if subset is None
            else np.asarray(subset, dtype=int)
        )
        return _blockwise_row_affectance(context, idx, beta_val, capped=False)
    matrix = affectance_matrix(instance, powers, beta=beta)
    if subset is None:
        return matrix.sum(axis=1)
    idx = np.asarray(subset, dtype=int)
    sub = matrix[np.ix_(idx, idx)]
    return sub.sum(axis=1)


def max_average_affectance(
    instance: Instance,
    powers: np.ndarray,
    beta: Optional[float] = None,
) -> float:
    """Maximum over requests of average affectance — a lower-bound
    style load statistic used in the follow-up literature: a schedule
    into ``k`` colors forces some class to carry at least a ``1/k``
    fraction of each row's affectance, so ``max_i avg_j A[i, j] * n``
    relates to achievable class sizes."""
    if instance.n <= 1:
        return 0.0
    powers = np.asarray(powers, dtype=float)
    context = maybe_context(instance, powers)
    if context is not None and context.backend_name != "dense":
        beta_val = instance.beta if beta is None else float(beta)
        totals = _blockwise_row_affectance(
            context, np.arange(instance.n), beta_val, capped=True
        )
        return float(totals.max() / (instance.n - 1))
    matrix = affectance_matrix(instance, powers, beta=beta, capped=True)
    return float(matrix.sum(axis=1).max() / (instance.n - 1))


def fixed_power_conflict_bound(
    instance: Instance,
    powers: np.ndarray,
    beta: Optional[float] = None,
) -> int:
    """A sound lower bound on colors *for these fixed powers*.

    Two requests with ``A[i, j] >= 1`` or ``A[j, i] >= 1`` can never
    share a color under *powers* (one of them would spend its whole
    SINR budget on the other alone), so any clique in that conflict
    graph needs pairwise-distinct colors.  A greedy clique supplies the
    certificate.  Note this bounds colorings under the *given* powers;
    :func:`repro.analysis.bounds.clique_lower_bound` is the
    power-agnostic analogue.
    """
    powers = np.asarray(powers, dtype=float)
    context = maybe_context(instance, powers)
    if context is not None and context.backend_name != "dense":
        beta_val = instance.beta if beta is None else float(beta)
        return _blockwise_conflict_bound(context, beta_val)
    matrix = affectance_matrix(instance, powers, beta=beta, capped=False)
    conflicts = (matrix >= 1.0) | (matrix.T >= 1.0)
    np.fill_diagonal(conflicts, False)
    degrees = conflicts.sum(axis=1)
    best = 1
    for seed in np.argsort(-degrees)[: min(10, instance.n)]:
        clique = [int(seed)]
        candidates = set(np.flatnonzero(conflicts[seed]).tolist())
        while candidates:
            vertex = max(candidates, key=lambda v: degrees[v])
            clique.append(int(vertex))
            candidates &= set(np.flatnonzero(conflicts[vertex]).tolist())
        best = max(best, len(clique))
    return best


def _conflict_rows(
    context: InterferenceContext, rows: np.ndarray, beta: float
) -> np.ndarray:
    """Boolean conflict-graph rows ``conflicts[rows, :]`` from gain
    blocks: ``i`` and ``j`` conflict when either direction's affectance
    reaches 1.  Diagonal entries are cleared."""
    n = context.n
    all_idx = np.arange(n)
    signals = context.signals
    out_aff = beta * _worst_block(context, rows, all_idx) / (
        signals[rows][:, None]
    )
    in_aff = beta * _worst_block(context, all_idx, rows) / signals[:, None]
    conflicts = (out_aff >= 1.0) | (in_aff.T >= 1.0)
    conflicts[np.arange(rows.size), rows] = False
    return conflicts


def _blockwise_conflict_bound(
    context: InterferenceContext, beta: float
) -> int:
    """:func:`fixed_power_conflict_bound` on backend blocks: degrees
    from full-width row strips, then clique rows fetched on demand —
    the ``(n, n)`` conflict graph is never materialized at once."""
    n = context.n
    all_idx = np.arange(n)
    degrees = np.empty(n, dtype=np.intp)
    for lo in range(0, n, DEFAULT_TILE_ROWS):
        rows = all_idx[lo : lo + DEFAULT_TILE_ROWS]
        degrees[lo : lo + rows.size] = _conflict_rows(
            context, rows, beta
        ).sum(axis=1)

    def row(vertex: int) -> np.ndarray:
        return _conflict_rows(context, np.asarray([vertex]), beta)[0]

    best = 1
    for seed in np.argsort(-degrees)[: min(10, n)]:
        clique = [int(seed)]
        candidates = set(np.flatnonzero(row(int(seed))).tolist())
        while candidates:
            vertex = max(candidates, key=lambda v: degrees[v])
            clique.append(int(vertex))
            candidates &= set(np.flatnonzero(row(vertex)).tolist())
        best = max(best, len(clique))
    return best
