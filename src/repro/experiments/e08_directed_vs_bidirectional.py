"""E8 — §6 discussion: directed vs bidirectional scheduling.

Two claims are measured:

1. "the bidirectional model can be simulated by the directed one using
   twice the number of steps": replacing each bidirectional pair by its
   two directed orientations and scheduling those needs at most twice
   the bidirectional colors (and the measured factor is reported);
2. bidirectional constraints are *at least* as strict as directed ones
   on identical request sets, so bidirectional schedules never use
   fewer colors under the same assignment.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.instance import Direction, Instance
from repro.core.schedule import Schedule
from repro.experiments.e03_sqrt_universal import InstanceFactory, default_families
from repro.power.oblivious import SquareRootPower
from repro.runner.spec import ExperimentSpec
from repro.scheduling.registry import run_algorithm
from repro.util.rng import RngLike, ensure_rng, spawn_rngs
from repro.util.tables import Table


def doubled_directed_instance(instance: Instance) -> Instance:
    """Both orientations of every pair, as a directed instance."""
    senders = np.concatenate([instance.senders, instance.receivers])
    receivers = np.concatenate([instance.receivers, instance.senders])
    return Instance(
        instance.metric,
        senders,
        receivers,
        direction=Direction.DIRECTED,
        alpha=instance.alpha,
        beta=instance.beta,
        noise=instance.noise,
    )


def simulate_bidirectional_by_directed(
    instance: Instance, colors: np.ndarray, powers: np.ndarray
) -> "tuple[Instance, np.ndarray, np.ndarray]":
    """§6: replay a bidirectional schedule in the directed model.

    Each bidirectional slot becomes two directed slots — one per
    orientation — so the directed schedule uses exactly twice the
    colors.  Feasibility carries over because directed interference at
    a receiver is at most the bidirectional (min-loss) interference.

    Returns ``(doubled_instance, doubled_colors, doubled_powers)``.
    """
    doubled = doubled_directed_instance(instance)
    colors = np.asarray(colors)
    powers = np.asarray(powers, dtype=float)
    # Orientation u->v runs in slot 2c, orientation v->u in slot 2c+1.
    doubled_colors = np.concatenate([2 * colors, 2 * colors + 1])
    doubled_powers = np.concatenate([powers, powers])
    return doubled, doubled_colors, doubled_powers


def run_directed_vs_bidirectional(
    n_values: Sequence[int] = (10, 20, 40),
    families: Optional[Dict[str, InstanceFactory]] = None,
    trials: int = 3,
    rng: RngLike = 31,
) -> Table:
    """Compare schedule lengths across the two problem variants."""
    if families is None:
        families = default_families()
    rng = ensure_rng(rng)
    table = Table(
        title="E8: §6 — directed vs bidirectional schedule lengths",
        columns=[
            "family",
            "n",
            "colors_directed",
            "colors_bidirectional",
            "simulation_colors",
            "simulation_feasible",
            "doubled_firstfit",
        ],
    )
    table.add_note(
        "first-fit under the sqrt assignment; simulation = replaying the "
        "bidirectional schedule as two directed slots per color (exactly 2x, "
        "feasibility verified); doubled_firstfit schedules both orientations "
        "from scratch"
    )
    power = SquareRootPower()
    for family_name, factory in families.items():
        for n in n_values:
            directed, bidirectional, simulated, doubled = [], [], [], []
            simulation_ok = True
            for child in spawn_rngs(rng, trials):
                bidir = factory(n, child)
                direct = bidir.with_direction(Direction.DIRECTED)
                sched_d = run_algorithm(
                    "first_fit", direct, powers=power(direct)
                ).schedule
                sched_d.validate(direct)
                sched_b = run_algorithm(
                    "first_fit", bidir, powers=power(bidir)
                ).schedule
                sched_b.validate(bidir)
                sim_inst, sim_colors, sim_powers = (
                    simulate_bidirectional_by_directed(
                        bidir, sched_b.colors, sched_b.powers
                    )
                )
                sim_sched = Schedule(colors=sim_colors, powers=sim_powers)
                if not sim_sched.is_feasible(sim_inst):
                    simulation_ok = False
                double = doubled_directed_instance(bidir)
                sched_2 = run_algorithm(
                    "first_fit", double, powers=power(double)
                ).schedule
                sched_2.validate(double)
                directed.append(sched_d.num_colors)
                bidirectional.append(sched_b.num_colors)
                simulated.append(sim_sched.num_colors)
                doubled.append(sched_2.num_colors)
            table.add_row(
                family=family_name,
                n=n,
                colors_directed=float(np.mean(directed)),
                colors_bidirectional=float(np.mean(bidirectional)),
                simulation_colors=float(np.mean(simulated)),
                simulation_feasible=simulation_ok,
                doubled_firstfit=float(np.mean(doubled)),
            )
    return table
SPEC = ExperimentSpec(
    id="e8",
    title="Directed vs bidirectional lengths",
    runner="repro.experiments.e08_directed_vs_bidirectional:run_directed_vs_bidirectional",
    full={"n_values": (10, 20, 40), "trials": 2},
    fast={"n_values": (8,), "trials": 1},
    seed=31,
    shard_by="n_values",
    metric="colors_bidirectional",
    algorithms=("first_fit",),
)
