"""Tests for capacity estimation, OPT bounds, I_in and verification."""

import numpy as np
import pytest

from repro.analysis.bounds import (
    clique_lower_bound,
    conflict_graph,
    node_multiplicity_lower_bound,
    opt_color_lower_bound,
)
from repro.analysis.capacity import greedy_max_feasible_subset, one_shot_capacity
from repro.analysis.measures import in_interference_measure
from repro.analysis.verify import verify_schedule
from repro.core.feasibility import is_feasible_subset
from repro.core.instance import Direction, Instance
from repro.core.schedule import Schedule
from repro.geometry.line import LineMetric
from repro.instances.nested import nested_instance
from repro.power.oblivious import SquareRootPower, UniformPower


class TestGreedyMaxFeasibleSubset:
    def test_keeps_everything_when_feasible(self, two_link_instance):
        subset = greedy_max_feasible_subset(two_link_instance, np.ones(2))
        assert np.array_equal(subset, [0, 1])

    def test_result_is_feasible(self, small_random_instance):
        powers = SquareRootPower()(small_random_instance)
        subset = greedy_max_feasible_subset(small_random_instance, powers)
        assert is_feasible_subset(small_random_instance, powers, subset)

    def test_result_is_maximal(self, small_random_instance):
        powers = SquareRootPower()(small_random_instance)
        subset = greedy_max_feasible_subset(small_random_instance, powers)
        chosen = set(subset.tolist())
        for extra in range(small_random_instance.n):
            if extra in chosen:
                continue
            trial = sorted(chosen | {extra})
            assert not is_feasible_subset(small_random_instance, powers, trial)

    def test_respects_candidates(self, small_random_instance):
        powers = SquareRootPower()(small_random_instance)
        subset = greedy_max_feasible_subset(
            small_random_instance, powers, candidates=[0, 1, 2]
        )
        assert set(subset.tolist()) <= {0, 1, 2}

    def test_nested_uniform_capacity_is_one(self):
        inst = nested_instance(10, beta=1.0)
        assert one_shot_capacity(inst, UniformPower()(inst)) == 1

    def test_nested_sqrt_capacity_grows(self):
        inst = nested_instance(20, beta=0.5)
        assert one_shot_capacity(inst, SquareRootPower()(inst)) >= 4


class TestLowerBounds:
    def test_node_multiplicity(self):
        metric = LineMetric([0.0, 1.0, 2.0, 3.0])
        inst = Instance.bidirectional(metric, [(0, 1), (1, 2), (2, 3)])
        assert node_multiplicity_lower_bound(inst) == 2

    def test_node_multiplicity_disjoint(self, two_link_instance):
        assert node_multiplicity_lower_bound(two_link_instance) == 1

    def test_conflict_graph_far_links_empty(self, two_link_instance):
        graph = conflict_graph(two_link_instance)
        assert graph.number_of_edges() == 0

    def test_conflict_graph_shared_node(self):
        metric = LineMetric([0.0, 1.0, 2.0])
        inst = Instance.bidirectional(metric, [(0, 1), (1, 2)])
        graph = conflict_graph(inst)
        assert graph.has_edge(0, 1)

    def test_clique_bound_on_pairwise_conflicting(self):
        # Interleaved long links on the line: every sender is closer to
        # the other receivers than its own, so all pairs conflict under
        # every power assignment.
        metric = LineMetric([0.0, 10.0, 1.0, 11.0, 2.0, 12.0])
        inst = Instance.directed(metric, [(0, 1), (2, 3), (4, 5)])
        assert clique_lower_bound(inst) >= 2

    def test_opt_bound_is_sound(self, small_random_instance):
        from repro.scheduling.firstfit import first_fit_free_power_schedule

        bound = opt_color_lower_bound(small_random_instance)
        schedule = first_fit_free_power_schedule(small_random_instance)
        assert bound <= schedule.num_colors


class TestInInterference:
    def test_far_links_zero(self, two_link_directed):
        assert in_interference_measure(two_link_directed) == 0

    def test_nested_grows_like_n(self):
        for n in (5, 10):
            inst = nested_instance(n, direction=Direction.DIRECTED)
            assert in_interference_measure(inst) == n - 1

    def test_slack_widens_coverage(self, two_link_directed):
        wide = in_interference_measure(two_link_directed, slack=1000.0)
        assert wide >= in_interference_measure(two_link_directed)

    def test_invalid_slack(self, two_link_directed):
        with pytest.raises(ValueError):
            in_interference_measure(two_link_directed, slack=0.0)


class TestVerifyReport:
    def test_feasible_report(self, two_link_instance):
        sched = Schedule(colors=np.array([0, 0]), powers=np.ones(2))
        report = verify_schedule(two_link_instance, sched)
        assert report.feasible
        assert report.num_colors == 1
        assert report.class_sizes == {0: 2}
        assert "FEASIBLE" in report.summary()

    def test_infeasible_report_names_worst(self):
        metric = LineMetric([0.0, 1.0, 1.5, 2.5])
        inst = Instance.bidirectional(metric, [(0, 1), (2, 3)])
        sched = Schedule(colors=np.array([0, 0]), powers=np.ones(2))
        report = verify_schedule(inst, sched)
        assert not report.feasible
        assert report.worst_margin < 1.0
        assert report.worst_request in (0, 1)

    def test_energy_reported(self, two_link_instance):
        sched = Schedule(colors=np.array([0, 1]), powers=np.array([2.0, 3.0]))
        report = verify_schedule(two_link_instance, sched)
        assert report.total_energy == pytest.approx(5.0)

    def test_size_mismatch_rejected(self, two_link_instance):
        sched = Schedule(colors=np.zeros(3, int), powers=np.ones(3))
        with pytest.raises(ValueError):
            verify_schedule(two_link_instance, sched)
