"""Pluggable gain-matrix backends: dense reference and pruned sparse.

Everything the interference engine computes reduces to a handful of
access patterns on the gain matrices ``G_u``/``G_v`` — single columns
(what one transmitter does to everyone), bulk column gathers (seeding a
class), square sub-blocks (LP sub-problems), cross blocks (pairwise
gains of a selection at new candidates), tiled sub-block row sums
(subset interference / peel initialization, without materializing the
block) and same-color row sums (validating a partition).  :class:`GainBackend` names exactly
those primitives, and the engine layers
(:class:`repro.core.context.InterferenceContext`,
:class:`repro.core.context.ClassAccumulator`,
:mod:`repro.core.kernels`, :class:`repro.core.batch.ContextBatch`, the
schedulers) consume gains **only** through them.  Two implementations:

* :class:`DenseBackend` — the materialized ``(n, n)`` arrays the engine
  has always used.  Every primitive returns the exact expression the
  pre-backend code evaluated (same gathers, same layouts), so the dense
  path is bit-identical to historical behaviour.
* :class:`SparseBackend` — CSR storage (plus CSR transposes for column
  access) built **tiled**, a block of rows at a time, so an instance at
  ``n = 16384`` never materializes a dense matrix (nor, on
  coordinate-backed metrics, the underlying distance matrix — see
  :meth:`repro.geometry.metric.Metric.distance_block`).  Rows are
  ε-pruned: per row the smallest finite entries whose cumulative sum
  stays within ``epsilon`` times the row's total finite mass are
  dropped, and the dropped mass is recorded **per request** in
  :attr:`~SparseBackend.pruned_mass_u` / ``_v``.

Numerical contract
------------------

Sparse primitives gather the stored entries into dense scratch buffers
of the **same shape** the dense primitive returns (pruned entries
appear as ``0.0``) and callers apply the same reductions — so with
``epsilon = 0`` (the default, which drops only exact zeros) every
downstream value is bit-identical to the dense backend, and the whole
test suite passes unchanged under ``REPRO_BACKEND=sparse``.

With ``epsilon > 0`` the backend is a *conservative under-estimator*:
any interference value it reports is a lower bound on the true value,
too low by at most the per-request pruned mass.  A feasibility
comparison ``interference <= limit`` can therefore flip (relative to
the unpruned matrix) only when the value lands inside the
``(limit - pruned_mass, limit]`` band; the scheduler kernels count
those at-risk comparisons per kernel
(:attr:`repro.core.kernels.ScheduleKernel.flip_risk_events`) and
cumulatively per backend (:attr:`GainBackend.flip_risk_events`).  A
run during which the counter did **not grow** is **certified** — its
decisions (and hence its schedule) are exactly what the dense backend
would have produced.  The backend counter is a running total shared by
every kernel on the (cached) backend, so per-run certification through
the scheduler wrappers reads it before and after (or calls
:meth:`~GainBackend.reset_flip_risk` first)::

    backend = get_context(instance, powers).backend
    before = backend.flip_risk_events
    schedule = first_fit_schedule(instance, powers)
    certified = backend.flip_risk_events == before

Selecting a backend
-------------------

The process-wide default is ``"dense"``; override it with the
``REPRO_BACKEND`` environment variable, :func:`set_default_backend`, or
temporarily with ``with backend_scope("sparse"): ...``.  Individual
contexts accept an explicit ``backend=`` argument through
:func:`repro.core.context.get_context`, and experiment specs carry a
``backend`` field the orchestrator applies per run
(:mod:`repro.runner`).  ``REPRO_SPARSE_EPSILON`` (or
:func:`set_sparse_epsilon`) sets the default pruning budget.
"""

from __future__ import annotations

import abc
import os
from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

import numpy as np
from scipy import sparse as _sp

from repro.core.instance import Direction, Instance
from repro.core.interference import (
    _class_sum,
    _safe_divide,
    bidirectional_gain_matrices,
    directed_gain_matrix,
)

__all__ = [
    "ARRAY_NAMESPACES",
    "BACKENDS",
    "GainBackend",
    "ArrayBackend",
    "DenseBackend",
    "SparseBackend",
    "build_backend",
    "default_backend",
    "set_default_backend",
    "backend_scope",
    "resolve_backend",
    "default_sparse_epsilon",
    "set_sparse_epsilon",
    "resolve_sparse_epsilon",
    "default_array_namespace",
    "set_array_namespace",
    "array_namespace_scope",
    "resolve_array_namespace",
    "default_shard_workers",
    "set_shard_workers",
    "shard_workers_scope",
    "resolve_shard_workers",
    "default_shard_executor",
    "set_shard_executor",
    "shard_executor_scope",
    "resolve_shard_executor",
    "validate_growth",
]

#: Registered backend names.  ``"sharded"`` lives in
#: :mod:`repro.distributed` (block-row shards over a
#: :class:`repro.runner.executors.ShardExecutor`) and is resolved
#: lazily by :func:`build_backend` to keep this module import-light.
BACKENDS = ("dense", "sparse", "array", "sharded")

#: Array-API namespaces :class:`ArrayBackend` can host its storage in.
#: ``numpy`` ships with the library; the others resolve lazily at build
#: time and raise an :class:`ImportError` naming the install extra when
#: missing (``pip install 'repro-oblivious-interference-scheduling[array]'``
#: for the portability namespaces; ``torch``/``cupy`` additionally need
#: the framework itself).
ARRAY_NAMESPACES = ("numpy", "array_api_strict", "torch", "cupy")

#: Default number of gain-matrix rows materialized at once while
#: building (or row-summing) a sparse backend; peak scratch memory is
#: ``O(tile * n)`` instead of ``O(n^2)``.
DEFAULT_TILE_ROWS = 512


def _env_backend() -> str:
    """Validate ``REPRO_BACKEND`` at import (load) time, listing the
    allowed values — a typo must not survive until the first
    ``get_context`` call."""
    name = os.environ.get("REPRO_BACKEND", "dense").strip().lower()
    if name not in BACKENDS:
        raise ValueError(
            f"REPRO_BACKEND must be one of {BACKENDS}, got {name!r}"
        )
    return name


def _env_epsilon() -> float:
    """Validate ``REPRO_SPARSE_EPSILON`` at import (load) time."""
    raw = os.environ.get("REPRO_SPARSE_EPSILON", "0")
    try:
        epsilon = float(raw)
    except ValueError:
        raise ValueError(
            "REPRO_SPARSE_EPSILON must be a float in [0, 1) (the sparse "
            f"backend's per-row pruned-mass budget), got {raw!r}"
        ) from None
    if not 0.0 <= epsilon < 1.0:
        raise ValueError(
            f"REPRO_SPARSE_EPSILON must be in [0, 1), got {raw!r}"
        )
    return epsilon


def _env_array_namespace() -> str:
    """Validate ``REPRO_ARRAY_NAMESPACE`` at import (load) time, listing
    the registered namespaces — selecting a namespace whose package is
    missing still fails *lazily* at backend build, with an error naming
    the install extra, because validation here must not import heavy
    frameworks."""
    raw = os.environ.get("REPRO_ARRAY_NAMESPACE", "numpy")
    name = raw.strip().lower() or "numpy"
    if name not in ARRAY_NAMESPACES:
        raise ValueError(
            f"REPRO_ARRAY_NAMESPACE must be one of {ARRAY_NAMESPACES} "
            f"(the array-API namespace hosting ArrayBackend storage), "
            f"got {raw!r}"
        )
    return name


#: Registered shard-executor names (mirrors
#: :data:`repro.runner.executors.SHARD_EXECUTORS`; duplicated here so
#: validating a configuration never imports the runner package).
SHARD_EXECUTORS = ("serial", "process")

#: Hard ceiling on shard workers — W beyond the block-row count only
#: adds empty shards and per-call fan-out cost.
MAX_SHARD_WORKERS = 256


def _env_shard_workers() -> int:
    """Validate ``REPRO_SHARD_WORKERS`` at import (load) time."""
    raw = os.environ.get("REPRO_SHARD_WORKERS", "2")
    try:
        workers = int(raw)
    except ValueError:
        raise ValueError(
            "REPRO_SHARD_WORKERS must be an integer in "
            f"[1, {MAX_SHARD_WORKERS}] (the sharded backend's worker "
            f"count), got {raw!r}"
        ) from None
    if not 1 <= workers <= MAX_SHARD_WORKERS:
        raise ValueError(
            f"REPRO_SHARD_WORKERS must be in [1, {MAX_SHARD_WORKERS}], "
            f"got {raw!r}"
        )
    return workers


def _env_shard_executor() -> str:
    """Validate ``REPRO_SHARD_EXECUTOR`` at import (load) time."""
    raw = os.environ.get("REPRO_SHARD_EXECUTOR", "process")
    name = raw.strip().lower() or "process"
    if name not in SHARD_EXECUTORS:
        raise ValueError(
            f"REPRO_SHARD_EXECUTOR must be one of {SHARD_EXECUTORS} "
            f"(how the sharded backend hosts its workers), got {raw!r}"
        )
    return name


_default_backend = _env_backend()
_default_epsilon = _env_epsilon()
_default_array_namespace = _env_array_namespace()
_default_shard_workers = _env_shard_workers()
_default_shard_executor = _env_shard_executor()


def default_backend() -> str:
    """The process-wide default backend name."""
    return _default_backend


def set_default_backend(name: str) -> None:
    """Set the process-wide default backend (``"dense"``/``"sparse"``)."""
    global _default_backend
    _default_backend = resolve_backend(name)


def resolve_backend(name: Optional[str]) -> str:
    """Validate *name*, resolving ``None`` to the current default."""
    if name is None:
        return _default_backend
    name = str(name).strip().lower()
    if name not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {name!r}")
    return name


@contextmanager
def backend_scope(name: Optional[str]) -> Iterator[str]:
    """Temporarily switch the default backend (``None`` = leave as is)."""
    global _default_backend
    previous = _default_backend
    if name is not None:
        set_default_backend(name)
    try:
        yield _default_backend
    finally:
        _default_backend = previous


def default_sparse_epsilon() -> float:
    """The default per-row pruned-mass budget of sparse backends."""
    return _default_epsilon


def set_sparse_epsilon(epsilon: float) -> None:
    """Set the default pruning budget (fraction of each row's finite
    mass allowed to be dropped; ``0`` keeps every nonzero entry)."""
    global _default_epsilon
    _default_epsilon = resolve_sparse_epsilon(float(epsilon))


def resolve_sparse_epsilon(epsilon: Optional[float]) -> float:
    """Validate *epsilon*, resolving ``None`` to the current default."""
    if epsilon is None:
        return _default_epsilon
    epsilon = float(epsilon)
    if not 0.0 <= epsilon < 1.0:
        raise ValueError(f"sparse epsilon must be in [0, 1), got {epsilon}")
    return epsilon


def default_array_namespace() -> str:
    """The default array-API namespace of :class:`ArrayBackend`."""
    return _default_array_namespace


def set_array_namespace(name: str) -> None:
    """Set the default array-API namespace (see :data:`ARRAY_NAMESPACES`)."""
    global _default_array_namespace
    _default_array_namespace = resolve_array_namespace(name)


def resolve_array_namespace(name: Optional[str]) -> str:
    """Validate *name*, resolving ``None`` to the current default."""
    if name is None:
        return _default_array_namespace
    name = str(name).strip().lower()
    if name not in ARRAY_NAMESPACES:
        raise ValueError(
            f"array namespace must be one of {ARRAY_NAMESPACES}, got {name!r}"
        )
    return name


@contextmanager
def array_namespace_scope(name: Optional[str]) -> Iterator[str]:
    """Temporarily switch the default array namespace (``None`` = leave
    as is)."""
    global _default_array_namespace
    previous = _default_array_namespace
    if name is not None:
        set_array_namespace(name)
    try:
        yield _default_array_namespace
    finally:
        _default_array_namespace = previous


def default_shard_workers() -> int:
    """The default worker count of the ``"sharded"`` backend."""
    return _default_shard_workers


def set_shard_workers(workers: int) -> None:
    """Set the default shard worker count (block-rows per build)."""
    global _default_shard_workers
    _default_shard_workers = resolve_shard_workers(int(workers))


def resolve_shard_workers(workers: Optional[int]) -> int:
    """Validate *workers*, resolving ``None`` to the current default."""
    if workers is None:
        return _default_shard_workers
    workers = int(workers)
    if not 1 <= workers <= MAX_SHARD_WORKERS:
        raise ValueError(
            f"shard workers must be in [1, {MAX_SHARD_WORKERS}], "
            f"got {workers}"
        )
    return workers


@contextmanager
def shard_workers_scope(workers: Optional[int]) -> Iterator[int]:
    """Temporarily switch the default shard worker count (``None`` =
    leave as is)."""
    global _default_shard_workers
    previous = _default_shard_workers
    if workers is not None:
        set_shard_workers(workers)
    try:
        yield _default_shard_workers
    finally:
        _default_shard_workers = previous


def default_shard_executor() -> str:
    """The default executor name of the ``"sharded"`` backend."""
    return _default_shard_executor


def set_shard_executor(name: str) -> None:
    """Set the default shard executor (``"serial"``/``"process"``)."""
    global _default_shard_executor
    _default_shard_executor = resolve_shard_executor(name)


def resolve_shard_executor(name: Optional[str]) -> str:
    """Validate *name*, resolving ``None`` to the current default."""
    if name is None:
        return _default_shard_executor
    name = str(name).strip().lower()
    if name not in SHARD_EXECUTORS:
        raise ValueError(
            f"shard executor must be one of {SHARD_EXECUTORS}, got {name!r}"
        )
    return name


@contextmanager
def shard_executor_scope(name: Optional[str]) -> Iterator[str]:
    """Temporarily switch the default shard executor (``None`` = leave
    as is)."""
    global _default_shard_executor
    previous = _default_shard_executor
    if name is not None:
        set_shard_executor(name)
    try:
        yield _default_shard_executor
    finally:
        _default_shard_executor = previous


def _import_array_namespace(name: str):
    """The array-API namespace module backing *name*.

    Imports are deferred to backend build so merely *configuring* a
    namespace (env var, :func:`set_array_namespace`) never imports a
    heavy framework — and a missing package fails with an error naming
    the install extra instead of a bare ``ModuleNotFoundError``.
    """
    if name == "numpy":
        return np
    if name == "array_api_strict":
        try:
            import array_api_strict
        except ImportError:
            raise ImportError(
                "array namespace 'array_api_strict' needs the "
                "array-api-strict package; install the array extra "
                "(pip install 'repro-oblivious-interference-scheduling[array]')"
            ) from None
        return array_api_strict
    # torch / cupy expose near-conformant namespaces; array-api-compat
    # wraps them into fully standard ones so the backend code stays
    # framework-agnostic.
    try:
        import importlib

        return importlib.import_module(f"array_api_compat.{name}")
    except ImportError:
        raise ImportError(
            f"array namespace {name!r} needs {name} plus array-api-compat; "
            "install the array extra "
            "(pip install 'repro-oblivious-interference-scheduling[array]') "
            f"and {name} itself"
        ) from None


def _gain_block(
    instance: Instance,
    powers: np.ndarray,
    endpoint_nodes: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
) -> np.ndarray:
    """One endpoint's gain sub-block ``G[rows][:, cols]``.

    Computed from :meth:`~repro.geometry.metric.Metric.loss_block`
    tiles with the exact elementwise operations of the full-matrix
    builders (:func:`~repro.core.interference.directed_gain_matrix` /
    :func:`~repro.core.interference.bidirectional_gain_matrices`), so
    every entry is bit-identical to its full-matrix counterpart —
    including the zero diagonal where a row and column name the same
    request.  This is the one primitive both the tiled sparse build and
    the growable appends (:meth:`GainBackend.append_requests`) fill
    their storage from.
    """
    metric = instance.metric
    alpha = instance.alpha
    w = endpoint_nodes[rows]
    if instance.direction is Direction.DIRECTED:
        loss = metric.loss_block(w, instance.senders[cols], alpha)
    else:
        loss = np.minimum(
            metric.loss_block(w, instance.senders[cols], alpha),
            metric.loss_block(w, instance.receivers[cols], alpha),
        )
    gains = _safe_divide(powers[cols][None, :], loss)
    diagonal = rows[:, None] == cols[None, :]
    if np.any(diagonal):
        gains[diagonal] = 0.0
    return gains


def validate_growth(
    old_instance: Instance,
    old_powers: np.ndarray,
    new_instance: Instance,
    new_powers: np.ndarray,
) -> None:
    """Check that ``(new_instance, new_powers)`` extends the old pair
    *in place*: same metric object, variant and alpha; the existing
    requests (and their powers, bitwise) unchanged as a prefix; only
    new requests appended.  Raises :class:`ValueError` naming the first
    violated condition — the contract every
    :meth:`GainBackend.append_requests` (and the context/kernel growth
    built on it) relies on for bit-identity with a cold rebuild.
    """
    if new_instance.metric is not old_instance.metric:
        raise ValueError(
            "growth must keep the same metric object; rebuild instead of "
            "appending when the metric changes"
        )
    if new_instance.direction is not old_instance.direction:
        raise ValueError(
            f"growth cannot change the problem variant "
            f"({old_instance.direction.value} -> {new_instance.direction.value})"
        )
    if new_instance.alpha != old_instance.alpha:
        raise ValueError(
            f"growth cannot change alpha "
            f"({old_instance.alpha} -> {new_instance.alpha})"
        )
    n_old = old_instance.n
    if new_instance.n < n_old:
        raise ValueError(
            f"growth cannot shrink the instance "
            f"(n={old_instance.n} -> n={new_instance.n})"
        )
    if not (
        np.array_equal(new_instance.senders[:n_old], old_instance.senders)
        and np.array_equal(
            new_instance.receivers[:n_old], old_instance.receivers
        )
    ):
        raise ValueError(
            "growth must keep the existing request pairs unchanged as a "
            "prefix of the new instance"
        )
    new_powers = np.asarray(new_powers, dtype=float).reshape(-1)
    if new_powers.shape != (new_instance.n,):
        raise ValueError(
            f"powers must have shape ({new_instance.n},), "
            f"got {new_powers.shape}"
        )
    if not np.array_equal(
        new_powers[:n_old], np.asarray(old_powers, dtype=float)
    ):
        raise ValueError(
            "growth must keep the powers of existing requests bit-identical "
            "(oblivious assignments are elementwise, so re-resolving them "
            "preserves the prefix; explicit vectors must be appended to)"
        )


class GainBackend(abc.ABC):
    """Access protocol for one pair of endpoint gain matrices.

    Methods come in ``_u``/``_v`` pairs; in the directed variant the
    ``_v`` member is the same object/value as ``_u`` (mirroring the
    aliased matrices of the dense engine).  All return **dense** numpy
    scratch arrays — never views a caller must not mutate, except where
    a concrete class documents otherwise.
    """

    #: Backend name (one of :data:`BACKENDS`).
    name: str = "?"

    #: Running total of feasibility comparisons that landed inside a
    #: pruned-mass uncertainty band (see the module docstring).  Always
    #: ``0`` for lossless backends; incremented by every scheduler
    #: kernel sharing this backend, so per-run certification compares
    #: before/after (or resets first) — each
    #: :class:`~repro.core.kernels.ScheduleKernel` also keeps its own
    #: per-run count.
    flip_risk_events: int = 0

    def reset_flip_risk(self) -> None:
        """Reset the at-risk-comparison counter."""
        self.flip_risk_events = 0

    # -- growth --------------------------------------------------------

    def append_requests(self, instance: Instance, powers: np.ndarray) -> None:
        """Grow the backend in place to ``(instance, powers)``, which
        must extend the pair the backend was built from (see
        :func:`validate_growth`): same metric/variant/alpha, existing
        requests and powers bit-unchanged as a prefix, new requests
        appended.  Only the new rows and columns are computed (from
        :func:`_gain_block` tiles), so an arrival costs ``O(n)`` gain
        entries per endpoint instead of the ``O(n^2)`` cold rebuild —
        and with ``epsilon = 0`` the grown storage is **bit-identical**
        to a cold build of the grown pair.

        Backends that cannot grow raise :class:`NotImplementedError`.
        """
        raise NotImplementedError(
            f"backend {self.name!r} does not support in-place growth"
        )

    # -- shape / bookkeeping -------------------------------------------

    @property
    @abc.abstractmethod
    def n(self) -> int:
        """Number of requests."""

    @property
    @abc.abstractmethod
    def directed(self) -> bool:
        """Is there a single (aliased) gain matrix?"""

    @property
    @abc.abstractmethod
    def has_infinite_gains(self) -> bool:
        """Does any entry equal ``inf`` (shared-node pairs)?"""

    @property
    @abc.abstractmethod
    def pruned_mass_u(self) -> np.ndarray:
        """Per-request upper bound on gain mass dropped from row ``i``
        of ``G_u`` (exact zeros for lossless backends)."""

    @property
    @abc.abstractmethod
    def pruned_mass_v(self) -> np.ndarray:
        """Endpoint-``v`` counterpart of :attr:`pruned_mass_u`."""

    @property
    def pruned_bound(self) -> np.ndarray:
        """Worst-endpoint pruned mass ``max(pm_u, pm_v)`` per request —
        the additive uncertainty of any worst-endpoint interference
        value this backend reports."""
        if self.directed:
            return self.pruned_mass_u
        return np.maximum(self.pruned_mass_u, self.pruned_mass_v)

    @property
    def is_lossless(self) -> bool:
        """Does this backend reproduce the full matrices exactly?"""
        return not bool(
            np.any(self.pruned_mass_u > 0) or np.any(self.pruned_mass_v > 0)
        )

    # -- primitives ----------------------------------------------------

    @abc.abstractmethod
    def col_u(self, j: int) -> np.ndarray:
        """Column ``G_u[:, j]`` as a dense ``(n,)`` array: what request
        *j* induces at every request's ``u`` endpoint."""

    @abc.abstractmethod
    def col_v(self, j: int) -> np.ndarray:
        """Column ``G_v[:, j]``."""

    @abc.abstractmethod
    def row_u(self, i: int) -> np.ndarray:
        """Row ``G_u[i, :]`` as a dense ``(n,)`` array."""

    @abc.abstractmethod
    def row_v(self, i: int) -> np.ndarray:
        """Row ``G_v[i, :]``."""

    @abc.abstractmethod
    def gather_cols_u(self, members: np.ndarray) -> np.ndarray:
        """Dense ``(n, k)`` gather ``G_u[:, members]``."""

    @abc.abstractmethod
    def gather_cols_v(self, members: np.ndarray) -> np.ndarray:
        """Dense ``(n, k)`` gather ``G_v[:, members]``."""

    @abc.abstractmethod
    def block_u(self, idx: np.ndarray) -> np.ndarray:
        """Dense ``(k, k)`` sub-block ``G_u[np.ix_(idx, idx)]`` (a fresh
        writable buffer)."""

    @abc.abstractmethod
    def block_v(self, idx: np.ndarray) -> np.ndarray:
        """Dense ``(k, k)`` sub-block of ``G_v``."""

    @abc.abstractmethod
    def cross_block_u(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Dense ``(len(rows), len(cols))`` gather
        ``G_u[np.ix_(rows, cols)]``."""

    @abc.abstractmethod
    def cross_block_v(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Endpoint-``v`` counterpart of :meth:`cross_block_u`."""

    def _row_sums(self, cross_block, rows, cols) -> np.ndarray:
        rows = np.asarray(rows, dtype=int)
        cols = rows if cols is None else np.asarray(cols, dtype=int)
        out = np.empty(rows.size)
        tile = max(1, int(getattr(self, "tile_rows", DEFAULT_TILE_ROWS)))
        for lo in range(0, rows.size, tile):
            hi = min(lo + tile, rows.size)
            out[lo:hi] = cross_block(rows[lo:hi], cols).sum(axis=1)
        return out

    def row_sums_u(
        self, rows: np.ndarray, cols: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Per-row gain sums ``G_u[np.ix_(rows, cols)].sum(axis=1)``
        (*cols* defaults to *rows*) without materializing the block.

        The reduction runs tile-by-tile (``tile_rows`` rows of dense
        scratch at a time), so peak memory is ``O(tile * len(cols))``
        instead of ``O(len(rows) * len(cols))`` — and each scratch row
        is a contiguous length-``len(cols)`` buffer reduced with NumPy's
        per-row pairwise summation, so every value is **bit-identical**
        to gathering the full block and calling ``.sum(axis=1)``.  On
        the sparse backend the tiles come straight from CSR row
        slicing, so no dense ``(k, k)`` block ever exists.
        """
        return self._row_sums(self.cross_block_u, rows, cols)

    def row_sums_v(
        self, rows: np.ndarray, cols: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Endpoint-``v`` counterpart of :meth:`row_sums_u`."""
        return self._row_sums(self.cross_block_v, rows, cols)

    @abc.abstractmethod
    def class_sum_u(self, colors: Optional[np.ndarray]) -> np.ndarray:
        """Same-color row sums of ``G_u`` (all columns when *colors* is
        ``None``) — cf. :func:`repro.core.interference._class_sum`."""

    @abc.abstractmethod
    def class_sum_v(self, colors: Optional[np.ndarray]) -> np.ndarray:
        """Same-color row sums of ``G_v``."""

    # -- dense materialization (compat / analysis layers) --------------

    @abc.abstractmethod
    def dense_u(self) -> np.ndarray:
        """The full ``(n, n)`` matrix ``G_u``.  O(n^2) memory — sparse
        backends materialize it on every call; intended for the
        analysis layers and small instances, never for hot loops."""

    @abc.abstractmethod
    def dense_v(self) -> np.ndarray:
        """The full ``G_v`` (aliases :meth:`dense_u` when directed)."""

    @abc.abstractmethod
    def dense_ut(self) -> np.ndarray:
        """Contiguous transpose of ``G_u`` (O(n^2) memory)."""

    @abc.abstractmethod
    def dense_vt(self) -> np.ndarray:
        """Contiguous transpose of ``G_v``."""

    # -- stats ---------------------------------------------------------

    @property
    @abc.abstractmethod
    def nnz(self) -> int:
        """Stored nonzero entries across both endpoint matrices
        (aliased matrices counted once)."""

    @property
    def density(self) -> float:
        """``nnz`` per matrix entry (1.0 for dense storage)."""
        matrices = 1 if self.directed else 2
        return float(self.nnz) / float(matrices * self.n * self.n)

    @property
    @abc.abstractmethod
    def nbytes(self) -> int:
        """Approximate bytes held by the gain storage."""


class DenseBackend(GainBackend):
    """The materialized ``(n, n)`` gain arrays (bit-exact reference).

    Exposes the arrays themselves (:attr:`gains_u`, :attr:`gains_v`,
    cached contiguous transposes :attr:`gains_ut`/:attr:`gains_vt` and
    the worst-endpoint :attr:`worst_gains`) for the dense-only fast
    paths (stacked batching, affectance analyses); every protocol
    primitive evaluates the exact gather expression the engine used
    before the backend split.
    """

    name = "dense"

    def __init__(self, gains_u: np.ndarray, gains_v: np.ndarray):
        self.flip_risk_events = 0
        self._gains_u = gains_u
        self._gains_v = gains_v
        self._gains_t: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._worst: Optional[np.ndarray] = None
        self._has_inf: Optional[bool] = None
        self._zero_mass: Optional[np.ndarray] = None
        # Growth state (populated by build(); raw-constructed backends
        # cannot grow because they do not know their instance).
        self._instance: Optional[Instance] = None
        self._powers: Optional[np.ndarray] = None
        self._buf_u: Optional[np.ndarray] = None
        self._buf_v: Optional[np.ndarray] = None
        self._buf_ut: Optional[np.ndarray] = None
        self._buf_vt: Optional[np.ndarray] = None

    @classmethod
    def build(cls, instance: Instance, powers: np.ndarray) -> "DenseBackend":
        """Build from the shared gain-matrix builders (the exact arrays
        the pre-backend engine cached)."""
        powers = np.asarray(powers, dtype=float).reshape(-1)
        if instance.direction is Direction.DIRECTED:
            gains = directed_gain_matrix(instance, powers)
            gains.setflags(write=False)
            backend = cls(gains, gains)
        else:
            gains_u, gains_v = bidirectional_gain_matrices(instance, powers)
            gains_u.setflags(write=False)
            gains_v.setflags(write=False)
            backend = cls(gains_u, gains_v)
        backend._instance = instance
        backend._powers = powers
        return backend

    # -- growth --------------------------------------------------------

    def _ensure_capacity(self, n_new: int) -> None:
        """Guarantee the backing buffers hold at least ``n_new`` rows
        and columns, doubling capacity on reallocation so a stream of
        single-request appends reallocates ``O(log n)`` times (amortized
        O(1) copied entries per appended entry)."""
        if self._buf_u is not None and self._buf_u.shape[0] >= n_new:
            return
        n_old = self.n
        cap = max(n_new, 2 * n_old)
        directed = self.directed
        buf_u = np.zeros((cap, cap))
        buf_u[:n_old, :n_old] = self._gains_u
        self._buf_u = buf_u
        if directed:
            self._buf_v = buf_u
        else:
            buf_v = np.zeros((cap, cap))
            buf_v[:n_old, :n_old] = self._gains_v
            self._buf_v = buf_v

    def append_requests(self, instance: Instance, powers: np.ndarray) -> None:
        if self._instance is None:
            raise ValueError(
                "this DenseBackend was constructed from raw arrays; only "
                "backends built via DenseBackend.build(...) can grow"
            )
        validate_growth(self._instance, self._powers, instance, powers)
        powers = np.asarray(powers, dtype=float).reshape(-1)
        n_old, n_new = self.n, instance.n
        if n_new == n_old:
            self._instance, self._powers = instance, powers
            return
        self._ensure_capacity(n_new)
        new_idx = np.arange(n_old, n_new)
        all_idx = np.arange(n_new)
        tile = DEFAULT_TILE_ROWS
        new_inf = False
        if instance.direction is Direction.DIRECTED:
            targets = ((self._buf_u, instance.receivers),)
        else:
            targets = (
                (self._buf_u, instance.senders),
                (self._buf_v, instance.receivers),
            )
        for buf, nodes in targets:
            # Top-right block: what the arrivals induce at existing rows.
            for lo in range(0, n_old, tile):
                hi = min(lo + tile, n_old)
                block = _gain_block(
                    instance, powers, nodes, np.arange(lo, hi), new_idx
                )
                new_inf = new_inf or not bool(np.all(np.isfinite(block)))
                buf[lo:hi, n_old:n_new] = block
            # Bottom rows: the arrivals' full rows over everyone.
            for lo in range(n_old, n_new, tile):
                hi = min(lo + tile, n_new)
                block = _gain_block(
                    instance, powers, nodes, np.arange(lo, hi), all_idx
                )
                new_inf = new_inf or not bool(np.all(np.isfinite(block)))
                buf[lo:hi, :n_new] = block
        gains_u = self._buf_u[:n_new, :n_new]
        gains_u.setflags(write=False)
        if self._buf_v is self._buf_u:
            gains_v = gains_u
        else:
            gains_v = self._buf_v[:n_new, :n_new]
            gains_v.setflags(write=False)
        self._gains_u, self._gains_v = gains_u, gains_v
        if self._gains_t is not None:
            # Extend the materialized transposes in place: dropping
            # them would make the next col_u/col_v after every arrival
            # re-transpose the whole O(n^2) matrix, turning the O(n)
            # admission path quadratic.
            self._grow_transposes(n_old, n_new)
        self._worst = None
        self._zero_mass = None
        if new_inf:
            self._has_inf = True
        # else: False stays False (old and new entries all finite) and
        # None stays lazily recomputed over the grown matrix.
        self._instance, self._powers = instance, powers

    def _grow_transposes(self, n_old: int, n_new: int) -> None:
        """Extend the cached contiguous transposes to ``n_new`` from
        the freshly appended buffer blocks (pure element reordering, so
        trivially bit-identical to re-transposing the grown matrix).
        The transpose buffers share the main buffers' capacity, so a
        single-append stream reallocates them O(log n) times too."""
        cap = self._buf_u.shape[0]
        ut_old, vt_old = self._gains_t
        if self._buf_ut is None or self._buf_ut.shape[0] < n_new:
            buf_ut = np.zeros((cap, cap))
            buf_ut[:n_old, :n_old] = ut_old
            self._buf_ut = buf_ut
            if self._buf_v is self._buf_u:
                self._buf_vt = buf_ut
            else:
                buf_vt = np.zeros((cap, cap))
                buf_vt[:n_old, :n_old] = vt_old
                self._buf_vt = buf_vt
        pairs = (
            ((self._buf_ut, self._buf_u),)
            if self._buf_vt is self._buf_ut
            else ((self._buf_ut, self._buf_u), (self._buf_vt, self._buf_v))
        )
        for buf_t, buf in pairs:
            # New rows of T = new columns of G; new columns of T (above
            # the new rows) = new rows of G.  No overlap, full coverage.
            buf_t[n_old:n_new, :n_new] = buf[:n_new, n_old:n_new].T
            buf_t[:n_old, n_old:n_new] = buf[n_old:n_new, :n_old].T
        gains_ut = self._buf_ut[:n_new, :n_new]
        gains_ut.setflags(write=False)
        if self._buf_vt is self._buf_ut:
            self._gains_t = (gains_ut, gains_ut)
        else:
            gains_vt = self._buf_vt[:n_new, :n_new]
            gains_vt.setflags(write=False)
            self._gains_t = (gains_ut, gains_vt)

    # -- the arrays ----------------------------------------------------

    @property
    def gains_u(self) -> np.ndarray:
        """Gain matrix at endpoint ``u`` (read-only)."""
        return self._gains_u

    @property
    def gains_v(self) -> np.ndarray:
        """Gain matrix at endpoint ``v`` (aliases :attr:`gains_u` in
        the directed variant; read-only)."""
        return self._gains_v

    def _transposes(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._gains_t is None:
            gains_ut = np.ascontiguousarray(self._gains_u.T)
            gains_ut.setflags(write=False)
            if self._gains_v is self._gains_u:
                self._gains_t = (gains_ut, gains_ut)
            else:
                gains_vt = np.ascontiguousarray(self._gains_v.T)
                gains_vt.setflags(write=False)
                self._gains_t = (gains_ut, gains_vt)
        return self._gains_t

    @property
    def gains_ut(self) -> np.ndarray:
        """Contiguous transpose of :attr:`gains_u` (read-only, cached);
        ``gains_ut[j]`` is request ``j``'s gain column laid out
        contiguously."""
        return self._transposes()[0]

    @property
    def gains_vt(self) -> np.ndarray:
        """Contiguous transpose of :attr:`gains_v` (read-only, cached;
        aliases :attr:`gains_ut` in the directed variant)."""
        return self._transposes()[1]

    @property
    def worst_gains(self) -> np.ndarray:
        """Worst-endpoint gains ``max(G_u, G_v)`` (read-only, cached)."""
        if self._worst is None:
            if self._gains_v is self._gains_u:
                self._worst = self._gains_u
            else:
                worst = np.maximum(self._gains_u, self._gains_v)
                worst.setflags(write=False)
                self._worst = worst
        return self._worst

    # -- protocol ------------------------------------------------------

    @property
    def n(self) -> int:
        return self._gains_u.shape[0]

    @property
    def directed(self) -> bool:
        return self._gains_v is self._gains_u

    @property
    def has_infinite_gains(self) -> bool:
        if self._has_inf is None:
            has_inf = not bool(np.all(np.isfinite(self._gains_u)))
            if not has_inf and self._gains_v is not self._gains_u:
                has_inf = not bool(np.all(np.isfinite(self._gains_v)))
            self._has_inf = has_inf
        return self._has_inf

    @property
    def pruned_mass_u(self) -> np.ndarray:
        if self._zero_mass is None:
            zeros = np.zeros(self.n)
            zeros.setflags(write=False)
            self._zero_mass = zeros
        return self._zero_mass

    pruned_mass_v = pruned_mass_u

    def col_u(self, j: int) -> np.ndarray:
        return self.gains_ut[j]

    def col_v(self, j: int) -> np.ndarray:
        return self.gains_vt[j]

    def row_u(self, i: int) -> np.ndarray:
        return self._gains_u[i]

    def row_v(self, i: int) -> np.ndarray:
        return self._gains_v[i]

    def gather_cols_u(self, members: np.ndarray) -> np.ndarray:
        return self._gains_u[:, members]

    def gather_cols_v(self, members: np.ndarray) -> np.ndarray:
        return self._gains_v[:, members]

    def block_u(self, idx: np.ndarray) -> np.ndarray:
        return self._gains_u[np.ix_(idx, idx)]

    def block_v(self, idx: np.ndarray) -> np.ndarray:
        return self._gains_v[np.ix_(idx, idx)]

    def cross_block_u(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return self._gains_u[np.ix_(rows, cols)]

    def cross_block_v(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return self._gains_v[np.ix_(rows, cols)]

    def class_sum_u(self, colors: Optional[np.ndarray]) -> np.ndarray:
        return _class_sum(self._gains_u, colors)

    def class_sum_v(self, colors: Optional[np.ndarray]) -> np.ndarray:
        return _class_sum(self._gains_v, colors)

    def dense_u(self) -> np.ndarray:
        return self._gains_u

    def dense_v(self) -> np.ndarray:
        return self._gains_v

    def dense_ut(self) -> np.ndarray:
        return self.gains_ut

    def dense_vt(self) -> np.ndarray:
        return self.gains_vt

    @property
    def nnz(self) -> int:
        count = int(np.count_nonzero(self._gains_u))
        if self._gains_v is not self._gains_u:
            count += int(np.count_nonzero(self._gains_v))
        return count

    @property
    def density(self) -> float:
        return 1.0  # dense storage holds every entry regardless of value

    @property
    def nbytes(self) -> int:
        total = self._gains_u.nbytes
        if self._gains_v is not self._gains_u:
            total += self._gains_v.nbytes
        if self._gains_t is not None:
            total += self._gains_t[0].nbytes
            if self._gains_t[1] is not self._gains_t[0]:
                total += self._gains_t[1].nbytes
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DenseBackend(n={self.n}, directed={self.directed})"


def _host_gain_targets(instance: Instance):
    """Endpoint-node arrays to build each gain matrix from, in the same
    order (and with the same endpoint mapping) as
    :meth:`DenseBackend.append_requests`."""
    if instance.direction is Direction.DIRECTED:
        return (instance.receivers,)
    return (instance.senders, instance.receivers)


class ArrayBackend(GainBackend):
    """Gain storage living in any array-API namespace.

    The third :class:`GainBackend`: lossless full-matrix storage like
    :class:`DenseBackend`, but the arrays belong to a standard
    array-API namespace (numpy by default; ``array_api_strict`` for
    portability testing, ``torch``/``cupy`` via ``array-api-compat``
    when installed) and may live on an accelerator device.  The build
    is tiled through :func:`_gain_block` (host side, exactly the
    expressions of the full-matrix builders), followed by **one**
    host→device transfer per endpoint matrix; each primitive computes
    in-namespace and crosses back with a single device→host transfer of
    its (small) result.  Under the numpy namespace both transfers are
    identities and every primitive evaluates to the bitwise
    :class:`DenseBackend` value — asserted backend-wide by
    ``tests/core/test_gains_backends.py`` and across every algorithm by
    the conformance grid.

    Parameters
    ----------
    xp:
        The array-API namespace module.
    arr_u, arr_v:
        The namespace-resident gain matrices (``arr_v is arr_u`` in the
        directed variant).
    namespace:
        Registered namespace name (see :data:`ARRAY_NAMESPACES`).
    device:
        Optional device passed to the namespace's ``asarray``/creation
        functions (``None`` = namespace default).
    """

    name = "array"

    def __init__(self, xp, arr_u, arr_v, namespace: str, device=None):
        self.flip_risk_events = 0
        self._xp = xp
        self.namespace = namespace
        self.device = device
        self._arr_u = arr_u
        self._arr_v = arr_v
        self._arr_t: Optional[Tuple[object, object]] = None
        self._has_inf: Optional[bool] = None
        self._zero_mass: Optional[np.ndarray] = None
        self._host: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._host_t: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._instance: Optional[Instance] = None
        self._powers: Optional[np.ndarray] = None

    @classmethod
    def build(
        cls,
        instance: Instance,
        powers: np.ndarray,
        namespace: Optional[str] = None,
        device=None,
    ) -> "ArrayBackend":
        """Build tile-by-tile on the host, then upload once.

        Host tiles come from :func:`_gain_block` (bit-identical to the
        full-matrix builders), so the uploaded matrices equal the
        :class:`DenseBackend` arrays entry for entry; the single
        ``asarray`` per endpoint matrix is the only host→device
        transfer of the build.
        """
        name = resolve_array_namespace(namespace)
        xp = _import_array_namespace(name)
        powers = np.asarray(powers, dtype=float).reshape(-1)
        n = instance.n
        all_idx = np.arange(n)
        tile = DEFAULT_TILE_ROWS
        hosts = []
        for nodes in _host_gain_targets(instance):
            out = np.empty((n, n))
            for lo in range(0, n, tile):
                hi = min(lo + tile, n)
                out[lo:hi] = _gain_block(
                    instance, powers, nodes, all_idx[lo:hi], all_idx
                )
            hosts.append(out)
        host_u = hosts[0]
        host_v = hosts[0] if len(hosts) == 1 else hosts[1]
        backend = cls(xp, None, None, name, device=device)
        arr_u = backend._upload(host_u)
        backend._arr_u = arr_u
        backend._arr_v = arr_u if host_v is host_u else backend._upload(host_v)
        backend._instance = instance
        backend._powers = powers
        return backend

    # -- transfer boundary ---------------------------------------------

    def _creation_kwargs(self) -> dict:
        return {} if self.device is None else {"device": self.device}

    def _upload(self, host: np.ndarray):
        """The single host→namespace transfer (identity under numpy)."""
        if self._xp is np and self.device is None:
            host.setflags(write=False)
            return host
        return self._xp.asarray(host, **self._creation_kwargs())

    def _download(self, x) -> np.ndarray:
        """The single namespace→host transfer of a primitive's result
        (identity under numpy)."""
        if isinstance(x, np.ndarray):
            return x
        try:
            return np.from_dlpack(x)
        except (TypeError, RuntimeError, BufferError, AttributeError):
            return np.asarray(x)

    def _scratch(self, x) -> np.ndarray:
        """Download as a writable scratch buffer (copying only when the
        zero-copy download came back read-only)."""
        out = self._download(x)
        if not out.flags.writeable:
            out = out.copy()
        return out

    def _idx(self, idx) -> object:
        """Index array in-namespace (int64, on the backend's device)."""
        return self._xp.asarray(
            np.asarray(idx, dtype=np.int64), **self._creation_kwargs()
        )

    # -- growth --------------------------------------------------------

    def append_requests(self, instance: Instance, powers: np.ndarray) -> None:
        if self._instance is None:
            raise ValueError(
                "this ArrayBackend was constructed from raw arrays; only "
                "backends built via ArrayBackend.build(...) can grow"
            )
        validate_growth(self._instance, self._powers, instance, powers)
        powers = np.asarray(powers, dtype=float).reshape(-1)
        n_old, n_new = self.n, instance.n
        if n_new == n_old:
            self._instance, self._powers = instance, powers
            return
        # Growth is a host-side rebuild of only the new strips: one
        # download of the existing matrix, _gain_block tiles for the
        # appended rows/columns (the exact entries a cold rebuild would
        # compute), one upload of the grown matrix.
        new_idx = np.arange(n_old, n_new)
        all_idx = np.arange(n_new)
        tile = DEFAULT_TILE_ROWS
        new_inf = False
        hosts = []
        olds = (
            (self._arr_u,)
            if self._arr_v is self._arr_u
            else (self._arr_u, self._arr_v)
        )
        for nodes, old in zip(_host_gain_targets(instance), olds):
            out = np.empty((n_new, n_new))
            out[:n_old, :n_old] = self._download(old)
            for lo in range(0, n_old, tile):
                hi = min(lo + tile, n_old)
                block = _gain_block(
                    instance, powers, nodes, np.arange(lo, hi), new_idx
                )
                new_inf = new_inf or not bool(np.all(np.isfinite(block)))
                out[lo:hi, n_old:] = block
            for lo in range(n_old, n_new, tile):
                hi = min(lo + tile, n_new)
                block = _gain_block(
                    instance, powers, nodes, np.arange(lo, hi), all_idx
                )
                new_inf = new_inf or not bool(np.all(np.isfinite(block)))
                out[lo:hi] = block
            hosts.append(out)
        arr_u = self._upload(hosts[0])
        self._arr_u = arr_u
        self._arr_v = arr_u if len(hosts) == 1 else self._upload(hosts[1])
        self._arr_t = None
        self._host = None
        self._host_t = None
        self._zero_mass = None
        if new_inf:
            self._has_inf = True
        # else: False stays False (old and new entries all finite) and
        # None stays lazily recomputed over the grown matrix.
        self._instance, self._powers = instance, powers

    # -- protocol ------------------------------------------------------

    @property
    def n(self) -> int:
        return int(self._arr_u.shape[0])

    @property
    def directed(self) -> bool:
        return self._arr_v is self._arr_u

    @property
    def has_infinite_gains(self) -> bool:
        if self._has_inf is None:
            xp = self._xp
            has_inf = bool(xp.any(xp.isinf(self._arr_u)))
            if not has_inf and self._arr_v is not self._arr_u:
                has_inf = bool(xp.any(xp.isinf(self._arr_v)))
            self._has_inf = has_inf
        return self._has_inf

    @property
    def pruned_mass_u(self) -> np.ndarray:
        if self._zero_mass is None:
            zeros = np.zeros(self.n)
            zeros.setflags(write=False)
            self._zero_mass = zeros
        return self._zero_mass

    pruned_mass_v = pruned_mass_u

    def _transposes(self) -> Tuple[object, object]:
        if self._arr_t is None:
            xp = self._xp
            ut = xp.asarray(xp.matrix_transpose(self._arr_u), copy=True)
            if self._arr_v is self._arr_u:
                self._arr_t = (ut, ut)
            else:
                vt = xp.asarray(xp.matrix_transpose(self._arr_v), copy=True)
                self._arr_t = (ut, vt)
        return self._arr_t

    def col_u(self, j: int) -> np.ndarray:
        return self._download(self._transposes()[0][int(j), :])

    def col_v(self, j: int) -> np.ndarray:
        return self._download(self._transposes()[1][int(j), :])

    def row_u(self, i: int) -> np.ndarray:
        return self._download(self._arr_u[int(i), :])

    def row_v(self, i: int) -> np.ndarray:
        return self._download(self._arr_v[int(i), :])

    def gather_cols_u(self, members: np.ndarray) -> np.ndarray:
        xp = self._xp
        return self._download(xp.take(self._arr_u, self._idx(members), axis=1))

    def gather_cols_v(self, members: np.ndarray) -> np.ndarray:
        xp = self._xp
        return self._download(xp.take(self._arr_v, self._idx(members), axis=1))

    def _cross(self, arr, rows, cols):
        xp = self._xp
        return xp.take(xp.take(arr, self._idx(rows), axis=0), self._idx(cols), axis=1)

    def block_u(self, idx: np.ndarray) -> np.ndarray:
        return self._scratch(self._cross(self._arr_u, idx, idx))

    def block_v(self, idx: np.ndarray) -> np.ndarray:
        return self._scratch(self._cross(self._arr_v, idx, idx))

    def cross_block_u(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return self._download(self._cross(self._arr_u, rows, cols))

    def cross_block_v(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return self._download(self._cross(self._arr_v, rows, cols))

    def _row_sums_xp(self, arr, rows, cols) -> np.ndarray:
        rows = np.asarray(rows, dtype=int)
        cols = rows if cols is None else np.asarray(cols, dtype=int)
        xp = self._xp
        # Row sums are independent per row, so one in-namespace pass is
        # bit-identical to the base class's tiled host reduction.
        return self._download(xp.sum(self._cross(arr, rows, cols), axis=1))

    def row_sums_u(
        self, rows: np.ndarray, cols: Optional[np.ndarray] = None
    ) -> np.ndarray:
        return self._row_sums_xp(self._arr_u, rows, cols)

    def row_sums_v(
        self, rows: np.ndarray, cols: Optional[np.ndarray] = None
    ) -> np.ndarray:
        return self._row_sums_xp(self._arr_v, rows, cols)

    def _class_sum_xp(self, arr, colors: Optional[np.ndarray]) -> np.ndarray:
        xp = self._xp
        if colors is None:
            return self._download(xp.sum(arr, axis=1))
        c = self._idx(colors)
        same = c[:, None] == c[None, :]
        i = xp.asarray(
            np.arange(self.n, dtype=np.int64), **self._creation_kwargs()
        )
        same = xp.logical_and(same, i[:, None] != i[None, :])
        masked = xp.where(same, arr, xp.zeros_like(arr))
        return self._download(xp.sum(masked, axis=1))

    def class_sum_u(self, colors: Optional[np.ndarray]) -> np.ndarray:
        return self._class_sum_xp(self._arr_u, colors)

    def class_sum_v(self, colors: Optional[np.ndarray]) -> np.ndarray:
        return self._class_sum_xp(self._arr_v, colors)

    def _host_readonly(self, x) -> np.ndarray:
        out = self._download(x)
        if out.flags.writeable:
            out.setflags(write=False)
        return out

    def dense_u(self) -> np.ndarray:
        if self._host is None:
            host_u = self._host_readonly(self._arr_u)
            host_v = (
                host_u
                if self._arr_v is self._arr_u
                else self._host_readonly(self._arr_v)
            )
            self._host = (host_u, host_v)
        return self._host[0]

    def dense_v(self) -> np.ndarray:
        self.dense_u()
        return self._host[1]

    def dense_ut(self) -> np.ndarray:
        if self._host_t is None:
            ut, vt = self._transposes()
            host_ut = self._host_readonly(ut)
            host_vt = host_ut if vt is ut else self._host_readonly(vt)
            self._host_t = (host_ut, host_vt)
        return self._host_t[0]

    def dense_vt(self) -> np.ndarray:
        self.dense_ut()
        return self._host_t[1]

    @property
    def nnz(self) -> int:
        xp = self._xp
        count = int(xp.sum(xp.astype(self._arr_u != 0, xp.int64)))
        if self._arr_v is not self._arr_u:
            count += int(xp.sum(xp.astype(self._arr_v != 0, xp.int64)))
        return count

    @property
    def density(self) -> float:
        return 1.0  # full-matrix storage holds every entry

    @property
    def nbytes(self) -> int:
        matrices = 1 if self.directed else 2
        total = 8 * self.n * self.n * matrices
        if self._arr_t is not None:
            total += 8 * self.n * self.n * (
                1 if self._arr_t[1] is self._arr_t[0] else 2
            )
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ArrayBackend(n={self.n}, directed={self.directed}, "
            f"namespace={self.namespace!r}, device={self.device!r})"
        )


def _prune_tile(
    tile: np.ndarray, epsilon: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row ε-pruning of one dense gain tile.

    Returns ``(keep, pruned_mass)``: a boolean mask of entries to store
    (every ``inf`` entry is always kept, exact zeros never are) and a
    conservative per-row upper bound on the finite mass dropped.  The
    rule drops the *smallest* finite entries of each row whose
    cumulative sum stays within ``epsilon`` times the row's total
    finite mass, so the bound is as tight as a sorted greedy allows.
    """
    finite = np.isfinite(tile)
    positive = tile > 0
    eligible = finite & positive
    if epsilon <= 0.0:
        return eligible | ~finite, np.zeros(tile.shape[0])
    # Sort each row's eligible values ascending (ineligible entries sort
    # last as +inf) and drop the longest prefix within the mass budget.
    # The ordering and the cumulative mass run in float32 — the sort is
    # the build's hottest pass and halves its memory traffic — which is
    # sound because the *rule* (which smallest entries to drop) is ours
    # to define: stored entries stay exact float64, and the recorded
    # per-row bound below is widened past the worst-case float32
    # accumulation error so it remains a true upper bound on the exact
    # dropped mass.  Ties among equal values may drop in either order
    # (identical mass either way); the result is deterministic for a
    # given tile.
    vals = np.where(eligible, tile, np.inf).astype(np.float32)
    order = np.argsort(vals, axis=1)
    svals = np.take_along_axis(vals, order, axis=1)
    sfinite = np.isfinite(svals)
    csum = np.cumsum(np.where(sfinite, svals, np.float32(0.0)), axis=1)
    # Keep the budget slightly conservative so float32 rounding cannot
    # push the dropped mass past epsilon times the true row mass.
    budget = np.float32(epsilon * (1.0 - 1e-3)) * csum[:, -1]
    drop_count = np.count_nonzero(sfinite & (csum <= budget[:, None]), axis=1)
    pruned = np.where(
        drop_count > 0,
        np.take_along_axis(
            csum, np.maximum(drop_count - 1, 0)[:, None], axis=1
        )[:, 0].astype(float),
        0.0,
    )
    # Widen the recorded bound past the sequential-float32-cumsum
    # worst case (~n * eps32 relative), plus an absolute term covering
    # float64 values that underflow to 0 in float32 (each < 1.2e-38),
    # so it upper-bounds the exact float64 dropped mass.
    n_cols = np.float64(tile.shape[1])
    pruned = pruned * (1.0 + n_cols * 1.2e-7 + 1e-9) + np.where(
        drop_count > 0, n_cols * 1.2e-38, 0.0
    )
    drop_sorted = np.arange(tile.shape[1])[None, :] < drop_count[:, None]
    drop = np.zeros(tile.shape, dtype=bool)
    np.put_along_axis(drop, order, drop_sorted, axis=1)
    return (eligible & ~drop) | ~finite, pruned


def _assemble_csr(
    instance: Instance,
    powers: np.ndarray,
    endpoint_nodes: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    epsilon: float,
    tile_rows: int,
) -> Tuple["_sp.csr_matrix", np.ndarray, bool]:
    """ε-pruned CSR of one endpoint's gain sub-block ``G[rows][:, cols]``
    (column indices relative to *cols*), assembled ``tile_rows`` rows of
    dense scratch at a time from :func:`_gain_block`.

    Returns ``(csr, pruned_mass, has_infinite)`` with ``pruned_mass``
    the per-row bound from :func:`_prune_tile`.  Shared by the cold
    :meth:`SparseBackend.build` (full square block) and the growable
    appends (top-right and bottom strips).
    """
    data, col_chunks, row_nnz = [], [], []
    pruned = np.zeros(rows.size)
    has_inf = False
    for lo in range(0, rows.size, tile_rows):
        hi = min(lo + tile_rows, rows.size)
        gains = _gain_block(instance, powers, endpoint_nodes, rows[lo:hi], cols)
        keep, tile_pruned = _prune_tile(gains, epsilon)
        pruned[lo:hi] = tile_pruned
        kept_rows, kept_cols = np.nonzero(keep)
        kept = gains[kept_rows, kept_cols]
        if not has_inf and kept.size:
            has_inf = not bool(np.all(np.isfinite(kept)))
        data.append(kept)
        col_chunks.append(kept_cols)
        row_nnz.append(np.bincount(kept_rows, minlength=hi - lo))
    indptr = np.zeros(rows.size + 1, dtype=np.int64)
    if row_nnz:
        np.cumsum(np.concatenate(row_nnz), out=indptr[1:])
    csr = _sp.csr_matrix(
        (
            np.concatenate(data) if data else np.zeros(0),
            np.concatenate(col_chunks)
            if col_chunks
            else np.zeros(0, dtype=int),
            indptr,
        ),
        shape=(rows.size, cols.size),
    )
    return csr, pruned, has_inf


class _PendingBlock:
    """One unconsolidated arrival batch of a growing sparse endpoint.

    Appending at size ``start`` contributes exactly two strips: the
    *right* strip ``G[:start, start:start+k]`` (what the ``k`` arrivals
    induce at every pre-existing request, kept both row-major and
    pre-transposed for O(row) column slices) and the *bottom* strip
    ``G[start:start+k, :start+k]`` (the arrivals' full rows).  Folding
    the blocks into the base CSR in arrival order reproduces the
    rebuild-per-arrival storage bit-for-bit, so consolidation can be
    deferred and amortized (see :meth:`SparseBackend.flush_growth`).
    """

    __slots__ = ("start", "right", "right_t", "bottom")

    def __init__(self, start: int, right, bottom):
        self.start = int(start)
        self.right = right
        self.right_t = right.T.tocsr()
        self.bottom = bottom

    @property
    def k(self) -> int:
        return self.right.shape[1]

    @property
    def nnz(self) -> int:
        return int(self.right.nnz) + int(self.bottom.nnz)

    @property
    def nbytes(self) -> int:
        total = 0
        for csr in (self.right, self.right_t, self.bottom):
            total += csr.data.nbytes + csr.indices.nbytes + csr.indptr.nbytes
        return total


def _csr_cell(csr: "_sp.csr_matrix", row: int, col: int) -> float:
    """One stored entry of a (sorted) CSR, ``0.0`` when absent."""
    lo, hi = csr.indptr[row], csr.indptr[row + 1]
    pos = lo + np.searchsorted(csr.indices[lo:hi], col)
    if pos < hi and csr.indices[pos] == col:
        return float(csr.data[pos])
    return 0.0


class SparseBackend(GainBackend):
    """ε-pruned CSR gains with per-request dropped-mass bounds.

    Storage is one CSR matrix per endpoint plus its transposed CSR (for
    O(row) column access); both are assembled tile-by-tile through
    :meth:`repro.geometry.metric.Metric.distance_block`, so neither the
    gain nor the distance matrix is ever dense in memory.  See the
    module docstring for the pruning rule and the exactness /
    certification contract.

    Growth (``append_requests``) is *deferred*: arrival strips are kept
    as :class:`_PendingBlock` buffers next to the consolidated base CSR
    and folded in (one stacking pass plus one transpose rebuild) only
    when the pending rows reach the base size, when a block-structured
    query needs them, or on an explicit :meth:`flush_growth` — so a
    stream of single-request arrivals consolidates ``O(log n)`` times
    instead of rebuilding ``O(nnz)`` transposes per arrival, while the
    hot single-row/column queries of live admission read base +
    pending directly without consolidating at all.
    """

    name = "sparse"

    def __init__(
        self,
        csr_u: "_sp.csr_matrix",
        csr_v: "_sp.csr_matrix",
        pruned_mass_u: np.ndarray,
        pruned_mass_v: np.ndarray,
        epsilon: float,
        has_infinite: bool,
    ):
        self.flip_risk_events = 0
        self.epsilon = float(epsilon)
        self._csr_u = csr_u
        self._csr_v = csr_v
        self._csr_ut = csr_u.T.tocsr()
        self._csr_vt = (
            self._csr_ut if csr_v is csr_u else csr_v.T.tocsr()
        )
        pruned_mass_u.setflags(write=False)
        pruned_mass_v.setflags(write=False)
        self._pruned_u = pruned_mass_u
        self._pruned_v = pruned_mass_v
        self._has_inf = bool(has_infinite)
        self.tile_rows = DEFAULT_TILE_ROWS
        # Growth state (populated by build(); raw-constructed backends
        # cannot grow because they do not know their instance).
        self._instance: Optional[Instance] = None
        self._powers: Optional[np.ndarray] = None
        # Deferred-consolidation buffers: logical size, pending arrival
        # blocks per endpoint (aliased when directed, like the CSRs).
        self._n = int(csr_u.shape[0])
        self._pend_u: list = []
        self._pend_v: list = self._pend_u if csr_v is csr_u else []

    # -- construction --------------------------------------------------

    @classmethod
    def build(
        cls,
        instance: Instance,
        powers: np.ndarray,
        epsilon: Optional[float] = None,
        tile_rows: int = DEFAULT_TILE_ROWS,
    ) -> "SparseBackend":
        """Tiled CSR build for ``(instance, powers)``.

        Gain values are computed with the exact elementwise operations
        of the dense builders (:func:`directed_gain_matrix` /
        :func:`bidirectional_gain_matrices`) applied to metric blocks,
        so every *stored* entry is bit-identical to its dense
        counterpart.
        """
        epsilon = resolve_sparse_epsilon(epsilon)
        powers = np.asarray(powers, dtype=float).reshape(-1)
        n = instance.n
        tile_rows = max(1, int(tile_rows))
        s, r = instance.senders, instance.receivers
        directed = instance.direction is Direction.DIRECTED
        all_cols = np.arange(n)

        def build_endpoint(endpoint_nodes: np.ndarray):
            csr, pruned, has_inf = _assemble_csr(
                instance,
                powers,
                endpoint_nodes,
                all_cols,
                all_cols,
                epsilon,
                tile_rows,
            )
            return csr, pruned, has_inf

        if directed:
            csr_u, pruned_u, has_inf = build_endpoint(r)
            csr_v, pruned_v = csr_u, pruned_u
        else:
            csr_u, pruned_u, inf_u = build_endpoint(s)
            csr_v, pruned_v, inf_v = build_endpoint(r)
            has_inf = inf_u or inf_v
        backend = cls(csr_u, csr_v, pruned_u, pruned_v, epsilon, has_inf)
        backend._instance = instance
        backend._powers = powers
        return backend

    def append_requests(self, instance: Instance, powers: np.ndarray) -> None:
        """Append the new requests' CSR rows and extend every existing
        row with the new columns, tile-by-tile.

        With ``epsilon = 0`` the kept set of each entry is independent
        of its row context (keep positive finite and ``inf``, drop exact
        zeros), so the grown CSR storage — data, indices, indptr and
        the transposed matrices, after consolidation — is
        **bit-identical** to a cold :meth:`build` of the grown pair.
        With ``epsilon > 0`` the appended block of each existing row is
        pruned *on its own* (its dropped mass, at most ``epsilon``
        times the block's finite mass, is added to the row's recorded
        bound): a cold rebuild would re-prune whole rows against their
        grown mass and may keep a different set, so grown and cold
        storages can differ — but the backend remains a conservative
        under-estimator with a true per-row pruned-mass upper bound,
        which is all certification needs.

        The new strips are buffered as a :class:`_PendingBlock` instead
        of being stacked into the base CSR immediately; consolidation
        (including the O(nnz) transposed-CSR rebuild that used to run
        on *every* arrival) is deferred until the pending rows reach
        the base size — see :meth:`flush_growth` — so a stream of
        arrivals pays amortized ``O(n)`` per arrival, not ``O(nnz)``.
        """
        if self._instance is None:
            raise ValueError(
                "this SparseBackend was constructed from raw matrices; "
                "only backends built via SparseBackend.build(...) can grow"
            )
        validate_growth(self._instance, self._powers, instance, powers)
        powers = np.asarray(powers, dtype=float).reshape(-1)
        n_old, n_new = self.n, instance.n
        if n_new == n_old:
            self._instance, self._powers = instance, powers
            return
        epsilon = self.epsilon
        tile = max(1, int(self.tile_rows))
        old_idx = np.arange(n_old)
        new_idx = np.arange(n_old, n_new)
        all_idx = np.arange(n_new)

        def extend_endpoint(pend, pruned_old, endpoint_nodes):
            right, extra_pruned, inf_right = _assemble_csr(
                instance, powers, endpoint_nodes, old_idx, new_idx,
                epsilon, tile,
            )
            bottom, pruned_new, inf_bottom = _assemble_csr(
                instance, powers, endpoint_nodes, new_idx, all_idx,
                epsilon, tile,
            )
            pend.append(_PendingBlock(n_old, right, bottom))
            pruned = np.concatenate(
                [np.asarray(pruned_old) + extra_pruned, pruned_new]
            )
            pruned.setflags(write=False)
            return pruned, inf_right or inf_bottom

        if instance.direction is Direction.DIRECTED:
            pruned_u, new_inf = extend_endpoint(
                self._pend_u, self._pruned_u, instance.receivers
            )
            pruned_v = pruned_u
        else:
            pruned_u, inf_u = extend_endpoint(
                self._pend_u, self._pruned_u, instance.senders
            )
            pruned_v, inf_v = extend_endpoint(
                self._pend_v, self._pruned_v, instance.receivers
            )
            new_inf = inf_u or inf_v
        self._pruned_u, self._pruned_v = pruned_u, pruned_v
        if new_inf:
            self._has_inf = True
        self._n = n_new
        self._instance, self._powers = instance, powers
        # Doubling rule: consolidate once the buffered rows match the
        # base size, so total consolidation work over any arrival
        # stream is a geometric series (O(nnz) overall, O(log n)
        # rebuilds) instead of O(nnz) per arrival.
        base_n = int(self._csr_u.shape[0])
        if self._n - base_n >= max(base_n, 1):
            self.flush_growth()

    def flush_growth(self) -> None:
        """Fold every pending arrival block into the base CSR (and
        rebuild the transposed matrices once).

        Folding in arrival order reproduces exactly the storage the
        historical rebuild-per-arrival path produced, so calling this
        after any prefix of appends is bit-identical to having
        consolidated eagerly — block-structured queries simply call it
        on demand.  Idempotent; a no-op when nothing is pending.
        """
        if not self._pend_u:
            return

        def fold(csr, pend):
            for blk in pend:
                top = _sp.hstack([csr, blk.right], format="csr")
                csr = _sp.vstack([top, blk.bottom], format="csr")
            csr.sort_indices()
            return csr

        csr_u = fold(self._csr_u, self._pend_u)
        if self._csr_v is self._csr_u:
            csr_v = csr_u
        else:
            csr_v = fold(self._csr_v, self._pend_v)
        self._csr_u, self._csr_v = csr_u, csr_v
        self._csr_ut = csr_u.T.tocsr()
        self._csr_vt = self._csr_ut if csr_v is csr_u else csr_v.T.tocsr()
        self._pend_u.clear()
        if self._pend_v is not self._pend_u:
            self._pend_v.clear()

    # -- protocol ------------------------------------------------------

    @property
    def n(self) -> int:
        return self._n

    @property
    def directed(self) -> bool:
        return self._csr_v is self._csr_u

    @property
    def has_infinite_gains(self) -> bool:
        return self._has_inf

    @property
    def pruned_mass_u(self) -> np.ndarray:
        return self._pruned_u

    @property
    def pruned_mass_v(self) -> np.ndarray:
        return self._pruned_v

    @staticmethod
    def _expand_row(csr: "_sp.csr_matrix", i: int) -> np.ndarray:
        out = np.zeros(csr.shape[1])
        lo, hi = csr.indptr[i], csr.indptr[i + 1]
        out[csr.indices[lo:hi]] = csr.data[lo:hi]
        return out

    def _grown_row(self, base, pend, i: int) -> np.ndarray:
        """Row ``i`` of base + pending, without consolidating.

        Every stored entry lands at the same value consolidation would
        place (pure scatter of the identical stored floats), so the hot
        single-row path of live admission never forces a flush.
        """
        out = np.zeros(self._n)
        base_n = base.shape[0]
        if i < base_n:
            lo, hi = base.indptr[i], base.indptr[i + 1]
            out[base.indices[lo:hi]] = base.data[lo:hi]
        for blk in pend:
            if i < blk.start:
                # The arrivals' columns at a pre-existing row.
                lo, hi = blk.right.indptr[i], blk.right.indptr[i + 1]
                out[blk.start + blk.right.indices[lo:hi]] = (
                    blk.right.data[lo:hi]
                )
            elif i < blk.start + blk.k:
                # The arrival's own full row (covers all earlier cols).
                r = i - blk.start
                lo, hi = blk.bottom.indptr[r], blk.bottom.indptr[r + 1]
                out[blk.bottom.indices[lo:hi]] = blk.bottom.data[lo:hi]
        return out

    def _grown_col(self, base_t, pend, j: int) -> np.ndarray:
        """Column ``j`` of base + pending (see :meth:`_grown_row`)."""
        out = np.zeros(self._n)
        base_n = base_t.shape[0]
        if j < base_n:
            lo, hi = base_t.indptr[j], base_t.indptr[j + 1]
            out[base_t.indices[lo:hi]] = base_t.data[lo:hi]
        for blk in pend:
            if blk.start <= j < blk.start + blk.k:
                # What arrival j induces at every pre-existing request.
                r = j - blk.start
                lo, hi = blk.right_t.indptr[r], blk.right_t.indptr[r + 1]
                out[blk.right_t.indices[lo:hi]] = blk.right_t.data[lo:hi]
            if blk.start + blk.k > j:
                # These arrivals' rows cover column j.
                for r in range(blk.bottom.shape[0]):
                    out[blk.start + r] = _csr_cell(blk.bottom, r, j)
        return out

    def col_u(self, j: int) -> np.ndarray:
        if self._pend_u:
            return self._grown_col(self._csr_ut, self._pend_u, int(j))
        return self._expand_row(self._csr_ut, int(j))

    def col_v(self, j: int) -> np.ndarray:
        if self._pend_v:
            return self._grown_col(self._csr_vt, self._pend_v, int(j))
        return self._expand_row(self._csr_vt, int(j))

    def row_u(self, i: int) -> np.ndarray:
        if self._pend_u:
            return self._grown_row(self._csr_u, self._pend_u, int(i))
        return self._expand_row(self._csr_u, int(i))

    def row_v(self, i: int) -> np.ndarray:
        if self._pend_v:
            return self._grown_row(self._csr_v, self._pend_v, int(i))
        return self._expand_row(self._csr_v, int(i))

    def gather_cols_u(self, members: np.ndarray) -> np.ndarray:
        self.flush_growth()
        return self._csr_ut[members].toarray().T

    def gather_cols_v(self, members: np.ndarray) -> np.ndarray:
        self.flush_growth()
        return self._csr_vt[members].toarray().T

    def block_u(self, idx: np.ndarray) -> np.ndarray:
        self.flush_growth()
        return self._csr_u[idx][:, idx].toarray()

    def block_v(self, idx: np.ndarray) -> np.ndarray:
        self.flush_growth()
        return self._csr_v[idx][:, idx].toarray()

    def _cross_block(self, which_u: bool, rows, cols) -> np.ndarray:
        base, pend = (
            (self._csr_u, self._pend_u)
            if which_u
            else (self._csr_v, self._pend_v)
        )
        if pend:
            rows = np.asarray(rows, dtype=int)
            if rows.size > 64:
                # Bulk query (peel init, class analysis): consolidate
                # once instead of scattering thousands of rows.
                self.flush_growth()
            else:
                # Admission-path query (a handful of arrival rows):
                # assemble from base + pending.  Pure gather of the
                # same stored values, so bit-identical to flushing.
                cols = np.asarray(cols, dtype=int)
                out = np.empty((rows.size, cols.size))
                for pos, i in enumerate(rows):
                    out[pos] = self._grown_row(base, pend, int(i))[cols]
                return out
        csr = self._csr_u if which_u else self._csr_v
        return csr[rows][:, cols].toarray()

    def cross_block_u(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return self._cross_block(True, rows, cols)

    def cross_block_v(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return self._cross_block(False, rows, cols)

    def _csr_row_sums(
        self, csr: "_sp.csr_matrix", rows, cols
    ) -> np.ndarray:
        """CSR-native :meth:`~GainBackend.row_sums_u` workhorse: slice
        the stored rows tile-by-tile, expand each tile to a dense
        scratch and reduce it with the same per-row pairwise sums as
        the dense backend — bit-identical values, ``O(tile * k)`` peak
        scratch, never a ``(k, k)`` block."""
        rows = np.asarray(rows, dtype=int)
        cols = rows if cols is None else np.asarray(cols, dtype=int)
        out = np.empty(rows.size)
        tile = max(1, int(self.tile_rows))
        for lo in range(0, rows.size, tile):
            hi = min(lo + tile, rows.size)
            out[lo:hi] = csr[rows[lo:hi]][:, cols].toarray().sum(axis=1)
        return out

    def row_sums_u(
        self, rows: np.ndarray, cols: Optional[np.ndarray] = None
    ) -> np.ndarray:
        self.flush_growth()
        return self._csr_row_sums(self._csr_u, rows, cols)

    def row_sums_v(
        self, rows: np.ndarray, cols: Optional[np.ndarray] = None
    ) -> np.ndarray:
        self.flush_growth()
        return self._csr_row_sums(self._csr_v, rows, cols)

    def _class_sum(
        self, csr: "_sp.csr_matrix", colors: Optional[np.ndarray]
    ) -> np.ndarray:
        """Tiled same-color row sums: expand ``tile_rows`` rows to a
        dense scratch and reduce exactly like the dense
        :func:`~repro.core.interference._class_sum` (per-row pairwise
        sums over length-``n`` buffers, so values are bit-identical to
        running the dense code on the pruned matrix)."""
        n = self.n
        if colors is not None:
            colors = np.asarray(colors)
        out = np.empty(n)
        tile = max(1, int(self.tile_rows))
        for lo in range(0, n, tile):
            hi = min(lo + tile, n)
            dense_tile = csr[lo:hi].toarray()
            if colors is None:
                out[lo:hi] = dense_tile.sum(axis=1)
                continue
            same = colors[lo:hi, None] == colors[None, :]
            same[np.arange(hi - lo), np.arange(lo, hi)] = False
            out[lo:hi] = np.where(same, dense_tile, 0.0).sum(axis=1)
        return out

    def class_sum_u(self, colors: Optional[np.ndarray]) -> np.ndarray:
        self.flush_growth()
        return self._class_sum(self._csr_u, colors)

    def class_sum_v(self, colors: Optional[np.ndarray]) -> np.ndarray:
        self.flush_growth()
        return self._class_sum(self._csr_v, colors)

    def dense_u(self) -> np.ndarray:
        self.flush_growth()
        return self._csr_u.toarray()

    def dense_v(self) -> np.ndarray:
        self.flush_growth()
        return self._csr_v.toarray()

    def dense_ut(self) -> np.ndarray:
        self.flush_growth()
        return self._csr_ut.toarray()

    def dense_vt(self) -> np.ndarray:
        self.flush_growth()
        return self._csr_vt.toarray()

    @property
    def nnz(self) -> int:
        count = int(self._csr_u.nnz) + sum(blk.nnz for blk in self._pend_u)
        if self._csr_v is not self._csr_u:
            count += int(self._csr_v.nnz) + sum(
                blk.nnz for blk in self._pend_v
            )
        return count

    @property
    def nbytes(self) -> int:
        total = 0
        seen = set()
        for csr in (self._csr_u, self._csr_v, self._csr_ut, self._csr_vt):
            if id(csr) in seen:
                continue
            seen.add(id(csr))
            total += csr.data.nbytes + csr.indices.nbytes + csr.indptr.nbytes
        for pend in (self._pend_u, self._pend_v):
            for blk in pend:
                total += blk.nbytes
            if self._pend_v is self._pend_u:
                break
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparseBackend(n={self.n}, directed={self.directed}, "
            f"epsilon={self.epsilon}, density={self.density:.4f})"
        )


def build_backend(
    instance: Instance,
    powers: np.ndarray,
    backend: Optional[str] = None,
    sparse_epsilon: Optional[float] = None,
    array_namespace: Optional[str] = None,
    device=None,
    shard_workers: Optional[int] = None,
    shard_executor: Optional[str] = None,
) -> GainBackend:
    """Construct the gain backend for ``(instance, powers)``.

    *backend*, *sparse_epsilon*, *array_namespace*, *shard_workers*
    and *shard_executor* default to the process-wide settings
    (:func:`default_backend` / :func:`default_sparse_epsilon` /
    :func:`default_array_namespace` / :func:`default_shard_workers` /
    :func:`default_shard_executor`); *device* applies to the array
    backend only (``None`` = the namespace's default device).
    """
    name = resolve_backend(backend)
    if name == "sparse":
        return SparseBackend.build(instance, powers, epsilon=sparse_epsilon)
    if name == "array":
        return ArrayBackend.build(
            instance, powers, namespace=array_namespace, device=device
        )
    if name == "sharded":
        # Lazy import: repro.distributed consumes this module's
        # primitives (_assemble_csr and friends), so the dependency
        # must point that way at import time.
        from repro.distributed import ShardedBackend

        return ShardedBackend.build(
            instance,
            powers,
            epsilon=sparse_epsilon,
            workers=shard_workers,
            executor=shard_executor,
        )
    return DenseBackend.build(instance, powers)
