"""Vectorized scheduling kernels on cached gain matrices.

The schedulers in :mod:`repro.scheduling` share one inner loop: test
whether a request may join a color class, then commit or move on.  With
the PR-1 engine that loop ran one :class:`~repro.core.context.ClassAccumulator`
query per *(request, class)* pair — O(n·C) interpreter-bound
iterations, each issuing a handful of tiny NumPy calls, on top of gain
matrices that are already fully cached.  This module keeps **every**
class's state dense so the whole scan collapses into a constant number
of vectorized passes:

* :class:`ScheduleKernel` — all color classes of one
  schedule-in-progress as ``(C, n)`` interference matrices per endpoint
  (finite sums plus the accumulator's exact infinite/positive
  contribution counts).  First-fit placement becomes **one** admission
  check across every open class per request
  (:meth:`~ScheduleKernel.first_fit_admit`), and local-search moves
  become delta checks (:meth:`~ScheduleKernel.admissible_targets`) with
  snapshot/restore rollback instead of per-move subset rebuilds.
* :func:`peel_max_feasible_subset` — the greedy peeling primitive on
  incrementally maintained interference sums: **identical** decisions
  to :meth:`InterferenceContext.greedy_max_feasible_subset` at O(k)
  vectorized work per round (subtract the victim's gain column, rescan
  margins) instead of the reference's O(k²) block recompute — O(k²)
  total versus O(k³).  Decisions that land inside the
  :data:`PEEL_RISK_RTOL` band of their boundary are re-resolved with
  fresh reference-order row sums and counted as risk events;
  ``peel_incremental_disabled()`` routes to the retained compacting
  reference implementation.
* :func:`stacked_first_fit` — the first-fit kernel over stacked
  ``(B, n, n)`` gains, scheduling a whole
  :class:`~repro.core.batch.ContextBatch` of same-shape instances in
  lockstep (one vectorized admission pass per order position covers all
  ``B`` pairs).
* :func:`stacked_local_search` — the local-search dissolution pass over
  the same stacked gains: per-pair delta evaluation is embarrassingly
  parallel, so every engine step runs **one** batched
  ``admissible_targets`` analogue plus one batched move across all
  still-active pairs, with bitwise per-pair snapshot rollback — each
  slice conformant to :func:`repro.scheduling.local_search.improve_schedule`
  on that pair alone.

Numerical contract
------------------

:meth:`ScheduleKernel.first_fit_admit` reproduces the sequential
``ClassAccumulator`` scan of the PR-1 engine **bit-for-bit**: class
rows accumulate gain columns in the same insertion order with the same
operations, interference is resolved with the same
``interference_parts`` formula, and the comparisons are the same
elementwise float ops — so the admitted class (and hence every
first-fit schedule) is identical, enforced by the conformance suite
and the determinism goldens.  :func:`peel_max_feasible_subset`
maintains interference sums incrementally, so raw margins agree with
the reference only up to accumulation order — but every peel, stop,
and re-add decision is made **identically**: comparisons within
:data:`PEEL_RISK_RTOL` of their boundary (argmin ties, threshold
crossings) are re-resolved from fresh row sums taken in the
reference's own membership order (bitwise the reference's values) and
surfaced as ``peel_risk_events`` in the result provenance.  Calls the
incremental path cannot express (duplicate candidate indices) fall
back to the from-scratch reference and are recorded as
:class:`PeelFallbackInfo` entries.  The local-search delta checks are
the remaining exception: like
the accumulator itself they maintain sums incrementally, so they agree
with from-scratch subset margins only up to floating-point accumulation
order (~1e-16 relative, far inside the 1e-9 feasibility tolerance);
``tests/core/test_kernels.py`` asserts the emitted colorings match the
reference path exactly on the conformance grid.

Disabling the kernels
---------------------

``with kernels_disabled(): ...`` routes the rewired schedulers back to
their PR-1 accumulator/subset-rebuild engine paths (the conformance
references), exactly like :func:`repro.core.context.engine_disabled`
restores the pre-engine code.  The benchmark
(``benchmarks/bench_scheduler_kernels.py``) uses it to time the
reference paths honestly.

When to use what
----------------

* One-off queries → the public wrappers / ``InterferenceContext``
  methods (cached, vectorized, no state to manage).
* One set growing/shrinking a request at a time →
  :class:`~repro.core.context.ClassAccumulator` (O(n) membership
  changes, O(k) feasibility probes).
* *Many* classes probed per request (schedulers, searches) →
  :class:`ScheduleKernel` (one vectorized pass over all classes).
* Many same-shape instances → :func:`stacked_first_fit` via
  :meth:`repro.core.batch.ContextBatch.first_fit_schedules`.
"""

from __future__ import annotations

import logging
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.context import (
    DEFAULT_RTOL,
    InterferenceContext,
    _margins_from,
)

__all__ = [
    "PEEL_RISK_RTOL",
    "PeelFallbackInfo",
    "DEFAULT_ADMISSION_WINDOW",
    "ScheduleKernel",
    "first_fit_colors",
    "first_fit_colors_sharded",
    "peel_max_feasible_subset",
    "stacked_first_fit",
    "stacked_local_search",
    "kernels_enabled",
    "set_kernels_enabled",
    "kernels_disabled",
    "peel_incremental_enabled",
    "set_peel_incremental_enabled",
    "peel_incremental_disabled",
    "peel_risk_events",
    "peel_fallback_records",
    "reset_peel_events",
]

logger = logging.getLogger(__name__)


# ----------------------------------------------------------------------
# Kernel toggle (mirrors the engine toggle in repro.core.context)
# ----------------------------------------------------------------------

_kernels_enabled = True


def kernels_enabled() -> bool:
    """Are the vectorized scheduler kernels active on the engine paths?"""
    return _kernels_enabled


def set_kernels_enabled(flag: bool) -> None:
    """Globally enable/disable the kernel paths (disabled = the PR-1
    accumulator / subset-rebuild engine paths)."""
    global _kernels_enabled
    _kernels_enabled = bool(flag)


@contextmanager
def kernels_disabled() -> Iterator[None]:
    """Temporarily restore the accumulator-based engine paths."""
    previous = _kernels_enabled
    set_kernels_enabled(False)
    try:
        yield
    finally:
        set_kernels_enabled(previous)


# ----------------------------------------------------------------------
# Incremental-peel toggle + peel provenance counters
# ----------------------------------------------------------------------

_peel_incremental_enabled = True

#: Relative width of the incremental peel's decision-risk band.  A
#: peel/stop/re-add comparison whose incrementally maintained margin
#: lands within this relative distance of the decision boundary (the
#: feasibility threshold, or the round's minimum margin for argmin
#: ties) is *at risk* of differing from the reference's fresh-sum
#: margins; the kernel then recomputes the implicated margins exactly
#: (reference summation order) and counts one
#: :func:`peel_risk_events` event.  The band is orders of magnitude
#: wider than the drift a full peel can accumulate (a few ulps per
#: subtraction), so out-of-band comparisons are certain.
PEEL_RISK_RTOL = 1e-9


def peel_incremental_enabled() -> bool:
    """Is the incremental (sub-cubic) peel active inside
    :func:`peel_max_feasible_subset`?"""
    return _peel_incremental_enabled


def set_peel_incremental_enabled(flag: bool) -> None:
    """Globally enable/disable the incremental peel (disabled = the
    O(k^3) compacting-buffer conformance reference)."""
    global _peel_incremental_enabled
    _peel_incremental_enabled = bool(flag)


@contextmanager
def peel_incremental_disabled() -> Iterator[None]:
    """Temporarily restore the compacting-buffer peel reference
    (mirrors :func:`kernels_disabled` /
    :func:`repro.core.context.engine_disabled`)."""
    previous = _peel_incremental_enabled
    set_peel_incremental_enabled(False)
    try:
        yield
    finally:
        set_peel_incremental_enabled(previous)


@dataclass(frozen=True)
class PeelFallbackInfo:
    """Why one :func:`peel_max_feasible_subset` call left the kernel
    path (same shape as :class:`repro.core.batch.BatchFallbackInfo`).

    Recorded via :func:`peel_fallback_records`, logged, and surfaced in
    :class:`repro.api.Provenance.peel_fallbacks` — so the per-round
    from-scratch fallback is a *visible* property of a result instead
    of a silent performance cliff.

    Attributes
    ----------
    reasons:
        Machine-readable reason tags; currently only
        ``"duplicate_candidates"`` (a repeated index names two copies
        of one request, which the cached matrices' zero diagonal cannot
        express).
    candidates:
        Size of the candidate list handed to the peel.
    detail:
        Human-readable one-liner (also the logged message).
    """

    reasons: Tuple[str, ...]
    candidates: int
    detail: str


# Module-level peel provenance state.  The peel runs against whatever
# context its caller resolved — including contexts built *inside*
# self-powered algorithms (e.g. sqrt_coloring) that a Session never
# sees — so per-run accounting snapshots these process-wide totals
# before/after the run (single scheduler thread, like the toggles
# above) instead of hanging counters off one backend object.
_peel_risk_events = 0
_peel_fallbacks: List[PeelFallbackInfo] = []


def peel_risk_events() -> int:
    """Running total of at-risk peel decisions (incremental margin
    within :data:`PEEL_RISK_RTOL` of a decision boundary, resolved by
    exact recomputation)."""
    return _peel_risk_events


def peel_fallback_records() -> Tuple[PeelFallbackInfo, ...]:
    """Every :class:`PeelFallbackInfo` recorded since the last
    :func:`reset_peel_events` (a snapshot tuple)."""
    return tuple(_peel_fallbacks)


def reset_peel_events() -> None:
    """Reset the peel risk counter and the fallback record list."""
    global _peel_risk_events
    _peel_risk_events = 0
    _peel_fallbacks.clear()


def _resolve(
    fin: np.ndarray, ninf: np.ndarray, npos: np.ndarray, finite: bool = False
) -> np.ndarray:
    """The accumulator's exact interference resolution: ``inf`` wins,
    no positive contributor is an exact 0, else the clamped running sum
    (bit-identical to ``ClassAccumulator.interference_parts``).

    With *finite* the infinite counts are known to be all zero and the
    ``inf`` overlay — then an identity — is skipped.
    """
    values = np.where(npos > 0, np.maximum(fin, 0.0), 0.0)
    if finite:
        return values
    return np.where(ninf > 0, np.inf, values)


class ScheduleKernel:
    """Dense multi-class interference state for one schedule-in-progress.

    Maintains, for every color class ``c`` and every request ``i`` of
    the instance, the interference class ``c``'s members induce at
    ``i`` — as ``(C, n)`` arrays per endpoint, using the same
    finite-sum / infinite-count / positive-count bookkeeping as
    :class:`~repro.core.context.ClassAccumulator` (so shared-node and
    emptied-class cases stay exact).  On top of the per-class rows it
    keeps per-request *own-class* state (each placed request's entry of
    its own class row, maintained bitwise-equal), so member-side
    admission checks run as one ``(n,)`` broadcast instead of a Python
    loop over classes.

    Parameters
    ----------
    context:
        The shared :class:`InterferenceContext` (cached gain matrices).
    beta, noise:
        Defaults for margin-style checks; fall back to the context's.
    capacity:
        Initial number of preallocated class rows (grows by doubling).
    """

    def __init__(
        self,
        context: InterferenceContext,
        beta: Optional[float] = None,
        noise: Optional[float] = None,
        capacity: int = 4,
    ):
        self.context = context
        self.beta = context.beta if beta is None else float(beta)
        self.noise = context.noise if noise is None else float(noise)
        n = context.n
        self._n = n
        self._backend = context.backend
        self._directed = context.directed
        self._finite = not self._backend.has_infinite_gains
        # Per-request pruned-mass bound of a lossy (sparse) backend;
        # None on lossless backends so the certification bookkeeping in
        # first_fit_admit costs nothing on the reference path.
        pruned = self._backend.pruned_bound
        self._pruned = pruned if bool(np.any(pruned > 0)) else None
        #: At-risk admissions made by *this kernel* (see
        #: :meth:`first_fit_admit`): the per-run certification counter.
        #: The backend's :attr:`~repro.core.gains.GainBackend.flip_risk_events`
        #: accumulates the same events across every kernel sharing it.
        self.flip_risk_events = 0
        self._colors = np.full(n, -1, dtype=int)
        self._sizes: List[int] = []
        cap = max(1, int(capacity))
        self._fin_u = np.zeros((cap, n))
        self._ninf_u = np.zeros((cap, n), dtype=np.int64)
        self._npos_u = np.zeros((cap, n), dtype=np.int64)
        self._own_fin_u = np.zeros(n)
        self._own_ninf_u = np.zeros(n, dtype=np.int64)
        self._own_npos_u = np.zeros(n, dtype=np.int64)
        if self._directed:
            self._fin_v = self._fin_u
            self._ninf_v = self._ninf_u
            self._npos_v = self._npos_u
            self._own_fin_v = self._own_fin_u
            self._own_ninf_v = self._own_ninf_u
            self._own_npos_v = self._own_npos_u
        else:
            self._fin_v = np.zeros((cap, n))
            self._ninf_v = np.zeros((cap, n), dtype=np.int64)
            self._npos_v = np.zeros((cap, n), dtype=np.int64)
            self._own_fin_v = np.zeros(n)
            self._own_ninf_v = np.zeros(n, dtype=np.int64)
            self._own_npos_v = np.zeros(n, dtype=np.int64)

    # ------------------------------------------------------------------
    # Construction / introspection
    # ------------------------------------------------------------------

    @classmethod
    def from_colors(
        cls,
        context: InterferenceContext,
        colors: np.ndarray,
        beta: Optional[float] = None,
        noise: Optional[float] = None,
    ) -> "ScheduleKernel":
        """A kernel seeded from a dense coloring (entries ``0 .. C-1``;
        ``-1`` marks unplaced requests).  Class rows are bulk-seeded in
        one vectorized pass per class."""
        colors = np.asarray(colors, dtype=int).reshape(-1)
        if colors.shape != (context.n,):
            raise ValueError(
                f"colors must have shape ({context.n},), got {colors.shape}"
            )
        num_classes = int(colors.max()) + 1 if colors.size and colors.max() >= 0 else 0
        kernel = cls(context, beta=beta, noise=noise, capacity=max(1, num_classes))
        for color in range(num_classes):
            members = np.flatnonzero(colors == color)
            kernel._sizes.append(int(members.size))
            if members.size == 0:
                continue
            kernel._bulk_seed(color, members)
        kernel._colors = colors.copy()
        idx = np.flatnonzero(colors >= 0)
        pairs = [
            (kernel._own_fin_u, kernel._fin_u),
            (kernel._own_ninf_u, kernel._ninf_u),
            (kernel._own_npos_u, kernel._npos_u),
        ]
        if not kernel._directed:
            pairs += [
                (kernel._own_fin_v, kernel._fin_v),
                (kernel._own_ninf_v, kernel._ninf_v),
                (kernel._own_npos_v, kernel._npos_v),
            ]
        for own, rows in pairs:
            own[idx] = rows[colors[idx], idx]
        return kernel

    @property
    def n(self) -> int:
        """Number of requests."""
        return self._n

    @property
    def num_classes(self) -> int:
        """Number of (open) color classes."""
        return len(self._sizes)

    @property
    def colors(self) -> np.ndarray:
        """Current color per request, ``-1`` for unplaced (read-only view)."""
        view = self._colors.view()
        view.setflags(write=False)
        return view

    @property
    def class_sizes(self) -> np.ndarray:
        """Member count per class."""
        return np.asarray(self._sizes, dtype=int)

    # ------------------------------------------------------------------
    # State updates
    # ------------------------------------------------------------------

    def _grow(self) -> None:
        cap = self._fin_u.shape[0]
        new_cap = max(1, 2 * cap)

        def enlarge(arr: np.ndarray) -> np.ndarray:
            out = np.zeros((new_cap, self._n), dtype=arr.dtype)
            out[:cap] = arr
            return out

        self._fin_u = enlarge(self._fin_u)
        self._ninf_u = enlarge(self._ninf_u)
        self._npos_u = enlarge(self._npos_u)
        if self._directed:
            self._fin_v = self._fin_u
            self._ninf_v = self._ninf_u
            self._npos_v = self._npos_u
        else:
            self._fin_v = enlarge(self._fin_v)
            self._ninf_v = enlarge(self._ninf_v)
            self._npos_v = enlarge(self._npos_v)

    def extend_to(self, n_new: int) -> None:
        """Grow the kernel to a context that has grown to *n_new*
        requests (see :meth:`InterferenceContext.extend_to`) — the live
        state survives arrivals with no replay.

        Existing per-class and own-class entries are untouched (the new
        requests are not members of anything yet, so no existing sum
        changes); the new requests' class-row entries are seeded in one
        vectorized pass per nonempty class over the members' gain block
        at the new rows — the same per-row pairwise column sums as
        :meth:`_bulk_seed`, so a subsequent :meth:`first_fit_admit` of
        an arrival sees exactly the state a freshly seeded kernel
        would.  The all-finite fast path and the pruned-mass bound are
        re-resolved from the (grown) backend, since arrivals can
        introduce shared-node pairs or pruned rows that did not exist
        at construction; an instance that *was* all-finite has zero
        infinite counts everywhere, so flipping the flag is exact.
        """
        n_new = int(n_new)
        n_old = self._n
        if n_new < n_old:
            raise ValueError(
                f"cannot shrink kernel from n={n_old} to n={n_new}"
            )
        if self.context.n != n_new:
            raise ValueError(
                f"context has n={self.context.n}, expected {n_new}; grow "
                "the context (InterferenceContext.extend_to) first"
            )
        if n_new == n_old:
            return
        self._finite = not self._backend.has_infinite_gains
        pruned = self._backend.pruned_bound
        self._pruned = pruned if bool(np.any(pruned > 0)) else None
        cap = self._fin_u.shape[0]

        def enlarge_rows(arr: np.ndarray) -> np.ndarray:
            out = np.zeros((cap, n_new), dtype=arr.dtype)
            out[:, :n_old] = arr
            return out

        def enlarge_own(arr: np.ndarray) -> np.ndarray:
            out = np.zeros(n_new, dtype=arr.dtype)
            out[:n_old] = arr
            return out

        self._fin_u = enlarge_rows(self._fin_u)
        self._ninf_u = enlarge_rows(self._ninf_u)
        self._npos_u = enlarge_rows(self._npos_u)
        self._own_fin_u = enlarge_own(self._own_fin_u)
        self._own_ninf_u = enlarge_own(self._own_ninf_u)
        self._own_npos_u = enlarge_own(self._own_npos_u)
        if self._directed:
            self._fin_v = self._fin_u
            self._ninf_v = self._ninf_u
            self._npos_v = self._npos_u
            self._own_fin_v = self._own_fin_u
            self._own_ninf_v = self._own_ninf_u
            self._own_npos_v = self._own_npos_u
        else:
            self._fin_v = enlarge_rows(self._fin_v)
            self._ninf_v = enlarge_rows(self._ninf_v)
            self._npos_v = enlarge_rows(self._npos_v)
            self._own_fin_v = enlarge_own(self._own_fin_v)
            self._own_ninf_v = enlarge_own(self._own_ninf_v)
            self._own_npos_v = enlarge_own(self._own_npos_v)
        colors = np.full(n_new, -1, dtype=int)
        colors[:n_old] = self._colors
        self._colors = colors
        self._n = n_new
        tail = np.arange(n_old, n_new)
        backend = self._backend
        for fin, ninf, npos, cross_block in (
            (self._fin_u, self._ninf_u, self._npos_u, backend.cross_block_u),
            (self._fin_v, self._ninf_v, self._npos_v, backend.cross_block_v),
        ):
            for color, size in enumerate(self._sizes):
                if size == 0:
                    continue
                members = np.flatnonzero(self._colors == color)
                block = cross_block(tail, members)
                if self._finite:
                    fin[color, n_old:] = block.sum(axis=1)
                    npos[color, n_old:] = (block > 0).sum(axis=1)
                else:
                    finite = np.isfinite(block)
                    fin[color, n_old:] = np.where(finite, block, 0.0).sum(
                        axis=1
                    )
                    ninf[color, n_old:] = (~finite).sum(axis=1)
                    npos[color, n_old:] = (finite & (block > 0)).sum(axis=1)
            if self._directed:
                break

    def _endpoint_rows(self):
        # gather_cols materializes bulk column gathers (for pairwise
        # column sums), col single columns in cache-friendly layout;
        # both come from the gain backend, so the same kernel runs on
        # dense and sparse gains with identical values.
        backend = self._backend
        yield (
            self._fin_u,
            self._ninf_u,
            self._npos_u,
            self._own_fin_u,
            self._own_ninf_u,
            self._own_npos_u,
            backend.gather_cols_u,
            backend.col_u,
        )
        if not self._directed:
            yield (
                self._fin_v,
                self._ninf_v,
                self._npos_v,
                self._own_fin_v,
                self._own_ninf_v,
                self._own_npos_v,
                backend.gather_cols_v,
                backend.col_v,
            )

    def _bulk_seed(self, color: int, members: np.ndarray) -> None:
        """Seed class *color* with *members* in one vectorized pass
        (same pairwise column sums as ``ClassAccumulator._bulk_add``)."""
        for fin, ninf, npos, _, _, _, gather_cols, _ in self._endpoint_rows():
            columns = gather_cols(members)
            if self._finite:
                np.add(fin[color], columns.sum(axis=1), out=fin[color])
                np.add(npos[color], (columns > 0).sum(axis=1), out=npos[color])
            else:
                finite = np.isfinite(columns)
                np.add(
                    fin[color],
                    np.where(finite, columns, 0.0).sum(axis=1),
                    out=fin[color],
                )
                np.add(ninf[color], (~finite).sum(axis=1), out=ninf[color])
                np.add(
                    npos[color],
                    (finite & (columns > 0)).sum(axis=1),
                    out=npos[color],
                )

    def open_class(self) -> int:
        """Open a fresh (empty) color class; returns its index."""
        color = len(self._sizes)
        if color >= self._fin_u.shape[0]:
            self._grow()
        self._sizes.append(0)
        return color

    def add(self, request: int, color: int) -> None:
        """Place *request* into class *color* — O(n).

        The class row accumulates the request's gain column with the
        exact operations ``ClassAccumulator.add`` uses, so kernel and
        accumulator state stay bitwise equal under the same insertion
        sequence.
        """
        request = int(request)
        color = int(color)
        if self._colors[request] >= 0:
            raise ValueError(f"request {request} is already placed")
        if not 0 <= color < len(self._sizes):
            raise ValueError(f"class {color} is not open")
        peers = self._colors == color
        for fin, ninf, npos, own_fin, own_ninf, own_npos, _, col in (
            self._endpoint_rows()
        ):
            column = col(request)
            if self._finite:
                add_pos = column > 0
                np.add(fin[color], column, out=fin[color])
                np.add(npos[color], add_pos, out=npos[color])
                np.add(own_fin, column, out=own_fin, where=peers)
                np.add(own_npos, add_pos, out=own_npos, where=peers)
            else:
                finite = np.isfinite(column)
                add_fin = np.where(finite, column, 0.0)
                add_inf = ~finite
                add_pos = finite & (column > 0)
                np.add(fin[color], add_fin, out=fin[color])
                np.add(ninf[color], add_inf, out=ninf[color])
                np.add(npos[color], add_pos, out=npos[color])
                np.add(own_fin, add_fin, out=own_fin, where=peers)
                np.add(own_ninf, add_inf, out=own_ninf, where=peers)
                np.add(own_npos, add_pos, out=own_npos, where=peers)
            # The newcomer's own-class entry is an exact copy of its row
            # cell (its peers' updates above never touch it: the gain
            # diagonal is zero but the copy keeps this correct even so).
            own_fin[request] = fin[color, request]
            own_ninf[request] = ninf[color, request]
            own_npos[request] = npos[color, request]
        self._colors[request] = color
        self._sizes[color] += 1

    def remove(self, request: int) -> int:
        """Remove *request* from its class — O(n); returns the class.

        Exact for shared-node members (infinite counts) and for emptied
        classes (rows reset to exact zero), mirroring
        ``ClassAccumulator.remove``.
        """
        request = int(request)
        color = int(self._colors[request])
        if color < 0:
            raise ValueError(f"request {request} is not placed")
        self._colors[request] = -1
        self._sizes[color] -= 1
        emptied = self._sizes[color] == 0
        peers = self._colors == color
        for fin, ninf, npos, own_fin, own_ninf, own_npos, _, col in (
            self._endpoint_rows()
        ):
            if emptied:
                fin[color].fill(0.0)
                ninf[color].fill(0)
                npos[color].fill(0)
            else:
                column = col(request)
                if self._finite:
                    sub_pos = column > 0
                    np.subtract(fin[color], column, out=fin[color])
                    np.subtract(npos[color], sub_pos, out=npos[color])
                    np.subtract(own_fin, column, out=own_fin, where=peers)
                    np.subtract(own_npos, sub_pos, out=own_npos, where=peers)
                else:
                    finite = np.isfinite(column)
                    sub_fin = np.where(finite, column, 0.0)
                    sub_inf = ~finite
                    sub_pos = finite & (column > 0)
                    np.subtract(fin[color], sub_fin, out=fin[color])
                    np.subtract(ninf[color], sub_inf, out=ninf[color])
                    np.subtract(npos[color], sub_pos, out=npos[color])
                    np.subtract(own_fin, sub_fin, out=own_fin, where=peers)
                    np.subtract(own_ninf, sub_inf, out=own_ninf, where=peers)
                    np.subtract(own_npos, sub_pos, out=own_npos, where=peers)
            own_fin[request] = 0.0
            own_ninf[request] = 0
            own_npos[request] = 0
        return color

    def move(self, request: int, color: int) -> None:
        """Move a placed *request* into class *color* (remove + add)."""
        self.remove(request)
        self.add(request, color)

    def drop_empty_class(self, color: int) -> None:
        """Delete an emptied class; higher class ids shift down by one
        (matching a dense ``np.unique`` recompaction of the colors)."""
        color = int(color)
        if self._sizes[color] != 0:
            raise ValueError(f"class {color} is not empty")
        count = len(self._sizes)
        for fin, ninf, npos, _, _, _, _, _ in self._endpoint_rows():
            fin[color : count - 1] = fin[color + 1 : count]
            fin[count - 1].fill(0.0)
            ninf[color : count - 1] = ninf[color + 1 : count]
            ninf[count - 1].fill(0)
            npos[color : count - 1] = npos[color + 1 : count]
            npos[count - 1].fill(0)
        self._sizes.pop(color)
        np.subtract(
            self._colors, 1, out=self._colors, where=self._colors > color
        )

    # ------------------------------------------------------------------
    # Snapshot / rollback
    # ------------------------------------------------------------------

    def _row_arrays(self) -> List[np.ndarray]:
        rows = [self._fin_u, self._ninf_u, self._npos_u]
        if not self._directed:
            rows += [self._fin_v, self._ninf_v, self._npos_v]
        return rows

    def _own_arrays(self) -> List[np.ndarray]:
        own = [self._own_fin_u, self._own_ninf_u, self._own_npos_u]
        if not self._directed:
            own += [self._own_fin_v, self._own_ninf_v, self._own_npos_v]
        return own

    def snapshot(self) -> Dict[str, object]:
        """An exact (bitwise) copy of the kernel state.  Restoring it
        makes a failed sequence of moves perfectly side-effect-free —
        no recompute, no accumulated rounding residue."""
        return {
            "n": int(self._colors.shape[0]),
            "colors": self._colors.copy(),
            "sizes": list(self._sizes),
            "rows": [arr[: len(self._sizes)].copy() for arr in self._row_arrays()],
            "own": [arr.copy() for arr in self._own_arrays()],
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`snapshot` (bitwise; O(C·n) memcpy).

        Rows are written into the kernel's *current* arrays, so a
        restore stays correct even if :meth:`open_class` grew the
        class-row allocation after the snapshot was taken (every row at
        or above the snapshot's class count is reset to exact zero).

        A snapshot does **not** survive request-dimension growth: a
        kernel built over a grown instance has strictly more columns
        than the snapshot recorded, and rolling those away would need
        the old instance back.  Restoring across an ``n`` change raises
        ``ValueError`` — callers (see :meth:`repro.api.Session.recover`)
        must fall back to a rebuild instead.
        """
        saved_n = state.get("n", int(np.asarray(state["colors"]).shape[0]))
        if saved_n != self._colors.shape[0]:
            raise ValueError(
                f"kernel snapshot holds {saved_n} requests but the kernel "
                f"now has {self._colors.shape[0]}; snapshots cannot be "
                "restored across instance growth — rebuild instead"
            )
        self._colors[:] = state["colors"]
        self._sizes = list(state["sizes"])
        count = len(self._sizes)
        for arr, saved in zip(self._row_arrays(), state["rows"]):
            arr[:count] = saved
            arr[count:].fill(0)
        for arr, saved in zip(self._own_arrays(), state["own"]):
            arr[:] = saved

    # ------------------------------------------------------------------
    # Vectorized admission checks
    # ------------------------------------------------------------------

    def class_interference(self, request: int) -> np.ndarray:
        """Worst-endpoint interference each class would induce at
        *request* — ``(C,)``, resolved with the accumulator's exact
        inf/zero semantics."""
        request = int(request)
        count = len(self._sizes)
        res_u = _resolve(
            self._fin_u[:count, request],
            self._ninf_u[:count, request],
            self._npos_u[:count, request],
            self._finite,
        )
        if self._directed:
            return res_u
        res_v = _resolve(
            self._fin_v[:count, request],
            self._ninf_v[:count, request],
            self._npos_v[:count, request],
            self._finite,
        )
        return np.maximum(res_u, res_v)

    def first_fit_admit(self, request: int, limits: np.ndarray) -> int:
        """First class *request* can join under interference budgets
        *limits*, or ``-1``.

        *limits* is the per-request tolerance-scaled budget array
        (``budget * (1 + rtol)``).  One vectorized pass evaluates the
        candidate-budget check for **all** classes and the member-budget
        delta check for **all** placed requests; decisions are
        bit-identical to scanning the classes one
        :class:`ClassAccumulator` at a time.

        On a pruned (sparse) backend every interference value is a
        conservative under-estimate, so rejections here are always
        correct; only an *admission* can differ from the unpruned
        matrices, and only when a value lands within the admitted
        class's pruned-mass bound of its limit.  Each such at-risk
        admission bumps this kernel's own ``flip_risk_events`` plus the
        backend's cumulative ``backend.flip_risk_events`` — a run whose
        kernel counter is zero (equivalently: the backend counter did
        not grow during the run) is certified identical to the dense
        backend's schedule.
        """
        request = int(request)
        count = len(self._sizes)
        if count == 0:
            return -1
        cand_u = _resolve(
            self._fin_u[:count, request],
            self._ninf_u[:count, request],
            self._npos_u[:count, request],
            self._finite,
        )
        if self._directed:
            cand = cand_u
        else:
            cand_v = _resolve(
                self._fin_v[:count, request],
                self._ninf_v[:count, request],
                self._npos_v[:count, request],
                self._finite,
            )
            cand = np.maximum(cand_u, cand_v)
        admit = ~(cand > limits[request])
        if not np.any(admit):
            return -1
        placed = self._colors >= 0
        own_u = _resolve(
            self._own_fin_u, self._own_ninf_u, self._own_npos_u, self._finite
        )
        new_u = own_u + self._backend.col_u(request)
        viol = placed & (new_u > limits)
        if self._directed:
            new_v = new_u
        else:
            own_v = _resolve(
                self._own_fin_v, self._own_ninf_v, self._own_npos_v, self._finite
            )
            new_v = own_v + self._backend.col_v(request)
            viol |= placed & (new_v > limits)
        if np.any(viol):
            bad = np.bincount(self._colors[viol], minlength=count)[:count] > 0
            admit &= ~bad
            if not np.any(admit):
                return -1
        choice = int(np.argmax(admit))
        if self._pruned is not None:
            # Certification: is this admission provably what the
            # unpruned matrices would decide?  Classes scanned before
            # `choice` were rejected (always certain); the chosen class
            # is at risk iff the candidate's or a member's comparison
            # sits within the pruned-mass band of its limit.
            pruned = self._pruned
            risky = bool(cand[choice] + pruned[request] > limits[request])
            if not risky:
                members = np.flatnonzero(self._colors == choice)
                lim = limits[members]
                pru = pruned[members]
                band = new_u[members] + pru > lim
                if not self._directed:
                    band |= new_v[members] + pru > lim
                risky = bool(np.any(band))
            if risky:
                self.flip_risk_events += 1
                self._backend.flip_risk_events += 1
        return choice

    def admissible_targets(
        self, request: int, rtol: float = DEFAULT_RTOL
    ) -> np.ndarray:
        """Margin-style admissibility of *request* to every class —
        ``(C,)`` bool.

        A class is admissible when the request's own SINR margin
        against the class *and* every member's margin with the
        request's gain column added stay ``>= 1 - rtol`` (the
        ``is_feasible_subset`` semantics local search uses).  If the
        request is currently placed, its own class's entry is
        meaningless and callers must skip it.
        """
        request = int(request)
        count = len(self._sizes)
        threshold = 1.0 - rtol
        signals = self.context.signals
        cand = self.class_interference(request)
        cand_margins = _margins_from(
            np.broadcast_to(signals[request], (count,)),
            cand,
            self.beta,
            self.noise,
        )
        admissible = cand_margins >= threshold
        if not np.any(admissible):
            return admissible
        placed = self._colors >= 0
        own_u = _resolve(
            self._own_fin_u, self._own_ninf_u, self._own_npos_u, self._finite
        )
        new_interf = own_u + self._backend.col_u(request)
        if not self._directed:
            own_v = _resolve(
                self._own_fin_v, self._own_ninf_v, self._own_npos_v, self._finite
            )
            new_interf = np.maximum(
                new_interf, own_v + self._backend.col_v(request)
            )
        member_margins = _margins_from(
            signals, new_interf, self.beta, self.noise
        )
        viol = placed & ~(member_margins >= threshold)
        if np.any(viol):
            bad = np.bincount(self._colors[viol], minlength=count)[:count] > 0
            admissible &= ~bad
        return admissible

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScheduleKernel(C={len(self._sizes)}, n={self._n}, "
            f"beta={self.beta}, noise={self.noise})"
        )


def first_fit_colors(
    context: InterferenceContext,
    order: np.ndarray,
    limits: np.ndarray,
) -> np.ndarray:
    """The kernel first-fit admission loop for one context.

    Shared by :func:`repro.scheduling.firstfit.first_fit_schedule` and
    the ragged fallback of
    :meth:`repro.core.batch.ContextBatch.first_fit_schedules`, so the
    admission semantics live in exactly one place.  *limits* is the
    tolerance-scaled budget array (``budget * (1 + rtol)``).
    """
    backend = context.backend
    if hasattr(backend, "prefetch_columns"):
        # Distributed backend: batch the column fetches (the only
        # remote data dependency of admission) into windows.
        return first_fit_colors_sharded(context, order, limits)
    kernel = ScheduleKernel(context)
    for req in order:
        req = int(req)
        color = kernel.first_fit_admit(req, limits)
        if color < 0:
            color = kernel.open_class()
        kernel.add(req, color)
    return kernel.colors


#: Admission-window width of the sharded first-fit driver.  Must stay
#: below the sharded backend's column-cache capacity (so a window's
#: columns survive until their request is admitted *and* placed).
DEFAULT_ADMISSION_WINDOW = 64


def first_fit_colors_sharded(
    context: InterferenceContext,
    order: np.ndarray,
    limits: np.ndarray,
    window: int = DEFAULT_ADMISSION_WINDOW,
) -> np.ndarray:
    """First-fit admission over a distributed gain backend, batched.

    The admission loop's only remote data dependency is the candidate's
    gain columns (``col_u``/``col_v`` in
    :meth:`ScheduleKernel.first_fit_admit` and :meth:`ScheduleKernel.add`);
    every budget comparison runs against parent-resident accumulators.
    So the driver walks *order* in windows of *window* requests,
    prefetching each window's columns in **one** round trip over the
    shards (``backend.prefetch_columns``) — per-request traffic drops
    from up to four column broadcasts to ``1/window`` broadcasts, one
    round per admitted window rather than per candidate scan.

    The kernel calls and their operands are exactly those of
    :func:`first_fit_colors` (prefetch only warms a cache of
    bit-identical columns), so the resulting coloring is bit-identical
    to the plain loop on any backend — and therefore to the dense
    reference wherever the backend itself is conformant.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    backend = context.backend
    prefetch = getattr(backend, "prefetch_columns", None)
    kernel = ScheduleKernel(context)
    order = np.asarray(order, dtype=int)
    for lo in range(0, order.size, window):
        chunk = order[lo : lo + window]
        if prefetch is not None:
            prefetch(chunk)
        for req in chunk:
            req = int(req)
            color = kernel.first_fit_admit(req, limits)
            if color < 0:
                color = kernel.open_class()
            kernel.add(req, color)
    return kernel.colors


# ----------------------------------------------------------------------
# Greedy peeling: incremental (sub-cubic) kernel + compacting reference
# ----------------------------------------------------------------------


def peel_max_feasible_subset(
    context: InterferenceContext,
    candidates: Optional[Sequence[int]] = None,
    beta: Optional[float] = None,
    rtol: float = DEFAULT_RTOL,
) -> np.ndarray:
    """A maximal feasible subset of *candidates* (peel worst margin,
    then re-add), agreeing decision-for-decision with
    :meth:`InterferenceContext.greedy_max_feasible_subset`.

    By default this runs the **incremental** peel: per-candidate
    interference sums are maintained under subtraction as requests are
    peeled (O(n) per round instead of an O(k²) block re-sum, O(k·n +
    k²) per full peel instead of O(k³)), victim selection is one
    vectorized margin scan over the maintained sums per round, and on
    a sparse backend the whole pass walks CSR rows/columns — no dense
    ``(k, k)`` block is ever gathered.

    Numerical contract
    ------------------

    Incremental subtraction changes the summation order, so maintained
    margins can drift a few ulps from the reference's fresh pairwise
    sums.  Decisions are still exact: any comparison whose maintained
    margin lands within :data:`PEEL_RISK_RTOL` of its decision boundary
    (the feasibility threshold, or the round minimum for argmin ties)
    is re-resolved from **fresh row sums in the reference's own
    summation order** — bitwise the reference's margins — and counted
    as one :func:`peel_risk_events` event (surfaced per run in
    :class:`repro.api.Provenance.peel_risk_events`).  Out-of-band
    comparisons cannot flip: the band is orders of magnitude wider than
    the drift a peel can accumulate.  ``with peel_incremental_disabled():``
    routes this call to the PR-5 compacting-buffer implementation (one
    block gather, bit-identical fresh sums every round) as the
    conformance reference.

    Duplicate candidate indices name two copies of one request, which
    the cached matrices' zero diagonal cannot express; such calls fall
    back to the from-scratch subset path, recording a logged
    :class:`PeelFallbackInfo` (surfaced in
    :class:`repro.api.Provenance.peel_fallbacks`).
    """
    if candidates is None:
        idx = np.arange(context.n)
    else:
        idx = np.asarray([int(i) for i in candidates], dtype=int)
    if idx.size == 0:
        return np.asarray([], dtype=int)
    if np.unique(idx).size != idx.size:
        info = PeelFallbackInfo(
            reasons=("duplicate_candidates",),
            candidates=int(idx.size),
            detail=(
                f"peel_max_feasible_subset over {idx.size} candidates "
                "falls back to the from-scratch subset path: duplicate "
                "candidate indices name two copies of one request, which "
                "the cached matrices' zero diagonal cannot express"
            ),
        )
        _peel_fallbacks.append(info)
        logger.warning(info.detail)
        return context.greedy_max_feasible_subset(
            candidates=candidates, beta=beta, rtol=rtol
        )
    if _peel_incremental_enabled:
        return _peel_incremental(context, idx, beta, rtol)
    return _peel_compacting(context, idx, beta, rtol)


def _peel_compacting(
    context: InterferenceContext,
    idx: np.ndarray,
    beta: Optional[float],
    rtol: float,
) -> np.ndarray:
    """The compacting-buffer peel (conformance reference) —
    bit-identical to
    :meth:`InterferenceContext.greedy_max_feasible_subset`.

    Gathers the O(k²) gain block **once** and compacts it in place as
    requests are peeled; each round's row sums run over a buffer with
    the same values, order and contiguity as a fresh gather, so NumPy's
    pairwise summation produces the same bits and every
    argmin/threshold decision is preserved exactly.  Cost is O(k²) per
    round (O(k³) per full peel) — reach it via
    :func:`peel_incremental_disabled`.
    """
    beta_v = context.beta if beta is None else float(beta)
    noise = context.noise
    backend = context.backend
    directed = backend.directed
    signals = context.signals
    threshold = 1.0 - rtol

    buf_u = backend.block_u(idx)
    buf_v = buf_u if directed else backend.block_v(idx)
    sig = signals[idx].copy()
    order = idx.copy()
    k = idx.size
    dropped: List[int] = []

    while k > 0:
        interf = buf_u[:k, :k].sum(axis=1)
        if not directed:
            interf = np.maximum(interf, buf_v[:k, :k].sum(axis=1))
        margins = _margins_from(sig[:k], interf, beta_v, noise)
        if np.all(margins >= threshold):
            break
        p = int(np.argmin(margins))
        dropped.append(int(order[p]))
        for buf in (buf_u,) if directed else (buf_u, buf_v):
            buf[p : k - 1, :k] = buf[p + 1 : k, :k]
            buf[: k - 1, p : k - 1] = buf[: k - 1, p + 1 : k]
        sig[p : k - 1] = sig[p + 1 : k]
        order[p : k - 1] = order[p + 1 : k]
        k -= 1

    for req in reversed(dropped):
        # Rebuild the (k+1, k+1) trial block so its row sums reproduce
        # the reference's fresh pairwise summation bitwise.
        t = k + 1
        trial_sig = np.append(sig[:k], signals[req])
        blocks: List[np.ndarray] = []
        endpoints = (
            ((backend.col_u, backend.row_u, buf_u),)
            if directed
            else (
                (backend.col_u, backend.row_u, buf_u),
                (backend.col_v, backend.row_v, buf_v),
            )
        )
        for col_fn, row_fn, buf in endpoints:
            col = col_fn(req)
            row = row_fn(req)
            tb = np.empty((t, t))
            tb[:k, :k] = buf[:k, :k]
            tb[:k, k] = col[order[:k]]
            tb[k, :k] = row[order[:k]]
            tb[k, k] = row[req]
            blocks.append(tb)
        interf = blocks[0].sum(axis=1)
        if not directed:
            interf = np.maximum(interf, blocks[1].sum(axis=1))
        margins = _margins_from(trial_sig, interf, beta_v, noise)
        if np.all(margins >= threshold):
            for buf, tb in zip((buf_u,) if directed else (buf_u, buf_v), blocks):
                buf[:k, k] = tb[:k, k]
                buf[k, : k + 1] = tb[k, :]
            sig[k] = trial_sig[k]
            order[k] = req
            k += 1

    return np.asarray(sorted(int(i) for i in order[:k]), dtype=int)


def _band(margin: float) -> float:
    """Absolute half-width of the risk band around *margin*."""
    return PEEL_RISK_RTOL * max(1.0, abs(margin))


def _peel_incremental(
    context: InterferenceContext,
    idx: np.ndarray,
    beta: Optional[float],
    rtol: float,
) -> np.ndarray:
    """The incremental peel (see :func:`peel_max_feasible_subset`).

    State per candidate position: the finite interference sum and the
    infinite-contribution count per endpoint (``inf - inf`` is ``nan``,
    so shared-node columns are tracked by count and resolved exactly,
    like :func:`_resolve`).  Peeling subtracts the victim's gain column
    from the maintained sums (O(n) per round); victim selection is a
    vectorized margin scan over the maintained sums — O(k) NumPy work
    per round instead of the reference's O(k^2) block recompute.  (A
    lazy min-heap was tried first and lost badly: every removal shifts
    every member's margin, so every key goes stale every round and the
    per-entry Python revalidation costs more than one vectorized
    scan.)  Any decision within the :data:`PEEL_RISK_RTOL` band of its
    boundary is resolved by fresh reference-order row sums and counted
    as a risk event.
    """
    global _peel_risk_events
    beta_v = context.beta if beta is None else float(beta)
    noise = context.noise
    backend = context.backend
    directed = backend.directed
    signals = context.signals
    threshold = 1.0 - rtol
    k0 = idx.size
    has_inf = backend.has_infinite_gains
    sig = signals[idx]

    def init_sums(row_sums_fn, cross_fn):
        if not has_inf:
            # Tiled per-row pairwise sums: bit-identical to the
            # reference's first-round block row sums.
            return row_sums_fn(idx), None
        fin = np.empty(k0)
        ninf = np.zeros(k0, dtype=np.int64)
        tile = 512
        for lo in range(0, k0, tile):
            hi = min(lo + tile, k0)
            block = cross_fn(idx[lo:hi], idx)
            finite = np.isfinite(block)
            fin[lo:hi] = np.where(finite, block, 0.0).sum(axis=1)
            ninf[lo:hi] = (~finite).sum(axis=1)
        return fin, ninf

    fin_u, ninf_u = init_sums(backend.row_sums_u, backend.cross_block_u)
    if directed:
        fin_v, ninf_v = fin_u, ninf_u
    else:
        fin_v, ninf_v = init_sums(backend.row_sums_v, backend.cross_block_v)

    endpoint_state = (
        ((fin_u, ninf_u, backend.col_u, backend.row_u),)
        if directed
        else (
            (fin_u, ninf_u, backend.col_u, backend.row_u),
            (fin_v, ninf_v, backend.col_v, backend.row_v),
        )
    )

    def margins_vec() -> np.ndarray:
        """Current incremental margins for all positions, vectorized.

        Inactive positions carry stale sums; callers mask them out.
        """
        interf: Optional[np.ndarray] = None
        for fin, ninf, _, _ in endpoint_state:
            part = np.maximum(fin, 0.0)
            if ninf is not None:
                part = np.where(ninf > 0, np.inf, part)
            interf = part if interf is None else np.maximum(interf, part)
        return _margins_from(sig, interf, beta_v, noise)

    def exact_margin(g: int, member_globals: np.ndarray) -> float:
        """Fresh margin of request *g* among *member_globals*, summed
        in the reference's membership order — the same contiguous value
        sequence (hence the same bits) the compacting reference
        reduces for this row."""
        interf = -np.inf
        for _, _, _, row_fn in endpoint_state:
            part = float(row_fn(g)[member_globals].sum())
            if part > interf:
                interf = part
        if np.isinf(interf):
            return 0.0
        denom = beta_v * (interf + noise)
        if denom > 0:
            return float(signals[g]) / denom
        return float("inf")

    def near(a: float, b: float) -> bool:
        if np.isinf(a) or np.isinf(b):
            # Infinite (zero-denominator) and zero (shared-node)
            # margins come from exact state — never at risk.
            return False
        return abs(a - b) <= PEEL_RISK_RTOL * max(1.0, abs(a), abs(b))

    def subtract_column(g: int, active: np.ndarray) -> None:
        for fin, ninf, col_fn, _ in endpoint_state:
            vals = col_fn(g)[idx]
            if ninf is None:
                np.subtract(fin, vals, out=fin, where=active)
            else:
                finite = np.isfinite(vals)
                np.subtract(
                    fin, np.where(finite, vals, 0.0), out=fin, where=active
                )
                np.subtract(ninf, ~finite, out=ninf, where=active)

    active = np.ones(k0, dtype=bool)
    dropped: List[int] = []
    k = k0
    risk = 0

    # --- peel phase ---------------------------------------------------
    while k > 0:
        m = margins_vec()
        m[~active] = np.inf  # mask stale slots out of the argmin
        p = int(np.argmin(m))
        cur = float(m[p])
        # If the minimum is inf, every active margin is inf as well, so
        # the break below fires even when argmin lands on a masked slot.
        at_threshold = near(cur, threshold)
        if not at_threshold and cur >= threshold:
            break  # the minimum is certainly feasible -> all are
        # Contenders: every active entry whose margin lies within the
        # risk band of the decision boundary — the round minimum
        # (argmin ties), widened to the threshold when the stop/peel
        # decision itself is at risk.
        bound = max(cur, threshold) if at_threshold else cur
        contenders = np.asarray([p])
        if np.isfinite(bound):
            mask = active & (m <= bound + _band(bound))
            if mask.sum() > 1:
                contenders = np.flatnonzero(mask)
        if at_threshold or contenders.size > 1:
            # Threshold-crossing or argmin-tie risk: resolve the
            # implicated margins exactly and count the event.
            risk += 1
            member_globals = idx[active]
            exact = sorted(
                (exact_margin(int(idx[q]), member_globals), int(q))
                for q in contenders
            )
            if exact[0][0] >= threshold:
                break  # exact: every margin clears the threshold
            victim = exact[0][1]
        else:
            victim = p
        g = int(idx[victim])
        dropped.append(g)
        active[victim] = False
        k -= 1
        subtract_column(g, active)

    # --- re-add phase -------------------------------------------------
    # Membership order matters for the exact-resolution sums: the
    # reference appends every accepted re-add at the end of its buffer.
    order_list = [int(g) for g in idx[active]]
    pos_of = {int(g): pos for pos, g in enumerate(idx)}

    for g in reversed(dropped):
        pos = pos_of[g]
        positions = np.flatnonzero(active)
        member_globals = idx[positions]
        trial_globals = np.asarray(order_list + [g], dtype=int)
        mem_interf: Optional[np.ndarray] = None
        req_interf = -np.inf
        commits = []
        for fin, ninf, col_fn, row_fn in endpoint_state:
            col_all = col_fn(g)[idx]  # (k0,) by candidate position
            colv = col_all[positions]
            rowv = row_fn(g)[member_globals]
            if ninf is None:
                part = np.maximum(fin[positions] + colv, 0.0)
                r_fin = float(rowv.sum())
                r_ninf = 0
            else:
                cfin = np.isfinite(colv)
                e_fin = fin[positions] + np.where(cfin, colv, 0.0)
                e_ninf = ninf[positions] + (~cfin)
                part = np.where(e_ninf > 0, np.inf, np.maximum(e_fin, 0.0))
                rfinite = np.isfinite(rowv)
                r_fin = float(np.where(rfinite, rowv, 0.0).sum())
                r_ninf = int((~rfinite).sum())
            commits.append((fin, ninf, col_all, r_fin, r_ninf))
            r_part = np.inf if r_ninf > 0 else max(r_fin, 0.0)
            mem_interf = (
                part if mem_interf is None else np.maximum(mem_interf, part)
            )
            if r_part > req_interf:
                req_interf = r_part
        mem_margins = _margins_from(sig[positions], mem_interf, beta_v, noise)
        if np.isinf(req_interf):
            req_margin = 0.0
        else:
            denom = beta_v * (req_interf + noise)
            req_margin = (
                float(signals[g]) / denom if denom > 0 else float("inf")
            )
        margins_all = np.append(mem_margins, req_margin)
        tol = PEEL_RISK_RTOL * np.maximum(1.0, np.abs(margins_all))
        at_risk = np.isfinite(margins_all) & (
            np.abs(margins_all - threshold) <= tol
        )
        ok = bool(np.all(margins_all[~at_risk] >= threshold))
        if np.any(at_risk):
            risk += 1
            if ok:
                for j in np.flatnonzero(at_risk):
                    gq = (
                        g
                        if j == mem_margins.size
                        else int(member_globals[j])
                    )
                    if exact_margin(gq, trial_globals) < threshold:
                        ok = False
                        break
        if ok:
            for fin, ninf, col_all, r_fin, r_ninf in commits:
                if ninf is None:
                    np.add(fin, col_all, out=fin, where=active)
                else:
                    cfin = np.isfinite(col_all)
                    np.add(
                        fin,
                        np.where(cfin, col_all, 0.0),
                        out=fin,
                        where=active,
                    )
                    np.add(ninf, ~cfin, out=ninf, where=active)
                fin[pos] = r_fin
                if ninf is not None:
                    ninf[pos] = r_ninf
            active[pos] = True
            order_list.append(g)
            k += 1

    _peel_risk_events += risk
    return np.asarray(sorted(order_list), dtype=int)


# ----------------------------------------------------------------------
# Stacked (batched) first-fit over (B, n, n) gains
# ----------------------------------------------------------------------


def stacked_first_fit(
    gains_ut: np.ndarray,
    gains_vt: np.ndarray,
    limits: np.ndarray,
    orders: np.ndarray,
    capacity: int = 4,
    finite: Optional[bool] = None,
) -> np.ndarray:
    """First-fit colorings for a stack of instances in lockstep.

    Parameters
    ----------
    gains_ut, gains_vt:
        Stacked **transposed** gain matrices ``(B, n, n)`` —
        ``gains_ut[b, j]`` is pair ``b``'s gain column of request ``j``
        laid out contiguously (see
        :attr:`InterferenceContext.gains_ut`).  Pass the same array
        twice for the directed variant.
    limits:
        Tolerance-scaled interference budgets ``(B, n)``
        (``budget * (1 + rtol)``).
    orders:
        Processing order per pair ``(B, n)``.
    capacity:
        Initial per-pair class-row allocation (grows by doubling).
    finite:
        Whether every gain entry is finite (no shared-node pairs).
        Callers holding per-context state should pass
        ``all(not ctx.has_infinite_gains ...)`` — that answer is cached
        per context, while deriving it here costs a full O(B·n²) scan.

    Returns
    -------
    ``(B, n)`` int colors.  Each slice is bit-identical to running the
    :class:`ScheduleKernel` first-fit on that pair alone: all state
    updates and comparisons are elementwise over the batch axis, so no
    cross-pair accumulation order exists to differ.
    """
    num_pairs, n = orders.shape
    directed = gains_vt is gains_ut
    if finite is None:
        finite = bool(np.all(np.isfinite(gains_ut)))
        if finite and not directed:
            finite = bool(np.all(np.isfinite(gains_vt)))
    else:
        finite = bool(finite)
    b_ar = np.arange(num_pairs)
    colors = np.full((num_pairs, n), -1, dtype=int)
    num_classes = np.zeros(num_pairs, dtype=int)
    cap = max(1, int(capacity))

    def alloc(dtype):
        return np.zeros((num_pairs, cap, n), dtype=dtype)

    fin_u, ninf_u, npos_u = alloc(float), alloc(np.int64), alloc(np.int64)
    own_fin_u = np.zeros((num_pairs, n))
    own_ninf_u = np.zeros((num_pairs, n), dtype=np.int64)
    own_npos_u = np.zeros((num_pairs, n), dtype=np.int64)
    if directed:
        fin_v, ninf_v, npos_v = fin_u, ninf_u, npos_u
        own_fin_v, own_ninf_v, own_npos_v = own_fin_u, own_ninf_u, own_npos_u
    else:
        fin_v, ninf_v, npos_v = alloc(float), alloc(np.int64), alloc(np.int64)
        own_fin_v = np.zeros((num_pairs, n))
        own_ninf_v = np.zeros((num_pairs, n), dtype=np.int64)
        own_npos_v = np.zeros((num_pairs, n), dtype=np.int64)

    def grow():
        nonlocal fin_u, ninf_u, npos_u, fin_v, ninf_v, npos_v, cap
        new_cap = 2 * cap

        def enlarge(arr):
            out = np.zeros((num_pairs, new_cap, n), dtype=arr.dtype)
            out[:, :cap] = arr
            return out

        fin_u, ninf_u, npos_u = enlarge(fin_u), enlarge(ninf_u), enlarge(npos_u)
        if directed:
            fin_v, ninf_v, npos_v = fin_u, ninf_u, npos_u
        else:
            fin_v, ninf_v, npos_v = (
                enlarge(fin_v),
                enlarge(ninf_v),
                enlarge(npos_v),
            )
        cap = new_cap

    def endpoints() -> List[Tuple]:
        rows = [
            (fin_u, ninf_u, npos_u, own_fin_u, own_ninf_u, own_npos_u, gains_ut)
        ]
        if not directed:
            rows.append(
                (fin_v, ninf_v, npos_v, own_fin_v, own_ninf_v, own_npos_v, gains_vt)
            )
        return rows

    for step in range(n):
        reqs = orders[:, step]
        req_limits = limits[b_ar, reqs]  # (B,)
        # Candidate-budget check across every open class of every pair.
        cand_u = _resolve(
            fin_u[b_ar, :, reqs],
            ninf_u[b_ar, :, reqs],
            npos_u[b_ar, :, reqs],
            finite,
        )  # (B, cap)
        if directed:
            cand = cand_u
        else:
            cand_v = _resolve(
                fin_v[b_ar, :, reqs],
                ninf_v[b_ar, :, reqs],
                npos_v[b_ar, :, reqs],
                finite,
            )
            cand = np.maximum(cand_u, cand_v)
        open_mask = np.arange(cap)[None, :] < num_classes[:, None]
        admit = open_mask & ~(cand > req_limits[:, None])
        # Member-budget delta check across every placed request.
        placed = colors >= 0
        col_u = gains_ut[b_ar, reqs]  # (B, n): pair b's gain column of req_b
        own_u = _resolve(own_fin_u, own_ninf_u, own_npos_u, finite)
        viol = placed & ((own_u + col_u) > limits)
        if not directed:
            col_v = gains_vt[b_ar, reqs]
            own_v = _resolve(own_fin_v, own_ninf_v, own_npos_v, finite)
            viol |= placed & ((own_v + col_v) > limits)
        if np.any(viol):
            flat = (colors + cap * b_ar[:, None])[viol]
            bad = np.bincount(flat, minlength=num_pairs * cap).reshape(
                num_pairs, cap
            ) > 0
            admit &= ~bad
        chosen = np.where(
            admit.any(axis=1), np.argmax(admit, axis=1), num_classes
        )
        num_classes = np.maximum(num_classes, chosen + 1)
        if np.any(num_classes > cap):
            grow()
        # Commit: accumulate the request's gain column into the chosen
        # class row of each pair, update peers' own-class state, place.
        peers = colors == chosen[:, None]  # (B, n)
        for fin, ninf, npos, own_fin, own_ninf, own_npos, gains_t in endpoints():
            column = gains_t[b_ar, reqs]  # (B, n)
            if finite:
                add_pos = column > 0
                fin[b_ar, chosen] += column
                npos[b_ar, chosen] += add_pos
                np.add(own_fin, column, out=own_fin, where=peers)
                np.add(own_npos, add_pos, out=own_npos, where=peers)
            else:
                col_finite = np.isfinite(column)
                add_fin = np.where(col_finite, column, 0.0)
                add_inf = ~col_finite
                add_pos = col_finite & (column > 0)
                fin[b_ar, chosen] += add_fin
                ninf[b_ar, chosen] += add_inf
                npos[b_ar, chosen] += add_pos
                np.add(own_fin, add_fin, out=own_fin, where=peers)
                np.add(own_ninf, add_inf, out=own_ninf, where=peers)
                np.add(own_npos, add_pos, out=own_npos, where=peers)
            own_fin[b_ar, reqs] = fin[b_ar, chosen, reqs]
            own_ninf[b_ar, reqs] = ninf[b_ar, chosen, reqs]
            own_npos[b_ar, reqs] = npos[b_ar, chosen, reqs]
        colors[b_ar, reqs] = chosen

    return colors


# ----------------------------------------------------------------------
# Stacked (batched) local search over (B, n, n) gains
# ----------------------------------------------------------------------


class _LocalSearchController:
    """The sequential decision state of one pair inside
    :func:`stacked_local_search`.

    Replicates the exact control flow of
    :func:`repro.scheduling.local_search.improve_schedule`'s kernel path
    (round over victim classes smallest-first, member-by-member
    dissolution with snapshot rollback, recompaction after each
    success); all the heavy math — the ``admissible_targets`` analogue
    and the committed moves — runs batched across every live controller
    in the engine loop, this object only *consumes* its row of the
    batched answer.
    """

    __slots__ = (
        "b",
        "engine",
        "rounds_left",
        "done",
        "uniq",
        "victims",
        "vpos",
        "victim",
        "members",
        "mpos",
        "targets",
        "snap",
        "chosen",
    )

    def __init__(self, engine: "_StackedLocalSearchState", b: int, max_rounds: Optional[int]):
        self.engine = engine
        self.b = b
        self.done = False
        self.chosen = -1
        colors = engine.colors[b]
        self.rounds_left = (
            int(np.unique(colors).size) if max_rounds is None else int(max_rounds)
        )
        self._start_round()

    @property
    def request(self) -> int:
        """The member whose admissibility the next engine step answers."""
        return int(self.members[self.mpos])

    def _start_round(self) -> None:
        if self.rounds_left <= 0:
            self.done = True
            self.engine.discard_snapshot(self.b)
            return
        uniq, counts = np.unique(self.engine.colors[self.b], return_counts=True)
        if uniq.size <= 1:
            self.done = True
            self.engine.discard_snapshot(self.b)
            return
        # Victims from the smallest class upward, color id breaking ties
        # (the reference's ``sorted(sizes, key=lambda c: (sizes[c], c))``).
        self.uniq = uniq
        self.victims = uniq[np.lexsort((uniq, counts))]
        self.vpos = 0
        self._start_attempt()

    def _start_attempt(self) -> None:
        self.victim = int(self.victims[self.vpos])
        self.members = np.flatnonzero(self.engine.colors[self.b] == self.victim)
        self.mpos = 0
        self.targets = self.uniq[self.uniq != self.victim]
        self.snap = self.engine.snapshot_pair(self.b)

    def choose(self, admissible_row: np.ndarray) -> int:
        """First admissible target class for the pending member
        (ascending color order, the reference's scan), or ``-1``."""
        hits = np.flatnonzero(admissible_row[self.targets])
        self.chosen = int(self.targets[hits[0]]) if hits.size else -1
        return self.chosen

    def advance(self) -> None:
        """Consume this step's outcome (after the batched move landed)."""
        if self.chosen >= 0:
            self.mpos += 1
            if self.mpos == self.members.size:
                # Victim dissolved: recompact and start the next round.
                self.engine.drop_empty_class_pair(self.b, self.victim)
                self.rounds_left -= 1
                self._start_round()
        else:
            # Stuck member: roll the attempt back bitwise, next victim.
            self.engine.restore_pair(self.b, self.snap)
            self.vpos += 1
            if self.vpos == len(self.victims):
                self.done = True
                self.engine.discard_snapshot(self.b)
            else:
                self._start_attempt()


class _StackedLocalSearchState:
    """Per-class interference state for a stack of pairs — the
    ``(B, cap, n)`` analogue of ``B`` independent
    :class:`ScheduleKernel` instances, updated in lockstep.

    Every array op mirrors the single-pair kernel elementwise (same
    operations on the same operands per slice), so the state — and
    therefore every admissibility decision — is bitwise what the
    per-pair kernels would hold.
    """

    def __init__(
        self,
        gains_ut: np.ndarray,
        gains_vt: np.ndarray,
        colors: np.ndarray,
        signals: np.ndarray,
        betas: np.ndarray,
        noises: np.ndarray,
        threshold: float,
        finite: bool,
    ):
        num_pairs, n = colors.shape
        self.gains_ut = gains_ut
        self.gains_vt = gains_vt
        self.directed = gains_vt is gains_ut
        self.colors = colors
        self.signals = signals
        self.betas = betas
        self.noises = noises
        self.threshold = threshold
        self.finite = finite
        self.n = n
        self.counts = colors.max(axis=1) + 1  # compacted: classes 0..C-1
        cap = int(max(1, self.counts.max()))
        self.cap = cap
        self.sizes = np.zeros((num_pairs, cap), dtype=int)
        # Live copy-on-write snapshots, one slot per pair (see
        # :meth:`snapshot_pair` / :meth:`_save_row`).
        self.snaps: List[Optional[Dict[str, object]]] = [None] * num_pairs

        def alloc(dtype):
            return np.zeros((num_pairs, cap, n), dtype=dtype)

        self.fin_u, self.ninf_u, self.npos_u = (
            alloc(float),
            alloc(np.int64),
            alloc(np.int64),
        )
        self.own_fin_u = np.zeros((num_pairs, n))
        self.own_ninf_u = np.zeros((num_pairs, n), dtype=np.int64)
        self.own_npos_u = np.zeros((num_pairs, n), dtype=np.int64)
        if self.directed:
            self.fin_v, self.ninf_v, self.npos_v = (
                self.fin_u,
                self.ninf_u,
                self.npos_u,
            )
            self.own_fin_v = self.own_fin_u
            self.own_ninf_v = self.own_ninf_u
            self.own_npos_v = self.own_npos_u
        else:
            self.fin_v, self.ninf_v, self.npos_v = (
                alloc(float),
                alloc(np.int64),
                alloc(np.int64),
            )
            self.own_fin_v = np.zeros((num_pairs, n))
            self.own_ninf_v = np.zeros((num_pairs, n), dtype=np.int64)
            self.own_npos_v = np.zeros((num_pairs, n), dtype=np.int64)
        ar_n = np.arange(n)
        for b in range(num_pairs):
            count = int(self.counts[b])
            self.sizes[b, :count] = np.bincount(colors[b], minlength=count)
            for color in range(count):
                members = np.flatnonzero(colors[b] == color)
                if members.size == 0:
                    continue
                self._bulk_seed(b, color, members)
            # Own-class entries: exact copies of each request's cell of
            # its class row (``ScheduleKernel.from_colors``).
            for own, rows in zip(self._own_arrays(), self._row_arrays()):
                own[b] = rows[b][colors[b], ar_n]

    # -- array plumbing ------------------------------------------------

    def _endpoints(self):
        yield (
            self.fin_u,
            self.ninf_u,
            self.npos_u,
            self.own_fin_u,
            self.own_ninf_u,
            self.own_npos_u,
            self.gains_ut,
        )
        if not self.directed:
            yield (
                self.fin_v,
                self.ninf_v,
                self.npos_v,
                self.own_fin_v,
                self.own_ninf_v,
                self.own_npos_v,
                self.gains_vt,
            )

    def _row_arrays(self) -> List[np.ndarray]:
        rows = [self.fin_u, self.ninf_u, self.npos_u]
        if not self.directed:
            rows += [self.fin_v, self.ninf_v, self.npos_v]
        return rows

    def _own_arrays(self) -> List[np.ndarray]:
        own = [self.own_fin_u, self.own_ninf_u, self.own_npos_u]
        if not self.directed:
            own += [self.own_fin_v, self.own_ninf_v, self.own_npos_v]
        return own

    def _bulk_seed(self, b: int, color: int, members: np.ndarray) -> None:
        # Same pairwise column sums as ``ScheduleKernel._bulk_seed``;
        # the contiguous copy matches the dense backend's gather layout
        # (values are layout-independent, the copy is for speed).
        for fin, ninf, npos, _, _, _, gains_t in self._endpoints():
            columns = np.ascontiguousarray(gains_t[b, members].T)  # (n, k)
            if self.finite:
                np.add(fin[b, color], columns.sum(axis=1), out=fin[b, color])
                np.add(
                    npos[b, color],
                    (columns > 0).sum(axis=1),
                    out=npos[b, color],
                )
            else:
                col_finite = np.isfinite(columns)
                np.add(
                    fin[b, color],
                    np.where(col_finite, columns, 0.0).sum(axis=1),
                    out=fin[b, color],
                )
                np.add(
                    ninf[b, color],
                    (~col_finite).sum(axis=1),
                    out=ninf[b, color],
                )
                np.add(
                    npos[b, color],
                    (col_finite & (columns > 0)).sum(axis=1),
                    out=npos[b, color],
                )

    # -- per-pair bookkeeping (tiny, interpreter-side) -----------------

    def snapshot_pair(self, b: int) -> Dict[str, object]:
        """Copy-on-write snapshot of pair *b* — the exact restore
        semantics of ``ScheduleKernel.snapshot`` at a fraction of the
        memory traffic.

        Colors, sizes and the (n,)-sized own-entry vectors are copied
        eagerly; the (count, n) class rows are saved lazily by
        :meth:`_save_row` right before a batched move first dirties
        them, so a failed attempt (often zero or few committed moves)
        copies only what it touched.  Untouched rows are untouched —
        the restored state is bitwise the pre-attempt state either
        way."""
        snap = {
            "colors": self.colors[b].copy(),
            "sizes": self.sizes[b].copy(),
            "rows": {},
            "own": [arr[b].copy() for arr in self._own_arrays()],
        }
        self.snaps[b] = snap
        return snap

    def _save_row(self, b: int, color: int) -> None:
        """Save class *color*'s rows into pair *b*'s live snapshot
        (no-op when already saved or no snapshot is active)."""
        snap = self.snaps[b]
        if snap is None:
            return
        rows = snap["rows"]
        color = int(color)
        if color not in rows:
            rows[color] = [arr[b, color].copy() for arr in self._row_arrays()]

    def discard_snapshot(self, b: int) -> None:
        self.snaps[b] = None

    def restore_pair(self, b: int, snap: Dict[str, object]) -> None:
        self.colors[b] = snap["colors"]
        self.sizes[b] = snap["sizes"]
        for color, saved in snap["rows"].items():
            for arr, row in zip(self._row_arrays(), saved):
                arr[b, color] = row
        for arr, saved in zip(self._own_arrays(), snap["own"]):
            arr[b] = saved

    def drop_empty_class_pair(self, b: int, color: int) -> None:
        """Pair-local ``ScheduleKernel.drop_empty_class``: shift higher
        class rows down one slot, matching a dense recompaction."""
        count = int(self.counts[b])
        for arr in self._row_arrays():
            arr[b, color : count - 1] = arr[b, color + 1 : count]
            arr[b, count - 1] = 0
        self.sizes[b, color : count - 1] = self.sizes[b, color + 1 : count]
        self.sizes[b, count - 1] = 0
        self.counts[b] = count - 1
        np.subtract(
            self.colors[b], 1, out=self.colors[b], where=self.colors[b] > color
        )

    # -- batched engine steps ------------------------------------------

    def admissible_batch(self, bs: np.ndarray, reqs: np.ndarray) -> np.ndarray:
        """``ScheduleKernel.admissible_targets`` for one pending request
        of every active pair at once — ``(A, cap)`` bool.

        All comparisons are elementwise over the pair axis, so each row
        equals the single-pair answer bit-for-bit; columns at or beyond
        a pair's class count are masked off (their rows are exact
        zeros, which the per-pair kernel never even evaluates).
        """
        num_active = bs.size
        cand_u = _resolve(
            self.fin_u[bs, :, reqs],
            self.ninf_u[bs, :, reqs],
            self.npos_u[bs, :, reqs],
            self.finite,
        )  # (A, cap)
        if self.directed:
            cand = cand_u
        else:
            cand_v = _resolve(
                self.fin_v[bs, :, reqs],
                self.ninf_v[bs, :, reqs],
                self.npos_v[bs, :, reqs],
                self.finite,
            )
            cand = np.maximum(cand_u, cand_v)
        pair_betas = self.betas[bs][:, None]
        pair_noises = self.noises[bs][:, None]
        sig = self.signals[bs, reqs][:, None]
        cand_margins = _margins_from(
            np.broadcast_to(sig, (num_active, self.cap)),
            cand,
            pair_betas,
            pair_noises,
        )
        admissible = cand_margins >= self.threshold
        admissible &= np.arange(self.cap)[None, :] < self.counts[bs][:, None]
        # Member-side delta check: every placed request's margin with
        # the candidate's gain column added.
        placed = self.colors[bs] >= 0
        own_u = _resolve(
            self.own_fin_u[bs],
            self.own_ninf_u[bs],
            self.own_npos_u[bs],
            self.finite,
        )
        new_interf = own_u + self.gains_ut[bs, reqs]
        if not self.directed:
            own_v = _resolve(
                self.own_fin_v[bs],
                self.own_ninf_v[bs],
                self.own_npos_v[bs],
                self.finite,
            )
            new_interf = np.maximum(
                new_interf, own_v + self.gains_vt[bs, reqs]
            )
        member_margins = _margins_from(
            self.signals[bs], new_interf, pair_betas, pair_noises
        )
        viol = placed & ~(member_margins >= self.threshold)
        if np.any(viol):
            flat = (self.colors[bs] + self.cap * np.arange(num_active)[:, None])[
                viol
            ]
            bad = np.bincount(flat, minlength=num_active * self.cap).reshape(
                num_active, self.cap
            ) > 0
            admissible &= ~bad
        return admissible

    def move_batch(
        self, bs: np.ndarray, reqs: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        """Commit one move per listed pair (``ScheduleKernel.move`` =
        remove + add) in lockstep.  Each pair appears at most once, so
        the gather-update-scatter row updates never collide."""
        colors = self.colors
        src = colors[bs, reqs]
        # Copy-on-write: bank the class rows this batched commit is
        # about to dirty while their pairs' snapshots are still clean.
        for b, s, t in zip(bs, src, targets):
            self._save_row(b, s)
            self._save_row(b, t)
        colors[bs, reqs] = -1
        self.sizes[bs, src] -= 1
        emptied = self.sizes[bs, src] == 0
        not_emptied = ~emptied
        nb, nr, nc = bs[not_emptied], reqs[not_emptied], src[not_emptied]
        eb, ec = bs[emptied], src[emptied]
        for fin, ninf, npos, own_fin, own_ninf, own_npos, gains_t in (
            self._endpoints()
        ):
            # Remove from the source class: emptied rows reset to exact
            # zero, survivors subtract the mover's gain column.
            for b, c in zip(eb, ec):
                fin[b, c] = 0.0
                ninf[b, c] = 0
                npos[b, c] = 0
            if nb.size:
                column = gains_t[nb, nr]  # (A', n)
                peers = colors[nb] == nc[:, None]
                if self.finite:
                    sub_pos = column > 0
                    fin[nb, nc] -= column
                    npos[nb, nc] -= sub_pos
                    own = own_fin[nb]
                    np.subtract(own, column, out=own, where=peers)
                    own_fin[nb] = own
                    own = own_npos[nb]
                    np.subtract(own, sub_pos, out=own, where=peers)
                    own_npos[nb] = own
                else:
                    col_finite = np.isfinite(column)
                    sub_fin = np.where(col_finite, column, 0.0)
                    sub_inf = ~col_finite
                    sub_pos = col_finite & (column > 0)
                    fin[nb, nc] -= sub_fin
                    ninf[nb, nc] -= sub_inf
                    npos[nb, nc] -= sub_pos
                    own = own_fin[nb]
                    np.subtract(own, sub_fin, out=own, where=peers)
                    own_fin[nb] = own
                    own = own_ninf[nb]
                    np.subtract(own, sub_inf, out=own, where=peers)
                    own_ninf[nb] = own
                    own = own_npos[nb]
                    np.subtract(own, sub_pos, out=own, where=peers)
                    own_npos[nb] = own
            own_fin[bs, reqs] = 0.0
            own_ninf[bs, reqs] = 0
            own_npos[bs, reqs] = 0
            # Add to the target class (peers computed while the mover
            # is unplaced, exactly like ``ScheduleKernel.add``).
            column = gains_t[bs, reqs]  # (A, n)
            peers = colors[bs] == targets[:, None]
            if self.finite:
                add_pos = column > 0
                fin[bs, targets] += column
                npos[bs, targets] += add_pos
                own = own_fin[bs]
                np.add(own, column, out=own, where=peers)
                own_fin[bs] = own
                own = own_npos[bs]
                np.add(own, add_pos, out=own, where=peers)
                own_npos[bs] = own
            else:
                col_finite = np.isfinite(column)
                add_fin = np.where(col_finite, column, 0.0)
                add_inf = ~col_finite
                add_pos = col_finite & (column > 0)
                fin[bs, targets] += add_fin
                ninf[bs, targets] += add_inf
                npos[bs, targets] += add_pos
                own = own_fin[bs]
                np.add(own, add_fin, out=own, where=peers)
                own_fin[bs] = own
                own = own_ninf[bs]
                np.add(own, add_inf, out=own, where=peers)
                own_ninf[bs] = own
                own = own_npos[bs]
                np.add(own, add_pos, out=own, where=peers)
                own_npos[bs] = own
            own_fin[bs, reqs] = fin[bs, targets, reqs]
            own_ninf[bs, reqs] = ninf[bs, targets, reqs]
            own_npos[bs, reqs] = npos[bs, targets, reqs]
        colors[bs, reqs] = targets
        self.sizes[bs, targets] += 1
        return colors


def stacked_local_search(
    gains_ut: np.ndarray,
    gains_vt: np.ndarray,
    colors: np.ndarray,
    signals: np.ndarray,
    betas: np.ndarray,
    noises: np.ndarray,
    max_rounds: Optional[int] = None,
    rtol: float = DEFAULT_RTOL,
    finite: Optional[bool] = None,
) -> np.ndarray:
    """Local-search dissolution for a stack of schedules in lockstep.

    The batched counterpart of
    :func:`repro.scheduling.local_search.improve_schedule`'s kernel
    path.  Per-pair delta evaluation is embarrassingly parallel: each
    engine step answers the ``admissible_targets`` question for the
    pending member of **every** still-active pair in one vectorized
    pass over the ``(B, cap, n)`` class state, then commits all chosen
    moves in one batched update; the sequential per-pair decisions
    (victim order, first-admissible-target scan, snapshot rollback of a
    failed dissolution, recompaction) run in tiny per-pair controllers
    on top.  Pairs finish independently — the active set shrinks as
    searches reach their fixed points.

    Parameters
    ----------
    gains_ut, gains_vt:
        Stacked transposed gain matrices ``(B, n, n)`` (same convention
        as :func:`stacked_first_fit`; pass the same array twice for the
        directed variant).
    colors:
        Initial colorings ``(B, n)``; every request placed, class ids
        compacted to ``0 .. C_b - 1`` per pair (the reference operates
        on ``schedule.compacted()``).
    signals:
        Received signal strengths ``(B, n)``
        (:attr:`InterferenceContext.signals` per pair).
    betas, noises:
        Per-pair SINR threshold and noise, ``(B,)``.
    max_rounds:
        Cap on dissolution rounds; ``None`` = each pair's initial color
        count (the reference default).
    rtol:
        Feasibility tolerance of the margin checks
        (:data:`~repro.core.context.DEFAULT_RTOL`).
    finite:
        Whether every gain entry is finite; see
        :func:`stacked_first_fit`.

    Returns
    -------
    ``(B, n)`` int colors.  Each slice is **identical** to running the
    per-instance local search on that pair alone (same kernel state
    bitwise, same comparisons, same decision sequence), so the batching
    changes wall-clock, never schedules.
    """
    directed = gains_vt is gains_ut
    gains_ut = np.asarray(gains_ut, dtype=float)
    gains_vt = gains_ut if directed else np.asarray(gains_vt, dtype=float)
    colors = np.array(np.asarray(colors, dtype=int))  # working copy
    if colors.ndim != 2:
        raise ValueError(f"colors must be (B, n), got shape {colors.shape}")
    num_pairs, n = colors.shape
    if gains_ut.shape != (num_pairs, n, n):
        raise ValueError(
            f"gains must be {(num_pairs, n, n)}, got {gains_ut.shape}"
        )
    if np.any(colors < 0):
        raise ValueError("colors must place every request (no -1 entries)")
    signals = np.asarray(signals, dtype=float)
    if signals.shape != (num_pairs, n):
        raise ValueError(
            f"signals must be {(num_pairs, n)}, got {signals.shape}"
        )
    betas = np.asarray(betas, dtype=float).reshape(-1)
    noises = np.asarray(noises, dtype=float).reshape(-1)
    if betas.shape != (num_pairs,) or noises.shape != (num_pairs,):
        raise ValueError(
            f"betas/noises must be ({num_pairs},), got "
            f"{betas.shape}/{noises.shape}"
        )
    if finite is None:
        finite = bool(np.all(np.isfinite(gains_ut)))
        if finite and not directed:
            finite = bool(np.all(np.isfinite(gains_vt)))
    else:
        finite = bool(finite)

    state = _StackedLocalSearchState(
        gains_ut,
        gains_vt,
        colors,
        signals,
        betas,
        noises,
        threshold=1.0 - rtol,
        finite=finite,
    )
    controllers = [
        _LocalSearchController(state, b, max_rounds) for b in range(num_pairs)
    ]
    active = [c for c in controllers if not c.done]
    while active:
        bs = np.asarray([c.b for c in active], dtype=int)
        reqs = np.asarray([c.request for c in active], dtype=int)
        admissible = state.admissible_batch(bs, reqs)
        move_bs: List[int] = []
        move_reqs: List[int] = []
        move_targets: List[int] = []
        for row, controller in enumerate(active):
            if controller.choose(admissible[row]) >= 0:
                move_bs.append(controller.b)
                move_reqs.append(controller.request)
                move_targets.append(controller.chosen)
        if move_bs:
            state.move_batch(
                np.asarray(move_bs, dtype=int),
                np.asarray(move_reqs, dtype=int),
                np.asarray(move_targets, dtype=int),
            )
        for controller in active:
            controller.advance()
        active = [c for c in active if not c.done]
    return colors
