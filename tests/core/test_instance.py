"""Tests for the Instance model."""

import numpy as np
import pytest

from repro.core.errors import InvalidInstanceError
from repro.core.instance import Direction, Instance
from repro.geometry.line import LineMetric


@pytest.fixture
def metric():
    return LineMetric([0.0, 1.0, 5.0, 7.0])


class TestConstruction:
    def test_basic(self, metric):
        inst = Instance(metric, [0, 2], [1, 3])
        assert inst.n == 2
        assert inst.direction is Direction.BIDIRECTIONAL

    def test_directed_constructor(self, metric):
        inst = Instance.directed(metric, [(0, 1), (2, 3)])
        assert inst.direction is Direction.DIRECTED
        assert inst.pairs() == [(0, 1), (2, 3)]

    def test_bidirectional_constructor(self, metric):
        inst = Instance.bidirectional(metric, [(0, 1)])
        assert inst.direction is Direction.BIDIRECTIONAL

    def test_direction_from_string(self, metric):
        inst = Instance(metric, [0], [1], direction="directed")
        assert inst.direction is Direction.DIRECTED

    def test_mismatched_lengths_rejected(self, metric):
        with pytest.raises(InvalidInstanceError, match="same length"):
            Instance(metric, [0, 1], [1])

    def test_empty_rejected(self, metric):
        with pytest.raises(InvalidInstanceError, match="at least one"):
            Instance(metric, [], [])

    def test_out_of_range_sender(self, metric):
        with pytest.raises(InvalidInstanceError, match="sender"):
            Instance(metric, [9], [1])

    def test_out_of_range_receiver(self, metric):
        with pytest.raises(InvalidInstanceError, match="receiver"):
            Instance(metric, [0], [9])

    def test_zero_distance_pair_rejected(self, metric):
        with pytest.raises(InvalidInstanceError, match="zero distance"):
            Instance(metric, [0], [0])

    def test_alpha_below_one_rejected(self, metric):
        with pytest.raises(InvalidInstanceError, match="alpha"):
            Instance(metric, [0], [1], alpha=0.5)

    def test_non_positive_beta_rejected(self, metric):
        with pytest.raises(InvalidInstanceError, match="beta"):
            Instance(metric, [0], [1], beta=0.0)

    def test_negative_noise_rejected(self, metric):
        with pytest.raises(InvalidInstanceError, match="noise"):
            Instance(metric, [0], [1], noise=-1.0)


class TestDerivedData:
    def test_link_distances(self, metric):
        inst = Instance(metric, [0, 2], [1, 3])
        assert np.allclose(inst.link_distances, [1.0, 2.0])

    def test_link_losses(self, metric):
        inst = Instance(metric, [0, 2], [1, 3], alpha=3.0)
        assert np.allclose(inst.link_losses, [1.0, 8.0])

    def test_arrays_readonly(self, metric):
        inst = Instance(metric, [0], [1])
        with pytest.raises(ValueError):
            inst.senders[0] = 2

    def test_with_direction(self, metric):
        inst = Instance(metric, [0], [1])
        flipped = inst.with_direction(Direction.DIRECTED)
        assert flipped.direction is Direction.DIRECTED
        assert flipped.n == inst.n

    def test_with_gain(self, metric):
        inst = Instance(metric, [0], [1], beta=1.0)
        stricter = inst.with_gain(4.0)
        assert stricter.beta == 4.0
        assert inst.beta == 1.0

    def test_subset(self, metric):
        inst = Instance(metric, [0, 2], [1, 3])
        sub = inst.subset([1])
        assert sub.n == 1
        assert sub.pairs() == [(2, 3)]

    def test_empty_subset_rejected(self, metric):
        inst = Instance(metric, [0, 2], [1, 3])
        with pytest.raises(InvalidInstanceError):
            inst.subset([])
