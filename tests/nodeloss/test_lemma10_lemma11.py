"""Direct tests of the Lemma 10 / Lemma 11 statements.

These verify the *mathematical claims* themselves on constructed
stars, independent of the combined Lemma 5 machinery:

* Lemma 10 — if all loss-to-decay ratios exceed ``2^(alpha+1)/gamma'``
  and the star is gamma'-feasible under some powers, then the *whole*
  star is ``gamma'/2^(alpha+2)``-feasible under the square-root
  assignment (no node is dropped).
* Lemma 11 — small-loss stars lose only an ``O((gamma/gamma')^{2/3})``
  fraction.
"""

import numpy as np
import pytest

from repro.nodeloss.feasibility import is_gamma_feasible, max_feasible_gain
from repro.nodeloss.instance import StarNodeLoss
from repro.nodeloss.star_analysis import (
    large_loss_threshold,
    small_loss_subset,
    split_large_small,
)


def large_loss_star(base: float, ratio: float, m: int = 8, alpha: float = 3.0):
    """A star with geometric distances and constant loss-to-decay
    ratio; large ratios make every node a 'large-loss' node."""
    deltas = base ** np.arange(1, m + 1)
    losses = deltas**alpha * ratio
    return StarNodeLoss(deltas, losses, alpha=alpha)


class TestLemma10:
    @pytest.mark.parametrize("base", [8.0, 16.0, 32.0])
    @pytest.mark.parametrize("ratio", [1e3, 1e6])
    def test_whole_star_feasible_under_sqrt(self, base, ratio):
        star = large_loss_star(base, ratio)
        gamma_prime = max_feasible_gain(star)
        threshold = large_loss_threshold(star.alpha, gamma_prime)
        # Precondition of Lemma 10: every node has a large ratio.
        assert np.all(star.loss_to_decay > threshold)
        # Conclusion: the entire star is feasible at gamma'/2^(alpha+2)
        # under the square-root assignment.
        gamma = gamma_prime / 2.0 ** (star.alpha + 2)
        assert is_gamma_feasible(star, star.sqrt_powers(), gamma=gamma)

    def test_split_classifies_all_large(self):
        star = large_loss_star(8.0, 1e6)
        gamma_prime = max_feasible_gain(star)
        large, small = split_large_small(star, gamma_prime)
        assert small.size == 0
        assert large.size == star.m


class TestLemma11:
    def small_loss_star(self, rng, m: int = 40, alpha: float = 3.0):
        deltas = np.exp(rng.uniform(0.0, 7.0, size=m))
        # Losses far below decay: the 'small' regime.
        losses = deltas**alpha * np.exp(rng.uniform(-8.0, -4.0, size=m))
        return StarNodeLoss(deltas, losses, alpha=alpha)

    def test_fraction_kept_beats_envelope(self, rng):
        star = self.small_loss_star(rng)
        gamma_prime = max_feasible_gain(star)
        for separation in (8.0, 64.0):
            gamma = gamma_prime / separation
            kept = small_loss_subset(star, gamma, gamma_prime=gamma_prime)
            envelope = 1.0 - (gamma / gamma_prime) ** (2.0 / 3.0)
            assert kept.size / star.m >= envelope - 0.15

    def test_kept_subset_is_feasible(self, rng):
        star = self.small_loss_star(rng)
        gamma_prime = max_feasible_gain(star)
        gamma = gamma_prime / 32.0
        kept = small_loss_subset(star, gamma, gamma_prime=gamma_prime)
        assert kept.size > 0
        assert is_gamma_feasible(star, star.sqrt_powers(), kept, gamma)

    def test_all_nodes_classified_small(self, rng):
        star = self.small_loss_star(rng)
        gamma_prime = max_feasible_gain(star)
        large, small = split_large_small(star, gamma_prime)
        assert large.size == 0
        assert small.size == star.m
