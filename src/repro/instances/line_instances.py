"""Structured instances on the line.

Simple deterministic families used by tests and experiments:

* :func:`equispaced_line_instance` — ``n`` unit-length links separated
  by a configurable spacing; schedulable in O(1) colors for large
  spacing, a stress test for small spacing.
* :func:`exponential_chain_instance` — links of geometrically growing
  length laid out left to right (the classic chain topology from the
  SINR-scheduling literature, cf. Moscibroda-Wattenhofer).
"""

from __future__ import annotations

from typing import Union

from repro.core.instance import Direction, Instance
from repro.geometry.line import LineMetric


def equispaced_line_instance(
    n: int,
    spacing: float = 4.0,
    link_length: float = 1.0,
    alpha: float = 3.0,
    beta: float = 1.0,
    direction: Union[Direction, str] = Direction.BIDIRECTIONAL,
) -> Instance:
    """``n`` parallel links of length *link_length* every *spacing* units.

    Layout: ``u_i = i * spacing``, ``v_i = i * spacing + link_length``.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if link_length <= 0:
        raise ValueError("link_length must be > 0")
    if spacing <= link_length:
        raise ValueError("spacing must exceed link_length (links must not overlap)")
    coordinates = []
    pairs = []
    for i in range(n):
        left = i * spacing
        coordinates.append(left)
        coordinates.append(left + link_length)
        pairs.append((2 * i, 2 * i + 1))
    metric = LineMetric(coordinates)
    return Instance(
        metric,
        [p[0] for p in pairs],
        [p[1] for p in pairs],
        direction=direction,
        alpha=alpha,
        beta=beta,
    )


def exponential_chain_instance(
    n: int,
    growth: float = 2.0,
    gap_fraction: float = 1.0,
    alpha: float = 3.0,
    beta: float = 1.0,
    direction: Union[Direction, str] = Direction.DIRECTED,
) -> Instance:
    """Chain of links with lengths ``growth**i`` and proportional gaps."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if growth <= 1:
        raise ValueError("growth must be > 1")
    if gap_fraction <= 0:
        raise ValueError("gap_fraction must be > 0")
    coordinates = []
    pairs = []
    position = 0.0
    for i in range(n):
        length = float(growth) ** i
        if i > 0:
            position += gap_fraction * float(growth) ** (i - 1)
        coordinates.append(position)
        position += length
        coordinates.append(position)
        pairs.append((2 * i, 2 * i + 1))
    metric = LineMetric(coordinates)
    return Instance(
        metric,
        [p[0] for p in pairs],
        [p[1] for p in pairs],
        direction=direction,
        alpha=alpha,
        beta=beta,
    )
