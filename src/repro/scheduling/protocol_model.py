"""Protocol-model (graph-based) scheduling baseline.

The introduction criticises graph-based vicinity models: "Two nodes
... are connected by an edge ... if and only if they are in mutual
transmission range.  Interference is modelled through independence
constraints."  This module implements that classic approach so the
experiments can compare it against SINR-aware scheduling:

* two requests *conflict* when the distance between their closest
  endpoints is at most ``range_factor`` times the longer of the two
  links (a distance-2-matching-style constraint);
* the conflict graph is greedily colored;
* because protocol-model colorings may still violate SINR constraints
  (interference does not end abruptly at a boundary), an optional
  repair pass first-fit-splits every class until genuinely feasible.
"""

from __future__ import annotations

from typing import Optional, Tuple

import networkx as nx
import numpy as np

from repro.core.instance import Instance
from repro.core.schedule import Schedule, build_schedule
from repro.scheduling.firstfit import first_fit_schedule


def protocol_conflict_graph(instance: Instance, range_factor: float = 2.0) -> nx.Graph:
    """The protocol-model conflict graph over requests."""
    if range_factor <= 0:
        raise ValueError(f"range_factor must be > 0, got {range_factor}")
    dist = instance.metric.distance_matrix()
    s, r = instance.senders, instance.receivers
    pairwise = np.minimum.reduce(
        [
            dist[np.ix_(s, s)],
            dist[np.ix_(s, r)],
            dist[np.ix_(r, s)],
            dist[np.ix_(r, r)],
        ]
    )
    link = instance.link_distances
    radius = range_factor * np.maximum(link[:, None], link[None, :])
    graph = nx.Graph()
    graph.add_nodes_from(range(instance.n))
    conflicts = pairwise <= radius
    for i in range(instance.n):
        for j in range(i + 1, instance.n):
            if conflicts[i, j]:
                graph.add_edge(i, j)
    return graph


def protocol_schedule(
    instance: Instance,
    powers: np.ndarray,
    range_factor: float = 2.0,
    repair: bool = True,
    beta: Optional[float] = None,
) -> Tuple[Schedule, int]:
    """Schedule via protocol-model coloring, optionally SINR-repaired.

    Returns ``(schedule, raw_protocol_colors)``.  With ``repair=True``
    (default) every protocol class is re-split by SINR first-fit so the
    returned schedule is genuinely feasible; the raw color count shows
    what the graph model *claimed* was enough.
    """
    powers = np.asarray(powers, dtype=float)
    graph = protocol_conflict_graph(instance, range_factor)
    greedy = nx.coloring.greedy_color(graph, strategy="largest_first")
    raw_colors = np.asarray([greedy[i] for i in range(instance.n)], dtype=int)
    raw_count = int(np.unique(raw_colors).size)
    if not repair:
        return build_schedule(raw_colors, powers), raw_count

    # Repair: process classes in order, splitting each into feasible
    # subclasses via first-fit restricted to the class.
    final_colors = np.full(instance.n, -1, dtype=int)
    next_color = 0
    for color in np.unique(raw_colors):
        members = np.flatnonzero(raw_colors == color)
        sub = instance.subset(members)
        sub_schedule = first_fit_schedule(sub, powers[members], beta=beta)
        for local, global_req in enumerate(members):
            final_colors[global_req] = next_color + int(sub_schedule.colors[local])
        next_color += sub_schedule.num_colors
    return build_schedule(final_colors, powers), raw_count
