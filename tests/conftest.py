"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.geometry.euclidean import EuclideanMetric
from repro.geometry.line import LineMetric
from repro.instances.random_instances import random_uniform_instance


@pytest.fixture
def rng():
    """A deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def dense_backend():
    """Pin the dense gain backend for tests that assert dense-only
    machinery (stacked ``(B, n, n)`` batching, transpose aliasing,
    read-only array views) — such tests must keep passing when the
    suite runs under ``REPRO_BACKEND=sparse``."""
    from repro.core.gains import backend_scope

    with backend_scope("dense"):
        yield


@pytest.fixture
def line_metric():
    """Five points on the line: 0, 1, 3, 6, 10."""
    return LineMetric([0.0, 1.0, 3.0, 6.0, 10.0])


@pytest.fixture
def square_metric():
    """Four corners of the unit square."""
    return EuclideanMetric([[0, 0], [1, 0], [0, 1], [1, 1]])


@pytest.fixture
def two_link_instance():
    """Two well-separated unit links on the line (bidirectional).

    Layout: 0--1   100--101.  Hand-computable interference.
    """
    metric = LineMetric([0.0, 1.0, 100.0, 101.0])
    return Instance.bidirectional(metric, [(0, 1), (2, 3)], alpha=3.0, beta=1.0)


@pytest.fixture
def two_link_directed():
    """Directed version of the two-link layout."""
    metric = LineMetric([0.0, 1.0, 100.0, 101.0])
    return Instance.directed(metric, [(0, 1), (2, 3)], alpha=3.0, beta=1.0)


@pytest.fixture
def small_random_instance(rng):
    """Ten random bidirectional requests in a square."""
    return random_uniform_instance(10, rng=rng)
