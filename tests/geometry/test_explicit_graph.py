"""Tests for ExplicitMetric and GraphMetric."""

import networkx as nx
import numpy as np
import pytest

from repro.geometry.explicit import ExplicitMetric
from repro.geometry.graph import GraphMetric


class TestExplicitMetric:
    def test_round_trip(self, line_metric):
        source = line_metric.distance_matrix()
        metric = ExplicitMetric(source)
        assert np.allclose(metric.distance_matrix(), source)

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError, match="symmetric"):
            ExplicitMetric(np.array([[0.0, 1.0], [2.0, 0.0]]))

    def test_rejects_nonzero_diagonal(self):
        with pytest.raises(ValueError, match="diagonal"):
            ExplicitMetric(np.array([[1.0, 1.0], [1.0, 0.0]]))

    def test_rejects_triangle_violation(self):
        bad = np.array(
            [
                [0.0, 1.0, 10.0],
                [1.0, 0.0, 1.0],
                [10.0, 1.0, 0.0],
            ]
        )
        with pytest.raises(ValueError, match="triangle"):
            ExplicitMetric(bad)

    def test_triangle_check_can_be_skipped(self):
        bad = np.array(
            [
                [0.0, 1.0, 10.0],
                [1.0, 0.0, 1.0],
                [10.0, 1.0, 0.0],
            ]
        )
        metric = ExplicitMetric(bad, validate_triangle=False)
        assert metric.distance(0, 2) == 10.0

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            ExplicitMetric(np.zeros((2, 3)))

    def test_rejects_negative_entries(self):
        with pytest.raises(ValueError):
            ExplicitMetric(np.array([[0.0, -1.0], [-1.0, 0.0]]))


class TestGraphMetric:
    @pytest.fixture
    def path_graph(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=2.0)
        graph.add_edge(1, 2, weight=3.0)
        return graph

    def test_shortest_paths(self, path_graph):
        metric = GraphMetric(path_graph)
        assert metric.distance(0, 2) == pytest.approx(5.0)

    def test_default_weight_one(self):
        graph = nx.path_graph(4)
        metric = GraphMetric(graph)
        assert metric.distance(0, 3) == pytest.approx(3.0)

    def test_shortcut_edge_wins(self, path_graph):
        path_graph.add_edge(0, 2, weight=1.0)
        metric = GraphMetric(path_graph)
        assert metric.distance(0, 2) == pytest.approx(1.0)

    def test_disconnected_rejected(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        graph.add_node(2)
        with pytest.raises(ValueError, match="connected"):
            GraphMetric(graph)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            GraphMetric(nx.Graph())

    def test_non_positive_weight_rejected(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=0.0)
        with pytest.raises(ValueError, match="weight"):
            GraphMetric(graph)

    def test_triangle_inequality_holds(self, rng):
        graph = nx.gnp_random_graph(10, 0.5, seed=4)
        for u, v in graph.edges:
            graph[u][v]["weight"] = float(rng.uniform(1, 5))
        if not nx.is_connected(graph):
            pytest.skip("random graph not connected")
        from repro.geometry.metric import is_metric_matrix

        assert is_metric_matrix(GraphMetric(graph).distance_matrix())
