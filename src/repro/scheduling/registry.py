"""Declarative algorithm registry over the scheduler implementations.

Every scheduler in this library is registered here under a stable name
with **capability flags** and a **normalized call adapter**, so callers
(:class:`repro.api.Session`, the experiment modules, the CLI) resolve
algorithms by name instead of importing nine free functions with
drifting signatures:

>>> from repro.scheduling.registry import run_algorithm
>>> outcome = run_algorithm("first_fit", instance, powers=powers)
>>> outcome.schedule.num_colors  # doctest: +SKIP

The normalized contract
-----------------------

``run_algorithm(name, instance, powers=None, rng=None, **params)``
returns an :class:`AlgorithmOutcome` — always the same shape,
regardless of how the underlying implementation spells its signature:

* ``schedule`` — the emitted :class:`repro.core.schedule.Schedule`;
* ``stats`` — the algorithm's diagnostics object when it produces one
  (:class:`~repro.scheduling.sqrt_coloring.SqrtColoringStats`,
  :class:`~repro.scheduling.distributed.DistributedStats`), else
  ``None``;
* ``extras`` — algorithm-specific scalars (the exact solver's
  ``optimal_colors``, the protocol model's ``raw_protocol_colors``).

Capability flags (:class:`AlgorithmCapabilities`) make the differences
*declarative* instead of implicit in the signatures:

* ``needs_powers`` — the algorithm schedules under a caller-fixed
  power vector (``powers`` is required); algorithms with
  ``needs_powers=False`` choose their own powers (trivial, free-power
  first-fit, the sqrt assignment of Theorem 15, the distributed
  protocol).
* ``deterministic`` — no randomness: passing ``rng`` is an error, and
  repeated runs are bit-identical.
* ``supports_sparse`` — runs on the :class:`~repro.core.gains.SparseBackend`
  without materializing dense O(n^2) state (the protocol model's
  conflict graph needs the full distance matrix, so it does not);
  running an unsupported algorithm under a sparse default emits a
  ``RuntimeWarning`` naming the dense materialization.
* ``supports_batch`` — has a lockstep batched kernel over
  :class:`~repro.core.batch.ContextBatch` (currently first-fit, via
  :meth:`~repro.core.batch.ContextBatch.first_fit_schedules`).

New substrates (a GPU scheduler, an online/arrival variant, a
distributed shard executor) plug in through :func:`register` — no
signature sweep across the experiment modules required.

Implementations themselves live untouched in their modules
(:mod:`repro.scheduling.firstfit` etc.); the package-level re-exports
(``repro.first_fit_schedule``) are deprecation shims around the same
callables, so registry results are bit-identical to the legacy API by
construction.
"""

from __future__ import annotations

import types
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, NamedTuple, Optional

import numpy as np

from repro.core.gains import default_backend
from repro.core.instance import Instance
from repro.core.schedule import Schedule

__all__ = [
    "AlgorithmCapabilities",
    "AlgorithmOutcome",
    "AlgorithmSpec",
    "algorithm_names",
    "get_algorithm",
    "list_algorithms",
    "register",
    "run_algorithm",
]


@dataclass(frozen=True)
class AlgorithmCapabilities:
    """Declarative capability flags of one registered algorithm."""

    needs_powers: bool
    deterministic: bool
    supports_sparse: bool = True
    supports_batch: bool = False
    #: Pruned-sparse runs can be *certified* dense-equal for this
    #: algorithm: its admission decisions all route through the
    #: flip-risk-counting first-fit kernel on the caller's context
    #: (see :attr:`repro.core.gains.GainBackend.flip_risk_events`).
    certifiable: bool = False

    def flags(self) -> str:
        """Compact human-readable rendering for CLI listings."""
        parts = [
            "powers" if self.needs_powers else "self-powered",
            "deterministic" if self.deterministic else "randomized",
        ]
        if self.supports_sparse:
            parts.append("sparse")
        if self.supports_batch:
            parts.append("batch")
        if self.certifiable:
            parts.append("certifiable")
        return ",".join(parts)


class AlgorithmOutcome(NamedTuple):
    """Normalized result of one algorithm run.

    The ``extras`` default is an immutable empty mapping (not a shared
    ``{}``), so third-party adapters that default-construct outcomes
    cannot pollute each other; pass a fresh dict to carry values.
    """

    schedule: Schedule
    stats: Optional[Any] = None
    extras: Mapping[str, Any] = types.MappingProxyType({})


#: An adapter receives ``(instance, powers, rng, params)`` — *powers*
#: already validated against ``needs_powers``, *params* a mutable dict
#: of the caller's algorithm-specific keyword arguments — and returns
#: an :class:`AlgorithmOutcome`.  Unknown params propagate into the
#: implementation call so the usual ``TypeError`` names them.
Adapter = Callable[[Instance, Optional[np.ndarray], Any, Dict[str, Any]], AlgorithmOutcome]


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registry entry: name, capabilities, summary and adapter."""

    name: str
    summary: str
    capabilities: AlgorithmCapabilities
    adapter: Adapter = field(repr=False)

    def run(
        self,
        instance: Instance,
        powers: Optional[np.ndarray] = None,
        rng: Any = None,
        **params: Any,
    ) -> AlgorithmOutcome:
        """Run this algorithm through its normalized adapter.

        Parameters
        ----------
        instance:
            The scheduling instance.
        powers:
            Fixed power vector; required iff
            ``capabilities.needs_powers`` (self-powered algorithms
            reject it — their schedules carry their own powers).
        rng:
            Seed or generator for randomized algorithms; deterministic
            ones reject it so callers cannot silently expect
            nondeterminism.
        params:
            Algorithm-specific keyword arguments, forwarded unchanged.
        """
        caps = self.capabilities
        if caps.needs_powers:
            # ``free_power=True`` is the documented opt-out of the
            # fixed-power contract for dual-mode algorithms (the exact
            # solver's unrestricted optimum).
            if powers is None and not params.get("free_power", False):
                raise TypeError(
                    f"algorithm {self.name!r} schedules under a fixed power "
                    "vector; pass powers= (or use a repro.api.Problem, which "
                    "resolves them)"
                )
            if powers is not None:
                powers = np.asarray(powers, dtype=float)
        elif powers is not None:
            raise TypeError(
                f"algorithm {self.name!r} chooses its own powers; "
                "powers= is not accepted"
            )
        if caps.deterministic and rng is not None:
            raise TypeError(
                f"algorithm {self.name!r} is deterministic; rng= is not "
                "accepted"
            )
        if not caps.supports_sparse and default_backend() == "sparse":
            warnings.warn(
                f"algorithm {self.name!r} has no sparse-backend support; "
                "this run materializes dense O(n^2) state despite the "
                "sparse default",
                RuntimeWarning,
                stacklevel=3,
            )
        return self.adapter(instance, powers, rng, dict(params))


_REGISTRY: "OrderedDict[str, AlgorithmSpec]" = OrderedDict()


def register(spec: AlgorithmSpec) -> AlgorithmSpec:
    """Register *spec* (rejecting duplicate names); returns it."""
    if spec.name in _REGISTRY:
        raise ValueError(f"algorithm {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_algorithm(name: str) -> AlgorithmSpec:
    """The registered spec for *name* (with a helpful KeyError)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown algorithm {name!r}; registered: {known}"
        ) from None


def algorithm_names() -> List[str]:
    """Registered names, in registration order."""
    return list(_REGISTRY)


def list_algorithms() -> List[AlgorithmSpec]:
    """All registered specs, in registration order."""
    return list(_REGISTRY.values())


def run_algorithm(
    name: str,
    instance: Instance,
    powers: Optional[np.ndarray] = None,
    rng: Any = None,
    **params: Any,
) -> AlgorithmOutcome:
    """Resolve *name* and run it — the one-call registry entry point."""
    return get_algorithm(name).run(instance, powers=powers, rng=rng, **params)


# ----------------------------------------------------------------------
# Built-in algorithm adapters
# ----------------------------------------------------------------------
#
# Each adapter normalizes one implementation signature onto the
# contract above.  Implementations are imported lazily inside the
# adapters to keep `import repro.scheduling.registry` cheap and to
# avoid import cycles with the scheduler modules.


def _adapt_trivial(instance, powers, rng, params) -> AlgorithmOutcome:
    from repro.scheduling.trivial import trivial_schedule

    return AlgorithmOutcome(trivial_schedule(instance, **params), None, {})


def _adapt_first_fit(instance, powers, rng, params) -> AlgorithmOutcome:
    from repro.scheduling.firstfit import first_fit_schedule

    return AlgorithmOutcome(
        first_fit_schedule(instance, powers, **params), None, {}
    )


def _adapt_first_fit_sharded(instance, powers, rng, params) -> AlgorithmOutcome:
    from repro.core.gains import (
        backend_scope,
        shard_executor_scope,
        shard_workers_scope,
    )
    from repro.scheduling.firstfit import first_fit_schedule

    workers = params.pop("workers", None)
    executor = params.pop("executor", None)
    with backend_scope("sharded"), shard_workers_scope(
        workers
    ), shard_executor_scope(executor):
        schedule = first_fit_schedule(instance, powers, **params)
    return AlgorithmOutcome(schedule, None, {})


def _adapt_first_fit_free_power(instance, powers, rng, params) -> AlgorithmOutcome:
    from repro.scheduling.firstfit import first_fit_free_power_schedule

    return AlgorithmOutcome(
        first_fit_free_power_schedule(instance, **params), None, {}
    )


def _adapt_peeling(instance, powers, rng, params) -> AlgorithmOutcome:
    from repro.scheduling.peeling import peeling_schedule

    return AlgorithmOutcome(
        peeling_schedule(instance, powers, **params), None, {}
    )


def _adapt_gain_scaling(instance, powers, rng, params) -> AlgorithmOutcome:
    from repro.scheduling.gain_scaling import rescale_gain_coloring

    schedule = rescale_gain_coloring(instance, powers, **params)
    classes = schedule.color_classes()
    densest = max(classes.values(), key=lambda members: members.size)
    return AlgorithmOutcome(schedule, None, {"densest_subset": densest})


def _adapt_sqrt_coloring(instance, powers, rng, params) -> AlgorithmOutcome:
    from repro.scheduling.sqrt_coloring import sqrt_coloring

    schedule, stats = sqrt_coloring(instance, rng=rng, **params)
    return AlgorithmOutcome(schedule, stats, {})


def _adapt_local_search(instance, powers, rng, params) -> AlgorithmOutcome:
    from repro.scheduling.local_search import improve_schedule

    schedule = params.pop("schedule", None)
    if schedule is None:
        raise TypeError(
            "algorithm 'local_search' improves an existing schedule; pass "
            "schedule= (a Schedule or a ScheduleResult)"
        )
    if not isinstance(schedule, Schedule):
        # Accept a repro.api.ScheduleResult (or anything carrying one).
        schedule = getattr(schedule, "schedule", schedule)
    improved = improve_schedule(instance, schedule, **params)
    return AlgorithmOutcome(improved, None, {})


def _adapt_distributed(instance, powers, rng, params) -> AlgorithmOutcome:
    from repro.scheduling.distributed import distributed_coloring

    schedule, stats = distributed_coloring(instance, rng=rng, **params)
    return AlgorithmOutcome(schedule, stats, {})


def _adapt_exact(instance, powers, rng, params) -> AlgorithmOutcome:
    from repro.scheduling.exact import exact_minimum_colors

    if params.pop("free_power", False):
        powers = None
    opt, schedule = exact_minimum_colors(instance, powers, **params)
    return AlgorithmOutcome(schedule, None, {"optimal_colors": opt})


def _adapt_protocol_model(instance, powers, rng, params) -> AlgorithmOutcome:
    from repro.scheduling.protocol_model import protocol_schedule

    schedule, raw = protocol_schedule(instance, powers, **params)
    return AlgorithmOutcome(schedule, None, {"raw_protocol_colors": raw})


for _spec in (
    AlgorithmSpec(
        name="trivial",
        summary="One color per request — the O(n) worst-case baseline",
        capabilities=AlgorithmCapabilities(
            needs_powers=False, deterministic=True
        ),
        adapter=_adapt_trivial,
    ),
    AlgorithmSpec(
        name="first_fit",
        summary="Greedy first-fit coloring under a fixed power vector",
        capabilities=AlgorithmCapabilities(
            needs_powers=True,
            deterministic=True,
            supports_batch=True,
            certifiable=True,
        ),
        adapter=_adapt_first_fit,
    ),
    AlgorithmSpec(
        name="first_fit_sharded",
        summary="First-fit over W distributed gain shards (workers=, executor=)",
        capabilities=AlgorithmCapabilities(
            needs_powers=True,
            deterministic=True,
            certifiable=True,
        ),
        adapter=_adapt_first_fit_sharded,
    ),
    AlgorithmSpec(
        name="first_fit_free_power",
        summary="First-fit where every class picks its own feasible powers",
        capabilities=AlgorithmCapabilities(
            needs_powers=False, deterministic=True
        ),
        adapter=_adapt_first_fit_free_power,
    ),
    AlgorithmSpec(
        name="peeling",
        summary="Repeated greedy maximal-feasible-subset extraction",
        capabilities=AlgorithmCapabilities(
            needs_powers=True, deterministic=True
        ),
        adapter=_adapt_peeling,
    ),
    AlgorithmSpec(
        name="gain_scaling",
        summary="Propositions 3/4: color at a stricter gain (gamma_target=)",
        capabilities=AlgorithmCapabilities(
            needs_powers=True, deterministic=True, certifiable=True
        ),
        adapter=_adapt_gain_scaling,
    ),
    AlgorithmSpec(
        name="sqrt_coloring",
        summary="Theorem 15 randomized LP coloring for the sqrt assignment",
        capabilities=AlgorithmCapabilities(
            needs_powers=False, deterministic=False
        ),
        adapter=_adapt_sqrt_coloring,
    ),
    AlgorithmSpec(
        name="local_search",
        summary="Dissolve small color classes of an existing schedule=",
        capabilities=AlgorithmCapabilities(
            needs_powers=False, deterministic=True, supports_batch=True
        ),
        adapter=_adapt_local_search,
    ),
    AlgorithmSpec(
        name="distributed",
        summary="Slotted random-access protocol (distributed coloring)",
        capabilities=AlgorithmCapabilities(
            needs_powers=False, deterministic=False
        ),
        adapter=_adapt_distributed,
    ),
    AlgorithmSpec(
        name="exact",
        summary="Bitmask-DP optimal coloring for small n (free_power= opts out of fixed powers)",
        capabilities=AlgorithmCapabilities(
            needs_powers=True, deterministic=True
        ),
        adapter=_adapt_exact,
    ),
    AlgorithmSpec(
        name="protocol_model",
        summary="Graph-based protocol-model baseline with SINR repair",
        capabilities=AlgorithmCapabilities(
            needs_powers=True, deterministic=True, supports_sparse=False
        ),
        adapter=_adapt_protocol_model,
    ),
):
    register(_spec)
del _spec
